"""Tests for the AST transforms: loop unrolling and if-conversion."""

import pytest

from repro.lang import compile_source
from repro.lang.ifconvert import IfConvertConfig, if_convert_program
from repro.lang.parser import parse
from repro.lang.unroll import UnrollConfig, unroll_program
from repro.profiler import Interpreter


def outputs(src, **kwargs):
    module = compile_source(src, "t", **kwargs)
    interp = Interpreter(module)
    result = interp.run()
    return result, interp.profile.output


def assert_equivalent(src):
    """The transformed program must produce identical results."""
    base = outputs(src)
    for kwargs in (
        {"unroll_factor": 2},
        {"unroll_factor": 4},
        {"if_convert": True},
        {"unroll_factor": 4, "if_convert": True},
    ):
        assert outputs(src, **kwargs) == base, kwargs


class TestUnrollCorrectness:
    def test_exact_multiple_trip_count(self):
        assert_equivalent(
            "int t[16]; int main() { int s = 0;"
            " for (int i = 0; i < 16; i = i + 1) { t[i] = i; s = s + t[i]; }"
            " return s; }"
        )

    def test_remainder_trip_count(self):
        for n in (0, 1, 2, 3, 5, 7, 9):
            assert_equivalent(
                f"int t[16]; int main() {{ int s = 0;"
                f" for (int i = 0; i < {n}; i = i + 1) {{ s = s + i * i; }}"
                f" return s; }}"
            )

    def test_non_unit_stride(self):
        assert_equivalent(
            "int main() { int s = 0;"
            " for (int i = 0; i < 37; i = i + 3) { s = s + i; } return s; }"
        )

    def test_le_condition(self):
        assert_equivalent(
            "int main() { int s = 0;"
            " for (int i = 1; i <= 10; i = i + 1) { s = s + i; } return s; }"
        )

    def test_decreasing_loop(self):
        assert_equivalent(
            "int t[8]; int main() { for (int i = 7; i > 0; i = i - 1)"
            " { t[i] = t[i - 1] + 1; } return t[7]; }"
        )

    def test_decreasing_ge(self):
        assert_equivalent(
            "int main() { int s = 0; for (int i = 10; i >= 0; i = i - 2)"
            " { s = s + i; } return s; }"
        )

    def test_dynamic_bound(self):
        assert_equivalent(
            "int n = 13; int main() { int s = 0;"
            " for (int i = 0; i < n; i = i + 1) { s = s + i; } return s; }"
        )

    def test_nested_loops_inner_unrolled(self):
        assert_equivalent(
            "int main() { int s = 0; for (int i = 0; i < 5; i = i + 1)"
            " { for (int j = 0; j < 7; j = j + 1) { s = s + i * j; } }"
            " return s; }"
        )

    def test_assign_init_form(self):
        assert_equivalent(
            "int main() { int s = 0; int i;"
            " for (i = 0; i < 9; i = i + 1) { s = s + i; } return s; }"
        )


class TestUnrollEligibility:
    def _count(self, src, **cfg):
        prog = parse(src)
        return unroll_program(prog, UnrollConfig(**cfg) if cfg else None)

    def test_simple_loop_unrolls(self):
        assert self._count(
            "int main() { int s = 0;"
            " for (int i = 0; i < 8; i = i + 1) { s = s + i; } return s; }"
        ) == 1

    def test_body_with_branch_not_unrolled(self):
        assert self._count(
            "int main() { int s = 0; for (int i = 0; i < 8; i = i + 1)"
            " { if (i) { s = s + 1; } } return s; }"
        ) == 0

    def test_body_writing_induction_var_not_unrolled(self):
        assert self._count(
            "int main() { int s = 0; for (int i = 0; i < 8; i = i + 1)"
            " { i = i + 1; s = s + 1; } return s; }"
        ) == 0

    def test_impure_bound_not_unrolled(self):
        assert self._count(
            "int f() { return 4; } int main() { int s = 0;"
            " for (int i = 0; i < f(); i = i + 1) { s = s + 1; } return s; }"
        ) == 0

    def test_bound_depending_on_var_not_unrolled(self):
        assert self._count(
            "int main() { int s = 0;"
            " for (int i = 0; i < i + 1; i = i + 1) { s = s + 1;"
            " if (s > 3) { } } return s; }"
        ) == 0

    def test_while_not_unrolled(self):
        assert self._count(
            "int main() { int i = 0; while (i < 8) { i = i + 1; } return i; }"
        ) == 0

    def test_adaptive_factor_shrinks(self):
        config = UnrollConfig(factor=8, target_stmts=16)
        assert config.factor_for(2) == 8
        assert config.factor_for(4) == 4
        assert config.factor_for(8) == 2
        assert config.factor_for(100) == 2

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            UnrollConfig(factor=1)


class TestIfConversion:
    def _count(self, src):
        prog = parse(src)
        return if_convert_program(prog)

    def test_simple_clamp_converts(self):
        assert self._count(
            "int main() { int x = 5; if (x > 3) { x = 3; } return x; }"
        ) >= 1

    def test_if_else_converts(self):
        assert self._count(
            "int main() { int x = 5; int y;"
            " if (x > 3) { y = 1; } else { y = 2; } return y; }"
        ) >= 1

    def test_semantics_preserved(self):
        assert_equivalent(
            """
            int main() {
              int s = 0;
              for (int i = -10; i < 10; i = i + 1) {
                int v = i * 3;
                if (v < 0) { v = -v; }
                if (v > 12) { v = 12; } else { v = v + 1; }
                s = s + v;
              }
              return s;
            }
            """
        )

    def test_branch_with_store_not_converted(self):
        assert self._count(
            "int t[4]; int main() { int x = 1;"
            " if (x) { t[0] = 5; } return t[0]; }"
        ) == 0

    def test_branch_with_load_not_converted(self):
        assert self._count(
            "int t[4]; int main() { int x = 1; int y = 0;"
            " if (x) { y = t[2]; } return y; }"
        ) == 0

    def test_branch_with_division_not_converted(self):
        assert self._count(
            "int main() { int x = 1; int y = 0;"
            " if (x) { y = 10 / x; } return y; }"
        ) == 0

    def test_branch_with_call_not_converted(self):
        assert self._count(
            "int f() { return 1; } int main() { int x = 1; int y = 0;"
            " if (x) { y = f(); } return y; }"
        ) == 0

    def test_double_assignment_not_converted(self):
        assert self._count(
            "int main() { int x = 1; int y = 0;"
            " if (x) { y = 1; y = 2; } return y; }"
        ) == 0

    def test_read_after_branch_assign_not_converted(self):
        assert self._count(
            "int main() { int x = 1; int a = 0; int b = 0;"
            " if (x) { a = 5; b = a; } return b; }"
        ) == 0

    def test_branch_local_declaration_hoisted(self):
        src = """
        int main() {
          int x = 7;
          int y = 0;
          if (x > 3) { int t = x * 2; y = t + 1; }
          return y;
        }
        """
        assert self._count(src) == 1
        assert_equivalent(src)

    def test_nested_diamonds_converge(self):
        src = """
        int main() {
          int v = 40000;
          if (v > 32767) { v = 32767; }
          else { if (v < -32768) { v = -32768; } }
          return v;
        }
        """
        prog = parse(src)
        assert if_convert_program(prog) == 2
        assert_equivalent(src)

    def test_max_statements_limit(self):
        src = (
            "int main() { int x = 1; int a; int b; int c;"
            " if (x) { a = 1; b = 2; c = 3; } return a + b + c; }"
        )
        prog = parse(src)
        assert if_convert_program(prog, IfConvertConfig(max_statements=2)) == 0

    def test_unconverted_code_unchanged_semantics(self):
        # A mix of convertible and non-convertible diamonds.
        assert_equivalent(
            """
            int t[8];
            int main() {
              int s = 0;
              for (int i = 0; i < 8; i = i + 1) {
                int v = i - 4;
                if (v < 0) { v = -v; }
                if (i % 2) { t[i] = v; }   /* store: not converted */
                s = s + v;
              }
              return s + t[3] + t[5];
            }
            """
        )
