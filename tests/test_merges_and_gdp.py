"""Tests for access-pattern merging and the GDP data partitioner."""

from repro.analysis import ObjectTable, ProgramGraph, annotate_memory_ops
from repro.lang import compile_source
from repro.machine import two_cluster_machine
from repro.partition import (
    GDPConfig,
    UnionFind,
    access_pattern_merge,
    build_group_graph,
    gdp_partition,
    memory_locks,
    slack_merge,
)
from repro.pipeline import PreparedProgram
from repro.schedule import DependenceGraph


def prepare(src):
    module = compile_source(src, "t")
    annotate_memory_ops(module)
    objects = ObjectTable(module)
    graph = ProgramGraph(module)
    return module, objects, graph


class TestUnionFind:
    def test_basic(self):
        uf = UnionFind()
        assert not uf.same("a", "b")
        uf.union("a", "b")
        assert uf.same("a", "b")

    def test_transitive(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        uf.union("d", "e")
        assert uf.same("a", "c")
        assert not uf.same("a", "d")

    def test_find_is_idempotent(self):
        uf = UnionFind()
        uf.union(1, 2)
        assert uf.find(1) == uf.find(uf.find(2))


class TestAccessPatternMerge:
    def test_distinct_objects_stay_apart(self):
        _, objects, graph = prepare(
            "int a[4]; int b[4]; int main() { a[0] = 1; return b[0]; }"
        )
        merge = access_pattern_merge(graph, objects)
        assert merge.group_of_object["g:a"] != merge.group_of_object["g:b"]

    def test_single_op_multiple_objects_merges_them(self):
        """Paper rule 1: one memory op reaching two objects merges them."""
        src = """
        int a = 1;
        int b = 2;
        int main() {
          int c = 1;
          int *p;
          if (c) { p = &a; } else { p = &b; }
          return *p;
        }
        """
        _, objects, graph = prepare(src)
        merge = access_pattern_merge(graph, objects)
        assert merge.group_of_object["g:a"] == merge.group_of_object["g:b"]

    def test_ops_on_same_object_merge(self):
        """Paper rule 2: multiple ops on one object merge together."""
        _, objects, graph = prepare(
            "int t[4]; int main() { t[0] = 1; t[1] = 2; return t[0]; }"
        )
        merge = access_pattern_merge(graph, objects)
        gid = merge.group_of_object["g:t"]
        assert len(merge.groups[gid].op_uids) >= 3

    def test_transitive_merging(self):
        """Heap object aliased with a global merges everything reachable."""
        src = """
        int value1;
        int main() {
          int c = 1;
          int *x = malloc(4);
          int *foo;
          if (c) { foo = x; } else { foo = &value1; }
          *x = 3;
          value1 = 4;
          return *foo;
        }
        """
        module, objects, graph = prepare(src)
        merge = access_pattern_merge(graph, objects)
        heap = next(o for o in objects.ids() if o.startswith("h:"))
        assert merge.group_of_object[heap] == merge.group_of_object["g:value1"]

    def test_object_groups_listed(self):
        _, objects, graph = prepare(
            "int a[4]; int b; int main() { a[0] = 1; return b; }"
        )
        merge = access_pattern_merge(graph, objects)
        object_gids = {g.gid for g in merge.object_groups()}
        assert len(object_gids) == 2

    def test_unaccessed_object_forms_own_group(self):
        _, objects, graph = prepare("int silent[64]; int main() { return 0; }")
        merge = access_pattern_merge(graph, objects)
        assert "g:silent" in merge.group_of_object

    def test_slack_merge_at_most_as_many_groups(self):
        src = "int t[8]; int main() { int s = 0;" \
              " for (int i = 0; i < 8; i = i + 1) { s = s + t[i]; }" \
              " return s; }"
        module, objects, graph = prepare(src)
        machine = two_cluster_machine()
        depgraphs = [
            DependenceGraph(b, machine.latency_of)
            for f in module
            for b in f
            if b.ops
        ]
        plain = access_pattern_merge(graph, objects)
        slack = slack_merge(graph, objects, depgraphs)
        assert slack.group_count() <= plain.group_count()


class TestGDP:
    SRC = """
    int a[64];
    int b[64];
    int c[64];
    int d[64];
    int main() {
      int s = 0;
      for (int i = 0; i < 64; i = i + 1) { a[i] = i; b[i] = a[i] * 2; }
      for (int i = 0; i < 64; i = i + 1) { c[i] = i; d[i] = c[i] * 3; }
      for (int i = 0; i < 64; i = i + 1) { s = s + b[i] + d[i]; }
      return s;
    }
    """

    def test_every_object_homed(self):
        module, objects, graph = prepare(self.SRC)
        dp = gdp_partition(module, objects, 2)
        assert set(dp.object_home) == set(objects.ids())
        assert set(dp.object_home.values()) <= {0, 1}

    def test_bytes_balanced(self):
        module, objects, graph = prepare(self.SRC)
        dp = gdp_partition(module, objects, 2, config=GDPConfig(size_imbalance=1.2))
        sizes = dp.cluster_bytes(objects)
        total = sum(sizes)
        assert max(sizes) <= 1.2 * total / 2 + 64  # one-object granularity slack

    def test_coupled_objects_colocated(self):
        """a-b and c-d are tightly coupled pairwise; the min-cut should
        keep each pair together."""
        module, objects, graph = prepare(self.SRC)
        dp = gdp_partition(module, objects, 2)
        assert dp.object_home["g:a"] == dp.object_home["g:b"]
        assert dp.object_home["g:c"] == dp.object_home["g:d"]
        assert dp.object_home["g:a"] != dp.object_home["g:c"]

    def test_merged_objects_share_cluster(self):
        src = """
        int a = 1;
        int b = 2;
        int main() {
          int c = 1;
          int *p;
          if (c) { p = &a; } else { p = &b; }
          return *p + a + b;
        }
        """
        module, objects, graph = prepare(src)
        dp = gdp_partition(module, objects, 2)
        assert dp.object_home["g:a"] == dp.object_home["g:b"]

    def test_group_graph_weights(self):
        module, objects, graph = prepare(self.SRC)
        merge = access_pattern_merge(graph, objects)
        pg = build_group_graph(graph, objects, merge, use_op_weight=False)
        total = pg.total_weight()[0]
        assert total == objects.total_size()

    def test_op_weight_dimension(self):
        module, objects, graph = prepare(self.SRC)
        merge = access_pattern_merge(graph, objects)
        pg = build_group_graph(graph, objects, merge, use_op_weight=True)
        assert pg.weight_dims == 2
        assert pg.total_weight()[1] == graph.node_count()

    def test_four_clusters(self):
        module, objects, graph = prepare(self.SRC)
        dp = gdp_partition(module, objects, 4)
        assert set(dp.object_home.values()) <= {0, 1, 2, 3}

    def test_deterministic(self):
        m1, o1, _ = prepare(self.SRC)
        m2, o2, _ = prepare(self.SRC)
        dp1 = gdp_partition(m1, o1, 2)
        dp2 = gdp_partition(m2, o2, 2)
        assert dp1.object_home == dp2.object_home


class TestMemoryLocks:
    def test_locks_follow_homes(self):
        module, objects, graph = prepare(
            "int a[4]; int b[4]; int main() { a[0] = 1; return b[0]; }"
        )
        locks = memory_locks(module, {"g:a": 0, "g:b": 1})
        mem_ops = [
            op for op in module.function("main").operations()
            if op.is_memory_access()
        ]
        for op in mem_ops:
            (obj,) = op.mem_objects()
            assert locks[op.uid] == (0 if obj == "g:a" else 1)

    def test_ambiguous_op_uses_most_accessed(self):
        src = """
        int a = 1;
        int b = 2;
        int main() {
          int c = 1;
          int *p;
          if (c) { p = &a; } else { p = &b; }
          return *p;
        }
        """
        module, objects, graph = prepare(src)
        ambiguous = [
            op
            for op in module.function("main").operations()
            if len(op.mem_objects()) == 2
        ]
        assert ambiguous
        locks = memory_locks(
            module, {"g:a": 0, "g:b": 1}, access_counts={"g:a": 10, "g:b": 99}
        )
        assert locks[ambiguous[0].uid] == 1

    def test_malloc_locked(self):
        module, objects, graph = prepare(
            "int main() { int *p = malloc(8); return p[0]; }"
        )
        heap = next(o for o in objects.ids() if o.startswith("h:"))
        locks = memory_locks(module, {heap: 1})
        from repro.ir import Opcode

        mallocs = [
            op for op in module.function("main").operations()
            if op.opcode is Opcode.MALLOC
        ]
        assert locks[mallocs[0].uid] == 1
