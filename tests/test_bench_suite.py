"""Benchmark-suite validity: every kernel compiles, runs, and is stable.

The golden outputs freeze each benchmark's ``print_int`` trace; a change
here means a benchmark's semantics changed and all measured figures move.
"""

import pytest

from repro.bench import all_benchmarks, dsp_kernels, get, mediabench, names
from repro.lang import compile_source
from repro.profiler import Interpreter

GOLDEN_OUTPUTS = {
    "cjpeg": [568, 510, 9127721],
    "djpeg": [4, 61937],
    "epic": [661, 202, 101978],
    "fft": [8, 1492],
    "fir": [16687909],
    "fsed": [733, 7716526],
    "g721dec": [541267],
    "g721enc": [430477, 3750],
    "gsmenc": [
        4416084, 3658847, 3650840, 3870757, 4147404, 4564360, 7531059,
    ],
    "huffman": [160, 14258457],
    "latnrm": [23218],
    "mpeg2dec": [784],
    "mpeg2enc": [84953],
    "pegwit": [
        16048326, 472685, 16216185, 15753426, 9997740, 7825966, 4180967,
        8996422, 12449412,
    ],
    "rawcaudio": [403105, 21137, 50],
    "rawdaudio": [1238067, 88],
    "sobel": [272, 466, 250, 71, 5, 0, 0, 0, 109350],
    "unepic": [256, 16713567],
    "viterbi": [392, 4206816],
}


@pytest.mark.parametrize("name", sorted(GOLDEN_OUTPUTS))
def test_golden_output(name):
    module = compile_source(get(name).source, name)
    interp = Interpreter(module)
    interp.run()
    assert interp.profile.output == GOLDEN_OUTPUTS[name]


def test_suite_size_matches_paper_scale():
    assert len(names()) >= 14


def test_categories_partition_suite():
    med = {b.name for b in mediabench()}
    dsp = {b.name for b in dsp_kernels()}
    assert med and dsp
    assert not (med & dsp)
    assert med | dsp == set(names())


def test_fig9_benchmarks_present():
    assert "rawcaudio" in names() and "rawdaudio" in names()


def test_get_unknown_raises():
    with pytest.raises(KeyError):
        get("not-a-benchmark")


@pytest.mark.parametrize("name", names())
def test_benchmark_compiles_plain(name):
    module = compile_source(get(name).source, name)
    assert module.op_count() > 50


@pytest.mark.parametrize("name", names())
def test_benchmark_has_partitionable_objects(name):
    """The paper kept only benchmarks "that [have] enough data objects
    where making a partitioning choice about the memory was important"."""
    module = compile_source(get(name).source, name)
    assert len(module.globals) >= 4


@pytest.mark.parametrize("name", names())
def test_benchmark_runs_and_is_deterministic(name):
    module = compile_source(get(name).source, name)
    i1 = Interpreter(module)
    r1 = i1.run()
    module2 = compile_source(get(name).source, name)
    i2 = Interpreter(module2)
    r2 = i2.run()
    assert r1 == r2
    assert i1.profile.output == i2.profile.output
    assert i1.profile.output, "benchmarks must print a checksum"


@pytest.mark.parametrize("name", names())
def test_transforms_preserve_benchmark_semantics(name):
    plain = compile_source(get(name).source, name)
    transformed = compile_source(
        get(name).source, name, unroll_factor=4, if_convert=True
    )
    a, b = Interpreter(plain), Interpreter(transformed)
    ra, rb = a.run(), b.run()
    assert ra == rb
    assert a.profile.output == b.profile.output
