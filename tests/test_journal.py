"""Durability: the crash-safe journal, recovery, drain, backpressure.

Covers the write-ahead log itself (checksums, torn tails, compaction,
fault injection), the broker's recovery/drain machinery built on it, the
admission-control 429 path end to end through the HTTP client's backoff,
and the client's fail-fast socket contracts.
"""

import json
import os
import socket
import threading

import pytest

from repro.exec import RunConfig
from repro.exec.engine import run_cell
from repro.resilience import InjectedFault
from repro.service import (
    CANCELLED,
    DONE,
    QUEUED,
    Broker,
    Journal,
    ServiceClient,
    ServiceError,
    ServiceServer,
)
from repro.service.journal import record_checksum

SOURCE = """
int N = 12;
int a[12];
int b[12];
int main() {
  int i;
  for (i = 0; i < N; i = i + 1) { a[i] = i * 3; }
  for (i = 0; i < N; i = i + 1) { b[i] = a[i] + a[(i + 1) % N]; }
  print_int(b[5]);
  return 0;
}
"""

OTHER_SOURCE = SOURCE.replace("i * 3", "i * 7")
THIRD_SOURCE = SOURCE.replace("i * 3", "i * 11")


def submit_record(journal, job="j000001", source=SOURCE, **over):
    fields = {
        "job": job, "key": f"key-{job}", "bench": "tiny", "source": source,
        "config": RunConfig().to_dict(), "tenant": "default", "priority": 0,
    }
    fields.update(over)
    return journal.append("submit", **fields)


def make_broker(tmp_path, **kwargs):
    kwargs.setdefault(
        "config", RunConfig(cache_dir=str(tmp_path / "cache"), jobs=1)
    )
    kwargs.setdefault("journal_dir", str(tmp_path / "journal"))
    return Broker(**kwargs)


def request(source=SOURCE, **over):
    body = {"source": source, "name": "tiny", "config": {}}
    body.update(over)
    return body


# -- the journal itself --------------------------------------------------------


class TestJournal:
    @pytest.mark.timeout(30)
    def test_roundtrip_replay(self, tmp_path):
        journal = Journal(str(tmp_path))
        submit_record(journal)
        journal.append("start", job="j000001", attempt=1)
        journal.append("finish", job="j000001", state=DONE,
                       error=None, summary={"cycles": 42})
        journal.close()

        state = Journal(str(tmp_path)).load()
        assert state.replayed == 3 and state.torn == 0
        job = state.jobs["j000001"]
        assert job["state"] == DONE
        assert job["summary"] == {"cycles": 42}
        assert state.live == []

    @pytest.mark.timeout(30)
    def test_fsync_policy_and_compact_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            Journal(str(tmp_path), fsync="sometimes")
        with pytest.raises(ValueError, match="compact_every"):
            Journal(str(tmp_path), compact_every=0)

    @pytest.mark.timeout(30)
    def test_tampered_record_truncates_from_there(self, tmp_path):
        journal = Journal(str(tmp_path))
        submit_record(journal, "j000001")
        submit_record(journal, "j000002")
        submit_record(journal, "j000003")
        journal.close()

        # Flip one byte inside the *second* record: it and everything
        # after it (framing is untrusted past a bad line) must go.
        lines = open(journal.journal_path, "rb").read().splitlines(True)
        broken = bytearray(lines[1])
        broken[len(broken) // 2] ^= 0xFF
        with open(journal.journal_path, "wb") as handle:
            handle.write(lines[0] + bytes(broken) + lines[2])

        state = Journal(str(tmp_path)).load()
        assert state.torn == 1
        assert list(state.jobs) == ["j000001"]
        # The truncation is physical: a second load sees a clean log.
        again = Journal(str(tmp_path)).load()
        assert again.torn == 0 and list(again.jobs) == ["j000001"]

    @pytest.mark.timeout(30)
    def test_torn_tail_half_record(self, tmp_path):
        journal = Journal(str(tmp_path))
        submit_record(journal, "j000001")
        journal.close()
        with open(journal.journal_path, "ab") as handle:
            handle.write(b'{"seq": 2, "kind": "sta')  # crash mid-write

        state = Journal(str(tmp_path)).load()
        assert state.torn == 1 and state.replayed == 1
        assert list(state.jobs) == ["j000001"]
        assert state.jobs["j000001"]["state"] == QUEUED

    @pytest.mark.timeout(30)
    def test_compaction_snapshot_plus_suffix(self, tmp_path):
        journal = Journal(str(tmp_path))
        submit_record(journal, "j000001")
        journal.append("finish", job="j000001", state=DONE,
                       error=None, summary=None)
        state = Journal(str(tmp_path), fsync="never").load()
        journal.compact(list(state.jobs.values()))
        assert os.path.getsize(journal.journal_path) == 0
        # Records after the snapshot keep climbing the same seq line.
        journal.append("cancel", job="j000001")
        journal.close()

        recovered = Journal(str(tmp_path)).load()
        assert recovered.from_snapshot
        assert recovered.jobs["j000001"]["state"] == CANCELLED
        assert recovered.last_seq == 3

    @pytest.mark.timeout(30)
    def test_corrupt_snapshot_falls_back_to_log(self, tmp_path):
        journal = Journal(str(tmp_path))
        submit_record(journal, "j000001")
        state = journal.load()
        journal.compact(list(state.jobs.values()))
        snapshot = json.load(open(journal.snapshot_path))
        snapshot["crc"] = "0" * 16
        json.dump(snapshot, open(journal.snapshot_path, "w"))
        submit_record(journal, "j000002")
        journal.close()

        recovered = Journal(str(tmp_path)).load()
        # Snapshot rejected (bad crc) -> only the log suffix survives.
        assert not recovered.from_snapshot
        assert list(recovered.jobs) == ["j000002"]

    @pytest.mark.timeout(30)
    def test_orphaned_and_unknown_records(self, tmp_path):
        journal = Journal(str(tmp_path))
        journal.append("start", job="jghost", attempt=1)
        submit_record(journal, "j000001")
        journal.append("hologram", job="j000001")  # future record kind
        journal.close()
        state = Journal(str(tmp_path)).load()
        assert state.orphaned == 1
        assert state.jobs["j000001"]["state"] == QUEUED

    @pytest.mark.timeout(30)
    def test_record_checksum_ignores_crc_field(self):
        record = {"seq": 1, "kind": "submit", "job": "j1"}
        crc = record_checksum(record)
        assert record_checksum(dict(record, crc=crc)) == crc
        assert record_checksum(dict(record, job="j2")) != crc

    @pytest.mark.timeout(30)
    def test_injected_journal_fault_raises(self, tmp_path):
        journal = Journal(str(tmp_path), faults="seed=1;raise:journal@2")
        submit_record(journal, "j000001")
        with pytest.raises(InjectedFault):
            submit_record(journal, "j000002")

    @pytest.mark.timeout(30)
    def test_injected_torn_write_is_recovered_from(self, tmp_path):
        journal = Journal(str(tmp_path), faults="seed=1;torn-write:journal@2")
        submit_record(journal, "j000001")
        submit_record(journal, "j000002")  # written, but cut in half
        journal.close()
        state = Journal(str(tmp_path)).load()
        assert state.torn == 1
        assert list(state.jobs) == ["j000001"]

    @pytest.mark.timeout(30)
    def test_stats_shape(self, tmp_path):
        journal = Journal(str(tmp_path), fsync="interval")
        submit_record(journal)
        stats = journal.stats()
        assert stats["enabled"] and stats["fsync"] == "interval"
        assert stats["appended"] == 1 and stats["log_bytes"] > 0


# -- broker recovery -----------------------------------------------------------


class TestRecovery:
    @pytest.mark.timeout(120)
    def test_queued_at_crash_requeues_and_completes(self, tmp_path):
        # start=False: the job is journaled + queued but never runs —
        # then the broker is abandoned without shutdown, like a kill -9.
        crashed = make_broker(tmp_path, start=False)
        job, created = crashed.submit(request())
        assert created
        crashed.journal.close()

        broker = make_broker(tmp_path)
        try:
            stats = broker.stats()
            assert stats["recovery"]["recovered"] == 1
            assert stats["recovery"]["requeued"] == 1
            revived = broker.get(job.id)
            assert revived.recovered
            revived.wait(timeout=60.0)
            assert revived.state == DONE
            assert revived.result_summary()["cycles"] > 0
        finally:
            broker.shutdown()

    @pytest.mark.timeout(120)
    def test_terminal_jobs_recovered_as_history(self, tmp_path):
        first = make_broker(tmp_path)
        job, _created = first.submit(request())
        job.wait(timeout=60.0)
        summary = job.result_summary()
        first.shutdown(drain=True)

        broker = make_broker(tmp_path, start=False)
        try:
            revived = broker.get(job.id)
            assert revived.state == DONE and revived.terminal
            # History answers without recompute: the summary rides the
            # journal, not the (absent) in-memory engine result.
            assert revived.result is None
            assert revived.result_summary() == summary
            assert broker.stats()["recovery"]["requeued"] == 0
        finally:
            broker.shutdown(wait=False)

    @pytest.mark.timeout(120)
    def test_recovery_is_warm_when_outcome_was_cached(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_cell({"bench": "tiny", "source": SOURCE,
                  "config": {"cache": "on", "cache_dir": cache_dir}})
        crashed = make_broker(tmp_path, start=False)
        job, _created = crashed.submit(request())
        crashed.journal.close()

        broker = make_broker(tmp_path)
        try:
            revived = broker.get(job.id)
            revived.wait(timeout=60.0)
            assert revived.state == DONE
            assert revived.warm  # the rerun was served from the cache
            assert revived.result["cache"]["outcome"] == "hit"
        finally:
            broker.shutdown()

    @pytest.mark.timeout(120)
    def test_cancelled_job_stays_cancelled(self, tmp_path):
        crashed = make_broker(tmp_path, start=False)
        job, _created = crashed.submit(request())
        crashed.cancel(job.id)
        crashed.journal.close()

        broker = make_broker(tmp_path, start=False)
        try:
            assert broker.get(job.id).state == CANCELLED
            assert broker.stats()["recovery"]["requeued"] == 0
        finally:
            broker.shutdown(wait=False)

    @pytest.mark.timeout(120)
    def test_coalesce_count_survives_the_crash(self, tmp_path):
        crashed = make_broker(tmp_path, start=False)
        job, _created = crashed.submit(request())
        dup, created = crashed.submit(request(tenant="other"))
        assert dup is job and not created
        crashed.journal.close()

        broker = make_broker(tmp_path, start=False)
        try:
            assert broker.get(job.id).coalesced == 1
        finally:
            broker.shutdown(wait=False)

    @pytest.mark.timeout(120)
    def test_torn_tail_end_to_end(self, tmp_path):
        crashed = make_broker(tmp_path, start=False)
        job1, _ = crashed.submit(request())
        job2, _ = crashed.submit(request(source=OTHER_SOURCE))
        crashed.journal.close()
        with open(crashed.journal.journal_path, "ab") as handle:
            handle.write(b'{"seq": 99, "kind": "fin')

        broker = make_broker(tmp_path, start=False)
        try:
            assert broker.journal.torn_at_load == 1
            assert {job1.id, job2.id} <= {j.id for j in broker.jobs()}
            assert broker.stats()["recovery"]["requeued"] == 2
        finally:
            broker.shutdown(wait=False)

    @pytest.mark.timeout(120)
    def test_new_submissions_do_not_reuse_recovered_ids(self, tmp_path):
        crashed = make_broker(tmp_path, start=False)
        job, _created = crashed.submit(request())
        crashed.journal.close()

        broker = make_broker(tmp_path, start=False)
        try:
            fresh, created = broker.submit(request(source=OTHER_SOURCE))
            assert created and fresh.id != job.id
        finally:
            broker.shutdown(wait=False)


# -- graceful drain ------------------------------------------------------------


class TestDrain:
    @pytest.mark.timeout(120)
    def test_drain_finishes_admitted_work(self, tmp_path):
        broker = make_broker(tmp_path, workers=1)
        job, _created = broker.submit(request())
        broker.shutdown(drain=True, timeout=60.0)
        assert job.state == DONE
        assert broker.stats()["recovery"]["parked"] == 0

    @pytest.mark.timeout(120)
    def test_drain_parks_what_it_cannot_finish(self, tmp_path):
        broker = make_broker(tmp_path, start=False)
        job, _created = broker.submit(request())
        broker.shutdown(drain=True, timeout=0.2)
        assert broker.stats()["recovery"]["parked"] == 1
        assert job.events[-1]["kind"] == "parked"

        # The park record hands the job to the next boot.
        revived = make_broker(tmp_path)
        try:
            recovered = revived.get(job.id)
            recovered.wait(timeout=60.0)
            assert recovered.state == DONE
        finally:
            revived.shutdown()

    @pytest.mark.timeout(120)
    def test_admission_refused_while_draining(self, tmp_path):
        broker = make_broker(tmp_path, start=False)
        broker._stopping = True
        with pytest.raises(ServiceError) as excinfo:
            broker.submit(request())
        assert excinfo.value.status == 503
        broker.shutdown(wait=False)


# -- admission control (backpressure) ------------------------------------------


class TestBackpressure:
    @pytest.mark.timeout(120)
    def test_depth_bound_yields_429_with_retry_after(self, tmp_path):
        broker = make_broker(tmp_path, start=False, journal_dir=None,
                             max_depth=1, retry_after=2.5)
        try:
            broker.submit(request())
            with pytest.raises(ServiceError) as excinfo:
                broker.submit(request(source=OTHER_SOURCE))
            err = excinfo.value
            assert err.status == 429 and err.code == "overloaded"
            assert err.retry_after == 2.5
            assert "retry_after" in err.to_dict()["error"]
            assert broker.stats()["admission"]["rejected_depth"] == 1
        finally:
            broker.shutdown(wait=False)

    @pytest.mark.timeout(120)
    def test_coalescing_bypasses_the_depth_bound(self, tmp_path):
        broker = make_broker(tmp_path, start=False, journal_dir=None,
                             max_depth=1)
        try:
            job, _created = broker.submit(request())
            dup, created = broker.submit(request(tenant="other"))
            assert dup is job and not created  # no 429: zero added work
        finally:
            broker.shutdown(wait=False)

    @pytest.mark.timeout(120)
    def test_tenant_bound_yields_429_for_that_tenant_only(self, tmp_path):
        broker = make_broker(tmp_path, start=False, journal_dir=None,
                             tenant_pending=1)
        try:
            broker.submit(request(tenant="a"))
            with pytest.raises(ServiceError) as excinfo:
                broker.submit(request(source=OTHER_SOURCE, tenant="a"))
            assert excinfo.value.code == "tenant_overloaded"
            # Another tenant is not collateral damage.
            job, created = broker.submit(
                request(source=OTHER_SOURCE, tenant="b")
            )
            assert created and job.tenant == "b"
            assert broker.stats()["admission"]["rejected_tenant"] == 1
        finally:
            broker.shutdown(wait=False)

    @pytest.mark.timeout(120)
    def test_tenant_slot_released_at_terminal(self, tmp_path):
        broker = make_broker(tmp_path, start=False, journal_dir=None,
                             tenant_pending=1)
        try:
            job, _created = broker.submit(request(tenant="a"))
            broker.cancel(job.id)
            # The cancel released the slot: the same tenant fits again.
            job2, created = broker.submit(
                request(source=OTHER_SOURCE, tenant="a")
            )
            assert created and job2.tenant == "a"
        finally:
            broker.shutdown(wait=False)

    @pytest.mark.timeout(120)
    def test_http_429_retry_after_header_and_client_backoff(self, tmp_path):
        server = ServiceServer(
            broker=make_broker(tmp_path, journal_dir=None, workers=1,
                               max_depth=1),
            port=0,
        ).start()
        try:
            client = ServiceClient(server.url, timeout=30.0,
                                   retry_budget=60.0, backoff_base=0.01)
            replies = [
                client.submit(source=src, name="tiny")
                for src in (SOURCE, OTHER_SOURCE, THIRD_SOURCE)
            ]
            finals = [client.wait(r["id"], timeout=60.0) for r in replies]
            assert all(f["state"] in ("done", "degraded") for f in finals)
            # The bound actually pushed back, and backoff absorbed it.
            stats = client.stats()
            assert stats["admission"]["rejected_depth"] >= 1
            assert client.retries >= 1
        finally:
            server.stop()

    @pytest.mark.timeout(120)
    def test_client_raises_when_retry_budget_exhausted(self, tmp_path):
        # start=False: the queue never drains, so the 429 never clears.
        server = ServiceServer(
            broker=make_broker(tmp_path, journal_dir=None, start=False,
                               max_depth=1, retry_after=0.05),
            port=0,
        ).start()
        try:
            client = ServiceClient(server.url, timeout=30.0,
                                   retry_budget=0.2, backoff_base=0.01)
            client.submit(source=SOURCE, name="tiny")
            with pytest.raises(ServiceError) as excinfo:
                client.submit(source=OTHER_SOURCE, name="tiny")
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert client.retries >= 1
        finally:
            server.stop()


# -- client fail-fast contracts ------------------------------------------------


class TestClientTimeouts:
    @pytest.mark.timeout(30)
    def test_timeout_must_be_finite_and_positive(self):
        with pytest.raises(ValueError):
            ServiceClient("http://127.0.0.1:1", timeout=None)
        with pytest.raises(ValueError):
            ServiceClient("http://127.0.0.1:1", timeout=0)
        with pytest.raises(ValueError):
            ServiceClient("http://127.0.0.1:1", poll_cap=0)

    @pytest.mark.timeout(30)
    def test_hung_server_surfaces_within_the_socket_timeout(self):
        # A listener that accepts and then says nothing: urllib would
        # block forever without the client's socket timeout.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        conns = []
        accepter = threading.Thread(
            target=lambda: conns.append(listener.accept()), daemon=True
        )
        accepter.start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}", timeout=0.3)
            with pytest.raises(OSError):  # urllib wraps socket.timeout
                client.healthz()
        finally:
            listener.close()
            for conn, _addr in conns:
                conn.close()

    @pytest.mark.timeout(120)
    def test_wait_long_poll_is_chunked_by_poll_cap(self, tmp_path):
        server = ServiceServer(
            broker=make_broker(tmp_path, journal_dir=None, start=False),
            port=0,
        ).start()
        try:
            client = ServiceClient(server.url, timeout=5.0, poll_cap=0.1)
            reply = client.submit(source=SOURCE, name="tiny")
            # Never-running job: wait() must time out via short legs
            # rather than hang for the whole window in one request.
            with pytest.raises(TimeoutError):
                client.wait(reply["id"], timeout=0.5)
        finally:
            server.stop()
