"""Unit tests for MiniC semantic analysis."""

import pytest

from repro.ir.types import FLOAT, INT, PointerType
from repro.lang.errors import TypeCheckError
from repro.lang.parser import parse
from repro.lang.sema import check


def check_src(src):
    return check(parse(src))


def expect_error(src, pattern):
    with pytest.raises(TypeCheckError, match=pattern):
        check_src(src)


class TestDeclarations:
    def test_duplicate_global(self):
        expect_error("int x; int x;", "duplicate global")

    def test_duplicate_function(self):
        expect_error("int f() { return 0; } int f() { return 1; }",
                     "duplicate function")

    def test_duplicate_struct(self):
        expect_error("struct P { int x; }; struct P { int y; };",
                     "duplicate struct")

    def test_unknown_struct(self):
        expect_error("struct Q g;", "unknown struct")

    def test_void_global(self):
        expect_error("void x;", "void")

    def test_local_redeclaration(self):
        expect_error("int main() { int a; int a; return 0; }", "redeclaration")

    def test_shadowing_in_nested_scope_ok(self):
        check_src("int main() { int a; { int a; } return 0; }")

    def test_local_aggregate_rejected(self):
        expect_error(
            "struct P { int x; }; int main() { struct P p; return 0; }",
            "locals must be",
        )

    def test_intrinsic_name_collision(self):
        expect_error("void print_int(int x) { }", "duplicate function")

    def test_aggregate_param_rejected(self):
        expect_error(
            "struct P { int x; }; int f(struct P p) { return 0; }",
            "scalar or pointer",
        )


class TestGlobalInitializers:
    def test_too_many_initializers(self):
        expect_error("int t[2] = {1, 2, 3};", "too many initializers")

    def test_list_on_scalar(self):
        expect_error("int x = {1};", "initializer list")

    def test_scalar_on_array(self):
        expect_error("int t[2] = 5;", "scalar initializer")

    def test_short_list_ok(self):
        check_src("int t[8] = {1, 2};")


class TestExpressionTyping:
    def test_arithmetic_promotion(self):
        chk = check_src("float g; int main() { g = 1 + 2.5; return 0; }")
        assert chk is not None

    def test_undefined_variable(self):
        expect_error("int main() { return missing; }", "undefined variable")

    def test_modulo_requires_int(self):
        expect_error("int main() { float f; return 1 % f; }", "requires int")

    def test_shift_requires_int(self):
        expect_error("int main() { return 1 << 2.0; }", "requires int")

    def test_pointer_plus_int_ok(self):
        check_src("int main() { int *p = malloc(8); p = p + 1; return 0; }")

    def test_pointer_plus_pointer_rejected(self):
        expect_error(
            "int main() { int *p = malloc(8); int *q = malloc(8); "
            "p = p + q; return 0; }",
            "pointer",
        )

    def test_pointer_times_int_rejected(self):
        expect_error(
            "int main() { int *p = malloc(8); p = p * 2; return 0; }",
            "pointer",
        )

    def test_compare_pointers_ok(self):
        check_src(
            "int main() { int *p = malloc(4); int *q = malloc(4); "
            "return p == q; }"
        )

    def test_deref_non_pointer(self):
        expect_error("int main() { int x; return *x; }", "dereference")

    def test_bitnot_requires_int(self):
        expect_error("int main() { return ~1.5; }", "int operand")


class TestLvaluesAndAddressOf(object):
    def test_assign_to_rvalue(self):
        expect_error("int main() { 1 = 2; return 0; }", "not an lvalue")

    def test_assign_to_global_array_name(self):
        expect_error("int t[4]; int main() { t = 0; return 0; }",
                     "cannot assign|not an lvalue")

    def test_addressof_local_rejected(self):
        expect_error(
            "int main() { int x; int *p = &x; return 0; }", "memory lvalue"
        )

    def test_addressof_global_ok(self):
        check_src("int g; int main() { int *p = &g; return *p; }")

    def test_addressof_element_ok(self):
        check_src("int t[4]; int main() { int *p = &t[2]; return *p; }")

    def test_addressof_field_ok(self):
        check_src(
            "struct P { int x; }; struct P g;"
            "int main() { int *p = &g.x; return *p; }"
        )


class TestIndexingAndFields:
    def test_index_requires_int(self):
        expect_error("int t[4]; int main() { return t[1.5]; }", "int")

    def test_index_non_indexable(self):
        expect_error("int main() { int x; return x[0]; }", "cannot index")

    def test_dot_on_non_struct(self):
        expect_error("int main() { int x; return x.f; }", "struct")

    def test_arrow_on_non_pointer(self):
        expect_error(
            "struct P { int x; }; struct P g; int main() { return g->x; }",
            "pointer to struct",
        )

    def test_unknown_field(self):
        expect_error(
            "struct P { int x; }; struct P g; int main() { return g.y; }",
            "no field",
        )

    def test_struct_pointer_field_chain(self):
        check_src(
            "struct P { int x; }; struct P g;"
            "int main() { struct P *p = &g; return p->x; }"
        )


class TestCalls:
    def test_undefined_function(self):
        expect_error("int main() { return nope(); }", "undefined function")

    def test_wrong_arity(self):
        expect_error(
            "int f(int a) { return a; } int main() { return f(); }",
            "expects 1 args",
        )

    def test_arg_type_mismatch(self):
        expect_error(
            "int f(int *p) { return 0; } int main() { return f(3); }",
            "cannot assign",
        )

    def test_intrinsics(self):
        check_src("int main() { print_int(1); print_float(2.5); return 0; }")

    def test_implicit_arg_conversion(self):
        check_src("int f(float x) { return 0; } int main() { return f(3); }")


class TestControlFlow:
    def test_break_outside_loop(self):
        expect_error("int main() { break; return 0; }", "outside of a loop")

    def test_continue_outside_loop(self):
        expect_error("int main() { continue; return 0; }", "outside of a loop")

    def test_return_value_from_void(self):
        expect_error("void f() { return 1; }", "void function returns")

    def test_missing_return_value(self):
        expect_error("int f() { return; }", "missing return value")

    def test_condition_must_be_scalar(self):
        expect_error(
            "struct P { int x; }; struct P g; int main() "
            "{ if (g) { } return 0; }",
            "non-scalar",
        )


class TestMallocAndSizeof:
    def test_malloc_size_must_be_int(self):
        expect_error("int main() { int *p = malloc(1.5); return 0; }",
                     "must be an int")

    def test_malloc_adopts_context_type(self):
        prog = parse("int main() { float *p = malloc(16); return 0; }")
        check(prog)
        decl = prog.functions[0].body.stmts[0]
        assert decl.init.ty == PointerType(FLOAT)

    def test_malloc_sites_unique(self):
        prog = parse(
            "int main() { int *a = malloc(4); int *b = malloc(4); return 0; }"
        )
        check(prog)
        sites = [s.init.site for s in prog.functions[0].body.stmts[:2]]
        assert len(set(sites)) == 2

    def test_sizeof_folds(self):
        prog = parse("int main() { return sizeof(float); }")
        check(prog)
        assert prog.functions[0].body.stmts[0].value.value == 8

    def test_sizeof_struct(self):
        prog = parse(
            "struct P { int x; float y; }; int main() { return sizeof(struct P); }"
        )
        check(prog)
        assert prog.functions[0].body.stmts[0].value.value == 16


class TestCasts:
    def test_int_float_casts(self):
        check_src("int main() { float f = 1.5; return (int)f + (int)2.5; }")

    def test_pointer_cast_ok(self):
        check_src(
            "int main() { int *p = malloc(8); float *q = (float*)p; return 0; }"
        )

    def test_int_to_pointer_rejected(self):
        expect_error("int main() { int *p = (int*)4; return 0; }",
                     "cannot cast")

    def test_pointer_to_int_rejected(self):
        expect_error(
            "int main() { int *p = malloc(4); return (int)p; }", "cannot cast"
        )


class TestTernary:
    def test_arm_promotion(self):
        check_src("int main() { float f = 1 ? 1 : 2.5; return 0; }")

    def test_incompatible_arms(self):
        expect_error(
            "int main() { int *p = malloc(4); return 1 ? 1 : p; }",
            "ternary arms|cannot",
        )
