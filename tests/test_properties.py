"""Property-based tests (hypothesis) on core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis.affine import Affine
from repro.ir import Constant, Function, IRBuilder, Opcode, Operation
from repro.ir.types import INT
from repro.lang import compile_source
from repro.machine import two_cluster_machine
from repro.partition import (
    MultilevelPartitioner,
    PartitionGraph,
    UnionFind,
    partition_balance,
)
from repro.profiler import Interpreter
from repro.profiler.memory import _wrap32
from repro.schedule import DependenceGraph, ListScheduler

ints32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
small_ints = st.integers(min_value=-1000, max_value=1000)


def run_expr(expr_src: str):
    module = compile_source(f"int main() {{ return {expr_src}; }}", "p")
    return Interpreter(module).run()


class TestInterpreterArithmeticProperties:
    @given(a=ints32, b=ints32)
    @settings(max_examples=60, deadline=None)
    def test_add_matches_c_semantics(self, a, b):
        assert run_expr(f"({a}) + ({b})") == _wrap32(a + b)

    @given(a=ints32, b=ints32)
    @settings(max_examples=60, deadline=None)
    def test_sub_and_mul(self, a, b):
        assert run_expr(f"({a}) - ({b})") == _wrap32(a - b)
        assert run_expr(f"({a}) * ({b})") == _wrap32(a * b)

    @given(a=ints32, b=ints32.filter(lambda x: x != 0))
    @settings(max_examples=60, deadline=None)
    def test_division_identity(self, a, b):
        q = run_expr(f"({a}) / ({b})")
        r = run_expr(f"({a}) % ({b})")
        assert _wrap32(q * b + r) == _wrap32(a)
        if a != -(2**31) or b != -1:  # the one overflow case
            assert abs(r) < abs(b)

    @given(a=ints32, s=st.integers(min_value=0, max_value=31))
    @settings(max_examples=60, deadline=None)
    def test_shift_right_arithmetic(self, a, s):
        assert run_expr(f"({a}) >> {s}") == (a >> s)

    @given(a=ints32, b=ints32)
    @settings(max_examples=40, deadline=None)
    def test_bitwise_involution(self, a, b):
        assert run_expr(f"(({a}) ^ ({b})) ^ ({b})") == a

    @given(a=ints32)
    @settings(max_examples=40, deadline=None)
    def test_double_negation(self, a):
        if a != -(2**31):
            assert run_expr(f"-(-({a}))") == a


class TestWrap32Properties:
    @given(v=st.integers(min_value=-(2**40), max_value=2**40))
    @settings(max_examples=100, deadline=None)
    def test_range(self, v):
        w = _wrap32(v)
        assert -(2**31) <= w < 2**31

    @given(v=st.integers(min_value=-(2**31), max_value=2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_identity_in_range(self, v):
        assert _wrap32(v) == v

    @given(v=st.integers(min_value=-(2**40), max_value=2**40))
    @settings(max_examples=100, deadline=None)
    def test_congruent_mod_2_32(self, v):
        assert (_wrap32(v) - v) % (2**32) == 0


class TestUnionFindProperties:
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=60
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_union_find_equivalence(self, pairs):
        uf = UnionFind()
        # Reference: naive equivalence classes.
        parent = {i: i for i in range(31)}

        def find_ref(x):
            while parent[x] != x:
                x = parent[x]
            return x

        for a, b in pairs:
            uf.union(a, b)
            parent[find_ref(a)] = find_ref(b)
        for a in range(31):
            for b in range(0, 31, 7):
                assert uf.same(a, b) == (find_ref(a) == find_ref(b))


class TestAffineProperties:
    atoms = st.sampled_from(["x", "y", "z"])

    @st.composite
    def affine_expr(draw):
        """A random affine form plus its evaluator."""
        n_terms = draw(st.integers(0, 3))
        terms = {}
        for _ in range(n_terms):
            a = draw(TestAffineProperties.atoms)
            c = draw(st.integers(-5, 5))
            terms[a] = terms.get(a, 0) + c
        const = draw(st.integers(-100, 100))
        return Affine(terms, const)

    @given(a=affine_expr(), b=affine_expr(), env_seed=st.integers(0, 1000))
    @settings(max_examples=80, deadline=None)
    def test_add_evaluates_correctly(self, a, b, env_seed):
        rng = random.Random(env_seed)
        env = {k: rng.randint(-50, 50) for k in ("x", "y", "z")}

        def evaluate(f):
            return sum(c * env[t] for t, c in f.terms.items()) + f.const

        assert evaluate(a.add(b)) == evaluate(a) + evaluate(b)
        assert evaluate(a.negate()) == -evaluate(a)
        assert evaluate(a.scale(3)) == 3 * evaluate(a)

    @given(a=affine_expr(), b=affine_expr(), env_seed=st.integers(0, 1000))
    @settings(max_examples=80, deadline=None)
    def test_same_symbolic_implies_constant_distance(self, a, b, env_seed):
        if a.same_symbolic(b):
            rng = random.Random(env_seed)
            env = {k: rng.randint(-50, 50) for k in ("x", "y", "z")}

            def evaluate(f):
                return sum(c * env[t] for t, c in f.terms.items()) + f.const

            assert evaluate(a) - evaluate(b) == a.const - b.const


class TestSchedulerProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_dag_schedule_valid(self, seed):
        """Random straight-line code: the schedule must respect both
        dependences and per-cluster resource limits."""
        rng = random.Random(seed)
        func = Function("f", [], INT)
        b = IRBuilder(func)
        entry = b.new_block("entry")
        b.set_block(entry)
        values = [b.mov(Constant(1, INT))]
        for _ in range(rng.randint(3, 25)):
            lhs = rng.choice(values)
            rhs = rng.choice(values + [Constant(rng.randint(0, 9), INT)])
            op = rng.choice(["add", "mul", "sub"])
            values.append(getattr(b, op)(lhs, rhs))
        b.ret(values[-1])

        machine = two_cluster_machine(move_latency=1)
        cluster_of = {
            op.uid: rng.randint(0, 1) for op in entry.ops
        }
        graph = DependenceGraph(entry, machine.latency_of)
        sched = ListScheduler(machine).schedule_block(entry, cluster_of, graph)

        # Dependences respected.
        for edge in graph.edges:
            assert (
                sched.issue_cycle[edge.dst]
                >= sched.issue_cycle[edge.src] + edge.delay
            )
        # Resource limits respected (2 INT units per cluster).
        per_slot = {}
        for op in entry.ops:
            cls = machine.fu_class_of(op)
            if cls is None:
                continue
            key = (sched.issue_cycle[op.uid], cluster_of[op.uid], cls)
            per_slot[key] = per_slot.get(key, 0) + 1
            assert per_slot[key] <= machine.units(cluster_of[op.uid], cls)


class TestPartitionerProperties:
    @given(seed=st.integers(0, 10_000), n=st.integers(4, 40))
    @settings(max_examples=30, deadline=None)
    def test_random_graph_partition_valid(self, seed, n):
        rng = random.Random(seed)
        g = PartitionGraph(1)
        for i in range(n):
            g.add_node(i, (float(rng.randint(1, 20)),))
        for _ in range(n * 2):
            a, b2 = rng.randint(0, n - 1), rng.randint(0, n - 1)
            if a != b2:
                g.add_edge(a, b2, rng.randint(1, 10))
        assignment = MultilevelPartitioner(k=2, imbalance=(1.3,)).partition(g)
        assert set(assignment) == set(range(n))
        assert set(assignment.values()) <= {0, 1}
        # Balance: within tolerance OR limited by single-node granularity.
        loads = partition_balance(g, assignment, 2)
        total = sum(w[0] for w in g.weights.values())
        heaviest = max(w[0] for w in g.weights.values())
        assert max(loads[0][0], loads[1][0]) <= max(1.3 * total / 2, heaviest)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_fixed_nodes_always_respected(self, seed):
        rng = random.Random(seed)
        g = PartitionGraph(1)
        n = 20
        for i in range(n):
            g.add_node(i, (1.0,))
        for _ in range(30):
            a, b2 = rng.randint(0, n - 1), rng.randint(0, n - 1)
            if a != b2:
                g.add_edge(a, b2)
        fixed = {i: rng.randint(0, 1) for i in rng.sample(range(n), 5)}
        for node, cluster in fixed.items():
            g.fix(node, cluster)
        assignment = MultilevelPartitioner(k=2).partition(g)
        for node, cluster in fixed.items():
            assert assignment[node] == cluster


class TestUnrollProperty:
    @given(
        bound=st.integers(0, 30),
        stride=st.integers(1, 4),
        factor=st.sampled_from([2, 4]),
        start=st.integers(-3, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_unrolled_loop_sums_match(self, bound, stride, factor, start):
        src = (
            f"int main() {{ int s = 0;"
            f" for (int i = {start}; i < {bound}; i = i + {stride})"
            f" {{ s = s + i * 2 + 1; }} return s; }}"
        )
        plain = Interpreter(compile_source(src, "a")).run()
        unrolled = Interpreter(
            compile_source(src, "b", unroll_factor=factor)
        ).run()
        assert plain == unrolled
