"""Execution-semantics tests: MiniC -> IR -> interpreter.

Each snippet is compiled and run; results and printed output are compared
against the C semantics computed by hand (or by Python reference code).
"""

import pytest

from repro.ir import Opcode, verify_module
from repro.lang import compile_source
from repro.profiler import Interpreter, InterpreterError, StepLimitExceeded


def run(src, max_steps=5_000_000):
    module = compile_source(src, "t")
    interp = Interpreter(module, max_steps=max_steps)
    result = interp.run()
    return result, interp


def result_of(src):
    return run(src)[0]


class TestArithmetic:
    def test_basic_ops(self):
        assert result_of("int main() { return 7 + 3 * 4 - 6 / 2; }") == 16

    def test_division_truncates_toward_zero(self):
        assert result_of("int main() { return -7 / 2; }") == -3
        assert result_of("int main() { return 7 / -2; }") == -3

    def test_remainder_sign(self):
        assert result_of("int main() { return -7 % 2; }") == -1
        assert result_of("int main() { return 7 % -2; }") == 1

    def test_wraparound_32bit(self):
        assert (
            result_of("int main() { return 2147483647 + 1; }") == -2147483648
        )

    def test_mul_wraps(self):
        assert result_of(
            "int main() { return 1103515245 * 1103515245; }"
        ) == (1103515245 * 1103515245 & 0xFFFFFFFF) - 2**32 * (
            ((1103515245 * 1103515245) & 0xFFFFFFFF) >= 2**31
        )

    def test_bitwise(self):
        assert result_of("int main() { return (12 & 10) | (1 ^ 3); }") == 10
        assert result_of("int main() { return ~0; }") == -1

    def test_shifts(self):
        assert result_of("int main() { return 1 << 10; }") == 1024
        assert result_of("int main() { return -16 >> 2; }") == -4  # arithmetic

    def test_unary_minus_and_not(self):
        assert result_of("int main() { return -(3) + !0 + !7; }") == -2

    def test_comparisons(self):
        assert result_of(
            "int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3)"
            " + (1 == 1) + (1 != 1); }"
        ) == 4

    def test_division_by_zero(self):
        with pytest.raises(InterpreterError, match="division by zero"):
            run("int main() { int z = 0; return 1 / z; }")

    def test_remainder_by_zero(self):
        with pytest.raises(InterpreterError, match="remainder by zero"):
            run("int main() { int z = 0; return 1 % z; }")


class TestFloats:
    def test_float_arithmetic(self):
        r, interp = run(
            "int main() { float f = 1.5 * 4.0 - 1.0; print_float(f); return 0; }"
        )
        assert interp.profile.output == [5.0]

    def test_int_float_conversion(self):
        assert result_of("int main() { float f = 7; return (int)(f / 2.0); }") == 3

    def test_ftoi_truncates(self):
        assert result_of("int main() { float f = 2.9; return (int)f; }") == 2
        assert result_of("int main() { float f = -2.9; return (int)f; }") == -2

    def test_float_compare(self):
        assert result_of(
            "int main() { float a = 1.5; float b = 2.5; return a < b; }"
        ) == 1

    def test_mixed_arith_promotes(self):
        r, interp = run(
            "int main() { print_float(1 + 0.5); return 0; }"
        )
        assert interp.profile.output == [1.5]

    def test_float_condition(self):
        assert result_of(
            "int main() { float f = 0.5; if (f) { return 1; } return 0; }"
        ) == 1


class TestControlFlow:
    def test_if_else_chain(self):
        src = """
        int classify(int x) {
          if (x < 0) { return -1; }
          else if (x == 0) { return 0; }
          else { return 1; }
        }
        int main() { return classify(-5) * 100 + classify(0) * 10 + classify(9); }
        """
        assert result_of(src) == -99  # -1*100 + 0*10 + 1

    def test_while_loop(self):
        assert result_of(
            "int main() { int s = 0; int i = 0;"
            " while (i < 5) { s = s + i; i = i + 1; } return s; }"
        ) == 10

    def test_do_while_runs_once(self):
        assert result_of(
            "int main() { int n = 0; do { n = n + 1; } while (0); return n; }"
        ) == 1

    def test_for_loop(self):
        assert result_of(
            "int main() { int s = 0;"
            " for (int i = 1; i <= 10; i = i + 1) { s = s + i; } return s; }"
        ) == 55

    def test_break(self):
        assert result_of(
            "int main() { int i; for (i = 0; i < 100; i = i + 1)"
            " { if (i == 7) { break; } } return i; }"
        ) == 7

    def test_continue(self):
        assert result_of(
            "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1)"
            " { if (i % 2) { continue; } s = s + i; } return s; }"
        ) == 20

    def test_nested_loops(self):
        assert result_of(
            "int main() { int s = 0; for (int i = 0; i < 3; i = i + 1)"
            " { for (int j = 0; j < 3; j = j + 1) { s = s + i * j; } }"
            " return s; }"
        ) == 9

    def test_short_circuit_and(self):
        src = """
        int g = 0;
        int bump() { g = g + 1; return 1; }
        int main() { int r = 0 && bump(); return g * 10 + r; }
        """
        assert result_of(src) == 0  # bump never called

    def test_short_circuit_or(self):
        src = """
        int g = 0;
        int bump() { g = g + 1; return 0; }
        int main() { int r = 1 || bump(); return g * 10 + r; }
        """
        assert result_of(src) == 1

    def test_ternary(self):
        assert result_of("int main() { int x = 3; return x > 2 ? 10 : 20; }") == 10

    def test_ternary_with_side_effect_arms_lowered_correctly(self):
        src = """
        int g = 0;
        int inc() { g = g + 1; return g; }
        int main() { int r = 1 ? inc() : inc(); return g * 10 + r; }
        """
        assert result_of(src) == 11  # only one arm evaluated

    def test_dead_code_after_return(self):
        assert result_of("int main() { return 1; return 2; }") == 1


class TestFunctions:
    def test_recursion(self):
        src = """
        int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        int main() { return fact(6); }
        """
        assert result_of(src) == 720

    def test_mutual_recursion(self):
        src = """
        int is_odd(int n);
        int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
        int main() { return is_even(10) * 10 + is_odd(10); }
        """
        # Forward declarations are not in MiniC; restructure without them.
        src = """
        int helper(int n, int parity) {
          if (n == 0) { return parity; }
          return helper(n - 1, 1 - parity);
        }
        int main() { return helper(10, 1); }
        """
        assert result_of(src) == 1

    def test_void_function(self):
        src = """
        int g;
        void set(int v) { g = v; }
        int main() { set(42); return g; }
        """
        assert result_of(src) == 42

    def test_args_by_value(self):
        src = """
        int twice(int x) { x = x * 2; return x; }
        int main() { int a = 5; int b = twice(a); return a * 100 + b; }
        """
        assert result_of(src) == 510


class TestMemory:
    def test_global_scalar_init(self):
        assert result_of("int g = 41; int main() { return g + 1; }") == 42

    def test_global_array_init_and_zero_fill(self):
        assert result_of(
            "int t[5] = {1, 2}; int main() { return t[0] + t[1] + t[4]; }"
        ) == 3

    def test_global_float_array(self):
        r, interp = run(
            "float t[2] = {1.5, 2.5}; int main()"
            " { print_float(t[0] + t[1]); return 0; }"
        )
        assert interp.profile.output == [4.0]

    def test_array_store_load(self):
        assert result_of(
            "int t[10]; int main() { for (int i = 0; i < 10; i = i + 1)"
            " { t[i] = i * i; } return t[7]; }"
        ) == 49

    def test_malloc_and_pointers(self):
        assert result_of(
            "int main() { int *p = malloc(12); p[0] = 1; p[1] = 2; p[2] = 3;"
            " return p[0] + p[1] + p[2]; }"
        ) == 6

    def test_pointer_arithmetic(self):
        assert result_of(
            "int main() { int *p = malloc(12); *p = 10; *(p + 2) = 30;"
            " return p[0] + p[2]; }"
        ) == 40

    def test_pointer_argument(self):
        src = """
        void fill(int *buf, int n) {
          for (int i = 0; i < n; i = i + 1) { buf[i] = i + 1; }
        }
        int t[4];
        int main() { fill(t, 4); return t[0] + t[3]; }
        """
        assert result_of(src) == 5

    def test_struct_fields(self):
        src = """
        struct Point { int x; int y; float w; };
        struct Point g;
        int main() {
          g.x = 3; g.y = 4; g.w = 0.5;
          struct Point *p = &g;
          p->x = p->x + p->y;
          return g.x;
        }
        """
        assert result_of(src) == 7

    def test_pointer_through_global(self):
        src = """
        int a = 1;
        int b = 2;
        int *sel;
        int main() {
          sel = &a;
          *sel = 10;
          sel = &b;
          *sel = 20;
          return a + b;
        }
        """
        assert result_of(src) == 30

    def test_heap_pointer_stored_in_global(self):
        src = """
        int *gp;
        int main() {
          gp = malloc(8);
          gp[0] = 5; gp[1] = 6;
          return gp[0] * 10 + gp[1];
        }
        """
        assert result_of(src) == 56

    def test_unmapped_access_raises(self):
        with pytest.raises(InterpreterError, match="unmapped"):
            run("int main() { int *p = malloc(4); return p[100000]; }")


class TestInterpreterMachinery:
    def test_step_limit(self):
        with pytest.raises(StepLimitExceeded):
            run("int main() { while (1) { } return 0; }", max_steps=1000)

    def test_print_order(self):
        _, interp = run(
            "int main() { print_int(1); print_float(2.5); print_int(3); return 0; }"
        )
        assert interp.profile.output == [1, 2.5, 3]

    def test_block_counts(self):
        _, interp = run(
            "int main() { int s = 0; for (int i = 0; i < 5; i = i + 1)"
            " { s = s + 1; } return s; }"
        )
        counts = interp.profile.block_counts
        assert max(counts.values()) >= 5

    def test_heap_profile(self):
        _, interp = run(
            "int main() { int i; for (i = 0; i < 3; i = i + 1)"
            " { int *p = malloc(16); p[0] = i; } return 0; }"
        )
        sizes = interp.profile.heap_sizes
        assert sum(sizes.values()) == 48
        assert len(sizes) == 1  # one site, three allocations

    def test_access_counts_attributed_to_objects(self):
        _, interp = run(
            "int t[4]; int main() { t[0] = 1; t[1] = 2; return t[0] + t[1]; }"
        )
        totals = interp.profile.object_access_counts()
        assert totals["g:t"] == 4

    def test_module_verifies(self):
        module = compile_source("int t[4]; int main() { t[1] = 2; return t[1]; }")
        verify_module(module)

    def test_main_with_wrong_args(self):
        module = compile_source("int main() { return 0; }")
        with pytest.raises(InterpreterError):
            Interpreter(module).run([1, 2])
