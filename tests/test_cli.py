"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.ir.serialize import loads

DEMO = """
int t[8] = {5, 3, 8, 1, 9, 2, 7, 4};
int out[8];
int main() {
  int s = 0;
  for (int i = 0; i < 8; i = i + 1) { out[i] = t[i] * 2; s = s + out[i]; }
  print_int(s);
  return s;
}
"""


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.mc"
    path.write_text(DEMO)
    return str(path)


class TestRun:
    def test_run_prints_output(self, demo_file, capsys):
        assert main(["run", demo_file]) == 0
        out = capsys.readouterr().out
        assert "78" in out
        assert "exit 78" in out

    def test_run_with_transforms(self, demo_file, capsys):
        assert main(["run", demo_file, "--unroll", "4", "--if-convert",
                     "--optimize"]) == 0
        assert "78" in capsys.readouterr().out

    def test_run_from_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(DEMO))
        assert main(["run", "-"]) == 0
        assert "78" in capsys.readouterr().out


class TestCompile:
    def test_compile_serialized_roundtrips(self, demo_file, capsys):
        assert main(["compile", demo_file, "--name", "demo"]) == 0
        text = capsys.readouterr().out
        module = loads(text)
        assert module.name == "demo"
        assert "t" in module.globals

    def test_compile_pretty(self, demo_file, capsys):
        assert main(["compile", demo_file, "--pretty"]) == 0
        out = capsys.readouterr().out
        assert "func @main" in out

    def test_compile_to_file(self, demo_file, tmp_path, capsys):
        out_path = tmp_path / "demo.ir"
        assert main(["compile", demo_file, "-o", str(out_path)]) == 0
        assert loads(out_path.read_text()).has_function("main")


class TestPartitionAndCompare:
    def test_partition_gdp(self, demo_file, capsys):
        assert main(["partition", demo_file, "--scheme", "gdp"]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out
        assert "object placement:" in out
        assert "g:t" in out

    def test_partition_unified_has_no_placement(self, demo_file, capsys):
        assert main(["partition", demo_file, "--scheme", "unified"]) == 0
        out = capsys.readouterr().out
        assert "object placement:" not in out

    def test_compare_table(self, demo_file, capsys):
        assert main(["compare", demo_file, "--latency", "5"]) == 0
        out = capsys.readouterr().out
        for scheme in ("unified", "gdp", "profilemax", "naive"):
            assert scheme in out

    def test_bad_scheme_rejected(self, demo_file):
        with pytest.raises(SystemExit):
            main(["partition", demo_file, "--scheme", "nonsense"])


class TestBench:
    def test_bench_listing(self, capsys):
        assert main(["bench"]) == 0
        out = capsys.readouterr().out
        assert "rawcaudio" in out
        assert "mediabench" in out

    def test_bench_single(self, capsys):
        assert main(["bench", "rawdaudio", "--latency", "1"]) == 0
        out = capsys.readouterr().out
        assert "gdp" in out and "vs unified" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
