"""Unit tests for the IR type system."""

import pytest

from repro.ir.types import (
    FLOAT,
    INT,
    VOID,
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    VoidType,
    access_width,
    element_type,
    pointer_to,
)


class TestScalarTypes:
    def test_int_size(self):
        assert INT.size() == 4
        assert IntType(8).size() == 1
        assert IntType(16).size() == 2
        assert IntType(64).size() == 8

    def test_int_bit_width_validation(self):
        with pytest.raises(ValueError):
            IntType(7)

    def test_float_size(self):
        assert FLOAT.size() == 8

    def test_void_size(self):
        assert VOID.size() == 0

    def test_predicates(self):
        assert INT.is_integer() and not INT.is_float() and not INT.is_pointer()
        assert FLOAT.is_float() and not FLOAT.is_integer()
        assert not VOID.is_integer() and not VOID.is_float()

    def test_equality_and_hash(self):
        assert IntType(32) == INT
        assert hash(IntType(32)) == hash(INT)
        assert IntType(16) != IntType(32)
        assert FloatType() == FLOAT
        assert VoidType() == VOID
        assert INT != FLOAT

    def test_str(self):
        assert str(INT) == "i32"
        assert str(FLOAT) == "f64"
        assert str(VOID) == "void"


class TestPointerTypes:
    def test_size_fixed(self):
        assert PointerType(INT).size() == 4
        assert PointerType(FLOAT).size() == 4

    def test_is_pointer(self):
        assert PointerType(INT).is_pointer()

    def test_nested(self):
        pp = PointerType(PointerType(INT))
        assert pp.pointee == PointerType(INT)
        assert str(pp) == "i32**"

    def test_equality(self):
        assert PointerType(INT) == pointer_to(INT)
        assert PointerType(INT) != PointerType(FLOAT)


class TestArrayTypes:
    def test_size(self):
        assert ArrayType(INT, 10).size() == 40
        assert ArrayType(FLOAT, 4).size() == 32

    def test_zero_length(self):
        assert ArrayType(INT, 0).size() == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(INT, -1)

    def test_aggregate(self):
        assert ArrayType(INT, 4).is_aggregate()

    def test_str(self):
        assert str(ArrayType(INT, 8)) == "[8 x i32]"


class TestStructTypes:
    def test_offsets_sequential(self):
        s = StructType("P", [("x", INT), ("y", INT)])
        assert s.offset_of("x") == 0
        assert s.offset_of("y") == 4
        assert s.size() == 8

    def test_alignment_padding(self):
        s = StructType("Q", [("a", INT), ("b", FLOAT)])
        assert s.offset_of("a") == 0
        assert s.offset_of("b") == 8  # f64 aligned to 8
        assert s.size() == 16

    def test_field_type(self):
        s = StructType("P", [("x", INT), ("f", FLOAT)])
        assert s.field_type("x") == INT
        assert s.field_type("f") == FLOAT

    def test_missing_field(self):
        s = StructType("P", [("x", INT)])
        with pytest.raises(KeyError):
            s.offset_of("nope")
        with pytest.raises(KeyError):
            s.field_type("nope")
        assert not s.has_field("nope")
        assert s.has_field("x")

    def test_pointer_field(self):
        s = StructType("Node", [("value", INT), ("next", PointerType(INT))])
        assert s.offset_of("next") == 4
        assert s.size() == 8

    def test_equality_by_name_and_fields(self):
        a = StructType("P", [("x", INT)])
        b = StructType("P", [("x", INT)])
        c = StructType("P", [("x", FLOAT)])
        assert a == b
        assert a != c


class TestHelpers:
    def test_element_type(self):
        assert element_type(PointerType(INT)) == INT
        assert element_type(ArrayType(FLOAT, 3)) == FLOAT

    def test_element_type_rejects_scalars(self):
        with pytest.raises(TypeError):
            element_type(INT)

    def test_access_width(self):
        assert access_width(INT) == 4
        assert access_width(FLOAT) == 8
        assert access_width(PointerType(INT)) == 4

    def test_access_width_rejects_aggregates(self):
        with pytest.raises(TypeError):
            access_width(ArrayType(INT, 2))
        with pytest.raises(TypeError):
            access_width(StructType("S", [("x", INT)]))
