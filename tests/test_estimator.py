"""Unit tests for the RHOP schedule estimator."""

import pytest

from repro.ir import Constant, Function, IRBuilder
from repro.ir.types import INT
from repro.machine import two_cluster_machine
from repro.partition import Anchor, INFEASIBLE, ScheduleEstimator
from repro.partition.estimator import (
    ESTIMATOR_MOVE_OVERLAP_CAP,
    effective_move_latency,
)
from repro.schedule import DependenceGraph


def chain_block(n=4):
    """A serial chain: v0 -> v1 -> ... -> ret."""
    func = Function("f", [], INT)
    b = IRBuilder(func)
    entry = b.new_block("entry")
    b.set_block(entry)
    v = b.mov(b.const(1))
    for _ in range(n - 1):
        v = b.add(v, b.const(1))
    b.ret(v)
    return func, entry


def wide_block(n=8):
    """n independent adds."""
    func = Function("f", [], INT)
    b = IRBuilder(func)
    entry = b.new_block("entry")
    b.set_block(entry)
    for i in range(n):
        b.add(b.const(i), b.const(1))
    b.ret(Constant(0, INT))
    return func, entry


def estimator_for(block, machine=None, anchors=()):
    machine = machine or two_cluster_machine(move_latency=5)
    graph = DependenceGraph(block, machine.latency_of)
    return ScheduleEstimator(graph, machine, anchors), graph


class TestEffectiveLatency:
    def test_capped(self):
        assert effective_move_latency(two_cluster_machine(move_latency=10)) == \
            ESTIMATOR_MOVE_OVERLAP_CAP

    def test_low_latency_uncapped(self):
        assert effective_move_latency(two_cluster_machine(move_latency=1)) == 1


class TestEstimate:
    def test_single_cluster_chain_equals_critical_path(self):
        _, block = chain_block(5)
        est, graph = estimator_for(block)
        cluster_of = {op.uid: 0 for op in block.ops}
        assert est.estimate(cluster_of) == graph.critical_path_length()

    def test_cut_chain_costs_moves(self):
        _, block = chain_block(5)
        est, _ = estimator_for(block)
        same = {op.uid: 0 for op in block.ops}
        alternating = {
            op.uid: i % 2 for i, op in enumerate(block.ops)
        }
        assert est.estimate(alternating) > est.estimate(same)

    def test_wide_block_prefers_split(self):
        """Resource-bound code estimates lower when split across clusters."""
        _, block = wide_block(12)
        est, _ = estimator_for(block)
        together = {op.uid: 0 for op in block.ops}
        split = {op.uid: i % 2 for i, op in enumerate(block.ops)}
        assert est.estimate(split) <= est.estimate(together)

    def test_infeasible_when_no_unit(self):
        func = Function("f", [], INT)
        b = IRBuilder(func)
        entry = b.new_block("entry")
        b.set_block(entry)
        f = b.fadd(b.const(1.0), b.const(2.0))
        b.ret(Constant(0, INT))
        from repro.machine import ClusterConfig, FUClass, InterclusterNetwork, Machine

        no_float = ClusterConfig(
            {FUClass.INT: 2, FUClass.FLOAT: 0, FUClass.MEM: 1, FUClass.BRANCH: 1}
        )
        has_float = ClusterConfig(
            {FUClass.INT: 2, FUClass.FLOAT: 1, FUClass.MEM: 1, FUClass.BRANCH: 1}
        )
        machine = Machine([no_float, has_float], InterclusterNetwork(1))
        est, _ = estimator_for(entry, machine)
        on_bad = {op.uid: 0 for op in entry.ops}
        on_good = {op.uid: 1 for op in entry.ops}
        assert est.estimate(on_bad) == INFEASIBLE
        assert est.estimate(on_good) < INFEASIBLE

    def test_partial_assignment_ignores_unplaced(self):
        _, block = wide_block(6)
        est, _ = estimator_for(block)
        partial = {block.ops[0].uid: 0}
        full = {op.uid: 0 for op in block.ops}
        assert est.estimate(partial) <= est.estimate(full)

    def test_exposed_estimate_charges_full_latency(self):
        _, block = chain_block(5)
        machine = two_cluster_machine(move_latency=10)
        est, _ = estimator_for(block, machine)
        alternating = {op.uid: i % 2 for i, op in enumerate(block.ops)}
        optimistic = est.estimate(alternating)
        exposed = est.estimate(alternating, exposed=True)
        assert exposed > optimistic


class TestAnchors:
    def test_anchor_penalises_wrong_cluster(self):
        _, block = chain_block(3)
        first = block.ops[0]
        anchor = Anchor(("vreg", 99), 1, {first.uid})
        est, _ = estimator_for(block, anchors=[anchor])
        on_home = {op.uid: 1 for op in block.ops}
        off_home = {op.uid: 0 for op in block.ops}
        assert est.estimate(off_home) > est.estimate(on_home)

    def test_anchor_counts_move(self):
        _, block = chain_block(3)
        first = block.ops[0]
        anchor = Anchor(("vreg", 99), 1, {first.uid})
        est, _ = estimator_for(block, anchors=[anchor])
        off_home = {op.uid: 0 for op in block.ops}
        on_home = {op.uid: 1 for op in block.ops}
        assert est.move_count(off_home) == est.move_count(on_home) + 1

    def test_move_count_counts_distinct_pairs(self):
        func = Function("f", [], INT)
        b = IRBuilder(func)
        entry = b.new_block("entry")
        b.set_block(entry)
        v = b.mov(b.const(1))
        u1 = b.add(v, b.const(1))
        u2 = b.add(v, b.const(2))
        b.ret(b.add(u1, u2))
        est, _ = estimator_for(entry)
        # v on c0; both consumers on c1 -> ONE move (value sent once).
        asn = {op.uid: 1 for op in entry.ops}
        asn[entry.ops[0].uid] = 0
        cut_once = est.move_count(asn)
        asn2 = {op.uid: 0 for op in entry.ops}
        assert cut_once == est.move_count(asn2) + 1
