"""Tests for the Table-1 schemes, the cycle model, and reporting helpers."""

import pytest

from repro.evalmodel import (
    EvalResult,
    arithmetic_mean,
    bar_chart,
    evaluate_module,
    exhaustive_search,
    format_table,
    geomean,
    scatter_plot,
)
from repro.machine import two_cluster_machine
from repro.pipeline import (
    Pipeline,
    PreparedProgram,
    SCHEME_TABLE,
    run_gdp,
    run_naive,
    run_profile_max,
    run_scheme,
    run_unified,
)

SRC = """
int table[64];
int weights[32];
int hist[16];
int out[64];
int main() {
  int i;
  int seed = 9;
  for (i = 0; i < 64; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    table[i] = (seed >> 16) & 255;
  }
  for (i = 0; i < 32; i = i + 1) { weights[i] = (i * 7) & 31; }
  int s = 0;
  for (i = 0; i < 64; i = i + 1) {
    int w = weights[i & 31];
    int v = table[i] * w;
    hist[(v >> 4) & 15] = hist[(v >> 4) & 15] + 1;
    out[i] = v;
    s = s + v;
  }
  print_int(s);
  return s & 65535;
}
"""


@pytest.fixture(scope="module")
def prepared():
    return PreparedProgram.from_source(SRC, "demo")


@pytest.fixture(scope="module")
def machine():
    return two_cluster_machine(move_latency=5)


class TestPreparedProgram:
    def test_profile_collected(self, prepared):
        assert prepared.profile.instructions_executed > 0
        assert prepared.profile.output  # print_int ran

    def test_objects_found(self, prepared):
        ids = set(prepared.objects.ids())
        assert {"g:table", "g:weights", "g:hist", "g:out"} <= ids

    def test_program_graph_built(self, prepared):
        assert prepared.program_graph.node_count() == prepared.module.op_count()
        assert prepared.program_graph.edge_count() > 0

    def test_fresh_copy_isolated(self, prepared):
        clone, uid_map = prepared.fresh_copy()
        clone.function("main").entry.ops.pop()
        assert prepared.module.function("main").entry.ops

    def test_translated_op_counts(self, prepared):
        clone, uid_map = prepared.fresh_copy()
        counts = prepared.translated_op_counts(uid_map)
        clone_uids = {op.uid for f in clone for op in f.operations()}
        assert set(counts) <= clone_uids
        assert counts  # some memory op was executed


class TestSchemes:
    def test_all_four_schemes_run(self, prepared, machine):
        for scheme in SCHEME_TABLE:
            outcome = run_scheme(prepared, machine, scheme)
            assert outcome.cycles > 0
            assert outcome.scheme == scheme

    def test_unknown_scheme_rejected(self, prepared, machine):
        with pytest.raises(ValueError, match="unknown scheme"):
            run_scheme(prepared, machine, "magic")

    def test_unified_has_no_object_homes(self, prepared, machine):
        assert run_unified(prepared, machine).object_home is None

    def test_gdp_homes_cover_objects(self, prepared, machine):
        outcome = run_gdp(prepared, machine)
        assert set(outcome.object_home) == set(prepared.objects.ids())

    def test_gdp_respects_override(self, prepared, machine):
        homes = {o: 0 for o in prepared.objects.ids()}
        outcome = run_gdp(prepared, machine, object_home=homes)
        assert outcome.object_home == homes

    def test_profilemax_runs_rhop_twice(self, prepared, machine):
        outcome = run_profile_max(prepared, machine)
        assert outcome.rhop_runs == 2
        assert set(outcome.object_home) == set(prepared.objects.ids())

    def test_profilemax_balance_cap(self, prepared, machine):
        outcome = run_profile_max(prepared, machine, imbalance=1.10)
        bytes_per = [0, 0]
        for obj, c in outcome.object_home.items():
            bytes_per[c] += prepared.objects[obj].size
        total = sum(bytes_per)
        biggest_group = max(
            prepared.objects.size_of(g.object_ids)
            for g in prepared.merge.object_groups()
        )
        assert max(bytes_per) <= max(1.10 * total / 2, biggest_group) + 1e-9

    def test_naive_places_all_objects(self, prepared, machine):
        outcome = run_naive(prepared, machine)
        assert set(outcome.object_home) == set(prepared.objects.ids())

    def test_naive_memory_ops_on_object_home(self, prepared, machine):
        outcome = run_naive(prepared, machine)
        for func in outcome.module:
            for op in func.operations():
                if op.is_memory_access() and op.mem_objects():
                    homes = {
                        outcome.object_home[o]
                        for o in op.mem_objects()
                        if o in outcome.object_home
                    }
                    if len(homes) == 1:
                        assert outcome.assignment[op.uid] in homes

    def test_scheme_outcomes_deterministic(self, machine):
        a = run_gdp(PreparedProgram.from_source(SRC, "x"), machine)
        b = run_gdp(PreparedProgram.from_source(SRC, "x"), machine)
        assert a.cycles == b.cycles
        assert a.object_home == b.object_home

    def test_latency_sweep_monotone_for_naive(self, prepared):
        """More latency never makes the naive scheme run faster."""
        cycles = [
            run_naive(prepared, two_cluster_machine(move_latency=lat)).cycles
            for lat in (1, 5, 10)
        ]
        assert cycles[0] <= cycles[1] <= cycles[2]


class TestPipelineDriver:
    def test_run_all(self, prepared, machine):
        pipe = Pipeline(machine)
        outcomes = pipe.run_all(prepared)
        assert set(outcomes) == {"unified", "gdp", "profilemax", "naive"}

    def test_compare_relative(self, prepared, machine):
        pipe = Pipeline(machine)
        rel = pipe.compare(prepared, schemes=("gdp",))
        assert 0.2 < rel["gdp"] < 2.0

    def test_prepare_from_source(self, machine):
        pipe = Pipeline(machine)
        prep = pipe.prepare("int main() { return 0; }")
        assert prep.result == 0


class TestEvalModel:
    def test_totals_are_weighted_sums(self, prepared, machine):
        outcome = run_unified(prepared, machine)
        ev = outcome.eval
        cycles = sum(b.length * b.frequency for b in ev.blocks.values())
        moves = sum(b.moves * b.frequency for b in ev.blocks.values())
        assert ev.cycles == pytest.approx(cycles)
        assert ev.dynamic_moves == pytest.approx(moves)

    def test_unexecuted_blocks_cost_nothing(self, machine):
        src = """
        int main() {
          int x = 0;
          if (x) { print_int(1); print_int(2); print_int(3); }
          return 0;
        }
        """
        prep = PreparedProgram.from_source(src, "t")
        outcome = run_unified(prep, machine)
        dead = [
            b for b in outcome.eval.blocks.values() if b.frequency == 0
        ]
        assert dead  # the guarded block never ran
        assert outcome.cycles > 0


class TestExhaustive:
    def test_small_search(self, prepared, machine):
        result = exhaustive_search(prepared, machine, max_groups=8)
        groups = len(prepared.merge.object_groups())
        assert len(result.points) == 2 ** (groups - 1)
        assert result.best_cycles <= result.worst_cycles

    def test_scheme_point_located(self, prepared, machine):
        gdp = run_gdp(prepared, machine)
        result = exhaustive_search(
            prepared, machine, scheme_homes={"gdp": gdp.object_home}
        )
        point = result.scheme_points["gdp"]
        assert result.normalized(point) >= 1.0

    def test_group_limit_enforced(self, prepared, machine):
        with pytest.raises(ValueError, match="exceed max_groups"):
            exhaustive_search(prepared, machine, max_groups=1)

    def test_two_cluster_only(self, prepared):
        from repro.machine import four_cluster_machine

        with pytest.raises(ValueError, match="2 clusters"):
            exhaustive_search(prepared, four_cluster_machine())

    def test_imbalance_range(self, prepared, machine):
        result = exhaustive_search(prepared, machine)
        for p in result.points:
            assert 0.0 <= p.imbalance <= 1.0


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xxx", 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_bar_chart_contains_values(self):
        text = bar_chart(["x", "y"], {"s": [0.5, 1.0]}, baseline=1.0)
        assert "0.500" in text and "1.000" in text

    def test_scatter_plot_draws(self):
        text = scatter_plot(
            [0.1, 0.5, 0.9], [1.0, 1.1, 1.2], shades=[0.1, 0.5, 0.9],
            marks={"G": (0.5, 1.1)},
        )
        assert "G" in text

    def test_scatter_empty(self):
        assert scatter_plot([], []) == "(no points)"

    def test_means(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert geomean([]) == 0.0
        assert arithmetic_mean([]) == 0.0


class TestSchemeTable:
    def test_table_complete(self):
        assert set(SCHEME_TABLE) == {"gdp", "profilemax", "naive", "unified"}
        for meta in SCHEME_TABLE.values():
            assert meta["computation_partitioner"] == "RHOP"
