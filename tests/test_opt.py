"""Tests for the scalar optimizer: folding, copy-prop, CSE, DCE."""

import pytest

from repro.ir import Constant, Function, IRBuilder, Opcode, verify_function
from repro.ir.types import INT
from repro.lang import compile_source
from repro.opt import (
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    optimize_module,
    propagate_copies,
)
from repro.profiler import Interpreter


def fresh_block():
    func = Function("f", [], INT)
    b = IRBuilder(func)
    entry = b.new_block("entry")
    b.set_block(entry)
    return func, b, entry


def opcodes(block):
    return [op.opcode for op in block.ops]


class TestConstFold:
    def test_folds_arithmetic(self):
        func, b, entry = fresh_block()
        x = b.add(b.const(2), b.const(3))
        y = b.mul(x, b.const(4))
        b.ret(y)
        fold_constants(func)
        movs = [op for op in entry.ops if op.opcode is Opcode.MOV]
        assert len(movs) == 2
        assert movs[-1].srcs[0] == Constant(20, INT)

    def test_propagates_within_block(self):
        func, b, entry = fresh_block()
        x = b.mov(b.const(7))
        y = b.add(x, b.const(1))
        b.ret(y)
        fold_constants(func)
        ret = entry.ops[-1]
        add_result = entry.ops[1]
        assert add_result.opcode is Opcode.MOV
        assert add_result.srcs[0] == Constant(8, INT)

    def test_keeps_division_by_zero(self):
        func, b, entry = fresh_block()
        d = b.div(b.const(1), b.const(0))
        b.ret(d)
        fold_constants(func)
        assert entry.ops[0].opcode is Opcode.DIV

    def test_identities(self):
        func, b, entry = fresh_block()
        v = b.mov(b.const(5))
        a = b.add(v, b.const(0))
        m = b.mul(a, b.const(1))
        z = b.mul(m, b.const(0))
        b.ret(z)
        n = fold_constants(func)
        assert n > 0
        assert entry.ops[-1].srcs[0] == Constant(0, INT)

    def test_select_on_constant(self):
        func, b, entry = fresh_block()
        s = b.select(b.const(1), b.const(10), b.const(20))
        b.ret(s)
        fold_constants(func)
        assert entry.ops[0].opcode is Opcode.MOV
        assert entry.ops[0].srcs[0] == Constant(10, INT)

    def test_comparison_folds(self):
        func, b, entry = fresh_block()
        c = b.cmp("lt", b.const(2), b.const(5))
        b.ret(c)
        fold_constants(func)
        assert entry.ops[0].srcs[0] == Constant(1, INT)


class TestCopyPropagation:
    def test_simple_chain(self):
        func, b, entry = fresh_block()
        x = b.add(b.const(1), b.const(2))
        y = b.mov(x)
        z = b.add(y, b.const(3))
        b.ret(z)
        n = propagate_copies(func)
        assert n >= 1
        add2 = entry.ops[2]
        assert add2.srcs[0] == x

    def test_invalidated_by_redefinition(self):
        func, b, entry = fresh_block()
        x = func.new_vreg(INT, "x")
        b.mov_to(x, b.const(1))
        y = b.mov(x)
        b.mov_to(x, b.const(2))  # x redefined: copy y=x no longer usable...
        z = b.add(y, b.const(0))  # ...so z must still read y
        b.ret(z)
        propagate_copies(func)
        add = entry.ops[3]
        assert add.srcs[0] == y


class TestCSE:
    def test_duplicate_address_arithmetic(self):
        func, b, entry = fresh_block()
        i = b.mov(b.const(3))
        a1 = b.mul(i, b.const(4))
        a2 = b.mul(i, b.const(4))
        b.ret(b.add(a1, a2))
        n = eliminate_common_subexpressions(func)
        assert n == 1
        assert entry.ops[2].opcode is Opcode.MOV

    def test_not_merged_across_redefinition(self):
        func, b, entry = fresh_block()
        i = func.new_vreg(INT, "i")
        b.mov_to(i, b.const(3))
        a1 = b.mul(i, b.const(4))
        b.mov_to(i, b.const(5))
        a2 = b.mul(i, b.const(4))  # different i: must stay a MUL
        b.ret(b.add(a1, a2))
        eliminate_common_subexpressions(func)
        muls = [op for op in entry.ops if op.opcode is Opcode.MUL]
        assert len(muls) == 2

    def test_clobbered_result_not_reused(self):
        func, b, entry = fresh_block()
        x = func.new_vreg(INT, "x")
        i = b.mov(b.const(3))
        entry.append(  # x = i * 4
            __import__("repro.ir", fromlist=["Operation"]).Operation(
                Opcode.MUL, x, [i, Constant(4, INT)]
            )
        )
        b.mov_to(x, b.const(0))  # clobber x
        a2 = b.mul(i, b.const(4))  # same expression, but x is stale
        b.ret(a2)
        eliminate_common_subexpressions(func)
        muls = [op for op in entry.ops if op.opcode is Opcode.MUL]
        assert len(muls) == 2

    def test_loads_never_cse(self):
        func, b, entry = fresh_block()
        p = b.malloc(b.const(8), "s")
        l1 = b.load(p)
        l2 = b.load(p)
        b.ret(b.add(l1, l2))
        assert eliminate_common_subexpressions(func) == 0


class TestDCE:
    def test_removes_unused_pure_op(self):
        func, b, entry = fresh_block()
        b.add(b.const(1), b.const(2))  # dead
        live = b.add(b.const(3), b.const(4))
        b.ret(live)
        removed = eliminate_dead_code(func)
        assert removed == 1
        assert len(entry.ops) == 2

    def test_removes_transitively_dead_chains(self):
        func, b, entry = fresh_block()
        x = b.add(b.const(1), b.const(2))
        y = b.mul(x, b.const(3))  # y dead -> x dead too
        b.ret(b.const(0))
        removed = eliminate_dead_code(func)
        assert removed == 2

    def test_keeps_stores_and_calls(self):
        func, b, entry = fresh_block()
        p = b.malloc(b.const(8), "s")
        b.store(b.const(1), p)
        b.call("print_int", [b.const(1)], INT)
        b.ret(b.const(0))
        assert eliminate_dead_code(func) == 0

    def test_keeps_faulting_ops(self):
        func, b, entry = fresh_block()
        z = b.mov(b.const(0))
        b.div(b.const(1), z)  # dead result, but may fault: keep
        b.ret(b.const(0))
        eliminate_dead_code(func)
        assert any(op.opcode is Opcode.DIV for op in entry.ops)

    def test_cross_block_liveness_respected(self):
        src = """
        int main() {
          int x = 5;
          int y = x * 2;
          if (x) { return y; }
          return 0;
        }
        """
        module = compile_source(src, "t")
        before = Interpreter(compile_source(src, "t")).run()
        optimize_module(module)
        verify_function(module.function("main"))
        assert Interpreter(module).run() == before


class TestEndToEnd:
    SRC = """
    int t[16];
    int main() {
      int s = 0;
      for (int i = 0; i < 16; i = i + 1) {
        t[i] = t[i] + i * 3;
        s = s + t[i];
      }
      print_int(s);
      return s;
    }
    """

    def test_semantics_preserved(self):
        baseline = Interpreter(compile_source(self.SRC, "a")).run()
        module = compile_source(self.SRC, "b", unroll_factor=4, if_convert=True)
        optimize_module(module)
        assert Interpreter(module).run() == baseline

    def test_reduces_op_count(self):
        module = compile_source(self.SRC, "t", unroll_factor=4)
        before = module.op_count()
        optimize_module(module)
        assert module.op_count() < before

    def test_idempotent_at_fixed_point(self):
        module = compile_source(self.SRC, "t")
        optimize_module(module)
        assert optimize_module(module) == 0

    def test_verifies_after_optimization(self):
        from repro.ir import verify_module

        module = compile_source(self.SRC, "t", unroll_factor=4, if_convert=True)
        optimize_module(module)
        verify_module(module)
