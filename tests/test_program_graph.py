"""Tests for the program-level DFG (GDP's phase-1 input)."""

from repro.analysis import ProgramGraph, annotate_memory_ops
from repro.lang import compile_source


def graph_of(src, freq=None):
    module = compile_source(src, "t")
    annotate_memory_ops(module)
    return module, ProgramGraph(module, freq)


class TestNodes:
    def test_every_op_is_a_node(self):
        module, graph = graph_of("int main() { return 1 + 2; }")
        assert graph.node_count() == module.op_count()

    def test_memory_nodes_annotated(self):
        module, graph = graph_of(
            "int t[4]; int main() { t[0] = 1; return t[0]; }"
        )
        mem = graph.memory_nodes()
        assert len(mem) == 2
        assert all("g:t" in n.op.mem_objects() for n in mem)

    def test_frequencies_recorded(self):
        module, graph = graph_of(
            "int main() { int s = 0; for (int i = 0; i < 4; i = i + 1)"
            " { s = s + i; } return s; }",
            freq=lambda f, b: 42.0 if b == "bb1" else 1.0,
        )
        freqs = {n.block: n.freq for n in graph.nodes.values()}
        assert freqs["bb1"] == 42.0

    def test_static_frequency_fallback(self):
        module, graph = graph_of(
            "int main() { int s = 0; for (int i = 0; i < 4; i = i + 1)"
            " { s = s + i; } return s; }"
        )
        loop_freqs = [n.freq for n in graph.nodes.values() if n.block != "entry"]
        assert max(loop_freqs) > 1.0


class TestEdges:
    def test_def_use_edge(self):
        module, graph = graph_of("int main() { int a = 1 + 2; return a * 3; }")
        assert graph.edge_count() >= 2

    def test_edge_weight_scales_with_frequency(self):
        src = (
            "int main() { int s = 0; for (int i = 0; i < 4; i = i + 1)"
            " { s = s + i; } return s; }"
        )
        _, cold = graph_of(src, freq=lambda f, b: 1.0)
        _, hot = graph_of(src, freq=lambda f, b: 1000.0)
        assert sum(hot.edges.values()) > sum(cold.edges.values())

    def test_interprocedural_param_edge(self):
        src = """
        int double_it(int x) { return x * 2; }
        int main() { return double_it(21); }
        """
        module, graph = graph_of(src)
        call = next(
            op for op in module.function("main").operations() if op.is_call()
        )
        callee_mul = next(
            op
            for op in module.function("double_it").operations()
            if op.opcode.mnemonic == "mul"
        )
        assert (call.uid, callee_mul.uid) in graph.edges

    def test_interprocedural_return_edge(self):
        src = """
        int get() { return 7; }
        int main() { return get() + 1; }
        """
        module, graph = graph_of(src)
        call = next(
            op for op in module.function("main").operations() if op.is_call()
        )
        ret = next(
            op
            for op in module.function("get").operations()
            if op.opcode.mnemonic == "ret"
        )
        assert (ret.uid, call.uid) in graph.edges

    def test_neighbors_symmetric(self):
        module, graph = graph_of("int main() { int a = 1 + 2; return a * 3; }")
        for (src, dst) in graph.edges:
            assert dst in graph.neighbors(src)
            assert src in graph.neighbors(dst)

    def test_undirected_edges_fold_direction(self):
        module, graph = graph_of("int main() { int a = 1 + 2; return a * 3; }")
        und = graph.undirected_edges()
        for (a, b) in und:
            assert a < b
