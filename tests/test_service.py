"""Partitioning-as-a-service: job model, fair queue, broker, HTTP."""

import json
import os
import threading

import pytest

from repro.exec import RunConfig
from repro.exec.engine import run_cell
from repro.service import (
    CANCELLED,
    DEGRADED,
    DONE,
    FAILED,
    QUEUED,
    Broker,
    FairQueue,
    Job,
    ServiceClient,
    ServiceError,
    ServiceServer,
    job_key,
    scrub_events,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

SOURCE = """
int N = 12;
int a[12];
int b[12];
int main() {
  int i;
  for (i = 0; i < N; i = i + 1) { a[i] = i * 3; }
  for (i = 0; i < N; i = i + 1) { b[i] = a[i] + a[(i + 1) % N]; }
  print_int(b[5]);
  return 0;
}
"""

OTHER_SOURCE = SOURCE.replace("i * 3", "i * 7")


def make_broker(tmp_path, **kwargs):
    kwargs.setdefault(
        "config", RunConfig(cache_dir=str(tmp_path / "cache"), jobs=1)
    )
    return Broker(**kwargs)


def make_job(job_id="j1", tenant="default", priority=0, config=None):
    config = config or RunConfig()
    return Job(job_id, job_key("tiny", SOURCE, config), "tiny", SOURCE,
               config, tenant=tenant, priority=priority)


# -- job identity and scrubbing -----------------------------------------------


class TestJobKey:
    def test_execution_knobs_do_not_change_key(self):
        base = job_key("tiny", SOURCE, RunConfig())
        assert job_key("tiny", SOURCE, RunConfig(jobs=7)) == base
        assert job_key("tiny", SOURCE, RunConfig(cache="refresh")) == base
        assert job_key(
            "tiny", SOURCE, RunConfig(cache_dir="/elsewhere")
        ) == base

    def test_result_affecting_fields_change_key(self):
        base = job_key("tiny", SOURCE, RunConfig())
        assert job_key("tiny", SOURCE, RunConfig(scheme="naive")) != base
        assert job_key("tiny", SOURCE, RunConfig(seed=1)) != base
        assert job_key("tiny", SOURCE, RunConfig(latency=9)) != base
        assert job_key("tiny", OTHER_SOURCE, RunConfig()) != base
        assert job_key("other", SOURCE, RunConfig()) != base

    def test_scrub_events_masks_execution_artifacts(self):
        events = [{
            "seq": 0, "ts": 1.25, "job": "j000009", "kind": "started",
            "state": "running", "worker": "w1", "queue_wait": 0.5,
        }]
        scrubbed = scrub_events(events)
        assert scrubbed[0]["ts"] == 0.0
        assert scrubbed[0]["queue_wait"] == 0.0
        assert scrubbed[0]["job"] == "-" and scrubbed[0]["worker"] == "-"
        assert scrubbed[0]["kind"] == "started"  # structure preserved
        assert events[0]["ts"] == 1.25  # input untouched


# -- the fair queue -----------------------------------------------------------


class TestFairQueue:
    def test_fifo_within_tenant(self):
        queue = FairQueue()
        jobs = [make_job(f"j{i}") for i in range(3)]
        for job in jobs:
            queue.push(job)
        assert [queue.pop() for _ in range(3)] == jobs

    def test_priority_buckets_drain_highest_first(self):
        queue = FairQueue()
        low = make_job("low", priority=0)
        high = make_job("high", priority=5)
        queue.push(low)
        queue.push(high)
        assert queue.pop() is high
        assert queue.pop() is low

    def test_round_robin_across_tenants(self):
        queue = FairQueue()
        a1 = make_job("a1", tenant="a")
        a2 = make_job("a2", tenant="a")
        b1 = make_job("b1", tenant="b")
        for job in (a1, a2, b1):
            queue.push(job)
        # A flooding first does not starve B: a1, then B's turn, then a2.
        assert [queue.pop() for _ in range(3)] == [a1, b1, a2]

    def test_quota_bounds_in_flight_per_tenant(self):
        queue = FairQueue(quota=1)
        a1 = make_job("a1", tenant="a")
        a2 = make_job("a2", tenant="a")
        b1 = make_job("b1", tenant="b")
        for job in (a1, a2, b1):
            queue.push(job)
        assert queue.pop() is a1
        assert queue.pop() is b1          # a2 blocked: tenant a at quota
        assert queue.pop(timeout=0.05) is None
        queue.task_done(a1)
        assert queue.pop(timeout=1.0) is a2
        assert queue.stats()["running"] == {"a": 1, "b": 1}

    def test_cancelled_jobs_skipped_at_pop(self):
        queue = FairQueue()
        doomed = make_job("doomed")
        live = make_job("live")
        queue.push(doomed)
        queue.push(live)
        assert queue.cancel(doomed)
        assert doomed.state == CANCELLED
        assert queue.pop() is live
        assert queue.stats()["cancelled"] == 1

    def test_cancel_refused_once_running(self):
        queue = FairQueue()
        job = make_job()
        queue.push(job)
        popped = queue.pop()
        popped.record("started", state="running")
        assert not queue.cancel(popped)

    def test_close_unblocks_consumers(self):
        queue = FairQueue()
        results = []
        thread = threading.Thread(
            target=lambda: results.append(queue.pop(timeout=30))
        )
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert results == [None]
        with pytest.raises(RuntimeError):
            queue.push(make_job())

    def test_cancel_at_quota_does_not_leak_the_slot(self):
        # A queued job cancelled while its tenant sits at quota must not
        # consume the slot when pop() later skips over it.
        queue = FairQueue(quota=1)
        a1 = make_job("a1", tenant="a")
        a2 = make_job("a2", tenant="a")
        b1 = make_job("b1", tenant="b")
        for job in (a1, a2, b1):
            queue.push(job)
        assert queue.pop() is a1            # tenant a now at quota
        assert queue.cancel(a2)
        assert queue.pop() is b1
        queue.task_done(a1)
        # a2 is dropped at pop time, never returned, never "running".
        assert queue.pop(timeout=0.05) is None
        assert queue.stats()["cancelled"] == 1
        assert queue.stats()["running"] == {"b": 1}

    def test_sustained_high_priority_starves_low_by_design(self):
        # Priority is strict between buckets (fairness is *within* a
        # bucket): a sustained high-priority stream defers low-priority
        # work until the high bucket is empty.  This documents the
        # contract — quotas, not priorities, are the anti-starvation knob.
        queue = FairQueue()
        low = make_job("low", priority=0)
        queue.push(low)
        order = []
        for i in range(3):
            high = make_job(f"high{i}", priority=9)
            queue.push(high)           # refilled between pops
            order.append(queue.pop().id)
        order.append(queue.pop().id)
        assert order == ["high0", "high1", "high2", "low"]

    def test_requeue_after_crash_goes_to_the_fifo_back(self):
        # A worker-crash requeue re-enters through push(): the job loses
        # its place and runs after its tenant's already-queued work, so
        # a crashing job cannot head-of-line-block its own tenant.
        queue = FairQueue()
        first = make_job("first")
        second = make_job("second")
        queue.push(first)
        queue.push(second)
        crashed = queue.pop()
        assert crashed is first
        queue.task_done(crashed)
        queue.push(crashed)                 # the requeue path
        assert [queue.pop().id, queue.pop().id] == ["second", "first"]


# -- broker admission and validation ------------------------------------------


class TestBrokerAdmission:
    @pytest.fixture()
    def broker(self, tmp_path):
        broker = make_broker(tmp_path, workers=1, start=False)
        yield broker
        broker.shutdown(wait=False)

    def test_unknown_request_field_is_400(self, broker):
        with pytest.raises(ServiceError) as exc:
            broker.submit({"source": SOURCE, "frobnicate": 1})
        assert exc.value.status == 400
        assert exc.value.fields == ("frobnicate",)

    def test_unknown_config_field_is_400_with_field(self, broker):
        with pytest.raises(ServiceError) as exc:
            broker.submit(
                {"source": SOURCE, "config": {"scheme": "gdp", "bogus": 1}}
            )
        assert exc.value.status == 400
        assert exc.value.code == "invalid_config"
        assert exc.value.fields == ("bogus",)

    def test_schema_version_mismatch_is_400(self, broker):
        from repro.exec import SCHEMA_VERSION

        with pytest.raises(ServiceError) as exc:
            broker.submit({
                "source": SOURCE,
                "config": {"schema_version": SCHEMA_VERSION + 1},
            })
        assert exc.value.status == 400
        assert exc.value.fields == ("schema_version",)

    def test_bad_config_value_is_400(self, broker):
        with pytest.raises(ServiceError) as exc:
            broker.submit({"source": SOURCE, "config": {"scheme": "bogus"}})
        assert exc.value.status == 400
        assert exc.value.fields == ("scheme",)

    def test_source_and_bench_are_exclusive(self, broker):
        with pytest.raises(ServiceError) as exc:
            broker.submit({"source": SOURCE, "bench": "rawcaudio"})
        assert exc.value.status == 400
        with pytest.raises(ServiceError):
            broker.submit({})

    def test_unknown_bench_is_404(self, broker):
        with pytest.raises(ServiceError) as exc:
            broker.submit({"bench": "no-such-bench"})
        assert exc.value.status == 404
        assert exc.value.code == "unknown_bench"

    def test_bad_priority_is_400(self, broker):
        with pytest.raises(ServiceError) as exc:
            broker.submit({"source": SOURCE, "priority": "high"})
        assert exc.value.fields == ("priority",)

    def test_server_cache_settings_override_submission(self, broker):
        job, created = broker.submit({
            "source": SOURCE,
            "config": {"cache": "off", "cache_dir": "/clients/idea",
                       "jobs": 64},
        })
        assert created
        assert job.config.cache == broker.config.cache
        assert job.config.cache_dir == broker.config.cache_dir
        assert job.config.jobs is None

    def test_error_envelope_shape(self):
        err = ServiceError(400, "invalid_config", "nope", fields=("x",))
        assert err.to_dict() == {
            "error": {"code": "invalid_config", "message": "nope",
                      "fields": ["x"]}
        }


# -- broker execution ---------------------------------------------------------


class TestBrokerExecution:
    def test_job_runs_to_done_and_matches_direct_run(self, tmp_path):
        broker = make_broker(tmp_path, workers=1)
        try:
            job, created = broker.submit(
                {"source": SOURCE, "name": "tiny",
                 "config": {"scheme": "gdp"}}
            )
            assert created and job.wait(timeout=120)
            assert job.state == DONE
            direct = run_cell({
                "bench": "tiny", "source": SOURCE,
                "config": job.config.to_dict(),
            })
            summary = job.result_summary()
            assert summary["cycles"] == direct["cycles"]
            assert summary["dynamic_moves"] == direct["dynamic_moves"]
            assert summary["status"] == "ok"
            kinds = [e["kind"] for e in job.snapshot_events()]
            assert kinds == ["queued", "started", "finished"]
        finally:
            broker.shutdown()

    def test_inflight_duplicates_coalesce(self, tmp_path):
        broker = make_broker(tmp_path, workers=2, start=False)
        request = {"source": SOURCE, "config": {"scheme": "gdp"}}
        first, created = broker.submit(request)
        second, dup = broker.submit(request)
        third, _ = broker.submit(dict(request, tenant="other"))
        assert created and not dup
        assert second is first and third is first
        assert first.coalesced == 2
        assert broker.submitted == 3 and broker.coalesced == 2
        # Distinct work is NOT coalesced.
        other, fresh = broker.submit(
            {"source": SOURCE, "config": {"scheme": "naive"}}
        )
        assert fresh and other is not first
        broker.start()
        try:
            assert first.wait(timeout=120) and other.wait(timeout=120)
            assert first.state == DONE
            # One execution served all three submissions.
            assert broker.completed == 2
        finally:
            broker.shutdown()

    def test_completed_duplicate_becomes_new_warm_job(self, tmp_path):
        broker = make_broker(tmp_path, workers=1)
        try:
            request = {"source": SOURCE, "config": {"scheme": "gdp"}}
            first, _ = broker.submit(request)
            assert first.wait(timeout=120)
            second, created = broker.submit(request)
            assert created and second is not first  # no longer in flight
            assert second.warm  # artifact cache answers it
            assert second.wait(timeout=120)
            assert second.result["cache"]["outcome"] == "hit"
            assert (
                second.result_summary()["cycles"]
                == first.result_summary()["cycles"]
            )
        finally:
            broker.shutdown()

    def test_worker_crash_requeues_and_completes(self, tmp_path):
        broker = make_broker(tmp_path, workers=1, max_requeues=1)
        try:
            job, _ = broker.submit({
                "source": SOURCE,
                "config": {"scheme": "gdp",
                           "fault_spec": "raise:worker@1"},
            })
            assert job.wait(timeout=120)
            assert job.state == DONE
            assert job.requeues == 1 and job.attempt == 2
            kinds = [e["kind"] for e in job.snapshot_events()]
            assert kinds == ["queued", "started", "worker-crash",
                            "requeued", "started", "finished"]
            assert broker.worker_crashes == 1 and broker.requeued == 1
            # The server survived: it still executes new work.
            after, _ = broker.submit(
                {"source": SOURCE, "config": {"scheme": "naive"}}
            )
            assert after.wait(timeout=120) and after.state == DONE
        finally:
            broker.shutdown()

    def test_persistent_crash_exhausts_requeues_to_failed(self, tmp_path):
        broker = make_broker(tmp_path, workers=1, max_requeues=1)
        try:
            job, _ = broker.submit({
                "source": SOURCE,
                "config": {"scheme": "gdp", "fault_spec": "raise:worker"},
            })
            assert job.wait(timeout=120)
            assert job.state == FAILED
            assert job.requeues == 1
            assert "InjectedFault" in job.error
            survivor, _ = broker.submit(
                {"source": SOURCE, "config": {"scheme": "unified"}}
            )
            assert survivor.wait(timeout=120) and survivor.state == DONE
        finally:
            broker.shutdown()

    def test_ladder_fallback_surfaces_as_degraded(self, tmp_path):
        broker = make_broker(tmp_path, workers=1)
        try:
            job, _ = broker.submit({
                "source": SOURCE,
                "config": {"scheme": "gdp",
                           "fault_spec": "seed=3;raise:gdp"},
            })
            assert job.wait(timeout=120)
            assert job.state == DEGRADED
            events = {e["kind"]: e for e in job.snapshot_events()}
            assert events["degraded"]["ran_as"] == "profilemax"
            assert events["degraded"]["requested"] == "gdp"
            assert job.result_summary()["status"] == "degraded"
        finally:
            broker.shutdown()

    def test_cancel_queued_job(self, tmp_path):
        broker = make_broker(tmp_path, workers=1, start=False)
        job, _ = broker.submit(
            {"source": SOURCE, "config": {"scheme": "gdp"}}
        )
        cancelled = broker.cancel(job.id)
        assert cancelled.state == CANCELLED
        with pytest.raises(ServiceError) as exc:
            broker.cancel(job.id)
        assert exc.value.status == 409
        # The slot is free again: an identical submission is a new job,
        # not a coalesce onto the cancelled one.
        fresh, created = broker.submit(
            {"source": SOURCE, "config": {"scheme": "gdp"}}
        )
        assert created and fresh is not job
        broker.shutdown(wait=False)

    def test_stats_counters(self, tmp_path):
        broker = make_broker(tmp_path, workers=1)
        try:
            request = {"source": SOURCE, "config": {"scheme": "unified"}}
            job, _ = broker.submit(request)
            broker.submit(request)  # may coalesce or warm-hit; both count
            assert job.wait(timeout=120)
            stats = broker.stats()
            assert stats["jobs"]["submitted"] == 2
            assert (
                stats["jobs"]["coalesced"]
                + stats["jobs"]["created"] == 2
            )
            assert set(stats) >= {"uptime_seconds", "jobs", "queue",
                                  "workers", "cache", "coalesce_ratio",
                                  "warm"}
            assert stats["workers"]["alive"] == 1
            assert stats["cache"]["root"] == broker.config.cache_dir
        finally:
            broker.shutdown()


# -- the 200-submission acceptance --------------------------------------------


class TestConcurrentAcceptance:
    def test_200_concurrent_submissions_zero_lost_byte_identical(
        self, tmp_path
    ):
        """ISSUE 7 acceptance: >= 200 concurrent submissions of a mixed
        bench x scheme matrix complete with zero lost or duplicated jobs,
        results byte-identical to serial execution, and every duplicate
        RunConfig coalesces at least once."""
        schemes = ("unified", "gdp", "profilemax", "naive")
        cells = [
            (name, source, scheme)
            for name, source in (("tiny", SOURCE), ("other", OTHER_SOURCE))
            for scheme in schemes
        ]
        total = 200
        requests = [
            {
                "source": cells[i % len(cells)][1],
                "name": cells[i % len(cells)][0],
                "config": {"scheme": cells[i % len(cells)][2]},
                "tenant": f"t{i % 5}",
            }
            for i in range(total)
        ]
        broker = make_broker(tmp_path, workers=4, start=False)
        replies = []
        errors = []
        lock = threading.Lock()

        def submit_many(chunk):
            for request in chunk:
                try:
                    job, created = broker.submit(request)
                except Exception as exc:  # noqa: BLE001 - fail the test
                    with lock:
                        errors.append(exc)
                    return
                with lock:
                    replies.append((job, created))

        threads = [
            threading.Thread(target=submit_many, args=(requests[i::16],))
            for i in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(replies) == total

        # Zero lost, zero duplicated: every submission is accounted for
        # exactly once — as a created job or a coalesce onto one — and
        # the 8 distinct cells map to exactly 8 jobs.
        jobs = {job.id: job for job, _ in replies}
        assert len(jobs) == len(cells)
        assert sum(1 + job.coalesced for job in jobs.values()) == total
        for job in jobs.values():
            assert job.coalesced >= 1  # every duplicate config coalesced

        broker.start()
        try:
            for job in jobs.values():
                assert job.wait(timeout=300), f"{job} never finished"
                assert job.state == DONE
        finally:
            broker.shutdown()

        # Byte-identical to serial: the deterministic projection of every
        # job equals the same cell run serially in this process.
        for job in jobs.values():
            direct = run_cell({
                "bench": job.bench, "source": job.source,
                "config": job.config.replace(
                    cache="off", cache_dir=None
                ).to_dict(),
            })
            summary = job.result_summary()
            assert summary["cycles"] == direct["cycles"]
            assert summary["dynamic_moves"] == direct["dynamic_moves"]
            assert summary["ran_as"] == direct["ran_as"]
        stats = broker.stats()
        assert stats["jobs"]["submitted"] == total
        assert stats["jobs"]["coalesced"] == total - len(cells)
        assert stats["coalesce_ratio"] > 0.9


# -- the HTTP surface ---------------------------------------------------------


class TestHttpService:
    @pytest.fixture()
    def server(self, tmp_path):
        server = ServiceServer(
            broker=make_broker(tmp_path, workers=2), port=0
        ).start()
        yield server
        server.stop()

    def test_submit_wait_events_roundtrip(self, server):
        client = ServiceClient(server.url)
        assert client.healthz()["status"] == "ok"
        reply = client.submit(
            source=SOURCE, name="tiny", config={"scheme": "gdp"}
        )
        assert reply["state"] in ("queued", "running", "done")
        assert not reply["coalesced_onto"]
        final = client.wait(reply["id"], timeout=120)
        assert final["state"] == "done"
        assert final["result"]["cycles"] > 0
        assert final["resilience"]["attempts"] >= 1
        kinds = [e["kind"] for e in client.events(reply["id"])]
        assert kinds[0] == "queued" and kinds[-1] == "finished"
        follow = [
            e["kind"]
            for e in client.events(reply["id"], follow=True, timeout=10)
        ]
        assert follow == kinds  # terminal job: follow drains and closes
        assert any(j["id"] == reply["id"] for j in client.jobs())

    def test_error_envelope_maps_back_to_service_error(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as exc:
            client.submit(source=SOURCE, config={"scheme": "gdp",
                                                 "frobnicate": 1})
        assert exc.value.status == 400
        assert exc.value.code == "invalid_config"
        assert exc.value.fields == ("frobnicate",)
        with pytest.raises(ServiceError) as exc:
            client.job("j999999")
        assert exc.value.status == 404
        with pytest.raises(ServiceError) as exc:
            client._request("GET", "/v1/nope")
        assert exc.value.status == 404

    def test_stats_exposes_machine_readable_counters(self, server):
        client = ServiceClient(server.url)
        reply = client.submit(source=SOURCE, config={"scheme": "unified"})
        client.wait(reply["id"], timeout=120)
        stats = client.stats()
        assert stats["jobs"]["submitted"] == 1
        assert stats["queue"]["pushed"] == 1
        assert "session" in stats["cache"]
        assert "hit_ratio" in stats["cache"]

    def test_cancel_over_http(self, tmp_path):
        server = ServiceServer(
            broker=make_broker(tmp_path, workers=1, start=False), port=0
        ).start()
        try:
            client = ServiceClient(server.url)
            reply = client.submit(source=SOURCE, config={"scheme": "gdp"})
            cancelled = client.cancel(reply["id"])
            assert cancelled["state"] == "cancelled"
            with pytest.raises(ServiceError) as exc:
                client.cancel(reply["id"])
            assert exc.value.status == 409
        finally:
            server.stop()

    def test_graceful_shutdown_endpoint(self, tmp_path):
        import urllib.error
        import urllib.request

        server = ServiceServer(
            broker=make_broker(tmp_path, workers=1), port=0
        ).start()
        client = ServiceClient(server.url)
        assert client.shutdown()["status"] == "stopping"
        server._stopped.wait(timeout=10)
        deadline = threading.Event()
        for _ in range(50):
            try:
                urllib.request.urlopen(server.url + "/v1/healthz",
                                       timeout=1)
            except (urllib.error.URLError, ConnectionError, OSError):
                deadline.set()
                break
            import time

            time.sleep(0.1)
        assert deadline.is_set()  # listener actually closed

    def test_submissions_refused_while_stopping(self, tmp_path):
        broker = make_broker(tmp_path, workers=1)
        broker.shutdown(wait=True)
        with pytest.raises(ServiceError) as exc:
            broker.submit({"source": SOURCE})
        assert exc.value.status == 503


# -- CLI round trip -----------------------------------------------------------


class TestServiceCli:
    def test_submit_cli_against_live_server(self, tmp_path, capsys):
        from repro.cli import main

        source_file = tmp_path / "tiny.mc"
        source_file.write_text(SOURCE)
        server = ServiceServer(
            broker=make_broker(tmp_path, workers=1), port=0
        ).start()
        try:
            code = main([
                "submit", str(source_file), "--url", server.url,
                "--scheme", "gdp", "--follow",
            ])
            out = capsys.readouterr().out
            assert code == 0
            assert "[submitted job" in out
            assert '"kind": "finished"' in out
            assert '"state": "done"' in out
            # A second submission is answered from the artifact cache.
            code = main([
                "submit", str(source_file), "--url", server.url,
                "--scheme", "gdp",
            ])
            assert code == 0
            assert '"warm": true' in capsys.readouterr().out
        finally:
            server.stop()

    def test_submit_cli_requires_program(self, capsys):
        from repro.cli import main

        assert main(["submit"]) == 2
        assert "source file or --bench" in capsys.readouterr().err


# -- deterministic lifecycle golden -------------------------------------------


class TestLifecycleGolden:
    def _lifecycle_json(self, tmp_path, run_tag):
        broker = make_broker(
            tmp_path / run_tag, workers=1, max_requeues=1
        )
        try:
            job, _ = broker.submit({
                "source": SOURCE,
                "name": "tiny",
                "config": {
                    "scheme": "gdp",
                    "fault_spec": "seed=3;raise:worker@1;raise:gdp",
                },
            })
            assert job.wait(timeout=120)
        finally:
            broker.shutdown()
        return json.dumps(
            scrub_events(job.snapshot_events()), indent=2, sort_keys=True
        )

    def test_same_lifecycle_byte_identical(self, tmp_path):
        assert self._lifecycle_json(tmp_path, "a") == self._lifecycle_json(
            tmp_path, "b"
        )

    def test_lifecycle_matches_golden(self, tmp_path):
        """Pins the canonical service story end to end: queued, started,
        the worker dies (injected), the supervisor requeues, the retry's
        ladder degrades GDP -> Profile Max, and the job finishes in the
        ``degraded`` terminal state — with every wall clock and identity
        scrubbed, byte-stable."""
        with open(
            os.path.join(GOLDEN_DIR, "job_lifecycle_events.json")
        ) as fh:
            golden = fh.read()
        assert self._lifecycle_json(tmp_path, "golden") + "\n" == golden
