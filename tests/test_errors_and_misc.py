"""Small-surface tests: diagnostics, reprs, and misc public API corners."""

import pytest

from repro.lang.errors import LexError, MiniCError, ParseError, SourceLocation
from repro.lang import compile_source, tokenize
from repro.machine import two_cluster_machine
from repro.pipeline import PreparedProgram


class TestSourceLocation:
    def test_str(self):
        assert str(SourceLocation(3, 7)) == "3:7"

    def test_equality_and_hash(self):
        assert SourceLocation(1, 2) == SourceLocation(1, 2)
        assert SourceLocation(1, 2) != SourceLocation(1, 3)
        assert hash(SourceLocation(1, 2)) == hash(SourceLocation(1, 2))

    def test_error_message_includes_location(self):
        err = ParseError("oops", SourceLocation(4, 5))
        assert "4:5" in str(err)

    def test_error_without_location(self):
        assert str(MiniCError("plain")) == "plain"

    def test_hierarchy(self):
        assert issubclass(LexError, MiniCError)
        assert issubclass(ParseError, MiniCError)


class TestPublicAPI:
    def test_top_level_exports(self):
        import repro

        assert hasattr(repro, "compile_source")
        assert hasattr(repro, "Module")
        assert repro.__version__

    def test_compile_source_defaults_pure(self):
        """compile_source with defaults must not transform the program."""
        src = (
            "int main() { int s = 0;"
            " for (int i = 0; i < 4; i = i + 1) { s = s + i; } return s; }"
        )
        plain = compile_source(src, "a")
        explicit = compile_source(src, "b", unroll_factor=0, if_convert=False)
        assert plain.op_count() == explicit.op_count()

    def test_prepared_program_disable_transforms(self):
        src = "int t[4]; int main() { t[0] = 1; return t[0]; }"
        raw = PreparedProgram.from_source(
            src, "t", unroll_factor=0, if_convert=False, optimize=False
        )
        cooked = PreparedProgram.from_source(src, "t")
        assert raw.profile.output == cooked.profile.output

    def test_machine_repr_readable(self):
        text = repr(two_cluster_machine(move_latency=7))
        assert "2 clusters" in text and "7" in text


class TestTokenizeConvenience:
    def test_tokenize_exported(self):
        toks = tokenize("int x;")
        assert toks[0].is_kw("int")


class TestRobustness:
    def test_empty_main(self):
        module = compile_source("int main() { return 0; }", "t")
        assert module.op_count() == 1

    def test_comment_only_function_body_void(self):
        module = compile_source("void f() { /* nothing */ } "
                                "int main() { f(); return 0; }", "t")
        from repro.profiler import Interpreter

        assert Interpreter(module).run() == 0

    def test_deeply_nested_expressions(self):
        expr = "1" + " + 1" * 120
        module = compile_source(f"int main() {{ return {expr}; }}", "t")
        from repro.profiler import Interpreter

        assert Interpreter(module).run() == 121

    def test_deeply_nested_blocks(self):
        body = "{" * 30 + "s = s + 1;" + "}" * 30
        src = f"int main() {{ int s = 0; {body} return s; }}"
        from repro.profiler import Interpreter

        assert Interpreter(compile_source(src, "t")).run() == 1

    def test_many_functions(self):
        parts = [f"int f{i}(int x) {{ return x + {i}; }}" for i in range(30)]
        calls = " + ".join(f"f{i}(0)" for i in range(30))
        src = "\n".join(parts) + f"\nint main() {{ return {calls}; }}"
        from repro.profiler import Interpreter

        assert Interpreter(compile_source(src, "t")).run() == sum(range(30))

    def test_large_global_array(self):
        src = "int big[10000]; int main() { big[9999] = 7; return big[9999]; }"
        from repro.profiler import Interpreter

        assert Interpreter(compile_source(src, "t")).run() == 7
