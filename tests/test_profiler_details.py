"""Focused tests for memory layout and profile-data bookkeeping."""

import pytest

from repro.lang import compile_source
from repro.profiler import Interpreter, Memory, ProfileData
from repro.profiler.memory import _align, _wrap32


class TestMemoryLayout:
    def _memory(self, src):
        return Memory(compile_source(src, "t"))

    def test_globals_get_distinct_ranges(self):
        mem = self._memory("int a[4]; int b[4]; int main() { return 0; }")
        a, b = mem.address_of_global("a"), mem.address_of_global("b")
        assert a != b
        assert abs(a - b) >= 16

    def test_object_at_boundaries(self):
        mem = self._memory("int a[4]; int b; int main() { return 0; }")
        a = mem.address_of_global("a")
        assert mem.object_at(a) == "g:a"
        assert mem.object_at(a + 15) == "g:a"
        b = mem.address_of_global("b")
        assert mem.object_at(b) == "g:b"

    def test_unmapped_address(self):
        mem = self._memory("int a; int main() { return 0; }")
        assert mem.object_at(0) is None
        assert mem.object_at(0x7FFF_FFFF) is None

    def test_initializers_loaded(self):
        mem = self._memory(
            "int t[4] = {10, -20, 30}; float f = 1.5;"
            " int main() { return 0; }"
        )
        base = mem.address_of_global("t")
        assert mem.load(base, False) == 10
        assert mem.load(base + 4, False) == -20
        assert mem.load(base + 12, False) == 0  # zero fill
        assert mem.load(mem.address_of_global("f"), True) == 1.5

    def test_malloc_ranges_tracked(self):
        mem = self._memory("int main() { return 0; }")
        p1 = mem.malloc(16, "site1")
        p2 = mem.malloc(8, "site2")
        assert mem.object_at(p1) == "h:site1"
        assert mem.object_at(p1 + 15) == "h:site1"
        assert mem.object_at(p2) == "h:site2"
        assert p2 >= p1 + 16

    def test_malloc_zero_size_still_valid(self):
        mem = self._memory("int main() { return 0; }")
        p = mem.malloc(0, "s")
        assert mem.object_at(p) == "h:s"

    def test_store_load_roundtrip(self):
        mem = self._memory("int main() { return 0; }")
        p = mem.malloc(8, "s")
        mem.store(p, -12345)
        assert mem.load(p, False) == -12345
        mem.store(p, 2.25)
        assert mem.load(p, True) == 2.25

    def test_int_float_view_coercion(self):
        mem = self._memory("int main() { return 0; }")
        p = mem.malloc(8, "s")
        mem.store(p, 7)
        assert mem.load(p, True) == 7.0
        mem.store(p, 3.9)
        assert mem.load(p, False) == 3

    def test_default_zero(self):
        mem = self._memory("int main() { return 0; }")
        p = mem.malloc(8, "s")
        assert mem.load(p, False) == 0
        assert mem.load(p, True) == 0.0


class TestHelpers:
    def test_align(self):
        assert _align(0, 8) == 0
        assert _align(1, 8) == 8
        assert _align(8, 8) == 8
        assert _align(9, 4) == 12

    def test_wrap32_edges(self):
        assert _wrap32(2**31) == -(2**31)
        assert _wrap32(-(2**31) - 1) == 2**31 - 1
        assert _wrap32(2**32) == 0


class TestProfileData:
    def test_frequency_fn(self):
        profile = ProfileData()
        profile.record_block("f", "b")
        profile.record_block("f", "b")
        fn = profile.frequency_fn()
        assert fn("f", "b") == 2.0
        assert fn("f", "other") == 0.0

    def test_op_frequency(self):
        profile = ProfileData()
        profile.record_access(7, "g:a")
        profile.record_access(7, "g:a")
        profile.record_access(7, "g:b")
        assert profile.op_frequency(7) == 3
        assert profile.op_frequency(8) == 0

    def test_object_access_counts(self):
        profile = ProfileData()
        profile.record_access(1, "g:a")
        profile.record_access(2, "g:a")
        profile.record_access(2, "g:b")
        totals = profile.object_access_counts()
        assert totals["g:a"] == 2 and totals["g:b"] == 1
        assert profile.object_access_count("g:a") == 2

    def test_heap_sizes_accumulate(self):
        profile = ProfileData()
        profile.record_malloc("h:s", 16)
        profile.record_malloc("h:s", 16)
        assert profile.heap_sizes["h:s"] == 32

    def test_call_counts(self):
        src = """
        int f(int x) { return x; }
        int main() { return f(1) + f(2) + f(3); }
        """
        interp = Interpreter(compile_source(src, "t"))
        interp.run()
        assert interp.profile.call_counts["f"] == 3
        assert interp.profile.call_counts["main"] == 1
