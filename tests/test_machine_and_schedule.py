"""Tests for the machine model, dependence graphs, and the list scheduler."""

import pytest

from repro.ir import Constant, Function, GlobalAddress, IRBuilder, Opcode, Operation
from repro.ir.types import FLOAT, INT, PointerType
from repro.machine import (
    ClusterConfig,
    FUClass,
    InterclusterNetwork,
    Machine,
    four_cluster_machine,
    heterogeneous_machine,
    paper_cluster,
    single_cluster_machine,
    two_cluster_machine,
)
from repro.schedule import DependenceGraph, ListScheduler


class TestMachineModel:
    def test_paper_cluster_counts(self):
        c = paper_cluster()
        assert c.units(FUClass.INT) == 2
        assert c.units(FUClass.FLOAT) == 1
        assert c.units(FUClass.MEM) == 1
        assert c.units(FUClass.BRANCH) == 1
        assert c.total_units() == 5

    def test_two_cluster_preset(self):
        m = two_cluster_machine(move_latency=5)
        assert m.num_clusters == 2
        assert m.move_latency == 5
        assert not m.unified_memory

    def test_four_cluster_preset(self):
        assert four_cluster_machine().num_clusters == 4

    def test_single_cluster(self):
        m = single_cluster_machine()
        assert m.num_clusters == 1 and m.unified_memory

    def test_heterogeneous(self):
        m = heterogeneous_machine()
        assert m.units(0, FUClass.INT) == 4
        assert m.units(1, FUClass.INT) == 2

    def test_with_move_latency(self):
        m = two_cluster_machine(move_latency=5)
        m2 = m.with_move_latency(10)
        assert m2.move_latency == 10 and m.move_latency == 5

    def test_unified_partitioned_views(self):
        m = two_cluster_machine()
        assert m.as_unified().unified_memory
        assert not m.as_unified().as_partitioned().unified_memory

    def test_latencies(self):
        m = two_cluster_machine(move_latency=7)
        load = Operation(Opcode.LOAD, None, [Constant(0)])
        add = Operation(Opcode.ADD, None, [Constant(1), Constant(2)])
        mul = Operation(Opcode.MUL, None, [Constant(1), Constant(2)])
        fadd = Operation(Opcode.FADD, None, [Constant(1.0), Constant(2.0)])
        icm = Operation(Opcode.ICMOVE, None, [Constant(1)])
        assert m.latency_of(load) == 2
        assert m.latency_of(add) == 1
        assert m.latency_of(mul) == 3
        assert m.latency_of(fadd) == 4
        assert m.latency_of(icm) == 7

    def test_fu_class_mapping(self):
        m = two_cluster_machine()
        assert m.fu_class_of(Operation(Opcode.ADD, None, [])) is FUClass.INT
        assert m.fu_class_of(Operation(Opcode.FMUL, None, [])) is FUClass.FLOAT
        assert m.fu_class_of(Operation(Opcode.LOAD, None, [])) is FUClass.MEM
        assert m.fu_class_of(Operation(Opcode.BR, None, [])) is FUClass.BRANCH
        assert m.fu_class_of(Operation(Opcode.ICMOVE, None, [])) is None

    def test_network_validation(self):
        with pytest.raises(ValueError):
            InterclusterNetwork(-1)
        with pytest.raises(ValueError):
            InterclusterNetwork(1, 0)

    def test_machine_needs_clusters(self):
        with pytest.raises(ValueError):
            Machine([], InterclusterNetwork(1))


def build_block(builder_fn):
    """Run builder_fn(b) in a fresh function; return (func, entry block)."""
    func = Function("f", [], INT)
    b = IRBuilder(func)
    entry = b.new_block("entry")
    b.set_block(entry)
    builder_fn(b)
    if entry.terminator is None:
        b.ret(Constant(0, INT))
    return func, entry


class TestDependenceGraph:
    def test_flow_edges(self):
        def body(b):
            x = b.add(b.const(1), b.const(2))
            y = b.mul(x, b.const(3))
            b.ret(y)

        _, block = build_block(body)
        g = DependenceGraph(block, lambda op: 1)
        flows = [e for e in g.edges if e.kind == "flow"]
        # add->mul and mul->ret
        assert len(flows) == 2

    def test_anti_and_output_edges(self):
        def body(b):
            v = b.func.new_vreg(INT, "v")
            b.mov_to(v, b.const(1))
            u = b.add(v, b.const(1))  # use of v
            b.mov_to(v, b.const(2))  # redefinition: anti from use, output

        _, block = build_block(body)
        g = DependenceGraph(block, lambda op: 1)
        kinds = {e.kind for e in g.edges}
        assert "anti" in kinds and "output" in kinds

    def test_memory_ordering_conservative(self):
        def body(b):
            p = b.malloc(b.const(8), "s")
            b.store(b.const(1), p)
            b.load(p)

        _, block = build_block(body)
        g = DependenceGraph(block, lambda op: 2)
        mem = [e for e in g.edges if e.kind == "mem"]
        assert len(mem) >= 1  # store -> load (same address)

    def test_call_barrier(self):
        def body(b):
            g = GlobalAddress("g", INT)
            b.store(b.const(1), g)
            b.call("print_int", [b.const(1)], INT)
            b.load(g)

        _, block = build_block(body)
        graph = DependenceGraph(block, lambda op: 1)
        call_edges = [e for e in graph.edges if e.kind == "call"]
        assert len(call_edges) >= 2  # store->call and call->load

    def test_terminator_ordered_last(self):
        def body(b):
            b.add(b.const(1), b.const(2))

        _, block = build_block(body)
        g = DependenceGraph(block, lambda op: 1)
        term_uid = block.ops[-1].uid
        order_edges = [e for e in g.edges if e.dst == term_uid]
        assert len(order_edges) >= 1

    def test_asap_alap_slack(self):
        def body(b):
            x = b.add(b.const(1), b.const(2))       # cp head
            y = b.mul(x, b.const(3))                # serial after x
            z = b.add(b.const(4), b.const(5))       # parallel
            b.ret(b.add(y, z))

        _, block = build_block(body)
        g = DependenceGraph(block, lambda op: {
            Opcode.MUL: 3}.get(op.opcode, 1))
        asap = g.asap()
        alap = g.alap()
        for uid in asap:
            assert asap[uid] <= alap[uid]
        # The independent add has positive slack on its edge.
        slacks = [g.slack(e) for e in g.flow_edges()]
        assert any(s > 0 for s in slacks)
        assert any(s == 0 for s in slacks)  # critical path edges

    def test_height_monotone(self):
        def body(b):
            x = b.add(b.const(1), b.const(2))
            y = b.mul(x, b.const(3))
            b.ret(y)

        _, block = build_block(body)
        g = DependenceGraph(block, lambda op: 1)
        first, second = block.ops[0], block.ops[1]
        assert g.height(first.uid) > g.height(second.uid)

    def test_critical_path_length(self):
        def body(b):
            x = b.add(b.const(1), b.const(2))
            y = b.mul(x, b.const(3))
            b.ret(y)

        _, block = build_block(body)
        g = DependenceGraph(
            block, lambda op: {Opcode.MUL: 3}.get(op.opcode, 1)
        )
        assert g.critical_path_length() == 1 + 3 + 1  # add, mul, ret


class TestListScheduler:
    def schedule(self, body_fn, machine=None, clusters=None):
        machine = machine or two_cluster_machine(move_latency=5)
        func, block = build_block(body_fn)
        cluster_of = {}
        for i, op in enumerate(block.ops):
            if clusters is None:
                cluster_of[op.uid] = 0
            else:
                cluster_of[op.uid] = clusters[i]
        sched = ListScheduler(machine).schedule_block(block, cluster_of)
        return sched, block

    def test_dependences_respected(self):
        def body(b):
            x = b.add(b.const(1), b.const(2))
            y = b.mul(x, b.const(3))
            b.ret(y)

        sched, block = self.schedule(body)
        add, mul, ret = block.ops
        assert sched.issue_cycle[mul.uid] >= sched.issue_cycle[add.uid] + 1
        assert sched.issue_cycle[ret.uid] >= sched.issue_cycle[mul.uid] + 3

    def test_int_unit_limit_two_per_cluster(self):
        def body(b):
            for _ in range(6):
                b.add(b.const(1), b.const(2))

        sched, block = self.schedule(body)
        by_cycle = {}
        for op in block.ops[:-1]:
            by_cycle.setdefault(sched.issue_cycle[op.uid], 0)
            by_cycle[sched.issue_cycle[op.uid]] += 1
        assert max(by_cycle.values()) <= 2  # 2 INT units on cluster 0
        assert sched.length >= 3

    def test_two_clusters_double_throughput(self):
        def body(b):
            for _ in range(8):
                b.add(b.const(1), b.const(2))

        one, _ = self.schedule(body, clusters=[0] * 9)
        both, _ = self.schedule(body, clusters=[0, 1] * 4 + [0])
        assert both.length < one.length

    def test_memory_unit_limit(self):
        def body(b):
            g = GlobalAddress("g", INT)
            for _ in range(4):
                b.load(g)

        sched, block = self.schedule(body)
        cycles = sorted(
            sched.issue_cycle[op.uid]
            for op in block.ops
            if op.opcode is Opcode.LOAD
        )
        assert len(set(cycles)) == 4  # 1 mem unit: one load per cycle

    def test_bus_bandwidth_one_per_cycle(self):
        def body(b):
            for _ in range(3):
                v = b.mov(b.const(1))
                icm = Operation(
                    Opcode.ICMOVE, b.func.new_vreg(INT), [v],
                    attrs={"from": 0, "to": 1},
                )
                b.block.append(icm)

        sched, block = self.schedule(body)
        moves = [op for op in block.ops if op.is_icmove()]
        cycles = sorted(sched.issue_cycle[m.uid] for m in moves)
        assert len(set(cycles)) == 3
        assert sched.move_count == 3

    def test_icmove_latency_respected(self):
        machine = two_cluster_machine(move_latency=10)

        def body(b):
            v = b.mov(b.const(1))
            icm = Operation(
                Opcode.ICMOVE, b.func.new_vreg(INT), [v],
                attrs={"from": 0, "to": 1},
            )
            b.block.append(icm)
            b.add(icm.dest, b.const(1))

        sched, block = self.schedule(body, machine=machine, clusters=[0, 0, 1, 1])
        mov, icm, add, _ret = block.ops
        assert sched.issue_cycle[add.uid] >= sched.issue_cycle[icm.uid] + 10

    def test_length_counts_latency_drain(self):
        def body(b):
            x = b.fadd(b.const(1.0), b.const(2.0))  # latency 4
            b.ret(Constant(0, INT))

        sched, _ = self.schedule(body)
        assert sched.length >= 4

    def test_empty_block(self):
        func = Function("f", [], INT)
        block = func.add_block("empty")
        sched = ListScheduler(two_cluster_machine()).schedule_block(block, {})
        assert sched.length == 0

    def test_missing_assignment_raises(self):
        def body(b):
            b.add(b.const(1), b.const(2))

        func, block = build_block(body)
        with pytest.raises(KeyError):
            ListScheduler(two_cluster_machine()).schedule_block(block, {})

    def test_schedule_deterministic(self):
        def body(b):
            for i in range(10):
                b.add(b.const(i), b.const(1))

        s1, _ = self.schedule(body)
        s2, _ = self.schedule(body)
        assert s1.length == s2.length
