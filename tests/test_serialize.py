"""Round-trip tests for the exact IR serializer."""

import pytest

from repro.analysis import annotate_memory_ops
from repro.bench import get
from repro.ir import verify_module
from repro.ir.serialize import SerializeError, dumps, loads
from repro.lang import compile_source
from repro.profiler import Interpreter


def roundtrip(module):
    return loads(dumps(module))


def _canon(value):
    """Canonical identity of an operand (register names are cosmetic and
    intentionally not serialized)."""
    from repro.ir import Constant, FunctionRef, GlobalAddress, VirtualRegister

    if isinstance(value, VirtualRegister):
        return ("r", value.vid)
    if isinstance(value, Constant):
        return ("c", value.value, str(value.ty))
    if isinstance(value, GlobalAddress):
        return ("g", value.symbol)
    if isinstance(value, FunctionRef):
        return ("f", value.symbol)
    return ("?", str(value))


def modules_equal(a, b) -> bool:
    if set(a.globals) != set(b.globals):
        return False
    for name in a.globals:
        ga, gb = a.globals[name], b.globals[name]
        if str(ga.ty) != str(gb.ty) or ga.initializer != gb.initializer:
            return False
    if set(a.functions) != set(b.functions):
        return False
    for fname in a.functions:
        fa, fb = a.function(fname), b.function(fname)
        if [p.vid for p in fa.params] != [p.vid for p in fb.params]:
            return False
        if list(fa.blocks) != list(fb.blocks):
            return False
        for bname in fa.blocks:
            ba, bb = fa.block(bname), fb.block(bname)
            if len(ba) != len(bb):
                return False
            for oa, ob in zip(ba.ops, bb.ops):
                if oa.opcode is not ob.opcode:
                    return False
                if (oa.dest is None) != (ob.dest is None):
                    return False
                if oa.dest is not None and oa.dest.vid != ob.dest.vid:
                    return False
                if [_canon(s) for s in oa.srcs] != [_canon(s) for s in ob.srcs]:
                    return False
                if oa.targets != ob.targets:
                    return False
                for key in ("site", "callee", "from", "to", "mem_objects"):
                    if oa.attrs.get(key) != ob.attrs.get(key):
                        return False
    return True


SMALL = """
int N = 4;
int table[4] = {1, -2, 3, 4};
float scale = 2.5;
struct Pt { int x; float w; };
struct Pt origin;

int helper(int a, int *p) { return a + p[0]; }

int main() {
  int *h = malloc(N * sizeof(int));
  h[0] = 7;
  origin.x = 3;
  origin.w = 1.5;
  int s = helper(2, h) + table[1] + origin.x;
  print_int(s);
  return s;
}
"""


class TestRoundTrip:
    def test_small_module_structure(self):
        module = compile_source(SMALL, "small")
        assert modules_equal(module, roundtrip(module))

    def test_roundtrip_verifies(self):
        module = compile_source(SMALL, "small")
        verify_module(roundtrip(module))

    def test_roundtrip_executes_identically(self):
        module = compile_source(SMALL, "small")
        base = Interpreter(module)
        base.run()
        redone = Interpreter(roundtrip(module))
        redone.run()
        assert redone.profile.output == base.profile.output

    def test_annotations_survive(self):
        module = compile_source(SMALL, "small")
        annotate_memory_ops(module)
        again = roundtrip(module)
        originals = [
            op.mem_objects()
            for f in module for op in f.operations() if op.is_memory_access()
        ]
        restored = [
            op.mem_objects()
            for f in again for op in f.operations() if op.is_memory_access()
        ]
        assert originals == restored

    def test_double_roundtrip_stable(self):
        module = compile_source(SMALL, "small")
        once = dumps(roundtrip(module))
        assert once == dumps(loads(once))

    @pytest.mark.parametrize("name", ["rawcaudio", "fsed", "viterbi"])
    def test_benchmark_roundtrips(self, name):
        module = compile_source(get(name).source, name, unroll_factor=4,
                                if_convert=True)
        again = roundtrip(module)
        assert modules_equal(module, again)
        a, b = Interpreter(module), Interpreter(again)
        a.run(), b.run()
        assert a.profile.output == b.profile.output

    def test_fresh_registers_work_after_load(self):
        module = roundtrip(compile_source(SMALL, "small"))
        func = module.function("main")
        existing = {
            op.dest.vid for f in module for op in f.operations() if op.dest
        }
        from repro.ir.types import INT

        assert func.new_vreg(INT).vid not in existing


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(SerializeError, match="module header"):
            loads("func @f() -> i32 {\n}")

    def test_unknown_mnemonic(self):
        text = 'module "m"\nfunc @f() -> i32 {\nblock entry:\n  frobnicate 1\n}\n'
        with pytest.raises(SerializeError):
            loads(text)

    def test_unknown_struct_reference(self):
        text = 'module "m"\nglobal @g : struct.Nope\n'
        with pytest.raises(SerializeError, match="unknown struct"):
            loads(text)

    def test_op_outside_block(self):
        text = 'module "m"\nfunc @f() -> i32 {\n  ret 0\n}\n'
        with pytest.raises(SerializeError, match="outside block"):
            loads(text)

    def test_bad_type(self):
        text = 'module "m"\nglobal @g : i37\n'
        with pytest.raises(SerializeError, match="cannot parse type"):
            loads(text)
