"""Unit tests for the MiniC parser."""

import pytest

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse


def parse_expr(text):
    prog = parse(f"int main() {{ return {text}; }}")
    ret = prog.functions[0].body.stmts[0]
    assert isinstance(ret, ast.Return)
    return ret.value


def parse_stmts(text):
    prog = parse(f"int main() {{ {text} }}")
    return prog.functions[0].body.stmts


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.Binary) and e.op == "+"
        assert isinstance(e.rhs, ast.Binary) and e.rhs.op == "*"

    def test_precedence_shift_vs_compare(self):
        e = parse_expr("a << 2 < b")
        assert e.op == "<"
        assert isinstance(e.lhs, ast.Binary) and e.lhs.op == "<<"

    def test_precedence_bitwise_chain(self):
        e = parse_expr("a | b ^ c & d")
        assert e.op == "|"
        assert e.rhs.op == "^"
        assert e.rhs.rhs.op == "&"

    def test_logical_lowest(self):
        e = parse_expr("a == 1 && b == 2 || c")
        assert e.op == "||"
        assert e.lhs.op == "&&"

    def test_left_associativity(self):
        e = parse_expr("a - b - c")
        assert e.op == "-" and e.lhs.op == "-"

    def test_parentheses(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*" and e.lhs.op == "+"

    def test_unary_chain(self):
        e = parse_expr("-~!x")
        assert e.op == "-" and e.operand.op == "~" and e.operand.operand.op == "!"

    def test_deref_and_addressof(self):
        e = parse_expr("*p + &x")
        assert e.lhs.op == "*" and e.rhs.op == "&"

    def test_index_chains(self):
        e = parse_expr("a[i + 1]")
        assert isinstance(e, ast.Index)
        assert isinstance(e.index, ast.Binary)

    def test_field_access(self):
        dot = parse_expr("s.x")
        assert isinstance(dot, ast.Field) and not dot.arrow
        arrow = parse_expr("p->x")
        assert isinstance(arrow, ast.Field) and arrow.arrow

    def test_call_with_args(self):
        e = parse_expr("f(1, g(2), x)")
        assert isinstance(e, ast.Call) and len(e.args) == 3
        assert isinstance(e.args[1], ast.Call)

    def test_malloc_and_sizeof(self):
        e = parse_expr("malloc(4 * sizeof(int))")
        assert isinstance(e, ast.Malloc)
        assert isinstance(e.size.rhs, ast.SizeOf)

    def test_cast(self):
        e = parse_expr("(float)x")
        assert isinstance(e, ast.Cast)
        assert e.type_spec.base == "float"

    def test_cast_vs_parenthesized_expr(self):
        e = parse_expr("(x)")
        assert isinstance(e, ast.Ident)

    def test_ternary_right_assoc(self):
        e = parse_expr("a ? 1 : b ? 2 : 3")
        assert isinstance(e, ast.Ternary)
        assert isinstance(e.if_false, ast.Ternary)

    def test_assignment_expression(self):
        stmts = parse_stmts("int a; a = 1;")
        assert isinstance(stmts[1].expr, ast.Assign)

    def test_assignment_right_assoc(self):
        stmts = parse_stmts("int a; int b; a = b = 1;")
        inner = stmts[2].expr
        assert isinstance(inner.value, ast.Assign)


class TestStatements:
    def test_if_else(self):
        (s,) = parse_stmts("if (x) { return 1; } else { return 2; }")
        assert isinstance(s, ast.If) and s.orelse is not None

    def test_dangling_else(self):
        (s,) = parse_stmts("if (a) if (b) return 1; else return 2;")
        assert s.orelse is None
        assert s.then.orelse is not None

    def test_while(self):
        (s,) = parse_stmts("while (x) { x = x - 1; }")
        assert isinstance(s, ast.While)

    def test_do_while(self):
        (s,) = parse_stmts("do { x = 1; } while (x < 10);")
        assert isinstance(s, ast.DoWhile)

    def test_for_full(self):
        (s,) = parse_stmts("for (int i = 0; i < 10; i = i + 1) { }")
        assert isinstance(s, ast.For)
        assert isinstance(s.init, ast.VarDecl)

    def test_for_empty_clauses(self):
        (s,) = parse_stmts("for (;;) { break; }")
        assert s.init is None and s.cond is None and s.step is None

    def test_for_expr_init(self):
        (a, s) = parse_stmts("int i; for (i = 0; ; ) { break; }")
        assert isinstance(s.init, ast.ExprStmt)

    def test_break_continue(self):
        stmts = parse_stmts("while (1) { break; } while (1) { continue; }")
        assert isinstance(stmts[0].body.stmts[0], ast.Break)
        assert isinstance(stmts[1].body.stmts[0], ast.Continue)

    def test_return_void(self):
        prog = parse("void f() { return; }")
        assert prog.functions[0].body.stmts[0].value is None

    def test_nested_blocks(self):
        (s,) = parse_stmts("{ { int x; } }")
        assert isinstance(s, ast.Block)


class TestTopLevel:
    def test_global_scalar_with_init(self):
        prog = parse("int x = -5;")
        g = prog.globals[0]
        assert g.name == "x" and g.init == -5 and g.array_size is None

    def test_global_array_with_list(self):
        prog = parse("int tab[4] = {1, -2, 3, 4};")
        g = prog.globals[0]
        assert g.array_size == 4 and g.init == [1, -2, 3, 4]

    def test_global_float(self):
        prog = parse("float f = 2.5;")
        assert prog.globals[0].init == 2.5

    def test_global_pointer(self):
        prog = parse("int *p;")
        assert prog.globals[0].type_spec.pointer_depth == 1

    def test_struct_declaration(self):
        prog = parse("struct P { int x; float y; };")
        s = prog.structs[0]
        assert s.name == "P" and len(s.fields) == 2

    def test_struct_global(self):
        prog = parse("struct P { int x; }; struct P g;")
        g = prog.globals[0]
        assert g.type_spec.base == ("struct", "P")

    def test_function_params(self):
        prog = parse("int f(int a, float *b, int c[]) { return a; }")
        f = prog.functions[0]
        assert [p.name for p in f.params] == ["a", "b", "c"]
        assert f.params[2].type_spec.pointer_depth == 1  # array decays

    def test_void_param_list(self):
        prog = parse("int f(void) { return 0; }")
        assert prog.functions[0].params == []

    def test_array_size_must_be_literal(self):
        with pytest.raises(ParseError):
            parse("int x[n];")


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int main() { return 1 }")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse("int main() { return (1; }")

    def test_unexpected_token(self):
        with pytest.raises(ParseError):
            parse("int main() { return +; }")

    def test_missing_while_after_do(self):
        with pytest.raises(ParseError, match="while"):
            parse("int main() { do { } if (1); }")

    def test_error_has_location(self):
        with pytest.raises(ParseError) as exc:
            parse("int main() {\n  return ;;\n}")
        assert exc.value.loc is not None
