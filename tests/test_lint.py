"""Tests for the static-analysis layer: diagnostics model, lint runner,
IR lint rules, and the cross-phase partition validity checker."""

import json

import pytest

from repro.bench import get as get_benchmark
from repro.ir import (
    Constant,
    Function,
    FunctionRef,
    GlobalAddress,
    IRBuilder,
    Module,
    Opcode,
    Operation,
    VirtualRegister,
)
from repro.ir.types import INT, ArrayType, PointerType
from repro.lang import compile_source
from repro.lint import (
    Diagnostic,
    DiagnosticReport,
    PASS_REGISTRY,
    PartitionValidityError,
    LintPass,
    LintRunner,
    Severity,
    check_data_partition,
    check_memory_locks,
    check_moves,
    check_schedule,
    check_scheme_outcome,
    diagnose_lock_violations,
    lint_module,
)
from repro.analysis import annotate_memory_ops
from repro.analysis.objects import ObjectTable
from repro.machine import (
    ClusterConfig,
    FUClass,
    InterclusterNetwork,
    Machine,
    two_cluster_machine,
)
from repro.partition.bugalgo import BUG
from repro.partition.merges import MergedGroup, MergeResult
from repro.partition.rhop import RHOP, RHOPResult, record_infeasible_locks
from repro.pipeline import Pipeline, PreparedProgram
from repro.cli import main


# -- shared fixtures -----------------------------------------------------------------

THREE_ARRAYS = """
int a[8];
int b[8];
int c[8];
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 8; i = i + 1) {
    a[i] = i;
    b[i] = i + i;
    c[i] = a[i] + b[i];
    s = s + c[i];
  }
  print_int(s);
  return 0;
}
"""


def lopsided_machine():
    """Two clusters; cluster 1 has no memory unit at all."""
    full = ClusterConfig({FUClass.INT: 2, FUClass.FLOAT: 1,
                          FUClass.MEM: 1, FUClass.BRANCH: 1})
    memless = ClusterConfig({FUClass.INT: 2, FUClass.FLOAT: 1,
                             FUClass.MEM: 0, FUClass.BRANCH: 1})
    return Machine([full, memless], InterclusterNetwork(5, 1))


def single_load_module():
    mod = Module("m")
    mod.add_global("g", INT, 0)
    func = Function("main", [], INT)
    bld = IRBuilder(func)
    bld.set_block(bld.new_block("entry"))
    v = bld.load(GlobalAddress("g", INT))
    bld.ret(v)
    mod.add_function(func)
    annotate_memory_ops(mod)
    return mod


def op_by_opcode(func, opcode):
    for op in func.operations():
        if op.opcode is opcode:
            return op
    raise AssertionError(f"no {opcode} in {func.name}")


# -- diagnostics model ---------------------------------------------------------------

class TestDiagnostics:
    def test_severity_rank_orders_errors_first(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank

    def test_location_forms(self):
        assert Diagnostic(Severity.ERROR, "r", "m").location() == "<module>"
        assert Diagnostic(Severity.ERROR, "r", "m", func="f").location() == "f"
        d = Diagnostic(Severity.ERROR, "r", "m", func="f", block="b")
        assert d.location() == "f/b"

    def test_to_dict_omits_none_fields(self):
        d = Diagnostic(Severity.WARNING, "rule", "msg", func="f")
        assert d.to_dict() == {
            "severity": "warning", "rule": "rule", "message": "msg", "func": "f",
        }

    def test_render_includes_hint_op_and_phase(self):
        d = Diagnostic(Severity.ERROR, "r", "msg", func="f", block="b",
                       op="%v0 = mov 1", hint="fix it", phase="gdp")
        text = d.render()
        assert "error[r] f/b: msg" in text
        assert "%v0 = mov 1" in text
        assert "hint: fix it" in text
        assert "(phase: gdp)" in text

    def test_report_queries_and_summary(self):
        report = DiagnosticReport()
        report.warning("w-rule", "warn")
        report.error("e-rule", "err")
        report.info("i-rule", "note")
        assert report.has_errors
        assert len(report) == 3
        assert [d.rule for d in report.errors] == ["e-rule"]
        assert [d.rule for d in report.warnings] == ["w-rule"]
        assert report.by_rule("i-rule")[0].severity is Severity.INFO
        assert report.rules_fired() == ["w-rule", "e-rule", "i-rule"]
        assert report.summary() == "1 error(s), 1 warning(s), 1 note(s)"

    def test_sorted_puts_errors_before_warnings(self):
        report = DiagnosticReport()
        report.warning("b-rule", "later", func="a")
        report.error("a-rule", "first", func="z")
        ordered = [d.rule for d in report.sorted()]
        assert ordered == ["a-rule", "b-rule"]

    def test_render_text_empty(self):
        assert DiagnosticReport().render_text() == "no diagnostics"

    def test_golden_json_report(self):
        report = DiagnosticReport()
        report.warning(
            "dead-store", "definition of %v2 is overwritten before any use",
            func="main", block="entry", op="%v2 = mov 0",
            hint="delete the operation or reorder the defs",
        )
        report.error(
            "lock-violation",
            "memory operation placed on cluster 1 but its object(s) {g:a} "
            "are homed on cluster 0",
            func="main", block="entry", op="%v1 = load %v0", phase="rhop",
        )
        expected = """\
{
  "diagnostics": [
    {
      "block": "entry",
      "func": "main",
      "message": "memory operation placed on cluster 1 but its object(s) {g:a} are homed on cluster 0",
      "op": "%v1 = load %v0",
      "phase": "rhop",
      "rule": "lock-violation",
      "severity": "error"
    },
    {
      "block": "entry",
      "func": "main",
      "hint": "delete the operation or reorder the defs",
      "message": "definition of %v2 is overwritten before any use",
      "op": "%v2 = mov 0",
      "rule": "dead-store",
      "severity": "warning"
    }
  ],
  "summary": {
    "errors": 1,
    "total": 2,
    "warnings": 1
  }
}"""
        assert report.to_json() == expected

    def test_json_is_deterministic_across_insert_order(self):
        a, b = DiagnosticReport(), DiagnosticReport()
        a.warning("w", "x", func="f")
        a.error("e", "y", func="g")
        b.error("e", "y", func="g")
        b.warning("w", "x", func="f")
        assert a.to_json() == b.to_json()

    def test_partition_validity_error_message(self):
        report = DiagnosticReport()
        report.error("object-home-range", "object g:a homed on cluster 99")
        exc = PartitionValidityError(report, phase="gdp")
        assert "after phase 'gdp'" in str(exc)
        assert "object-home-range" in str(exc)
        assert exc.report is report


# -- runner / registry ---------------------------------------------------------------

class TestRunner:
    def test_default_registry_contains_all_passes(self):
        assert {"verify", "unreachable", "dead-code", "uninit",
                "globals", "pointsto"} <= set(PASS_REGISTRY)

    def test_only_selects_a_subset(self):
        module = compile_source("int main() { return 0; }", "m")
        runner = LintRunner(only=["dead-code"])
        assert [p.name for p in runner.passes] == ["dead-code"]
        runner.run(module)  # runs without the other passes

    def test_unknown_pass_name_rejected(self):
        with pytest.raises(ValueError, match="unknown lint pass"):
            LintRunner(only=["bogus"])

    def test_custom_pass_registration(self):
        class AlwaysWarn(LintPass):
            name = "always"
            description = "test pass"

            def run(self, ctx):
                yield Diagnostic(Severity.WARNING, "always", "hello")

        module = compile_source("int main() { return 0; }", "m")
        report = LintRunner(passes=[]).register(AlwaysWarn()).run(module)
        assert [d.rule for d in report] == ["always"]

    def test_analysis_context_caches(self):
        from repro.lint import LintContext

        module = compile_source("int main() { return 0; }", "m")
        ctx = LintContext(module)
        func = module.function("main")
        assert ctx.cfg(func) is ctx.cfg(func)
        assert ctx.defuse(func) is ctx.defuse(func)
        assert ctx.pointsto() is ctx.pointsto()


# -- IR lint rules: one deliberately broken fixture per rule -------------------------

class TestIRRules:
    def test_clean_program_has_no_errors(self):
        report = lint_module(compile_source("int main() { return 0; }", "m"))
        assert not report.has_errors

    def test_ir_verify_surfaces_verifier_errors(self):
        mod = single_load_module()
        mod.function("main").entry.insert(0, Operation(
            Opcode.CALL, None,
            [FunctionRef("print_int", INT), Constant(1), Constant(2)],
            attrs={"callee": "print_int"},
        ))
        report = lint_module(mod)
        diags = report.by_rule("ir-verify")
        assert diags and diags[0].severity is Severity.ERROR
        assert diags[0].func == "main"
        assert "expected 1" in diags[0].message

    def test_unreachable_block(self):
        func = Function("f", [], INT)
        func.add_block("entry").append(Operation(Opcode.RET, srcs=[Constant(0)]))
        func.add_block("island").append(Operation(Opcode.RET, srcs=[Constant(1)]))
        mod = Module("m")
        mod.add_function(func)
        report = lint_module(mod, only=["unreachable"])
        diags = report.by_rule("unreachable-block")
        assert [d.block for d in diags] == ["island"]

    def test_dead_store(self):
        src = "int main() { int x; x = 1; x = 2; return x; }"
        report = lint_module(compile_source(src, "m"))
        assert report.by_rule("dead-store")
        assert not report.has_errors

    def test_never_read_def(self):
        src = "int main() { int x; x = 5; return 0; }"
        report = lint_module(compile_source(src, "m"))
        assert report.by_rule("never-read-def")

    def test_uninitialized_read_is_error(self):
        func = Function("f", [], INT)
        func.add_block("entry").append(
            Operation(Opcode.RET, srcs=[VirtualRegister(7, INT)])
        )
        mod = Module("m")
        mod.add_function(func)
        report = lint_module(mod, only=["uninit"])
        diags = report.by_rule("uninitialized-read")
        assert diags and diags[0].severity is Severity.ERROR

    def test_maybe_uninitialized_on_partial_paths(self):
        # diamond: x defined only on the left branch, read at the join
        func = Function("f", [], INT)
        bld = IRBuilder(func)
        entry = bld.new_block("entry")
        left = bld.new_block("left")
        right = bld.new_block("right")
        join = bld.new_block("join")
        x = func.new_vreg(INT)
        bld.set_block(entry)
        cond = bld.mov(Constant(1))
        bld.cbr(cond, left, right)
        left.append(Operation(Opcode.MOV, x, [Constant(1)]))
        left.append(Operation(Opcode.BR, targets=["join"]))
        right.append(Operation(Opcode.BR, targets=["join"]))
        join.append(Operation(Opcode.RET, srcs=[x]))
        mod = Module("m")
        mod.add_function(func)
        report = lint_module(mod, only=["uninit"])
        diags = report.by_rule("maybe-uninitialized")
        assert [d.block for d in diags] == ["join"]
        assert diags[0].severity is Severity.WARNING
        assert not report.by_rule("uninitialized-read")

    def test_unused_global(self):
        mod = single_load_module()
        mod.add_global("never_touched", ArrayType(INT, 4), None)
        report = lint_module(mod, only=["globals"])
        diags = report.by_rule("unused-global")
        assert [d for d in diags if "never_touched" in d.message]

    def _pointer_soup_module(self):
        mod = Module("m")
        mod.add_global("a", ArrayType(INT, 8), None)
        mod.add_global("b", ArrayType(INT, 8), None)
        func = Function("main", [], INT)
        bld = IRBuilder(func)
        entry = bld.new_block("entry")
        bld.set_block(entry)
        ptr_t = PointerType(INT)
        sel = func.new_vreg(ptr_t)
        entry.append(Operation(Opcode.SELECT, sel, [
            Constant(1), GlobalAddress("a", ptr_t), GlobalAddress("b", ptr_t),
        ]))
        both = func.new_vreg(INT)
        entry.append(Operation(Opcode.LOAD, both, [sel]))
        # a "pointer" laundered through an int conversion: untrackable
        zero = func.new_vreg(INT)
        entry.append(Operation(Opcode.MOV, zero, [Constant(0)]))
        laundered = func.new_vreg(ptr_t)
        entry.append(Operation(Opcode.ITOF, laundered, [zero]))
        lost = func.new_vreg(INT)
        entry.append(Operation(Opcode.LOAD, lost, [laundered]))
        entry.append(Operation(Opcode.RET, srcs=[both]))
        mod.add_function(func)
        return mod

    def test_pointsto_unknown_and_imprecise(self):
        report = lint_module(self._pointer_soup_module(), only=["pointsto"])
        assert report.by_rule("pointsto-unknown")
        assert report.by_rule("pointsto-imprecise")
        assert not report.has_errors  # precision findings are warnings

    def test_every_shipped_benchmark_is_error_free(self):
        for name in ("fir", "sobel", "viterbi"):
            bench = get_benchmark(name)
            report = lint_module(compile_source(bench.source, bench.name))
            assert not report.has_errors, report.render_text()


# -- partition validity checker ------------------------------------------------------

class TestDataPartitionChecker:
    def _table(self):
        module = compile_source(THREE_ARRAYS, "m")
        annotate_memory_ops(module)
        return module, ObjectTable(module)

    def test_valid_partition_is_clean(self):
        _, objects = self._table()
        home = {"g:a": 0, "g:b": 1, "g:c": 0}
        report = check_data_partition(objects, home, two_cluster_machine())
        assert len(report) == 0

    def test_missing_home_flagged(self):
        _, objects = self._table()
        report = check_data_partition(
            objects, {"g:a": 0, "g:b": 1}, two_cluster_machine()
        )
        diags = report.by_rule("object-home-missing")
        assert diags and "g:c" in diags[0].message

    def test_out_of_range_home_flagged(self):
        _, objects = self._table()
        home = {"g:a": 0, "g:b": 1, "g:c": 99}
        report = check_data_partition(objects, home, two_cluster_machine())
        assert report.by_rule("object-home-range")

    def test_homed_twice_split_merge_group(self):
        _, objects = self._table()
        merge = MergeResult()
        group = MergedGroup(0)
        group.object_ids = {"g:a", "g:b"}
        merge.groups[0] = group
        home = {"g:a": 0, "g:b": 1, "g:c": 0}
        report = check_data_partition(
            objects, home, two_cluster_machine(), merge=merge
        )
        diags = report.by_rule("object-home-conflict")
        assert diags and diags[0].severity is Severity.ERROR
        assert "homed twice" in diags[0].message

    def test_size_imbalance_warning_then_error(self):
        _, objects = self._table()  # three 32-byte arrays, 96 bytes total
        machine = two_cluster_machine()
        # two of three objects on one side: over the 1.0x cap (48), but
        # within one atomic object (32) of it -> warning
        report = check_data_partition(
            objects, {"g:a": 0, "g:b": 0, "g:c": 1}, machine,
            size_imbalance=1.0,
        )
        diags = report.by_rule("size-imbalance")
        assert diags and diags[0].severity is Severity.WARNING
        # everything on one side: beyond any granularity slack -> error
        report = check_data_partition(
            objects, {"g:a": 0, "g:b": 0, "g:c": 0}, machine,
            size_imbalance=1.0,
        )
        assert any(
            d.severity is Severity.ERROR
            for d in report.by_rule("size-imbalance")
        )

    def test_memory_capacity_overflow(self):
        _, objects = self._table()
        tiny = ClusterConfig(
            {FUClass.INT: 2, FUClass.FLOAT: 1, FUClass.MEM: 1,
             FUClass.BRANCH: 1},
            memory_bytes=16,
        )
        machine = Machine([tiny, tiny], InterclusterNetwork(5, 1))
        report = check_data_partition(
            objects, {"g:a": 0, "g:b": 1, "g:c": 1}, machine
        )
        assert report.by_rule("memory-capacity")


class TestLockChecker:
    def test_wrong_home_placement_flagged(self):
        module = single_load_module()
        load = op_by_opcode(module.function("main"), Opcode.LOAD)
        ret = op_by_opcode(module.function("main"), Opcode.RET)
        assignment = {load.uid: 1, ret.uid: 1}
        report = check_memory_locks(module, assignment, {"g:g": 0})
        diags = report.by_rule("lock-violation")
        assert diags and diags[0].phase == "rhop"
        assert "cluster 1" in diags[0].message and "cluster 0" in diags[0].message

    def test_honoured_locks_are_clean(self):
        module = single_load_module()
        load = op_by_opcode(module.function("main"), Opcode.LOAD)
        ret = op_by_opcode(module.function("main"), Opcode.RET)
        report = check_memory_locks(
            module, {load.uid: 0, ret.uid: 1}, {"g:g": 0}
        )
        assert len(report) == 0


class TestMoveChecker:
    def _two_op_module(self):
        func = Function("f", [], INT)
        bld = IRBuilder(func)
        bld.set_block(bld.new_block("entry"))
        v = bld.mov(Constant(1))
        bld.ret(v)
        mod = Module("m")
        mod.add_function(func)
        mov = op_by_opcode(func, Opcode.MOV)
        ret = op_by_opcode(func, Opcode.RET)
        return mod, mov, ret

    def test_cut_edge_without_move_flagged(self):
        mod, mov, ret = self._two_op_module()
        report = check_moves(
            mod, {mov.uid: 0, ret.uid: 1}, two_cluster_machine()
        )
        diags = report.by_rule("cut-edge-unmoved")
        assert diags and diags[0].severity is Severity.ERROR

    def test_same_cluster_flow_is_clean(self):
        mod, mov, ret = self._two_op_module()
        report = check_moves(
            mod, {mov.uid: 0, ret.uid: 0}, two_cluster_machine()
        )
        assert len(report) == 0

    def test_unassigned_op_flagged(self):
        mod, mov, ret = self._two_op_module()
        report = check_moves(mod, {mov.uid: 0}, two_cluster_machine())
        assert report.by_rule("unassigned-op")

    def test_infeasible_resources_flagged(self):
        module = single_load_module()
        load = op_by_opcode(module.function("main"), Opcode.LOAD)
        ret = op_by_opcode(module.function("main"), Opcode.RET)
        report = check_moves(
            module, {load.uid: 1, ret.uid: 1}, lopsided_machine()
        )
        diags = report.by_rule("infeasible-resources")
        assert diags and "mem" in diags[0].message

    def _with_icmove(self, src_cluster, dst_cluster, assigned):
        func = Function("f", [], INT)
        bld = IRBuilder(func)
        bld.set_block(bld.new_block("entry"))
        v = bld.mov(Constant(1))
        copy = func.new_vreg(INT)
        icmove = Operation(
            Opcode.ICMOVE, copy, [v],
            attrs={"from": src_cluster, "to": dst_cluster},
        )
        bld.block.append(icmove)
        bld.ret(copy)
        mod = Module("m")
        mod.add_function(func)
        mov = op_by_opcode(func, Opcode.MOV)
        ret = op_by_opcode(func, Opcode.RET)
        assignment = {mov.uid: 0, icmove.uid: assigned, ret.uid: assigned}
        return mod, assignment

    def test_correct_icmove_bridges_cut_edge(self):
        mod, assignment = self._with_icmove(0, 1, 1)
        report = check_moves(mod, assignment, two_cluster_machine())
        assert len(report) == 0

    def test_icmove_endpoint_mismatch_flagged(self):
        mod, assignment = self._with_icmove(0, 1, 0)
        report = check_moves(mod, assignment, two_cluster_machine())
        assert report.by_rule("icmove-mismatch")

    def test_useless_same_cluster_icmove_warned(self):
        mod, assignment = self._with_icmove(0, 0, 0)
        report = check_moves(mod, assignment, two_cluster_machine())
        diags = report.by_rule("useless-icmove")
        assert diags and diags[0].severity is Severity.WARNING

    def test_icmove_wrong_source_cluster_flagged(self):
        mod, assignment = self._with_icmove(1, 1, 1)
        report = check_moves(mod, assignment, two_cluster_machine())
        assert report.by_rule("icmove-bad-source")


class TestScheduleChecker:
    def test_schedule_failure_on_unitless_cluster(self):
        module = single_load_module()
        load = op_by_opcode(module.function("main"), Opcode.LOAD)
        ret = op_by_opcode(module.function("main"), Opcode.RET)
        report = check_schedule(
            module, {load.uid: 1, ret.uid: 0}, lopsided_machine()
        )
        diags = report.by_rule("schedule-failure")
        assert diags and diags[0].severity is Severity.ERROR

    def test_feasible_schedule_is_clean(self):
        module = single_load_module()
        load = op_by_opcode(module.function("main"), Opcode.LOAD)
        ret = op_by_opcode(module.function("main"), Opcode.RET)
        report = check_schedule(
            module, {load.uid: 0, ret.uid: 0}, two_cluster_machine()
        )
        assert len(report) == 0


class TestLockReporting:
    """RHOP and BUG share one infeasible-lock reporting path."""

    def test_record_infeasible_locks_helper(self):
        module = single_load_module()
        load = op_by_opcode(module.function("main"), Opcode.LOAD)
        result = RHOPResult()
        record_infeasible_locks(
            lopsided_machine(), module.function("main"), {load.uid: 1}, result
        )
        assert result.lock_violations == [("main", load.uid, 1)]

    def test_rhop_records_and_attributes_phase(self):
        module = single_load_module()
        load = op_by_opcode(module.function("main"), Opcode.LOAD)
        rhop = RHOP(lopsided_machine())
        result = rhop.partition_module(module, mem_locks={load.uid: 1})
        assert result.phase == "rhop"
        assert result.assignment[load.uid] == 1  # lock honoured regardless
        assert ("main", load.uid, 1) in result.lock_violations
        report = diagnose_lock_violations(result, module)
        diags = report.by_rule("infeasible-lock")
        assert diags and diags[0].phase == "rhop"

    def test_bug_honours_lock_and_records_violation(self):
        # Regression: BUG used to fall back to cluster 0 silently when the
        # locked cluster had no unit of the op's FU class.
        module = single_load_module()
        load = op_by_opcode(module.function("main"), Opcode.LOAD)
        bug = BUG(lopsided_machine())
        result = bug.partition_module(module, mem_locks={load.uid: 1})
        assert result.phase == "bug"
        assert result.assignment[load.uid] == 1
        assert ("main", load.uid, 1) in result.lock_violations
        report = diagnose_lock_violations(result, module)
        assert report.by_rule("infeasible-lock")[0].phase == "bug"

    def test_feasible_locks_record_nothing(self):
        module = single_load_module()
        load = op_by_opcode(module.function("main"), Opcode.LOAD)
        for algo in (RHOP(two_cluster_machine()), BUG(two_cluster_machine())):
            result = algo.partition_module(module, mem_locks={load.uid: 1})
            assert result.lock_violations == []
            assert result.assignment[load.uid] == 1


# -- pipeline integration ------------------------------------------------------------

class TestPipelineValidation:
    @pytest.fixture(scope="class")
    def prepared(self):
        return PreparedProgram.from_source(THREE_ARRAYS, "m")

    def test_all_schemes_validate_cleanly(self, prepared):
        pipe = Pipeline(validate=True)
        for scheme in ("unified", "gdp", "profilemax", "naive"):
            outcome = pipe.run(prepared, scheme)
            assert outcome.cycles > 0

    def test_mutated_gdp_home_rejected_by_validation(self, prepared):
        pipe = Pipeline()
        good = pipe.run(prepared, "gdp").object_home
        bad = dict(good)
        bad[sorted(bad)[0]] = 99
        with pytest.raises(PartitionValidityError) as exc:
            pipe.run(prepared, "gdp", object_home=bad, validate=True)
        assert exc.value.phase == "gdp"
        assert exc.value.report.by_rule("object-home-range")

    def test_missing_home_rejected_by_validation(self, prepared):
        pipe = Pipeline()
        good = pipe.run(prepared, "gdp").object_home
        bad = dict(good)
        bad.pop(sorted(bad)[0])
        with pytest.raises(PartitionValidityError) as exc:
            pipe.run(prepared, "gdp", object_home=bad, validate=True)
        assert exc.value.report.by_rule("object-home-missing")

    def test_post_hoc_mutated_home_caught_by_lock_check(self, prepared):
        outcome = Pipeline().run(prepared, "gdp")
        flipped = {
            obj: (1 - c) for obj, c in outcome.object_home.items()
        }
        report = check_memory_locks(
            outcome.module, outcome.assignment, flipped,
            prepared.object_access_counts(),
        )
        assert report.by_rule("lock-violation")

    def test_check_scheme_outcome_clean_on_real_run(self, prepared):
        outcome = Pipeline().run(prepared, "gdp")
        report = check_scheme_outcome(prepared, outcome)
        assert not report.has_errors, report.render_text()

    def test_validation_off_by_default_allows_bad_home(self, prepared):
        pipe = Pipeline()
        good = pipe.run(prepared, "gdp").object_home
        bad = dict(good)
        bad.pop(sorted(bad)[0])
        pipe.run(prepared, "gdp", object_home=bad)  # no raise


# -- CLI -----------------------------------------------------------------------------

class TestLintCLI:
    @pytest.fixture()
    def clean_file(self, tmp_path):
        path = tmp_path / "clean.mc"
        path.write_text("int main() { return 0; }\n")
        return str(path)

    @pytest.fixture()
    def warny_file(self, tmp_path):
        path = tmp_path / "warny.mc"
        path.write_text("int main() { int x; x = 1; x = 2; return x; }\n")
        return str(path)

    def test_lint_clean_program(self, clean_file, capsys):
        assert main(["lint", clean_file]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_lint_warnings_exit_zero_without_strict(self, warny_file, capsys):
        assert main(["lint", warny_file]) == 0
        assert "dead-store" in capsys.readouterr().out

    def test_lint_strict_fails_on_warnings(self, warny_file, capsys):
        assert main(["lint", warny_file, "--strict"]) == 1

    def test_lint_json_output(self, warny_file, capsys):
        assert main(["lint", warny_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0
        assert any(
            d["rule"] == "dead-store" for d in payload["diagnostics"]
        )

    def test_lint_only_selects_pass(self, warny_file, capsys):
        assert main(["lint", warny_file, "--only", "globals"]) == 0
        assert "dead-store" not in capsys.readouterr().out

    def test_lint_unknown_pass_exits_2(self, warny_file, capsys):
        assert main(["lint", warny_file, "--only", "bogus"]) == 2
        assert "unknown lint pass" in capsys.readouterr().err

    def test_lint_example_script_and_extension_resolution(self, capsys):
        assert main(["lint", "examples/quickstart"]) == 0
        assert main(["lint", "examples/quickstart.py"]) == 0
        out = capsys.readouterr().out
        assert "0 error" in out or "no diagnostics" in out

    def test_lint_verify_partition(self, capsys):
        assert main([
            "lint", "examples/quickstart", "--verify-partition",
            "--scheme", "gdp",
        ]) == 0

    def test_partition_verify_flag(self, clean_file, capsys):
        assert main([
            "partition", clean_file, "--verify-partition", "--scheme", "gdp",
        ]) == 0
        assert "cycles:" in capsys.readouterr().out
