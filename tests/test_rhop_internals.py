"""White-box tests for RHOP internals: region ordering, anchors,
reverse anchors, and coarsening."""

from repro.analysis import annotate_memory_ops
from repro.analysis.cfg import CFG
from repro.lang import compile_source
from repro.machine import two_cluster_machine
from repro.partition import RHOP, RHOPConfig
from repro.partition.rhop import RHOPResult


def compiled(src):
    module = compile_source(src, "t")
    annotate_memory_ops(module)
    return module


LOOPY = """
int a[16];
int main() {
  int s = 0;
  for (int i = 0; i < 16; i = i + 1) { s = s + a[i]; }
  return s;
}
"""


class TestRegionOrder:
    def test_hottest_block_first_with_profile(self):
        module = compiled(LOOPY)
        func = module.function("main")
        freqs = {}
        for block in func:
            freqs[block.name] = 100.0 if "bb1" in block.name else 1.0
        rhop = RHOP(
            two_cluster_machine().as_unified(),
            block_freq=lambda f, b: freqs.get(b, 1.0),
        )
        order = rhop._region_order(func, CFG(func))
        assert order[0] == "bb1"

    def test_static_fallback_prefers_loops(self):
        module = compiled(LOOPY)
        func = module.function("main")
        rhop = RHOP(two_cluster_machine().as_unified())
        order = rhop._region_order(func, CFG(func))
        # The entry block (depth 0) must not come first: loop blocks do.
        assert order[0] != "entry"

    def test_order_covers_all_blocks(self):
        module = compiled(LOOPY)
        func = module.function("main")
        rhop = RHOP(two_cluster_machine().as_unified())
        order = rhop._region_order(func, CFG(func))
        assert set(order) == set(func.blocks)


class TestAnchors:
    def test_external_values_become_anchors(self):
        module = compiled(LOOPY)
        func = module.function("main")
        rhop = RHOP(two_cluster_machine().as_unified())
        # Pretend register 0 (s) lives on cluster 1.
        loop_block = None
        for block in func:
            for op in block.ops:
                for src in op.register_srcs():
                    defined_here = any(
                        o.dest is not None and o.dest.vid == src.vid
                        for o in block.ops[: block.index_of(op)]
                    )
                    if not defined_here:
                        loop_block = block
                        external_vid = src.vid
                        break
                if loop_block:
                    break
            if loop_block:
                break
        anchors = rhop._block_anchors(func, loop_block, {external_vid: 1})
        assert any(a.cluster == 1 for a in anchors)

    def test_unhomed_values_make_no_anchor(self):
        module = compiled(LOOPY)
        func = module.function("main")
        rhop = RHOP(two_cluster_machine().as_unified())
        block = func.entry
        assert rhop._block_anchors(func, block, {}) == []


class TestReverseAnchors:
    def test_pending_uses_recorded(self):
        module = compiled(LOOPY)
        func = module.function("main")
        rhop = RHOP(two_cluster_machine().as_unified())
        pending = {}
        block = max(func, key=len)
        cluster_of = {op.uid: 1 for op in block.ops}
        rhop._record_pending_uses(block, cluster_of, pending)
        assert pending, "external uses should be recorded"
        assert all(1 in per for per in pending.values())

    def test_reverse_anchor_points_at_majority_cluster(self):
        module = compiled(LOOPY)
        func = module.function("main")
        rhop = RHOP(two_cluster_machine().as_unified())
        entry = func.entry
        defined = [op for op in entry.ops if op.dest is not None]
        assert defined
        vid = defined[0].dest.vid
        pending = {vid: {1: 5.0, 0: 1.0}}
        anchors = rhop._reverse_anchors(entry, {}, pending)
        target = [a for a in anchors if a.key[1] == vid]
        assert target and target[0].cluster == 1

    def test_homed_register_gets_no_reverse_anchor(self):
        module = compiled(LOOPY)
        func = module.function("main")
        rhop = RHOP(two_cluster_machine().as_unified())
        entry = func.entry
        defined = [op for op in entry.ops if op.dest is not None]
        vid = defined[0].dest.vid
        anchors = rhop._reverse_anchors(
            entry, {vid: 0}, {vid: {1: 5.0}}
        )
        assert not any(a.key[1] == vid for a in anchors)


class TestGlobalPasses:
    def test_two_passes_not_worse_than_one(self):
        from repro.pipeline import PreparedProgram, run_unified

        prep = PreparedProgram.from_source(LOOPY, "t")
        machine = two_cluster_machine(move_latency=5)
        one = run_unified(prep, machine, RHOPConfig(global_passes=1))
        two = run_unified(prep, machine, RHOPConfig(global_passes=2))
        assert two.cycles <= one.cycles * 1.10

    def test_full_use_map_counts(self):
        module = compiled(LOOPY)
        func = module.function("main")
        rhop = RHOP(two_cluster_machine().as_unified())
        result = rhop.partition_function(func)
        use_map = rhop._full_use_map(func, result.assignment)
        assert use_map
        for per in use_map.values():
            assert all(c in (0, 1) for c in per)


class TestCoarsening:
    def test_levels_shrink(self):
        from repro.schedule import DependenceGraph
        import random

        module = compiled(LOOPY)
        func = module.function("main")
        machine = two_cluster_machine()
        rhop = RHOP(machine)
        block = max(func, key=len)
        graph = DependenceGraph(block, machine.latency_of)
        base = rhop._mandatory_groups(block, {})
        levels = rhop._coarsen(graph, base, {}, random.Random(1))
        sizes = [len(level) for level in levels]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] == len(base)

    def test_groups_partition_ops(self):
        module = compiled(LOOPY)
        func = module.function("main")
        machine = two_cluster_machine()
        rhop = RHOP(machine)
        block = max(func, key=len)
        groups = rhop._mandatory_groups(block, {})
        all_ops = set()
        for members in groups.values():
            assert not (all_ops & members)
            all_ops |= members
        assert all_ops == {op.uid for op in block.ops}
