"""Execution engine: RunConfig, artifact cache, parallel sweeps, shims."""

import json
import os
import warnings

import pytest

from repro.exec import (
    SCHEMA_VERSION,
    ArtifactCache,
    ParallelRunner,
    RunConfig,
    RunConfigError,
    canonical_key,
    load_or_prepare,
    lookup_cached_outcome,
    run_prepared_scheme,
)
from repro.exec.artifacts import (
    outcome_key_material,
    prepared_key_material,
)
from repro.pipeline import Pipeline, PreparedProgram
from repro.resilience import ResilientPipeline

SOURCE = """
int N = 12;
int a[12];
int b[12];
int main() {
  int i;
  for (i = 0; i < N; i = i + 1) { a[i] = i * 3; }
  for (i = 0; i < N; i = i + 1) { b[i] = a[i] + a[(i + 1) % N]; }
  print_int(b[5]);
  return 0;
}
"""

#: The same program with one constant changed — a real IR mutation.
MUTATED_SOURCE = SOURCE.replace("i * 3", "i * 5")


@pytest.fixture(scope="module")
def tiny_prepared():
    return PreparedProgram.from_source(SOURCE, "tiny")


# -- RunConfig ----------------------------------------------------------------


class TestRunConfig:
    def test_round_trip(self):
        cfg = RunConfig(scheme="profilemax", latency=10, seed=3,
                        pointsto_tier="field", jobs=2, cache="readonly")
        assert RunConfig.from_json(cfg.to_json()) == cfg

    def test_defaults_round_trip(self):
        assert RunConfig.from_json(RunConfig().to_json()) == RunConfig()

    def test_unknown_field_rejected(self):
        data = RunConfig().to_dict()
        data["frobnicate"] = True
        with pytest.raises(ValueError, match="frobnicate"):
            RunConfig.from_dict(data)

    def test_future_schema_version_rejected(self):
        data = RunConfig().to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            RunConfig.from_dict(data)

    @pytest.mark.parametrize("field,value", [
        ("scheme", "bogus"),
        ("pointsto_tier", "bogus"),
        ("machine", "bogus"),
        ("cache", "bogus"),
        ("retries", -1),
        ("jobs", 0),
        ("max_seconds", -1.0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            RunConfig(**{field: value})

    def test_replace_is_fresh_frozen_copy(self):
        cfg = RunConfig()
        other = cfg.replace(scheme="naive")
        assert other.scheme == "naive" and cfg.scheme == "gdp"
        with pytest.raises(Exception):
            cfg.scheme = "naive"  # frozen

    def test_cache_key_material_excludes_how_knobs(self):
        material = RunConfig(jobs=7, retries=5, cache="refresh").cache_key_material()
        assert "jobs" not in material and "retries" not in material
        assert material["scheme"] == "gdp" and material["latency"] == 5

    def test_cacheable_results_gates(self):
        assert RunConfig().cacheable_results
        assert not RunConfig(cache="off").cacheable_results
        assert not RunConfig(max_seconds=1.0).cacheable_results
        assert not RunConfig(fault_spec="raise:gdp").cacheable_results

    def test_effective_jobs(self):
        assert RunConfig(jobs=3).effective_jobs == 3
        assert RunConfig().effective_jobs >= 1

    def test_build_machine_presets(self):
        assert RunConfig(machine="two_cluster", latency=10).build_machine().move_latency == 10
        assert RunConfig(machine="four_cluster").build_machine().num_clusters == 4
        assert RunConfig(machine="single_cluster").build_machine().num_clusters == 1


class TestRunConfigError:
    """The structured rejection contract service boundaries rely on:
    every refusal is a RunConfigError naming the offending field(s)."""

    def test_is_a_value_error(self):
        assert issubclass(RunConfigError, ValueError)

    def test_unknown_fields_named(self):
        data = RunConfig().to_dict()
        data["frobnicate"] = True
        data["zap"] = 1
        with pytest.raises(RunConfigError) as exc:
            RunConfig.from_dict(data)
        assert exc.value.fields == ("frobnicate", "zap")

    def test_schema_version_named(self):
        with pytest.raises(RunConfigError) as exc:
            RunConfig.from_dict({"schema_version": SCHEMA_VERSION + 1})
        assert exc.value.fields == ("schema_version",)

    @pytest.mark.parametrize("field,value", [
        ("scheme", "bogus"),
        ("pointsto_tier", "bogus"),
        ("profile", "bogus"),
        ("machine", "bogus"),
        ("cache", "bogus"),
        ("retries", -1),
        ("jobs", 0),
        ("max_seconds", -1.0),
    ])
    def test_bad_values_name_their_field(self, field, value):
        with pytest.raises(RunConfigError) as exc:
            RunConfig(**{field: value})
        assert exc.value.fields == (field,)

    def test_wrong_json_type_wrapped_not_type_error(self):
        with pytest.raises(RunConfigError, match="malformed"):
            RunConfig.from_dict({"retries": "many"})

    def test_non_dict_rejected(self):
        with pytest.raises(RunConfigError):
            RunConfig.from_dict(["not", "a", "dict"])


# -- Legacy keyword shims -----------------------------------------------------


class TestLegacyKwargShims:
    def test_pipeline_validate_warns(self):
        with pytest.warns(DeprecationWarning, match="RunConfig.validate"):
            pipe = Pipeline(validate=True)
        assert pipe.validate is True

    def test_pipeline_pointsto_tier_warns(self):
        with pytest.warns(DeprecationWarning, match="pointsto_tier"):
            pipe = Pipeline(pointsto_tier="field")
        assert pipe.pointsto_tier == "field"

    def test_resilient_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="ResilientPipeline"):
            pipe = ResilientPipeline(retries=2, fallback=False)
        assert pipe.retries == 2 and pipe.fallback is False

    def test_prepared_from_source_tier_warns(self):
        with pytest.warns(DeprecationWarning, match="pointsto_tier"):
            PreparedProgram.from_source(SOURCE, "tiny", pointsto_tier="field")

    def test_from_config_does_not_warn(self):
        cfg = RunConfig(validate=True, pointsto_tier="field", retries=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            pipe = Pipeline.from_config(cfg)
            res = ResilientPipeline.from_config(cfg)
            PreparedProgram.from_source(SOURCE, "tiny", config=cfg)
        assert pipe.validate and pipe.pointsto_tier == "field"
        assert res.retries == 2 and res.seed == 0

    def test_config_and_legacy_kwargs_conflict(self):
        with pytest.raises(ValueError):
            Pipeline(validate=True, config=RunConfig())
        with pytest.raises(ValueError):
            ResilientPipeline(retries=1, config=RunConfig())

    def test_legacy_defaults_preserved(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            pipe = Pipeline()
            res = ResilientPipeline()
        assert pipe.validate is False and pipe.config.cache == "off"
        assert res.validate is True and res.retries == 1 and res.fallback


# -- Artifact cache -----------------------------------------------------------


class TestArtifactCache:
    def test_prepared_miss_then_hit(self, tmp_path):
        cfg = RunConfig(cache_dir=str(tmp_path))
        cache = ArtifactCache(cfg.cache_dir, cfg.cache)
        _p1, hash1, status1 = load_or_prepare(SOURCE, "tiny", cfg, cache)
        _p2, hash2, status2 = load_or_prepare(SOURCE, "tiny", cfg, cache)
        assert (status1, status2) == ("miss", "hit")
        assert hash1 == hash2
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_ir_mutation_invalidates(self, tmp_path):
        cfg = RunConfig(cache_dir=str(tmp_path))
        cache = ArtifactCache(cfg.cache_dir, cfg.cache)
        _p, hash1, _ = load_or_prepare(SOURCE, "tiny", cfg, cache)
        _p, hash2, status = load_or_prepare(MUTATED_SOURCE, "tiny", cfg, cache)
        assert status == "miss", "a mutated program must never hit"
        assert hash1 != hash2, "IR mutation must change the module hash"

    def test_outcome_roundtrip_preserves_result(self, tmp_path, tiny_prepared):
        cfg = RunConfig(cache_dir=str(tmp_path))
        cache = ArtifactCache(cfg.cache_dir, cfg.cache)
        machine = cfg.build_machine()
        fresh, s1 = run_prepared_scheme(tiny_prepared, machine, cfg, "gdp", cache)
        warm, s2 = run_prepared_scheme(tiny_prepared, machine, cfg, "gdp", cache)
        assert (s1, s2) == ("miss", "hit")
        assert warm.cycles == fresh.cycles
        assert warm.dynamic_moves == fresh.dynamic_moves
        assert warm.object_home == fresh.object_home
        assert warm.scheme == "gdp" and warm.module.op_count() > 0
        assert len(warm.assignment) == len(fresh.assignment)

    def test_seed_and_machine_in_outcome_key(self, tiny_prepared):
        machine = RunConfig().build_machine()
        base = outcome_key_material("abc", machine, "andersen", "gdp", 0)
        seeded = outcome_key_material("abc", machine, "andersen", "gdp", 7)
        other = outcome_key_material(
            "abc", RunConfig(latency=1).build_machine(), "andersen", "gdp", 0
        )
        assert canonical_key(base) != canonical_key(seeded)
        assert canonical_key(base) != canonical_key(other)

    def test_stale_schema_entry_dropped(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), "on")
        material = prepared_key_material("src", "x", "andersen")
        cache.store("prepared", material, {"payload": 1})
        key = canonical_key(material)
        path = cache._path("prepared", key)
        entry = json.load(open(path))
        entry["schema"] = SCHEMA_VERSION + 1
        json.dump(entry, open(path, "w"))
        assert cache.load("prepared", material) is None
        assert cache.stale == 1
        assert not os.path.exists(path), "stale entries are deleted"

    def test_corrupt_entry_quarantined(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), "on")
        material = prepared_key_material("src", "x", "andersen")
        cache.store("prepared", material, {"payload": 1})
        path = cache._path("prepared", canonical_key(material))
        with open(path, "w") as fh:
            fh.write("not json{")
        assert cache.load("prepared", material) is None
        assert cache.corrupt == 1 and cache.quarantined == 1
        assert not os.path.exists(path)

    def test_policies(self, tmp_path):
        material = prepared_key_material("src", "x", "andersen")
        on = ArtifactCache(str(tmp_path), "on")
        assert on.store("prepared", material, {"v": 1})
        readonly = ArtifactCache(str(tmp_path), "readonly")
        assert readonly.load("prepared", material) == {"v": 1}
        assert not readonly.store("prepared", material, {"v": 2})
        refresh = ArtifactCache(str(tmp_path), "refresh")
        assert refresh.load("prepared", material) is None  # forced recompute
        assert refresh.store("prepared", material, {"v": 3})
        off = ArtifactCache(str(tmp_path), "off")
        assert off.load("prepared", material) is None
        assert not off.store("prepared", material, {"v": 4})

    def test_stats_gc_clear(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), "on")
        for i in range(3):
            cache.store(
                "prepared",
                prepared_key_material(f"src{i}", "x", "andersen"),
                {"v": i},
            )
        stats = cache.stats()
        assert stats["entries"] == 3 and stats["disk"]["prepared"]["entries"] == 3
        assert cache.gc(max_age_days=1)["removed"] == 0
        assert cache.gc(max_bytes=0)["removed"] == 3
        cache.store(
            "prepared", prepared_key_material("z", "x", "andersen"), {"v": 9}
        )
        assert cache.clear() == 1
        assert cache.stats()["entries"] == 0


class TestCacheIntegrity:
    """Every load verifies the entry's SHA-256 digest; corruption is
    quarantined (kept for forensics, out of the lookup path) and the
    artifact recomputes — self-healing, never a crash or a wrong answer.
    """

    def _store_one(self, tmp_path, payload=None):
        cache = ArtifactCache(str(tmp_path), "on")
        material = prepared_key_material("src", "x", "andersen")
        cache.store("prepared", material, payload or {"payload": 1})
        path = cache._path("prepared", canonical_key(material))
        return cache, material, path

    def test_byte_flip_anywhere_is_detected(self, tmp_path):
        from repro.exec.cache import entry_digest

        cache, material, path = self._store_one(tmp_path)
        entry = json.load(open(path))
        assert entry["digest"] == entry_digest(entry)
        # Flip a value *outside* the payload — still caught, because the
        # digest covers the whole entry, not just the payload.
        entry["created"] = entry.get("created", 0) + 1
        json.dump(entry, open(path, "w"))
        assert cache.load("prepared", material) is None
        assert cache.corrupt == 1 and cache.quarantined == 1

    def test_quarantine_preserves_the_evidence(self, tmp_path):
        cache, material, path = self._store_one(tmp_path)
        original = open(path, "rb").read()
        damaged = bytearray(original)
        damaged[len(damaged) // 2] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(damaged))
        assert cache.load("prepared", material) is None
        qdir = os.path.join(str(tmp_path), "quarantine")
        quarantined = os.listdir(qdir)
        assert quarantined == [os.path.basename(path)]
        kept = open(os.path.join(qdir, quarantined[0]), "rb").read()
        assert kept == bytes(damaged)

    def test_pre_digest_entry_is_stale_not_corrupt(self, tmp_path):
        # Entries written before the digest upgrade lack the field:
        # they recompute (stale), they are not treated as damage.
        cache, material, path = self._store_one(tmp_path)
        entry = json.load(open(path))
        del entry["digest"]
        json.dump(entry, open(path, "w"))
        assert cache.load("prepared", material) is None
        assert cache.stale == 1 and cache.quarantined == 0

    def test_corruption_self_heals_on_restore(self, tmp_path):
        cache, material, path = self._store_one(tmp_path)
        with open(path, "w") as fh:
            fh.write("}{")
        assert cache.load("prepared", material) is None  # quarantined
        assert cache.store("prepared", material, {"payload": 1})
        assert cache.load("prepared", material) == {"payload": 1}

    def test_quarantine_in_stats_and_cleared(self, tmp_path):
        cache, material, path = self._store_one(tmp_path)
        with open(path, "w") as fh:
            fh.write("}{")
        cache.load("prepared", material)
        stats = cache.stats()
        assert stats["session"]["corrupt"] == 1
        assert stats["quarantine"]["entries"] == 1
        assert stats["quarantine"]["bytes"] > 0
        # The quarantine is part of the store: clear() empties it too.
        cache.clear()
        assert cache.stats()["quarantine"] == {"entries": 0, "bytes": 0}

    def test_run_cell_recomputes_through_corruption(self, tmp_path):
        from repro.exec.engine import run_cell

        spec = {"bench": "tiny", "source": SOURCE,
                "config": {"cache": "on", "cache_dir": str(tmp_path)}}
        fresh = run_cell(dict(spec))
        # Damage every stored artifact, then re-run: digests catch all
        # of it, and the recomputed cell is identical.
        for dirpath, _dirs, files in os.walk(os.path.join(str(tmp_path),
                                                          "objects")):
            for name in files:
                target = os.path.join(dirpath, name)
                blob = bytearray(open(target, "rb").read())
                blob[len(blob) // 2] ^= 0xFF
                with open(target, "wb") as fh:
                    fh.write(bytes(blob))
        healed = run_cell(dict(spec))
        assert healed["cycles"] == fresh["cycles"]
        assert healed["dynamic_moves"] == fresh["dynamic_moves"]
        assert healed["status"] == fresh["status"]
        cache = ArtifactCache(str(tmp_path), "on")
        assert cache.stats()["quarantine"]["entries"] >= 1


def _hammer_one_cache_dir(args):
    """Pool worker for the multi-process cache race test: store, gc with
    a grace window, read back.  Returns how many just-written entries a
    concurrent eviction managed to lose (must be zero)."""
    root, worker_id, rounds = args
    cache = ArtifactCache(root, "on")
    lost = 0
    for i in range(rounds):
        material = {"writer": worker_id, "round": i}
        payload = {"writer": worker_id, "round": i}
        cache.store("prepared", material, payload)
        # Aggressive concurrent eviction: size budget zero would delete
        # everything, but the grace window must protect entries other
        # processes just wrote and are about to read back.
        cache.gc(max_bytes=0, grace_seconds=120.0)
        if cache.load("prepared", material) != payload:
            lost += 1
    return lost


class TestCacheConcurrency:
    """Satellite 1: gc/eviction racing a concurrent writer must never
    delete a just-written entry (generation grace + store lock)."""

    def test_multiprocess_writers_survive_concurrent_gc(self, tmp_path):
        from concurrent.futures import ProcessPoolExecutor

        args = [(str(tmp_path), worker, 10) for worker in range(4)]
        with ProcessPoolExecutor(max_workers=4) as pool:
            lost = list(pool.map(_hammer_one_cache_dir, args))
        assert lost == [0, 0, 0, 0]
        # Every write really landed (nothing silently dropped either).
        assert ArtifactCache(str(tmp_path), "on").stats()["entries"] == 40

    def test_grace_window_protects_fresh_entries(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), "on")
        material = prepared_key_material("fresh", "x", "andersen")
        cache.store("prepared", material, {"v": 1})
        result = cache.gc(max_bytes=0, grace_seconds=3600.0)
        assert result == {"removed": 0, "kept": 1}
        assert cache.load("prepared", material) == {"v": 1}
        # Without the window the same budget evicts it.
        result = cache.gc(max_bytes=0)
        assert result["removed"] == 1
        assert cache.load("prepared", material) is None

    def test_grace_never_shields_stale_schema(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), "on")
        material = prepared_key_material("stale", "x", "andersen")
        cache.store("prepared", material, {"v": 1})
        key = canonical_key(material)
        path = cache._path("prepared", key)
        with open(path) as fh:
            entry = json.load(fh)
        entry["schema"] = SCHEMA_VERSION - 1
        with open(path, "w") as fh:
            json.dump(entry, fh)
        result = cache.gc(grace_seconds=3600.0)
        assert result["removed"] == 1  # schema mismatch trumps freshness

    def test_size_eviction_is_least_recently_used(self, tmp_path):
        import time as _time

        cache = ArtifactCache(str(tmp_path), "on")
        materials = [
            prepared_key_material(f"s{i}", "x", "andersen") for i in range(3)
        ]
        for i, material in enumerate(materials):
            cache.store("prepared", material, {"v": i})
        # Everything was written "long ago"...
        old = _time.time() - 1000.0
        paths = [
            cache._path("prepared", canonical_key(m)) for m in materials
        ]
        for path in paths:
            os.utime(path, (old, old))
        # ...then entry 0 is *used*, which refreshes its recency.
        assert cache.load("prepared", materials[0]) == {"v": 0}
        budget = os.path.getsize(paths[0])
        result = cache.gc(max_bytes=budget)
        assert result["removed"] == 2
        assert cache.load("prepared", materials[0]) == {"v": 0}
        assert cache.load("prepared", materials[1]) is None
        assert cache.load("prepared", materials[2]) is None

    def test_eviction_counter_and_stats_keys(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), "on")
        for i in range(2):
            cache.store(
                "prepared",
                prepared_key_material(f"e{i}", "x", "andersen"),
                {"v": i},
            )
        cache.gc(max_bytes=0)
        assert cache.evictions == 2
        cache.store(
            "prepared", prepared_key_material("e9", "x", "andersen"), {"v": 9}
        )
        cache.clear()
        assert cache.evictions == 3
        stats = cache.stats()
        assert stats["session"]["evictions"] == 3
        assert "hit_ratio" in stats

    def test_stats_reports_shards(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), "on")
        for i in range(8):
            cache.store(
                "prepared",
                prepared_key_material(f"sh{i}", "x", "andersen"),
                {"v": i},
            )
        stats = cache.stats()
        assert 1 <= stats["disk"]["prepared"]["shards"] <= 8


class TestLookupCachedOutcome:
    def test_job_keyed_probe(self, tmp_path):
        cfg = RunConfig(cache_dir=str(tmp_path))
        assert lookup_cached_outcome(SOURCE, "tiny", cfg) is None
        from repro.exec.engine import run_cell

        cell = run_cell(
            {"bench": "tiny", "source": SOURCE, "config": cfg.to_dict()}
        )
        assert cell["status"] == "ok"
        payload = lookup_cached_outcome(SOURCE, "tiny", cfg)
        assert payload is not None
        assert payload["eval"]["cycles"] == cell["cycles"]
        # Result-affecting knobs change the probe's answer...
        assert lookup_cached_outcome(
            SOURCE, "tiny", cfg.replace(seed=5)
        ) is None
        # ...and non-cacheable configs never probe at all.
        assert lookup_cached_outcome(
            SOURCE, "tiny", cfg.replace(fault_spec="raise:gdp")
        ) is None

    def test_probe_never_writes(self, tmp_path):
        cfg = RunConfig(cache_dir=str(tmp_path))
        lookup_cached_outcome(SOURCE, "tiny", cfg)
        assert ArtifactCache(str(tmp_path), "on").stats()["entries"] == 0


# -- Pipeline on the engine ---------------------------------------------------


class TestPipelineCachePath:
    def test_run_all_served_from_cache(self, tmp_path, tiny_prepared, monkeypatch):
        cfg = RunConfig(cache_dir=str(tmp_path))
        first = Pipeline.from_config(cfg).run_all(tiny_prepared)
        # Second pipeline must answer entirely from the artifact store:
        # recomputing is made impossible.
        import repro.pipeline.schemes as schemes

        def boom(*a, **k):
            raise AssertionError("cache miss: run_scheme was called")

        monkeypatch.setattr(schemes, "run_scheme", boom)
        second = Pipeline.from_config(cfg).run_all(tiny_prepared)
        for name, outcome in first.items():
            assert second[name].cycles == outcome.cycles

    def test_custom_partitioner_config_bypasses_cache(self, tmp_path, tiny_prepared):
        from repro.partition.rhop import RHOPConfig

        cfg = RunConfig(cache_dir=str(tmp_path))
        pipe = Pipeline.from_config(cfg, rhop_config=RHOPConfig())
        assert not pipe._cache_usable()
        outcomes = pipe.run_all(tiny_prepared, ["unified"])
        assert outcomes["unified"].cycles > 0
        assert ArtifactCache(str(tmp_path), "on").stats()["entries"] == 0


# -- Parallel sweeps ----------------------------------------------------------


class TestParallelRunner:
    def test_serial_and_parallel_byte_identical(self, tmp_path):
        sources = {"tiny": SOURCE}
        serial = ParallelRunner(
            RunConfig(cache_dir=str(tmp_path / "serial"))
        ).sweep(["tiny"], schemes=("unified", "gdp"), sources=sources, jobs=1)
        parallel = ParallelRunner(
            RunConfig(cache_dir=str(tmp_path / "parallel"))
        ).sweep(["tiny"], schemes=("unified", "gdp"), sources=sources, jobs=2)
        assert serial.jobs == 1 and parallel.jobs == 2
        assert serial.to_json(deterministic=True) == parallel.to_json(
            deterministic=True
        )
        assert [c["status"] for c in serial.cells] == ["ok", "ok"]

    def test_warm_sweep_hits_cache(self, tmp_path):
        runner = ParallelRunner(RunConfig(cache_dir=str(tmp_path)))
        sources = {"tiny": SOURCE}
        cold = runner.sweep(["tiny"], schemes=("unified", "gdp"),
                            sources=sources, jobs=1)
        warm = runner.sweep(["tiny"], schemes=("unified", "gdp"),
                            sources=sources, jobs=1)
        assert cold.cache_hit_ratio("outcome") == 0.0
        assert warm.cache_hit_ratio("outcome") == 1.0
        for i, cell in enumerate(warm.cells):
            assert cell["cycles"] == cold.cells[i]["cycles"]

    def test_failed_cell_degrades_not_kills(self, tmp_path):
        cfg = RunConfig(
            cache_dir=str(tmp_path), fault_spec="seed=3;raise:unified",
            fallback=False, retries=0,
        )
        result = ParallelRunner(cfg).sweep(
            ["tiny"], schemes=("unified", "gdp"),
            sources={"tiny": SOURCE}, jobs=1,
        )
        by_scheme = {c["scheme"]: c for c in result.cells}
        assert by_scheme["unified"]["status"] == "failed"
        assert by_scheme["unified"]["error"]
        assert by_scheme["gdp"]["status"] == "ok"
        assert result.counts() == {"ok": 1, "degraded": 0, "failed": 1}

    def test_fallback_cell_reports_degraded(self, tmp_path):
        cfg = RunConfig(
            cache_dir=str(tmp_path), fault_spec="seed=3;raise:gdp",
            fallback=True, retries=0,
        )
        result = ParallelRunner(cfg).sweep(
            ["tiny"], schemes=("gdp",), sources={"tiny": SOURCE}, jobs=1
        )
        cell = result.cells[0]
        assert cell["status"] == "degraded"
        assert cell["ran_as"] == "profilemax"
        assert result.summary()["fallbacks"] == 1

    def test_unknown_bench_fails_cell(self, tmp_path):
        result = ParallelRunner(
            RunConfig(cache_dir=str(tmp_path))
        ).sweep(["no-such-bench"], schemes=("unified",), jobs=1)
        assert result.cells[0]["status"] == "failed"

    def test_sweep_report_merges_cache_and_speedup_columns(self, tmp_path):
        runner = ParallelRunner(RunConfig(cache_dir=str(tmp_path)))
        result = runner.sweep(["tiny"], schemes=("unified", "gdp"),
                              sources={"tiny": SOURCE}, jobs=1)
        payload = result.to_dict()
        assert payload["jobs"] == 1
        assert payload["wall_seconds"] > 0
        assert payload["cache"]["outcome"]["miss"] == 2
        assert "speedup" in payload
        table = result.render_table()
        assert "cache" in table and "speedup" in table


# -- CLI ----------------------------------------------------------------------


class TestCli:
    @pytest.fixture()
    def demo_file(self, tmp_path):
        path = tmp_path / "demo.mc"
        path.write_text(SOURCE)
        return str(path)

    def test_config_show_json_round_trips(self, capsys):
        from repro.cli import main

        assert main(["config", "show", "--format", "json", "--seed", "9",
                     "--pointsto", "field", "--jobs", "2"]) == 0
        cfg = RunConfig.from_json(capsys.readouterr().out)
        assert cfg.seed == 9 and cfg.pointsto_tier == "field" and cfg.jobs == 2

    def test_config_show_text(self, capsys):
        from repro.cli import main

        assert main(["config", "show"]) == 0
        out = capsys.readouterr().out
        assert "scheme" in out and "cache" in out

    def test_partition_warm_cache_and_exit_codes(self, demo_file, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        argv = ["partition", demo_file, "--cache", "on",
                "--cache-dir", cache_dir]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[0] == second.splitlines()[0]
        stats = ArtifactCache(cache_dir, "on").stats()
        assert stats["disk"]["prepared"]["entries"] == 1
        assert stats["disk"]["outcome"]["entries"] == 1

    def test_partition_fallback_exits_degraded(self, demo_file, capsys):
        from repro.cli import main

        code = main(["partition", demo_file, "--fallback", "--retries", "0",
                     "--fault-spec", "seed=3;raise:gdp"])
        out = capsys.readouterr().out
        assert code == 1, out
        assert "fallback from gdp" in out

    def test_partition_exhausted_exits_hard(self, demo_file, capsys):
        from repro.cli import main

        code = main(["partition", demo_file, "--retries", "0",
                     "--scheme", "unified",
                     "--fault-spec", "seed=3;raise:unified"])
        assert code == 2

    def test_cache_cli_stats_gc_clear(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path)
        cache = ArtifactCache(cache_dir, "on")
        cache.store("prepared",
                    prepared_key_material("s", "x", "andersen"), {"v": 1})
        assert main(["cache", "stats", "--cache-dir", cache_dir,
                     "--format", "json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert main(["cache", "gc", "--cache-dir", cache_dir,
                     "--max-bytes", "0"]) == 0
        assert "removed 1" in capsys.readouterr().out
        cache.store("prepared",
                    prepared_key_material("s2", "x", "andersen"), {"v": 2})
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert ArtifactCache(cache_dir, "on").stats()["entries"] == 0

    def test_cache_gc_grace_seconds_flag(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path)
        cache = ArtifactCache(cache_dir, "on")
        cache.store("prepared",
                    prepared_key_material("g", "x", "andersen"), {"v": 1})
        assert main(["cache", "gc", "--cache-dir", cache_dir,
                     "--max-bytes", "0", "--grace-seconds", "3600"]) == 0
        assert "removed 0" in capsys.readouterr().out
        assert ArtifactCache(cache_dir, "on").stats()["entries"] == 1

    def test_bench_all_sweep(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["bench", "rawcaudio", "--all", "--jobs", "1",
                     "--cache", "on", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "speedup" in out and "rawcaudio" in out


# -- RunReport cache events ---------------------------------------------------


class TestReportCacheEvents:
    def test_cache_events_recorded_and_scrubbed(self):
        from repro.resilience import RunReport

        report = RunReport()
        report.record_cache("outcome", "hit")
        report.record_run("gdp", ["gdp"])
        report.record_final("gdp", "gdp", "ok")
        assert report.cache_events()[0]["status"] == "hit"
        full = report.to_dict()
        deterministic = report.to_dict(deterministic=True)
        assert any(e["kind"] == "cache" for e in full["events"])
        assert not any(
            e["kind"] == "cache" for e in deterministic["events"]
        ), "cache locality must not leak into deterministic serialisation"
