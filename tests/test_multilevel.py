"""Tests for the multilevel graph partitioner (METIS substitute)."""

import pytest

from repro.partition import MultilevelPartitioner, PartitionGraph, partition_balance


def two_cliques(n=8, bridge_weight=0.5):
    """Two n-cliques joined by one light edge: the canonical min-cut case."""
    g = PartitionGraph(1)
    for i in range(2 * n):
        g.add_node(i, (1.0,))
    for base in (0, n):
        for i in range(base, base + n):
            for j in range(i + 1, base + n):
                g.add_edge(i, j, 10.0)
    g.add_edge(0, n, bridge_weight)
    return g


class TestBasics:
    def test_empty_graph(self):
        assert MultilevelPartitioner(k=2).partition(PartitionGraph(1)) == {}

    def test_k1_all_zero(self):
        g = two_cliques(4)
        assignment = MultilevelPartitioner(k=1).partition(g)
        assert set(assignment.values()) == {0}

    def test_assignment_covers_all_nodes(self):
        g = two_cliques(6)
        assignment = MultilevelPartitioner(k=2).partition(g)
        assert set(assignment) == set(g.weights)
        assert set(assignment.values()) <= {0, 1}

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MultilevelPartitioner(k=0)

    def test_imbalance_dims_must_match(self):
        g = PartitionGraph(2)
        g.add_node(0, (1.0, 1.0))
        with pytest.raises(ValueError):
            MultilevelPartitioner(k=2, imbalance=(1.1,)).partition(g)

    def test_edge_to_unknown_node(self):
        g = PartitionGraph(1)
        g.add_node(0, (1.0,))
        with pytest.raises(KeyError):
            g.add_edge(0, 99)

    def test_self_edges_ignored(self):
        g = PartitionGraph(1)
        g.add_node(0, (1.0,))
        g.add_edge(0, 0)
        assert g.adj[0] == {}


class TestQuality:
    def test_finds_natural_min_cut(self):
        g = two_cliques(8)
        assignment = MultilevelPartitioner(k=2, seed=3).partition(g)
        # Each clique should land wholly on one side.
        left = {assignment[i] for i in range(8)}
        right = {assignment[i] for i in range(8, 16)}
        assert len(left) == 1 and len(right) == 1
        assert left != right
        assert g.cut_weight(assignment) == 0.5

    def test_balance_respected(self):
        g = two_cliques(8)
        assignment = MultilevelPartitioner(k=2, imbalance=(1.1,)).partition(g)
        loads = partition_balance(g, assignment, 2)
        assert abs(loads[0][0] - loads[1][0]) <= 2

    def test_star_graph_keeps_center_with_leaves(self):
        g = PartitionGraph(1)
        g.add_node("hub", (1.0,))
        for i in range(10):
            g.add_node(i, (1.0,))
            g.add_edge("hub", i, 5.0)
        assignment = MultilevelPartitioner(k=2).partition(g)
        hub_side = assignment["hub"]
        with_hub = sum(1 for i in range(10) if assignment[i] == hub_side)
        assert with_hub >= 4  # as many leaves as balance allows

    def test_weighted_balance(self):
        g = PartitionGraph(1)
        g.add_node("big", (100.0,))
        for i in range(10):
            g.add_node(i, (10.0,))
        assignment = MultilevelPartitioner(k=2, imbalance=(1.2,)).partition(g)
        loads = partition_balance(g, assignment, 2)
        total = 200.0
        assert max(loads[0][0], loads[1][0]) <= 1.2 * total / 2 + 1e-9

    def test_multi_constraint(self):
        g = PartitionGraph(2)
        for i in range(8):
            # dim0 weight on even nodes, dim1 weight on odd nodes
            g.add_node(i, (10.0, 0.0) if i % 2 == 0 else (0.0, 10.0))
        assignment = MultilevelPartitioner(
            k=2, imbalance=(1.3, 1.3)
        ).partition(g)
        loads = partition_balance(g, assignment, 2)
        for d in range(2):
            assert max(loads[0][d], loads[1][d]) <= 1.3 * 40 / 2 + 1e-9

    def test_four_way(self):
        g = PartitionGraph(1)
        for i in range(32):
            g.add_node(i, (1.0,))
        for i in range(0, 32, 8):
            for a in range(i, i + 8):
                for b in range(a + 1, i + 8):
                    g.add_edge(a, b, 3.0)
        assignment = MultilevelPartitioner(k=4, imbalance=(1.25,)).partition(g)
        assert set(assignment.values()) == {0, 1, 2, 3}
        loads = partition_balance(g, assignment, 4)
        assert max(l[0] for l in loads) <= 10


class TestFixedNodes:
    def test_fixed_nodes_stay(self):
        g = two_cliques(6)
        g.fix(0, 1)
        g.fix(6, 0)
        assignment = MultilevelPartitioner(k=2).partition(g)
        assert assignment[0] == 1
        assert assignment[6] == 0

    def test_fixed_pull_neighbors(self):
        g = PartitionGraph(1)
        for i in range(6):
            g.add_node(i, (1.0,))
        for i in range(5):
            g.add_edge(i, i + 1, 10.0)
        g.fix(0, 1)
        assignment = MultilevelPartitioner(k=2).partition(g)
        assert assignment[0] == 1
        # chain neighbors mostly follow
        assert assignment[1] == 1


class TestDeterminism:
    def test_same_seed_same_result(self):
        g1, g2 = two_cliques(8), two_cliques(8)
        p = MultilevelPartitioner(k=2, seed=42)
        assert p.partition(g1) == p.partition(g2)

    def test_restart_count_validation(self):
        with pytest.raises(ValueError):
            MultilevelPartitioner(k=2, restarts=0)

    def test_more_restarts_never_worse_cut(self):
        g = two_cliques(10, bridge_weight=2.0)
        one = MultilevelPartitioner(k=2, seed=5, restarts=1).partition(g)
        many = MultilevelPartitioner(k=2, seed=5, restarts=6).partition(g)
        assert g.cut_weight(many) <= g.cut_weight(one)
