"""Tests for CFG, dominators, loops, liveness, def-use, and call graph."""

from repro.analysis import (
    CFG,
    CallGraph,
    DefUse,
    DominatorTree,
    Liveness,
    LoopInfo,
)
from repro.lang import compile_source


def func_of(src, name="main"):
    return compile_source(src, "t").function(name)


LOOP_SRC = """
int main() {
  int s = 0;
  for (int i = 0; i < 10; i = i + 1) {
    for (int j = 0; j < 10; j = j + 1) {
      s = s + j;
    }
  }
  return s;
}
"""

DIAMOND_SRC = """
int main() {
  int x = 1;
  int y;
  if (x) { y = 2; } else { y = 3; }
  return y;
}
"""


class TestCFG:
    def test_preds_and_succs_consistent(self):
        func = func_of(DIAMOND_SRC)
        cfg = CFG(func)
        for name in func.blocks:
            for succ in cfg.successors(name):
                assert name in cfg.predecessors(succ)

    def test_entry_has_no_preds(self):
        cfg = CFG(func_of(DIAMOND_SRC))
        assert cfg.predecessors(cfg.entry) == []

    def test_rpo_starts_at_entry(self):
        cfg = CFG(func_of(LOOP_SRC))
        rpo = cfg.reverse_postorder()
        assert rpo[0] == cfg.entry
        assert set(rpo) == cfg.reachable()

    def test_rpo_visits_preds_first_in_acyclic(self):
        cfg = CFG(func_of(DIAMOND_SRC))
        index = {n: i for i, n in enumerate(cfg.reverse_postorder())}
        for name in cfg.reachable():
            for succ in cfg.successors(name):
                if index[succ] > index[name]:
                    continue  # back edge in loops; diamond has none
                assert index[succ] > index[name] or succ == name

    def test_exit_blocks(self):
        cfg = CFG(func_of(DIAMOND_SRC))
        exits = cfg.exit_blocks()
        assert len(exits) == 1


class TestDominators:
    def test_entry_dominates_all(self):
        cfg = CFG(func_of(LOOP_SRC))
        dom = DominatorTree(cfg)
        for name in cfg.reachable():
            assert dom.dominates(cfg.entry, name)

    def test_self_domination(self):
        cfg = CFG(func_of(DIAMOND_SRC))
        dom = DominatorTree(cfg)
        for name in cfg.reachable():
            assert dom.dominates(name, name)

    def test_diamond_join_dominated_by_split(self):
        func = func_of(DIAMOND_SRC)
        cfg = CFG(func)
        dom = DominatorTree(cfg)
        # The join block is dominated by the entry, not by either arm.
        join = [
            n
            for n in cfg.reachable()
            if len(cfg.predecessors(n)) == 2
        ]
        assert join
        arms = cfg.predecessors(join[0])
        assert not dom.dominates(arms[0], join[0])
        assert not dom.dominates(arms[1], join[0])
        assert dom.dominates(cfg.entry, join[0])

    def test_idom_of_entry_is_none(self):
        cfg = CFG(func_of(DIAMOND_SRC))
        dom = DominatorTree(cfg)
        assert dom.immediate_dominator(cfg.entry) is None

    def test_dominated_set(self):
        cfg = CFG(func_of(LOOP_SRC))
        dom = DominatorTree(cfg)
        assert dom.dominated_set(cfg.entry) == cfg.reachable()


class TestLoops:
    def test_nested_loop_depths(self):
        func = func_of(LOOP_SRC)
        cfg = CFG(func)
        loops = LoopInfo(cfg)
        depths = [loops.depth_of(b) for b in cfg.reachable()]
        assert max(depths) == 2  # doubly nested
        assert min(depths) == 0  # entry/exit outside loops

    def test_two_loops_found(self):
        loops = LoopInfo(CFG(func_of(LOOP_SRC)))
        assert len(loops.loops) == 2

    def test_nesting_structure(self):
        loops = LoopInfo(CFG(func_of(LOOP_SRC)))
        inner = max(loops.loops, key=lambda l: l.depth)
        assert inner.depth == 2
        assert inner.parent is not None
        assert inner in inner.parent.children

    def test_static_frequency(self):
        func = func_of(LOOP_SRC)
        cfg = CFG(func)
        loops = LoopInfo(cfg)
        freqs = {b: loops.static_frequency(b) for b in cfg.reachable()}
        assert max(freqs.values()) == 100.0
        assert min(freqs.values()) == 1.0

    def test_no_loops_in_straightline(self):
        loops = LoopInfo(CFG(func_of(DIAMOND_SRC)))
        assert loops.loops == []

    def test_innermost_loop_of(self):
        func = func_of(LOOP_SRC)
        cfg = CFG(func)
        loops = LoopInfo(cfg)
        deepest_block = max(cfg.reachable(), key=loops.depth_of)
        inner = loops.innermost_loop_of(deepest_block)
        assert inner is not None and inner.depth == 2


class TestLiveness:
    def test_loop_carried_value_live(self):
        func = func_of(LOOP_SRC)
        live = Liveness(func)
        # s is live across the loop back edge: live-out of some block.
        s_regs = [
            op.dest.vid
            for op in func.operations()
            if op.dest is not None and op.dest.name == "s"
        ]
        assert s_regs
        assert live.live_across(s_regs[0])

    def test_dead_temp_not_live_across(self):
        src = "int main() { int a = 1 + 2; return a; }"
        func = func_of(src)
        live = Liveness(func)
        # Single-block function: nothing is live across block boundaries.
        for op in func.operations():
            if op.dest is not None:
                assert not live.live_across(op.dest.vid)

    def test_live_in_of_entry_is_param_only(self):
        src = "int f(int a) { return a + 1; } int main() { return f(1); }"
        func = func_of(src, "f")
        live = Liveness(func)
        # 'a' is used in entry, so it is in entry's use set (live-in).
        assert func.params[0].vid in live.live_into(func.entry.name)


class TestDefUse:
    def test_straightline_chain(self):
        func = func_of("int main() { int a = 2; int b = a + 3; return b; }")
        du = DefUse(func)
        defs = {op.dest.name: op for op in func.operations() if op.dest}
        a_def = defs["a"]
        users = du.users(a_def)
        assert any(u.opcode.mnemonic == "add" for u in users)

    def test_multiple_reaching_defs(self):
        src = """
        int main() {
          int x = 1;
          if (x) { x = 2; } else { x = 3; }
          return x;
        }
        """
        func = func_of(src)
        du = DefUse(func)
        ret = [op for op in func.operations() if op.opcode.mnemonic == "ret"][0]
        vid = ret.srcs[0].vid
        reaching = du.reaching_defs(ret, vid)
        assert len(reaching) == 2

    def test_param_uses_tracked(self):
        src = "int f(int a) { return a * a; } int main() { return f(3); }"
        func = func_of(src, "f")
        du = DefUse(func)
        uses = du.param_uses[func.params[0].vid]
        assert len(uses) >= 1

    def test_loop_carried_edge(self):
        func = func_of(LOOP_SRC)
        du = DefUse(func)
        # The increment i = i + 1 must reach the loop-header compare.
        adds = [
            op for op in func.operations()
            if op.opcode.mnemonic == "add" and op.dest is not None
        ]
        assert any(du.uses_of.get(a.uid) for a in adds)


class TestCallGraph:
    SRC = """
    int leaf(int x) { return x + 1; }
    int mid(int x) { return leaf(x) + leaf(x + 1); }
    int main() { return mid(1); }
    """

    def test_edges(self):
        cg = CallGraph(compile_source(self.SRC, "t"))
        assert cg.callees["main"] == {"mid"}
        assert cg.callees["mid"] == {"leaf"}
        assert cg.callers["leaf"] == {"mid"}

    def test_call_sites_counted(self):
        cg = CallGraph(compile_source(self.SRC, "t"))
        assert len(cg.call_sites["leaf"]) == 2

    def test_reachable_from_main(self):
        cg = CallGraph(compile_source(self.SRC, "t"))
        assert cg.reachable_from("main") == {"main", "mid", "leaf"}

    def test_bottom_up_order(self):
        cg = CallGraph(compile_source(self.SRC, "t"))
        order = cg.bottom_up_order()
        assert order.index("leaf") < order.index("mid") < order.index("main")

    def test_recursion_tolerated(self):
        src = "int f(int n) { if (n) { return f(n - 1); } return 0; }" \
              "int main() { return f(3); }"
        cg = CallGraph(compile_source(src, "t"))
        assert "f" in cg.bottom_up_order()


# -- edge cases: unreachable blocks, self-loops, non-unit steps ----------------------


def _ir_func(name="f"):
    from repro.ir import Function
    from repro.ir.types import INT

    return Function(name, [], INT)


def _ret(value=0):
    from repro.ir import Constant, Opcode, Operation

    return Operation(Opcode.RET, srcs=[Constant(value)])


def _br(target):
    from repro.ir import Opcode, Operation

    return Operation(Opcode.BR, targets=[target])


def _cbr(cond, if_true, if_false):
    from repro.ir import Opcode, Operation

    return Operation(Opcode.CBR, srcs=[cond], targets=[if_true, if_false])


class TestDominatorEdgeCases:
    def _with_island(self):
        func = _ir_func()
        func.add_block("entry").append(_ret())
        func.add_block("island").append(_ret(1))
        return CFG(func)

    def test_unreachable_block_has_no_idom(self):
        cfg = self._with_island()
        dom = DominatorTree(cfg)
        assert "island" not in dom.idom
        assert dom.immediate_dominator("island") is None

    def test_unreachable_block_dominates_nothing(self):
        cfg = self._with_island()
        dom = DominatorTree(cfg)
        assert not dom.dominates("island", "entry")
        # dominated_set is reflexive, but nothing else follows an
        # unreachable block.
        assert dom.dominated_set("island") == {"island"}

    def test_self_loop_idom_is_predecessor(self):
        from repro.ir import Constant

        func = _ir_func()
        func.add_block("entry").append(_br("spin"))
        func.add_block("spin").append(_cbr(Constant(1), "spin", "exit"))
        func.add_block("exit").append(_ret())
        dom = DominatorTree(CFG(func))
        # The back edge from the block to itself must not disturb the
        # idom: a block never immediately dominates itself.
        assert dom.immediate_dominator("spin") == "entry"
        assert dom.dominates("spin", "exit")

    def test_unreachable_cycle_stays_out_of_tree(self):
        func = _ir_func()
        func.add_block("entry").append(_ret())
        func.add_block("a").append(_br("b"))
        func.add_block("b").append(_br("a"))
        dom = DominatorTree(CFG(func))
        assert set(dom.idom) == {"entry"}


class TestLoopEdgeCases:
    def test_self_loop_is_a_loop(self):
        from repro.ir import Constant

        func = _ir_func()
        func.add_block("entry").append(_br("spin"))
        func.add_block("spin").append(_cbr(Constant(1), "spin", "exit"))
        func.add_block("exit").append(_ret())
        loops = LoopInfo(CFG(func))
        assert len(loops.loops) == 1
        loop = loops.loops[0]
        assert loop.header == "spin"
        assert loop.body == {"spin"}
        assert loops.depth_of("spin") == 1
        assert loops.depth_of("entry") == 0

    def test_unreachable_cycle_is_not_a_loop(self):
        func = _ir_func()
        func.add_block("entry").append(_ret())
        func.add_block("a").append(_br("b"))
        func.add_block("b").append(_br("a"))
        loops = LoopInfo(CFG(func))
        assert loops.loops == []

    def test_nested_non_unit_steps(self):
        src = """
        int main() {
          int s = 0;
          for (int i = 0; i < 20; i = i + 3) {
            for (int j = 10; j > 0; j = j - 2) {
              s = s + j;
            }
          }
          return s;
        }
        """
        func = func_of(src)
        cfg = CFG(func)
        loops = LoopInfo(cfg)
        assert len(loops.loops) == 2
        inner = max(loops.loops, key=lambda l: l.depth)
        outer = min(loops.loops, key=lambda l: l.depth)
        assert inner.depth == 2 and outer.depth == 1
        assert inner.parent is outer
        # Every inner-loop block sits inside the outer loop's body too.
        assert inner.body <= outer.body

    def test_loop_with_unreachable_block_alongside(self):
        func = _ir_func()
        from repro.ir import Constant

        func.add_block("entry").append(_br("head"))
        func.add_block("head").append(_cbr(Constant(1), "head", "exit"))
        func.add_block("exit").append(_ret())
        func.add_block("island").append(_br("head"))
        loops = LoopInfo(CFG(func))
        # The island branches into the loop but is unreachable; it must
        # not leak into the loop body.
        assert len(loops.loops) == 1
        assert "island" not in loops.loops[0].body
