"""End-to-end integration tests on real benchmarks.

These check the properties the paper's evaluation depends on, on a small
subset of the suite so the test run stays fast (the full-suite versions
live in benchmarks/).
"""

import pytest

from repro.bench import get
from repro.evalmodel import exhaustive_search
from repro.ir import verify_module
from repro.machine import two_cluster_machine
from repro.pipeline import Pipeline, PreparedProgram
from repro.profiler import Interpreter


@pytest.fixture(scope="module")
def rawcaudio():
    bench = get("rawcaudio")
    return PreparedProgram.from_source(bench.source, bench.name)


@pytest.fixture(scope="module")
def outcomes(rawcaudio):
    pipe = Pipeline(two_cluster_machine(move_latency=5))
    return pipe.run_all(rawcaudio)


class TestEndToEnd:
    def test_all_schemes_complete(self, outcomes):
        assert set(outcomes) == {"unified", "gdp", "profilemax", "naive"}
        for outcome in outcomes.values():
            assert outcome.cycles > 0

    def test_partitioned_modules_verify(self, outcomes):
        for outcome in outcomes.values():
            verify_module(outcome.module)

    def test_partitioned_modules_still_execute_correctly(
        self, rawcaudio, outcomes
    ):
        """The strongest whole-pipeline check: after partitioning and move
        insertion, every scheme's module still computes the benchmark's
        exact output."""
        for name, outcome in outcomes.items():
            interp = Interpreter(outcome.module)
            interp.run()
            assert interp.profile.output == rawcaudio.profile.output, name

    def test_assignments_cover_all_ops(self, outcomes):
        for outcome in outcomes.values():
            for func in outcome.module:
                for op in func.operations():
                    assert op.uid in outcome.assignment

    def test_memory_ops_locked_to_homes(self, outcomes):
        for name in ("gdp", "profilemax"):
            outcome = outcomes[name]
            for func in outcome.module:
                for op in func.operations():
                    if op.is_memory_access() and op.mem_objects():
                        homes = {
                            outcome.object_home[o]
                            for o in op.mem_objects()
                            if o in outcome.object_home
                        }
                        if len(homes) == 1:
                            assert outcome.assignment[op.uid] in homes, name

    def test_unified_is_strong_baseline(self, outcomes):
        """Partitioned-memory schemes stay within a sane band of unified
        (the paper's Figure 8 band is roughly [0.6, 1.2])."""
        base = outcomes["unified"].cycles
        for name in ("gdp", "profilemax", "naive"):
            rel = base / outcomes[name].cycles
            assert 0.4 < rel < 1.6, (name, rel)

    def test_gdp_not_dominated(self, outcomes):
        """GDP should be at least competitive with Naive on this benchmark
        (paper Figure 8 vs Figure 2)."""
        assert outcomes["gdp"].cycles <= outcomes["naive"].cycles * 1.25

    def test_latency_1_near_parity(self, rawcaudio):
        pipe = Pipeline(two_cluster_machine(move_latency=1))
        rel = pipe.compare(rawcaudio, schemes=("gdp",))
        assert rel["gdp"] > 0.85

    def test_dynamic_moves_counted(self, outcomes):
        # Partitioned schemes move data; the counter must see some traffic
        # on at least one scheme.
        total = sum(o.dynamic_moves for o in outcomes.values())
        assert total > 0


class TestExhaustiveIntegration:
    def test_gdp_choice_in_enumerated_space(self, rawcaudio):
        machine = two_cluster_machine(move_latency=5)
        pipe = Pipeline(machine)
        gdp = pipe.run(rawcaudio, "gdp")
        result = exhaustive_search(
            rawcaudio, machine, scheme_homes={"gdp": gdp.object_home}
        )
        point = result.scheme_points["gdp"]
        # GDP's mapping performs above the median of the space.
        better_than = sum(1 for p in result.points if point.cycles <= p.cycles)
        assert better_than >= len(result.points) // 2

    def test_search_has_spread(self, rawcaudio):
        machine = two_cluster_machine(move_latency=5)
        result = exhaustive_search(rawcaudio, machine)
        assert result.best_improvement() > 1.01


class TestCompileTimeStory:
    def test_profilemax_costs_two_rhop_runs(self, rawcaudio):
        pipe = Pipeline(two_cluster_machine(move_latency=5))
        gdp = pipe.run(rawcaudio, "gdp")
        pmax = pipe.run(rawcaudio, "profilemax")
        assert pmax.rhop_runs == 2 * gdp.rhop_runs
        # Wall-clock: two runs should not be cheaper than one.
        assert pmax.rhop_seconds > gdp.rhop_seconds * 0.8
