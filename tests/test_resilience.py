"""Tests for the resilience layer: budgets, faults, retry/fallback, reports.

The heart of this file is the pair of determinism tests (same FaultPlan
seed → byte-identical deterministic RunReport JSON) and the golden-file
test that pins the full degradation ladder: an injected GDP fault, a
reseed retry that fails again, and the fallback to Profile Max.
"""

import json
import os

import pytest

from repro.lint import check_scheme_outcome
from repro.machine import two_cluster_machine
from repro.partition.gdp import GDPConfig
from repro.partition.multilevel import MultilevelPartitioner, PartitionGraph
from repro.partition.rhop import RHOPConfig
from repro.pipeline import Pipeline, PreparedProgram
from repro.resilience import (
    Budget,
    FaultClause,
    FaultPlan,
    InjectedFault,
    InvalidPhaseOutput,
    LADDER,
    LadderExhausted,
    PhaseError,
    PhaseTimer,
    ResilientPipeline,
    RunReport,
    as_phase_error,
    budget_expired,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

SRC = """
int a[16];
int b[16];
int hist[8];
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 16; i = i + 1) { a[i] = i * 3; }
  for (i = 0; i < 16; i = i + 1) {
    b[i] = a[i] + i;
    hist[b[i] & 7] = hist[b[i] & 7] + 1;
    s = s + b[i];
  }
  print_int(s);
  return s & 255;
}
"""


@pytest.fixture(scope="module")
def prepared():
    return PreparedProgram.from_source(SRC, "resil")


# -- Budget -------------------------------------------------------------------


class TestBudget:
    def test_unlimited_never_expires(self):
        budget = Budget()
        assert not budget.expired()
        assert budget.remaining() is None
        assert budget.allows_attempt(10_000)

    def test_wall_clock_expiry_with_fake_clock(self):
        now = [0.0]
        budget = Budget(max_seconds=5.0, clock=lambda: now[0])
        assert not budget.expired()
        assert budget.remaining() == 5.0
        now[0] = 4.9
        assert not budget.expired()
        now[0] = 5.0
        assert budget.expired()
        assert budget.remaining() == 0.0
        budget.restart()
        assert not budget.expired()

    def test_attempt_cap(self):
        budget = Budget(max_attempts=2)
        assert budget.allows_attempt(1)
        assert budget.allows_attempt(2)
        assert not budget.allows_attempt(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(max_seconds=-1)
        with pytest.raises(ValueError):
            Budget(max_attempts=0)

    def test_budget_expired_helper(self):
        assert not budget_expired(None)
        assert budget_expired(Budget(max_seconds=0.0))


# -- Errors -------------------------------------------------------------------


class TestErrors:
    def test_phase_error_carries_context(self):
        err = PhaseError("gdp", "boom", scheme="profilemax")
        assert err.phase == "gdp"
        assert err.scheme == "profilemax"
        assert "gdp" in str(err)

    def test_as_phase_error_wraps_and_chains(self):
        original = RuntimeError("underlying")
        err = as_phase_error(original, "rhop", "gdp")
        assert isinstance(err, PhaseError)
        assert err.phase == "rhop"
        assert err.__cause__ is original

    def test_as_phase_error_passes_through(self):
        err = InjectedFault("gdp", "injected", scheme="gdp")
        assert as_phase_error(err, "other", "other") is err


# -- FaultPlan ----------------------------------------------------------------


class TestFaultPlan:
    def test_parse_round_trips(self):
        plan = FaultPlan.parse(
            "seed=7; raise:gdp@1; corrupt-homes:gdp:2; unlock:naive:3@2; "
            "slow-moves:2.5"
        )
        assert plan.seed == 7
        assert [str(c) for c in plan.clauses] == [
            "raise:gdp@1",
            "corrupt-homes:gdp:2",
            "unlock:naive:3@2",
            "slow-moves:2.5",
        ]

    @pytest.mark.parametrize("spec", [
        "seed=7",                    # no fault clauses
        "raise:gdp@0",               # attempt < 1
        "raise:gdp@x",               # bad attempt
        "corrupt-homes:gdp",         # missing count
        "corrupt-homes:gdp:0",       # count < 1
        "slow-moves:0",              # factor <= 0
        "explode:gdp",               # unknown kind
        "seed=nope;raise:gdp",       # bad seed
    ])
    def test_parse_rejects(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_clause_matching(self):
        every = FaultClause("raise", phase="gdp")
        once = FaultClause("raise", phase="*", attempt=2)
        assert every.matches("gdp", 1) and every.matches("gdp", 7)
        assert not every.matches("rhop", 1)
        assert once.matches("anything", 2)
        assert not once.matches("anything", 1)

    def test_maybe_raise_fires_and_records(self):
        plan = FaultPlan.parse("raise:gdp")
        plan.begin_attempt("gdp", 1)
        with pytest.raises(InjectedFault):
            plan.maybe_raise("gdp")
        fired = plan.drain_fired()
        assert len(fired) == 1
        assert fired[0]["clause"] == "raise:gdp"
        assert plan.drain_fired() == []  # drained

    def test_corrupt_homes_is_seed_deterministic(self):
        homes = {f"g:o{i}": i % 2 for i in range(8)}
        accessed = {obj: 1 for obj in homes}

        def corrupted(seed):
            plan = FaultPlan.parse(f"seed={seed};corrupt-homes:gdp:3")
            plan.begin_attempt("gdp", 1)
            return plan.corrupt_homes(dict(homes), 2, "gdp", accessed)

        assert corrupted(5) == corrupted(5)
        assert corrupted(5) != corrupted(6)
        flipped = {
            obj for obj, home in corrupted(5).items() if homes[obj] != home
        }
        assert len(flipped) == 3

    def test_drop_locks_removes_exactly_m(self):
        locks = {uid: uid % 2 for uid in range(10)}
        plan = FaultPlan.parse("seed=1;unlock:gdp:4")
        plan.begin_attempt("gdp", 1)
        remaining = plan.drop_locks(locks, "gdp")
        assert len(remaining) == 6
        assert set(remaining) <= set(locks)

    def test_machine_for_inflates_move_latency(self):
        machine = two_cluster_machine(move_latency=5)
        plan = FaultPlan.parse("slow-moves:4")
        plan.begin_attempt("gdp", 1)
        slowed = plan.machine_for(machine)
        assert slowed.move_latency == 20
        assert machine.move_latency == 5  # original untouched


# -- RunReport ----------------------------------------------------------------


class TestRunReport:
    def test_phase_timer_accumulates(self):
        now = [0.0]
        timer = PhaseTimer(clock=lambda: now[0])
        with timer.phase("rhop"):
            now[0] += 2.0
        with timer.phase("rhop"):
            now[0] += 1.0
        with timer.phase("gdp"):
            now[0] += 0.5
        assert timer.timings == {"rhop": 3.0, "gdp": 0.5}
        assert timer.total() == 3.5

    def test_phase_seconds_filters_status_and_scheme(self):
        report = RunReport(clock=lambda: 0.0)
        report.record_attempt("gdp", 1, "error", 1.0, phases={"rhop": 9.0})
        report.record_attempt("gdp", 2, "ok", 1.0, phases={"rhop": 2.0})
        report.record_attempt("naive", 1, "ok", 1.0, phases={"rhop": 4.0})
        assert report.phase_seconds("rhop") == 6.0
        assert report.phase_seconds("rhop", scheme="gdp") == 2.0
        assert report.phase_seconds("rhop", scheme="gdp", status="error") == 9.0

    def test_deterministic_json_zeroes_clocks_only(self):
        report = RunReport()
        report.record_run("gdp", ["gdp", "naive"])
        report.record_attempt("gdp", 1, "ok", 12.5, phases={"rhop": 3.25})
        report.record_final("gdp", "gdp", "ok")
        data = json.loads(report.to_json(deterministic=True))
        attempt = [e for e in data["events"] if e["kind"] == "attempt"][0]
        assert attempt["seconds"] == 0.0
        assert attempt["phases"] == {"rhop": 0.0}
        # non-clock structure is preserved
        assert data["final"] == {
            "requested": "gdp", "scheme": "gdp", "status": "ok",
        }
        live = json.loads(report.to_json())
        assert [e for e in live["events"] if e["kind"] == "attempt"][0][
            "seconds"
        ] == 12.5


# -- Anytime partitioning under budgets ---------------------------------------


def _ring_graph(n=24):
    graph = PartitionGraph()
    for node in range(n):
        graph.add_node(node, (1.0,))
    for node in range(n):
        graph.add_edge(node, (node + 1) % n, 1.0)
    return graph


class TestAnytimeBudget:
    def test_expired_budget_still_yields_complete_partition(self):
        budget = Budget(max_seconds=0.0)
        partitioner = MultilevelPartitioner(
            k=2, imbalance=(1.2,), seed=3, budget=budget
        )
        assignment = partitioner.partition(_ring_graph())
        assert set(assignment) == set(range(24))
        assert set(assignment.values()) == {0, 1}

    def test_generous_budget_matches_no_budget(self):
        free = MultilevelPartitioner(k=2, imbalance=(1.2,), seed=3)
        capped = MultilevelPartitioner(
            k=2, imbalance=(1.2,), seed=3, budget=Budget(max_seconds=3600)
        )
        assert free.partition(_ring_graph()) == capped.partition(_ring_graph())

    def test_scheme_under_expired_budget_is_valid(self, prepared):
        pipe = ResilientPipeline(budget=Budget(max_seconds=0.0), retries=2)
        result = pipe.run(prepared, "gdp")
        assert result.scheme == "gdp"
        diag = check_scheme_outcome(prepared, result.outcome)
        assert not diag.has_errors

    def test_attempt_cap_stops_ladder(self, prepared):
        pipe = ResilientPipeline(
            retries=2,
            budget=Budget(max_attempts=2),
            faults=FaultPlan.parse("seed=1;raise:*"),
        )
        with pytest.raises(LadderExhausted) as excinfo:
            pipe.run(prepared, "gdp")
        report = excinfo.value.run_report
        assert len(report.attempts()) == 2
        assert any(e["kind"] == "budget" for e in report.events)

    def test_config_reseeded_preserves_and_overrides(self):
        budget = Budget(max_seconds=10)
        gdp = GDPConfig(seed=100).reseeded(7, budget=budget)
        assert gdp.seed == 107 and gdp.budget is budget
        rhop = RHOPConfig(seed=200).reseeded(7, budget=budget)
        assert rhop.seed == 207 and rhop.budget is budget


# -- ResilientPipeline --------------------------------------------------------


class TestResilientPipeline:
    def test_clean_run_has_no_fallback(self, prepared):
        result = ResilientPipeline(retries=1).run(prepared, "gdp")
        assert result.scheme == "gdp" and not result.fell_back
        assert result.report.final()["status"] == "ok"
        assert len(result.report.attempts()) == 1
        assert result.cycles > 0  # attribute delegation to the outcome

    def test_transient_fault_recovers_via_reseed_retry(self, prepared):
        pipe = ResilientPipeline(
            retries=1, faults=FaultPlan.parse("seed=3;raise:gdp@1")
        )
        result = pipe.run(prepared, "gdp")
        assert result.scheme == "gdp" and not result.fell_back
        statuses = [(a["attempt"], a["status"]) for a in result.report.attempts()]
        assert statuses == [(1, "error"), (2, "ok")]

    def test_persistent_fault_falls_back_to_profilemax(self, prepared):
        """The acceptance-criteria scenario: injected GDP fault with
        fallback enabled completes with a Profile Max outcome whose
        assignment passes the partition validity checker."""
        pipe = ResilientPipeline(
            retries=1, fallback=True,
            faults=FaultPlan.parse("seed=3;raise:gdp"),
        )
        result = pipe.run(prepared, "gdp")
        assert result.fell_back and result.scheme == "profilemax"
        report = result.report
        assert len(report.faults()) == 2          # original + retry
        assert len(report.attempts("gdp")) == 2   # retry-with-reseed happened
        assert [f["from"] for f in report.fallbacks()] == ["gdp"]
        assert report.final() == report.events[-1]
        diag = check_scheme_outcome(prepared, result.outcome)
        assert not diag.has_errors

    def test_corrupt_homes_rejected_by_validity_checker(self, prepared):
        pipe = ResilientPipeline(
            retries=0, faults=FaultPlan.parse("seed=9;corrupt-homes:gdp:2")
        )
        result = pipe.run(prepared, "gdp")
        assert result.fell_back
        bad = result.report.attempts("gdp")[0]
        assert bad["status"] == "invalid"
        assert any("lock-violation" in d for d in bad["diagnostics"])

    def test_no_fallback_raises_ladder_exhausted(self, prepared):
        pipe = ResilientPipeline(
            retries=0, fallback=False,
            faults=FaultPlan.parse("seed=3;raise:gdp"),
        )
        with pytest.raises(LadderExhausted) as excinfo:
            pipe.run(prepared, "gdp")
        report = excinfo.value.run_report
        assert report is not None
        assert report.final()["status"] == "failed"

    def test_whole_ladder_exhausted(self, prepared):
        pipe = ResilientPipeline(
            retries=0, faults=FaultPlan.parse("seed=3;raise:*")
        )
        with pytest.raises(LadderExhausted) as excinfo:
            pipe.run(prepared, "gdp")
        attempts = excinfo.value.run_report.attempts()
        assert [a["scheme"] for a in attempts] == list(LADDER)

    def test_ladder_starts_at_requested_rung(self, prepared):
        pipe = ResilientPipeline(
            retries=0, faults=FaultPlan.parse("seed=3;raise:naive")
        )
        result = pipe.run(prepared, "naive")
        assert result.scheme == "unified"
        assert [a["scheme"] for a in result.report.attempts()] == [
            "naive", "unified",
        ]

    def test_run_all_dedupes_schemes(self, prepared):
        pipe = ResilientPipeline(retries=0)
        outcomes = pipe.run_all(
            prepared, ["unified", "gdp", "unified", "gdp"]
        )
        assert list(outcomes) == ["unified", "gdp"]
        report = outcomes["gdp"].report
        assert len(report.attempts("unified")) == 1

    def test_compare_ratios(self, prepared):
        rel = ResilientPipeline(retries=0).compare(
            prepared, schemes=("gdp", "naive")
        )
        assert set(rel) == {"gdp", "naive"}
        assert all(0 < v <= 1.5 for v in rel.values())

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            ResilientPipeline(retries=-1)


# -- Determinism and goldens --------------------------------------------------


class TestDeterminism:
    def _ladder_json(self, prepared):
        pipe = ResilientPipeline(
            retries=1, faults=FaultPlan.parse("seed=3;raise:gdp")
        )
        result = pipe.run(prepared, "gdp")
        return result.report.to_json(deterministic=True)

    def test_same_seed_byte_identical_json(self, prepared):
        assert self._ladder_json(prepared) == self._ladder_json(prepared)

    def test_different_seed_same_path_for_raise(self, prepared):
        # 'raise' ignores the rng, so only the seed in the clause string
        # would differ — structure must still be deterministic per seed.
        first = self._ladder_json(prepared)
        assert json.loads(first)["summary"]["fallbacks"] == 1

    def test_corrupt_homes_json_byte_identical(self, prepared):
        def run():
            pipe = ResilientPipeline(
                retries=1,
                faults=FaultPlan.parse("seed=11;corrupt-homes:gdp:2"),
            )
            report = RunReport()
            pipe.run(prepared, "gdp", report=report)
            return report.to_json(deterministic=True)

        assert run() == run()

    def test_degradation_ladder_matches_golden(self, prepared):
        """Pins the full story: fault on GDP attempt 1, reseed retry
        faults again, ladder falls back, Profile Max succeeds."""
        with open(os.path.join(GOLDEN_DIR, "degradation_ladder.json")) as fh:
            golden = fh.read()
        assert self._ladder_json(prepared) + "\n" == golden


# -- Pipeline driver satellite ------------------------------------------------


class TestPipelineDedupe:
    def test_run_all_runs_unified_once(self, prepared, monkeypatch):
        pipe = Pipeline()
        calls = []
        real_run = Pipeline.run

        def counting_run(self, prep, scheme, **kwargs):
            calls.append(scheme)
            return real_run(self, prep, scheme, **kwargs)

        monkeypatch.setattr(Pipeline, "run", counting_run)
        pipe.run_all(prepared, ["unified", "gdp", "unified"])
        assert calls == ["unified", "gdp"]

    def test_compare_with_unified_in_list(self, prepared, monkeypatch):
        pipe = Pipeline()
        calls = []
        real_run = Pipeline.run

        def counting_run(self, prep, scheme, **kwargs):
            calls.append(scheme)
            return real_run(self, prep, scheme, **kwargs)

        monkeypatch.setattr(Pipeline, "run", counting_run)
        rel = pipe.compare(prepared, schemes=("unified", "gdp"))
        assert calls.count("unified") == 1
        assert rel["unified"] == 1.0


# -- Error taxonomy odds and ends ---------------------------------------------


def test_invalid_phase_output_holds_diagnostics():
    class FakeReport:
        def summary(self):
            return "1 error(s)"

    report = FakeReport()
    err = InvalidPhaseOutput("gdp", scheme="gdp", report=report)
    assert err.diagnostics is report
    assert isinstance(err, PhaseError)
    assert "1 error(s)" in str(err)
