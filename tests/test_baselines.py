"""Tests for the extra literature baselines: BUG and the Terechko-style
global-value placement policies."""

import pytest

from repro.analysis import annotate_memory_ops
from repro.ir import verify_module
from repro.lang import compile_source
from repro.machine import two_cluster_machine
from repro.partition import (
    BUG,
    affinity_homes,
    memory_locks,
    round_robin_homes,
    single_cluster_homes,
    size_balanced_homes,
)
from repro.pipeline import PreparedProgram, finalize_and_evaluate, run_gdp
from repro.profiler import Interpreter

SRC = """
int a[32];
int b[64];
int c[16];
int d;
int main() {
  int s = 0;
  for (int i = 0; i < 32; i = i + 1) { a[i] = i; }
  for (int i = 0; i < 64; i = i + 1) { b[i] = i * 2; }
  for (int i = 0; i < 16; i = i + 1) { c[i] = a[i] + b[i]; }
  for (int i = 0; i < 16; i = i + 1) { s = s + c[i]; }
  d = s;
  print_int(d);
  return s;
}
"""


@pytest.fixture(scope="module")
def prepared():
    return PreparedProgram.from_source(SRC, "t")


@pytest.fixture(scope="module")
def machine():
    return two_cluster_machine(move_latency=5)


class TestBUG:
    def test_assignment_complete(self, prepared, machine):
        module, _ = prepared.fresh_copy()
        result = BUG(machine.as_unified()).partition_module(module)
        for func in module:
            for op in func.operations():
                assert result.assignment[op.uid] in (0, 1)

    def test_locks_respected(self, prepared, machine):
        module, _ = prepared.fresh_copy()
        homes = {o: (0 if o != "g:b" else 1) for o in prepared.objects.ids()}
        locks = memory_locks(module, homes)
        result = BUG(machine.as_partitioned()).partition_module(module, locks)
        for uid, cluster in locks.items():
            assert result.assignment[uid] == cluster

    def test_end_to_end_executable(self, prepared, machine):
        baseline = prepared.profile.output
        module, _ = prepared.fresh_copy()
        result = BUG(machine.as_unified()).partition_module(module)
        finalize_and_evaluate(
            prepared, machine, module, result.assignment, result
        )
        verify_module(module)
        interp = Interpreter(module)
        interp.run()
        assert interp.profile.output == baseline

    def test_produces_positive_cycles(self, prepared, machine):
        module, _ = prepared.fresh_copy()
        result = BUG(machine.as_unified()).partition_module(module)
        ev = finalize_and_evaluate(
            prepared, machine, module, result.assignment, result
        )
        assert ev.cycles > 0


class TestGlobalValuePolicies:
    def test_single_cluster_homes(self, prepared):
        homes = single_cluster_homes(prepared.objects, 2)
        assert set(homes.values()) == {0}

    def test_round_robin_spreads(self, prepared):
        homes = round_robin_homes(prepared.objects, 2)
        assert set(homes.values()) == {0, 1}
        counts = [list(homes.values()).count(c) for c in (0, 1)]
        assert abs(counts[0] - counts[1]) <= 1

    def test_size_balanced(self, prepared):
        homes = size_balanced_homes(prepared.objects, 2)
        loads = [0, 0]
        for obj, c in homes.items():
            loads[c] += prepared.objects[obj].size
        total = sum(loads)
        biggest = max(o.size for o in prepared.objects)
        assert max(loads) <= total / 2 + biggest

    def test_affinity_orders_by_traffic(self, prepared):
        counts = prepared.object_access_counts()
        homes = affinity_homes(prepared.objects, counts, 2)
        assert set(homes) == set(prepared.objects.ids())
        # The two hottest objects should land on different clusters.
        hot = sorted(counts, key=counts.get, reverse=True)[:2]
        if len(hot) == 2 and counts[hot[1]] > 0:
            assert homes[hot[0]] != homes[hot[1]]

    @pytest.mark.parametrize(
        "policy",
        [single_cluster_homes, round_robin_homes, size_balanced_homes],
    )
    def test_policies_plug_into_phase2(self, prepared, machine, policy):
        homes = policy(prepared.objects, 2)
        outcome = run_gdp(prepared, machine, object_home=homes)
        assert outcome.cycles > 0
        assert outcome.object_home == homes
