"""Tests for RHOP computation partitioning and intercluster move insertion."""

import pytest

from repro.analysis import annotate_memory_ops
from repro.ir import Opcode, verify_module
from repro.lang import compile_source
from repro.machine import single_cluster_machine, two_cluster_machine
from repro.partition import (
    RHOP,
    RHOPConfig,
    count_static_moves,
    insert_intercluster_moves,
    memory_locks,
)
from repro.profiler import Interpreter

SRC = """
int a[32];
int b[32];
int main() {
  int s = 0;
  for (int i = 0; i < 32; i = i + 1) { a[i] = i * 3; }
  for (int i = 0; i < 32; i = i + 1) { b[i] = a[i] + i; }
  for (int i = 0; i < 32; i = i + 1) { s = s + b[i]; }
  print_int(s);
  return s;
}
"""


def compiled(src=SRC):
    module = compile_source(src, "t")
    annotate_memory_ops(module)
    return module


class TestRHOP:
    def test_every_op_assigned(self):
        module = compiled()
        rhop = RHOP(two_cluster_machine().as_unified())
        result = rhop.partition_module(module)
        for func in module:
            for op in func.operations():
                assert op.uid in result.assignment
                assert result.assignment[op.uid] in (0, 1)

    def test_single_cluster_machine(self):
        module = compiled()
        result = RHOP(single_cluster_machine()).partition_module(module)
        assert set(result.assignment.values()) == {0}

    def test_memory_locks_respected(self):
        module = compiled()
        locks = memory_locks(module, {"g:a": 0, "g:b": 1})
        rhop = RHOP(two_cluster_machine().as_partitioned())
        result = rhop.partition_module(module, mem_locks=locks)
        for uid, cluster in locks.items():
            assert result.assignment[uid] == cluster

    def test_register_homes_recorded(self):
        module = compiled()
        rhop = RHOP(two_cluster_machine().as_unified())
        result = rhop.partition_module(module)
        homes = result.vreg_home["main"]
        assert homes  # loop counters etc. have homes

    def test_same_vreg_defs_colocated_within_block(self):
        """Mandatory groups: defs of one register in a block co-locate."""
        src = """
        int main() {
          int x = 1;
          x = x + 1;
          x = x * 2;
          return x;
        }
        """
        module = compiled(src)
        rhop = RHOP(two_cluster_machine().as_unified())
        result = rhop.partition_module(module)
        func = module.function("main")
        defs_of_x = [
            op for op in func.operations()
            if op.dest is not None and op.dest.name == "x"
        ]
        clusters = {result.assignment[d.uid] for d in defs_of_x}
        assert len(clusters) == 1

    def test_partition_is_deterministic(self):
        m1, m2 = compiled(), compiled()
        rhop = RHOP(two_cluster_machine().as_unified())
        r1 = rhop.partition_module(m1)
        r2 = rhop.partition_module(m2)
        # Compare positionally (uids differ between compilations).
        c1 = [r1.assignment[op.uid] for f in m1 for op in f.operations()]
        c2 = [r2.assignment[op.uid] for f in m2 for op in f.operations()]
        assert c1 == c2

    def test_infeasible_lock_cluster_still_assigns(self):
        # Lock everything to cluster 1; computation must still complete.
        module = compiled()
        locks = memory_locks(module, {"g:a": 1, "g:b": 1})
        rhop = RHOP(two_cluster_machine().as_partitioned())
        result = rhop.partition_module(module, mem_locks=locks)
        assert all(uid in result.assignment
                   for f in module for uid in (op.uid for op in f.operations()))


class TestMoveInsertion:
    def _partition_and_insert(self, module, machine, locks=None):
        rhop = RHOP(machine)
        result = rhop.partition_module(module, mem_locks=locks or {})
        assignment = dict(result.assignment)
        stats = {}
        for func in module:
            homes = result.vreg_home.get(func.name, {})
            param_homes = {
                p.vid: homes[p.vid] for p in func.params if p.vid in homes
            }
            stats[func.name] = insert_intercluster_moves(
                func, assignment, machine, param_homes
            )
        return assignment, stats

    def test_module_still_verifies(self):
        module = compiled()
        machine = two_cluster_machine()
        self._partition_and_insert(module, machine)
        verify_module(module)

    def test_execution_unchanged_after_insertion(self):
        """ICMOVEs are executable copies: the mutated module must compute
        exactly the same results."""
        baseline = Interpreter(compiled()).run()
        module = compiled()
        machine = two_cluster_machine()
        self._partition_and_insert(module, machine)
        interp = Interpreter(module)
        assert interp.run() == baseline

    def test_every_cross_cluster_use_is_local_after_insertion(self):
        module = compiled()
        machine = two_cluster_machine()
        assignment, _ = self._partition_and_insert(module, machine)
        for func in module:
            defs_of = {}
            for op in func.operations():
                if op.dest is not None:
                    defs_of.setdefault(op.dest.vid, set()).add(
                        assignment[op.uid]
                    )
            param_vids = {p.vid for p in func.params}
            for op in func.operations():
                if op.is_icmove():
                    continue
                cu = assignment[op.uid]
                for src in op.register_srcs():
                    clusters = defs_of.get(src.vid, set())
                    if src.vid in param_vids or not clusters:
                        continue
                    assert clusters == {cu}, (
                        f"{func.name}: op {op} on c{cu} reads {src} "
                        f"defined on {clusters}"
                    )

    def test_no_moves_for_single_cluster(self):
        module = compiled()
        machine = single_cluster_machine()
        assignment, stats = self._partition_and_insert(module, machine)
        assert all(s.icmoves == 0 for s in stats.values())
        assert count_static_moves(module.function("main")) == 0

    def test_icmove_attrs(self):
        module = compiled()
        machine = two_cluster_machine()
        locks = memory_locks(module, {"g:a": 0, "g:b": 1})
        assignment, _ = self._partition_and_insert(
            module, machine.as_partitioned(), locks
        )
        for func in module:
            for op in func.operations():
                if op.is_icmove():
                    assert op.attrs["from"] != op.attrs["to"]
                    assert assignment[op.uid] == op.attrs["to"]

    def test_forced_split_creates_moves(self):
        module = compiled()
        machine = two_cluster_machine().as_partitioned()
        locks = memory_locks(module, {"g:a": 0, "g:b": 1})
        assignment, stats = self._partition_and_insert(module, machine, locks)
        # a written on c0, read on c1 to build b: at least one move chain.
        assert stats["main"].icmoves > 0

    def test_execution_correct_with_forced_split(self):
        baseline = Interpreter(compiled()).run()
        module = compiled()
        machine = two_cluster_machine().as_partitioned()
        locks = memory_locks(module, {"g:a": 0, "g:b": 1})
        self._partition_and_insert(module, machine, locks)
        verify_module(module)
        assert Interpreter(module).run() == baseline

    def test_param_moves_inserted_at_entry(self):
        src = """
        int a[16];
        int f(int x, int y) { return x * 2 + y; }
        int main() {
          int s = 0;
          for (int i = 0; i < 16; i = i + 1) { s = s + f(i, a[i]); }
          return s;
        }
        """
        baseline = Interpreter(compiled(src)).run()
        module = compiled(src)
        machine = two_cluster_machine()
        self._partition_and_insert(module, machine)
        verify_module(module)
        assert Interpreter(module).run() == baseline

    def test_mixed_def_cluster_gets_local_copy(self):
        """If defs of one vreg end up on different clusters (possible when
        memory locks conflict with register homes) insertion still yields
        a correct program via local MOV copies."""
        src = """
        int a[8];
        int b[8];
        int main() {
          int v = a[0];
          v = b[0];
          return v;
        }
        """
        baseline = Interpreter(compiled(src)).run()
        module = compiled(src)
        machine = two_cluster_machine().as_partitioned()
        # Force the two loads (both defining temps feeding v) apart.
        locks = memory_locks(module, {"g:a": 0, "g:b": 1})
        rhop = RHOP(machine)
        result = rhop.partition_module(module, mem_locks=locks)
        assignment = dict(result.assignment)
        # Manually force the two MOV-defs of v onto different clusters.
        movs = [
            op
            for op in module.function("main").operations()
            if op.opcode is Opcode.MOV and op.dest is not None
            and op.dest.name == "v"
        ]
        if len(movs) == 2:
            assignment[movs[0].uid] = 0
            assignment[movs[1].uid] = 1
        insert_intercluster_moves(
            module.function("main"), assignment, machine, {}
        )
        verify_module(module)
        assert Interpreter(module).run() == baseline
