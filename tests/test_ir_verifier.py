"""Unit tests for the IR structural verifier."""

import pytest

from repro.ir import (
    Constant,
    Function,
    FunctionRef,
    GlobalAddress,
    IRBuilder,
    Module,
    Opcode,
    Operation,
    VerificationError,
    VirtualRegister,
    verify_function,
    verify_module,
)
from repro.ir.types import INT, PointerType


def valid_module():
    mod = Module("m")
    mod.add_global("g", INT, 0)
    func = Function("main", [], INT)
    b = IRBuilder(func)
    entry = b.new_block("entry")
    b.set_block(entry)
    v = b.load(GlobalAddress("g", INT))
    b.ret(v)
    mod.add_function(func)
    return mod


def test_valid_module_passes():
    verify_module(valid_module())


def test_missing_terminator():
    func = Function("f", [], INT)
    block = func.add_block("entry")
    block.append(Operation(Opcode.MOV, func.new_vreg(INT), [Constant(1)]))
    with pytest.raises(VerificationError, match="missing terminator"):
        verify_function(func)


def test_empty_block():
    func = Function("f", [], INT)
    func.add_block("entry").append(Operation(Opcode.RET, srcs=[Constant(0)]))
    func.add_block("dead")
    with pytest.raises(VerificationError, match="empty block"):
        verify_function(func)


def test_terminator_not_last():
    func = Function("f", [], INT)
    block = func.add_block("entry")
    block.append(Operation(Opcode.RET, srcs=[Constant(0)]))
    block.append(Operation(Opcode.MOV, func.new_vreg(INT), [Constant(1)]))
    with pytest.raises(VerificationError, match="not last"):
        verify_function(func)


def test_branch_to_unknown_block():
    func = Function("f", [], INT)
    func.add_block("entry").append(Operation(Opcode.BR, targets=["nowhere"]))
    with pytest.raises(VerificationError, match="unknown block"):
        verify_function(func)


def test_use_of_undefined_register():
    func = Function("f", [], INT)
    block = func.add_block("entry")
    ghost = VirtualRegister(99, INT)
    block.append(Operation(Opcode.RET, srcs=[ghost]))
    with pytest.raises(VerificationError, match="undefined register"):
        verify_function(func)


def test_parameters_are_defined():
    p = VirtualRegister(0, INT, "a")
    func = Function("f", [p], INT)
    func.add_block("entry").append(Operation(Opcode.RET, srcs=[p]))
    verify_function(func)


def test_wrong_arity():
    func = Function("f", [], INT)
    block = func.add_block("entry")
    block.append(Operation(Opcode.ADD, func.new_vreg(INT), [Constant(1)]))
    block.append(Operation(Opcode.RET, srcs=[Constant(0)]))
    with pytest.raises(VerificationError, match="expects 2 srcs"):
        verify_function(func)


def test_missing_destination():
    func = Function("f", [], INT)
    block = func.add_block("entry")
    block.append(Operation(Opcode.ADD, None, [Constant(1), Constant(2)]))
    block.append(Operation(Opcode.RET, srcs=[Constant(0)]))
    with pytest.raises(VerificationError, match="requires a destination"):
        verify_function(func)


def test_store_must_not_have_destination():
    func = Function("f", [], INT)
    block = func.add_block("entry")
    addr = func.new_vreg(PointerType(INT))
    block.append(Operation(Opcode.MALLOC, addr, [Constant(4)], attrs={"site": "s"}))
    block.append(Operation(Opcode.STORE, func.new_vreg(INT), [Constant(1), addr]))
    block.append(Operation(Opcode.RET, srcs=[Constant(0)]))
    with pytest.raises(VerificationError, match="must not have a destination"):
        verify_function(func)


def test_cbr_needs_two_targets():
    func = Function("f", [], INT)
    block = func.add_block("entry")
    block.append(Operation(Opcode.CBR, srcs=[Constant(1)], targets=["entry"]))
    with pytest.raises(VerificationError, match="expects 2 targets"):
        verify_function(func)


def test_malloc_requires_site():
    func = Function("f", [], INT)
    block = func.add_block("entry")
    block.append(
        Operation(Opcode.MALLOC, func.new_vreg(PointerType(INT)), [Constant(4)])
    )
    block.append(Operation(Opcode.RET, srcs=[Constant(0)]))
    with pytest.raises(VerificationError, match="without allocation-site"):
        verify_function(func)


def test_call_requires_callee_attr():
    func = Function("f", [], INT)
    block = func.add_block("entry")
    block.append(Operation(Opcode.CALL, None, [FunctionRef("g", INT)]))
    block.append(Operation(Opcode.RET, srcs=[Constant(0)]))
    with pytest.raises(VerificationError, match="without callee"):
        verify_function(func)


def test_undefined_global_reference():
    mod = valid_module()
    func = mod.function("main")
    func.entry.insert(
        0,
        Operation(Opcode.LOAD, func.new_vreg(INT), [GlobalAddress("nope", INT)]),
    )
    with pytest.raises(VerificationError, match="undefined global"):
        verify_module(mod)


def test_call_to_undefined_function():
    mod = valid_module()
    func = mod.function("main")
    func.entry.insert(
        0,
        Operation(
            Opcode.CALL,
            None,
            [FunctionRef("mystery", INT)],
            attrs={"callee": "mystery"},
        ),
    )
    with pytest.raises(VerificationError, match="undefined function"):
        verify_module(mod)


def test_intrinsics_are_known():
    mod = valid_module()
    func = mod.function("main")
    func.entry.insert(
        0,
        Operation(
            Opcode.CALL,
            None,
            [FunctionRef("print_int", INT), Constant(1)],
            attrs={"callee": "print_int"},
        ),
    )
    verify_module(mod)


def test_ret_with_two_values_rejected():
    func = Function("f", [], INT)
    block = func.add_block("entry")
    block.append(Operation(Opcode.RET, srcs=[Constant(0), Constant(1)]))
    with pytest.raises(VerificationError, match="at most one value"):
        verify_function(func)


def test_error_collects_multiple_problems():
    func = Function("f", [], INT)
    block = func.add_block("entry")
    block.append(Operation(Opcode.ADD, func.new_vreg(INT), [Constant(1)]))
    with pytest.raises(VerificationError) as exc:
        verify_function(func)
    assert len(exc.value.errors) >= 2  # arity + missing terminator


def test_arity_table_covers_every_opcode():
    from repro.ir.verifier import _ARITY

    assert set(_ARITY) == set(Opcode)


def test_external_arity_covers_every_known_external():
    from repro.ir.verifier import _EXTERNAL_ARITY, KNOWN_EXTERNALS

    assert set(_EXTERNAL_ARITY) == KNOWN_EXTERNALS


def test_module_errors_lists_without_raising():
    from repro.ir.verifier import module_errors

    assert module_errors(valid_module()) == []
    mod = valid_module()
    mod.function("main").entry.insert(
        0,
        Operation(Opcode.LOAD, mod.function("main").new_vreg(INT),
                  [GlobalAddress("nope", INT)]),
    )
    errors = module_errors(mod)
    assert any("undefined global" in e for e in errors)


def _call(callee, srcs, dest=None):
    return Operation(
        Opcode.CALL, dest, [FunctionRef(callee, INT)] + srcs,
        attrs={"callee": callee},
    )


def test_external_call_wrong_arg_count():
    mod = valid_module()
    mod.function("main").entry.insert(
        0, _call("print_int", [Constant(1), Constant(2)])
    )
    with pytest.raises(VerificationError, match="passes 2 argument"):
        verify_module(mod)


def test_external_void_result_capture_rejected():
    mod = valid_module()
    func = mod.function("main")
    func.entry.insert(0, _call("abort", [], dest=func.new_vreg(INT)))
    with pytest.raises(VerificationError, match="returns void"):
        verify_module(mod)


def test_module_function_call_wrong_arg_count():
    mod = valid_module()
    callee = Function("helper", [VirtualRegister(50, INT, "x")], INT)
    callee.add_block("entry").append(Operation(Opcode.RET, srcs=[Constant(0)]))
    mod.add_function(callee)
    mod.function("main").entry.insert(0, _call("helper", []))
    with pytest.raises(VerificationError, match="passes 0 argument"):
        verify_module(mod)


def test_module_function_void_result_capture_rejected():
    from repro.ir.types import VOID

    mod = valid_module()
    callee = Function("noise", [], VOID)
    callee.add_block("entry").append(Operation(Opcode.RET))
    mod.add_function(callee)
    func = mod.function("main")
    func.entry.insert(0, _call("noise", [], dest=func.new_vreg(INT)))
    with pytest.raises(VerificationError, match="returns void"):
        verify_module(mod)


def test_correct_call_signatures_pass():
    from repro.ir.types import VOID

    mod = valid_module()
    callee = Function("helper", [VirtualRegister(50, INT, "x")], INT)
    callee.add_block("entry").append(Operation(Opcode.RET, srcs=[Constant(0)]))
    mod.add_function(callee)
    noise = Function("noise", [], VOID)
    noise.add_block("entry").append(Operation(Opcode.RET))
    mod.add_function(noise)
    func = mod.function("main")
    func.entry.insert(0, _call("noise", []))
    func.entry.insert(
        0, _call("helper", [Constant(3)], dest=func.new_vreg(INT))
    )
    func.entry.insert(0, _call("print_int", [Constant(1)]))
    verify_module(mod)
