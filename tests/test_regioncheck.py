"""Unit tests for the PR 9 region-analysis stack: interprocedural
MOD/REF summaries, the region-granular partition checker, and the
data-movement roofline."""

import pytest

from repro.analysis import annotate_memory_ops
from repro.analysis.dataflow import AccessRegionAnalysis
from repro.analysis.modref import (
    ModRefAnalysis,
    effect_contains,
    format_effect,
    merge_effect,
)
from repro.evalmodel import RooflineModel, build_roofline, roofline_for
from repro.lang import compile_source
from repro.lint import (
    check_region_outcome,
    lint_module,
    region_summary,
)
from repro.lint.diagnostics import RULE_METADATA, Severity
from repro.lint.regioncheck import (
    check_region_interference,
    check_region_locks,
    check_region_moves,
)
from repro.machine import two_cluster_machine
from repro.pipeline import PreparedProgram, run_gdp, run_unified

POINTER_TABLE = """
int a[4];
int b[4];
int *tab[2];
int main() {
  tab[0] = a;
  tab[1] = b;
  int *p = tab[0];
  int *q = tab[1];
  int s = 0;
  for (int i = 0; i < 4; i = i + 1) { s = s + p[i] + q[i]; }
  return s;
}
"""

CALLS = """
int a[8];
int b[8];
int helper(int i) {
  a[i] = i;
  return b[i];
}
int main() {
  int s = 0;
  for (int i = 0; i < 8; i = i + 1) { s = s + helper(i); }
  print_int(s);
  return s;
}
"""

RECURSIVE = """
int a[8];
int fib(int n) {
  a[n] = n;
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(6); }
"""


def annotated(src):
    module = compile_source(src, "t")
    annotate_memory_ops(module)
    return module


# -- effect lattice -----------------------------------------------------------


class TestEffectLattice:
    def test_merge_with_top_is_top(self):
        assert merge_effect(None, [(0, 4)]) is None
        assert merge_effect([(0, 4)], None) is None

    def test_merge_keeps_disjoint_components(self):
        assert merge_effect([(0, 4)], [(4, 8)]) == [(0, 4), (4, 8)]
        assert merge_effect([(0, 6)], [(4, 8)]) == [(0, 8)]

    def test_containment(self):
        assert effect_contains(None, [(0, 4)])
        assert effect_contains([(0, 8)], [(2, 4)])
        assert not effect_contains([(0, 4)], None)
        assert not effect_contains([(0, 4)], [(2, 6)])

    def test_format(self):
        assert format_effect(None) == "whole"
        assert format_effect([(0, 4), (8, 12)]) == "[0,4)+[8,12)"


# -- MOD/REF summaries --------------------------------------------------------


class TestModRef:
    def test_store_load_classification(self):
        modref = ModRefAnalysis(annotated(CALLS))
        helper = modref.summary_of("helper")
        assert "g:a" in helper.mod
        assert "g:b" in helper.ref
        assert "g:a" not in helper.ref

    def test_transitive_inherits_callee_effects(self):
        modref = ModRefAnalysis(annotated(CALLS))
        main = modref.summary_of("main")
        assert "g:a" in main.mod
        assert "g:b" in main.ref
        # ...but main's *local* summary touches neither array directly.
        assert "g:a" not in modref.local["main"].mod

    def test_known_externals_do_not_havoc(self):
        modref = ModRefAnalysis(annotated(CALLS))
        assert not modref.local["main"].havoc
        assert not modref.summary_of("main").havoc

    def test_recursion_widens_to_top(self):
        modref = ModRefAnalysis(annotated(RECURSIVE))
        assert "fib" in modref.widened
        summary = modref.summary_of("fib")
        assert summary.mod_of("g:a") is None  # widened to whole-object

    def test_pointer_table_is_splittable(self):
        modref = ModRefAnalysis(annotated(POINTER_TABLE))
        splittable = modref.splittable_objects()
        assert "g:tab" in splittable
        parts = splittable["g:tab"]
        assert len(parts) == 2
        for (_, prev_hi), (next_lo, _) in zip(parts, parts[1:]):
            assert prev_hi <= next_lo

    def test_region_summary_shape(self):
        stats = region_summary(ModRefAnalysis(annotated(POINTER_TABLE)))
        assert stats["splittable_objects"] >= 1
        assert stats["splittable_intervals"] >= 2
        assert stats["widened_functions"] == 0
        assert stats["havoc_functions"] == 0
        assert stats["objects_tracked"] >= 3


# -- lint integration ---------------------------------------------------------


class TestRegionLintPass:
    def test_rules_registered_with_metadata(self):
        for rule in (
            "region-refinement", "region-cross-cluster",
            "region-interference", "region-unbridged", "region-splittable",
        ):
            assert rule in RULE_METADATA

    def test_splittable_advisory_via_lint_module(self):
        report = lint_module(annotated(POINTER_TABLE))
        advisories = [
            d for d in report.diagnostics if d.rule == "region-splittable"
        ]
        assert advisories
        assert all(d.severity is Severity.INFO for d in advisories)
        assert any("g:tab" in d.message for d in advisories)

    def test_no_refinement_errors_on_clean_module(self):
        report = lint_module(annotated(POINTER_TABLE), only=["regioncheck"])
        assert not [
            d for d in report.errors if d.rule == "region-refinement"
        ]


# -- partition-dependent checks ----------------------------------------------


@pytest.fixture(scope="module")
def machine():
    return two_cluster_machine(move_latency=5)


@pytest.fixture(scope="module")
def table_prepared():
    return PreparedProgram.from_source(POINTER_TABLE, "t")


class TestOutcomeChecks:
    def test_valid_outcomes_are_clean(self, table_prepared, machine):
        for run in (run_gdp, run_unified):
            outcome = run(table_prepared, machine)
            report = check_region_outcome(table_prepared, outcome)
            assert not report.has_errors, [
                d.render() for d in report.errors
            ]
            assert "regioncheck" in report.stats

    def test_misplaced_locked_op_is_cross_cluster(
        self, table_prepared, machine
    ):
        from repro.partition.locks import memory_locks

        outcome = run_gdp(table_prepared, machine)
        regions = AccessRegionAnalysis(outcome.module)
        locks = memory_locks(
            outcome.module,
            outcome.object_home,
            table_prepared.object_access_counts(),
        )
        uid, home = sorted(locks.items())[0]
        corrupted = dict(outcome.assignment)
        corrupted[uid] = 1 - home
        report = check_region_locks(
            outcome.module, corrupted, outcome.object_home, regions,
            table_prepared.object_access_counts(),
        )
        assert report.has_errors
        assert all(d.rule == "region-cross-cluster" for d in report.errors)

    def test_overlapping_cross_cluster_write_interferes(self):
        module = annotated("""
        int a[4];
        int main() { a[1] = 5; return a[1]; }
        """)
        regions = AccessRegionAnalysis(module)
        from repro.ir import Opcode

        assignment = {}
        for op in module.function("main").operations():
            if op.opcode is Opcode.STORE:
                assignment[op.uid] = 0
            elif op.opcode is Opcode.LOAD:
                assignment[op.uid] = 1
        report = check_region_interference(
            module, assignment, {"g:a": 0}, regions
        )
        assert report.has_errors
        assert all(d.rule == "region-interference" for d in report.errors)
        assert any("[4,8)" in d.message for d in report.errors)

    def test_disjoint_regions_do_not_interfere(self):
        module = annotated("""
        int a[4];
        int main() { a[0] = 5; return a[3]; }
        """)
        regions = AccessRegionAnalysis(module)
        from repro.ir import Opcode

        assignment = {}
        for op in module.function("main").operations():
            if op.opcode is Opcode.STORE:
                assignment[op.uid] = 0
            elif op.opcode is Opcode.LOAD:
                assignment[op.uid] = 1
        report = check_region_interference(
            module, assignment, {"g:a": 0}, regions
        )
        assert not report.has_errors

    def test_unbridged_cut_edge_is_reported(self):
        module = annotated("""
        int a[4];
        int main() { int x = a[0]; return x + 1; }
        """)
        regions = AccessRegionAnalysis(module)
        from repro.ir import Opcode

        assignment = {}
        for op in module.function("main").operations():
            assignment[op.uid] = (
                0 if op.opcode is Opcode.LOAD else 1
            )
        report = check_region_moves(module, assignment, regions)
        assert report.has_errors
        assert all(d.rule == "region-unbridged" for d in report.errors)


# -- roofline -----------------------------------------------------------------


class TestRoofline:
    def test_model_arithmetic(self):
        model = RooflineModel(spans={"a": 8}, traffic={"a": 32})
        assert model.lower_bound == 8
        assert model.memory_traffic == 32
        assert model.footprint == 8
        assert model.ratio(0) == pytest.approx(4.0)
        # 2 word-moves add 8 bytes of traffic: (32 + 8) / 8.
        assert model.ratio(2) == pytest.approx(5.0)

    def test_span_clamps_lower_bound(self):
        # Traffic below the span: the object's own traffic is the bound.
        model = RooflineModel(spans={"a": 100}, traffic={"a": 12})
        assert model.lower_bound == 12
        assert model.ratio(0) == pytest.approx(1.0)

    def test_empty_bound_is_vacuous_not_crashing(self):
        model = RooflineModel(spans={}, traffic={})
        assert model.lower_bound == 0
        assert model.ratio(0) == 1.0

    def test_report_keys_deterministic(self):
        report = RooflineModel({"a": 8}, {"a": 32}).report(2)
        assert report == {
            "footprint_bytes": 8,
            "memory_traffic_bytes": 32,
            "move_traffic_bytes": 8.0,
            "total_traffic_bytes": 40.0,
            "lower_bound_bytes": 8,
            "ratio": 5.0,
        }

    def test_build_from_prepared_is_sound(self, table_prepared):
        model = build_roofline(table_prepared)
        assert model.lower_bound > 0
        assert model.memory_traffic >= model.lower_bound
        assert model.ratio(0) >= 1.0

    def test_roofline_for_memoizes(self, table_prepared):
        assert roofline_for(table_prepared) is roofline_for(table_prepared)

    def test_outcomes_carry_roofline(self, table_prepared, machine):
        unified = run_unified(table_prepared, machine)
        gdp = run_gdp(table_prepared, machine)
        for outcome in (unified, gdp):
            assert outcome.roofline is not None
            assert outcome.roofline["ratio"] >= 1.0
        expected = roofline_for(table_prepared).report(
            unified.eval.dynamic_moves
        )
        assert unified.roofline == expected
