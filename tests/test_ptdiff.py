"""Tests for the refinement-soundness differ, precision tables, SARIF
output, and the precision-observability CLI surface."""

import json
import os
from collections import Counter

import pytest

from repro.analysis import TIERS, solve_pointsto
from repro.bench import get as get_benchmark
from repro.cli import main
from repro.lang import compile_source
from repro.lint import (
    DETERMINISTIC_COLUMNS,
    PASS_REGISTRY,
    Severity,
    diff_tiers,
    lint_module,
    precision_table,
    tier_solutions,
)
from repro.lint.diagnostics import Diagnostic, DiagnosticReport
from repro.profiler import Interpreter

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

POINTER_TABLE = """
int a[4];
int b[4];
int *tab[2];
int main() {
  tab[0] = a;
  tab[1] = b;
  int *p = tab[0];
  int *q = tab[1];
  return p[0] + q[0];
}
"""


@pytest.fixture()
def ptable_file(tmp_path):
    path = tmp_path / "ptable.mc"
    path.write_text(POINTER_TABLE)
    return str(path)


class _Inflated:
    """Wrap a real solution, adding a phantom target to every op set —
    simulates a sharper solver that invents objects (a refinement bug)."""

    def __init__(self, inner):
        self._inner = inner

    def objects_for_op(self, func, op):
        return self._inner.objects_for_op(func, op) | {"g:phantom"}

    def stats(self):
        return self._inner.stats()


class _FakeProfile:
    def __init__(self, op_object_counts):
        self.op_object_counts = op_object_counts


class TestDiffTiers:
    def test_clean_program_has_no_diagnostics(self):
        module = compile_source(POINTER_TABLE, "t")
        report = diff_tiers(module)
        assert not report.has_errors
        assert len(report.diagnostics) == 0

    def test_stats_ride_on_the_report(self):
        module = compile_source(POINTER_TABLE, "t")
        report = diff_tiers(module)
        assert set(report.stats) == set(TIERS)
        assert report.stats["cs"]["avg_set_size"] < (
            report.stats["andersen"]["avg_set_size"]
        )

    def test_subset_violation_detected(self):
        module = compile_source(POINTER_TABLE, "t")
        sols = tier_solutions(module)
        sols["cs"] = _Inflated(sols["cs"])
        report = diff_tiers(module, solutions=sols)
        assert report.has_errors
        rules = {d.rule for d in report}
        assert rules == {"ptdiff-subset"}
        assert any("g:phantom" in d.message for d in report)

    def test_oracle_violation_detected(self):
        module = compile_source(POINTER_TABLE, "t")
        op = next(
            op for op in module.function("main").operations()
            if op.is_memory_access()
        )
        profile = _FakeProfile({op.uid: Counter({"g:phantom": 3})})
        report = diff_tiers(module, profile=profile)
        assert report.has_errors
        assert {d.rule for d in report} == {"ptdiff-oracle"}
        # every tier misses the phantom, so one diagnostic per tier
        assert len(report.diagnostics) == len(TIERS)

    def test_real_profile_is_contained(self):
        module = compile_source(POINTER_TABLE, "t")
        interp = Interpreter(module)
        interp.run()
        report = diff_tiers(module, profile=interp.profile)
        assert not report.has_errors

    def test_differ_pass_registered(self):
        assert "ptdiff" in PASS_REGISTRY
        module = compile_source(POINTER_TABLE, "t")
        report = lint_module(module, only=["ptdiff"])
        assert not report.has_errors


class TestPrecisionTable:
    def test_matches_golden(self):
        for name in ("huffman", "cjpeg"):
            module = compile_source(get_benchmark(name).source, name)
            with open(
                os.path.join(GOLDEN_DIR, f"precision_{name}.txt")
            ) as fh:
                assert precision_table(module) + "\n" == fh.read()

    def test_only_deterministic_columns(self):
        module = compile_source(POINTER_TABLE, "t")
        table = precision_table(module)
        assert "solver_iterations" not in table
        assert "solve_seconds" not in table
        for col in DETERMINISTIC_COLUMNS:
            assert col in table


class TestSarif:
    def test_sarif_structure(self):
        report = DiagnosticReport([
            Diagnostic(Severity.ERROR, "ptdiff-subset", "boom",
                       func="f", block="entry", op="load", phase="pointsto"),
            Diagnostic(Severity.WARNING, "some-rule", "careful", func="g"),
            Diagnostic(Severity.INFO, "fyi", "note this"),
        ])
        log = json.loads(report.to_sarif())
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        levels = [r["level"] for r in run["results"]]
        assert sorted(levels) == ["error", "note", "warning"]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rule_ids == {"ptdiff-subset", "some-rule", "fyi"}
        err = next(r for r in run["results"] if r["level"] == "error")
        assert err["properties"]["phase"] == "pointsto"
        loc = err["locations"][0]["logicalLocations"][0]
        assert loc["fullyQualifiedName"] == "f/entry"

    def test_empty_report_is_valid_sarif(self):
        log = json.loads(DiagnosticReport([]).to_sarif())
        assert log["runs"][0]["results"] == []


class TestLintCli:
    def test_sarif_format_matches_golden(self, ptable_file, capsys):
        assert main(["lint", ptable_file, "--format", "sarif"]) == 0
        out = capsys.readouterr().out
        with open(
            os.path.join(GOLDEN_DIR, "lint_pointer_table.sarif")
        ) as fh:
            assert out == fh.read()

    def test_json_format_carries_tier_stats(self, ptable_file, capsys):
        assert main(["lint", ptable_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["stats"]) == set(TIERS)
        for tier in TIERS:
            assert set(payload["stats"][tier]) == set(DETERMINISTIC_COLUMNS)

    def test_dynamic_oracle_flag(self, ptable_file, capsys):
        assert main(["lint", ptable_file, "--dynamic-oracle"]) == 0
        out = capsys.readouterr().out
        assert "stats[andersen]" in out

    def test_text_format_prints_tier_deltas(self, ptable_file, capsys):
        assert main(["lint", ptable_file]) == 0
        out = capsys.readouterr().out
        assert "pointsto-tier-delta" in out


class TestTierDeltaLint:
    def test_delta_reported_for_pointer_table(self):
        module = compile_source(POINTER_TABLE, "t")
        report = lint_module(module, only=["pointsto"])
        deltas = [d for d in report if d.rule == "pointsto-tier-delta"]
        assert len(deltas) == 2  # field and cs both shrink here
        assert all(d.severity is Severity.INFO for d in deltas)

    def test_no_delta_for_globals_only_program(self):
        module = compile_source(
            "int g[4]; int main() { g[0] = 1; return g[0]; }", "t"
        )
        report = lint_module(module, only=["pointsto"])
        assert not [d for d in report if d.rule == "pointsto-tier-delta"]
