"""Unit tests for the MiniC lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import Token, tokenize


def kinds(src):
    return [(t.kind, t.value) for t in tokenize(src)[:-1]]  # drop EOF


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "eof"

    def test_identifiers_and_keywords(self):
        assert kinds("int x floaty") == [
            ("kw", "int"),
            ("ident", "x"),
            ("ident", "floaty"),
        ]

    def test_all_keywords(self):
        for kw in ("int", "float", "void", "struct", "if", "else", "while",
                   "do", "for", "return", "break", "continue", "malloc",
                   "sizeof"):
            assert kinds(kw) == [("kw", kw)]

    def test_underscore_identifiers(self):
        assert kinds("_x a_b __c1") == [
            ("ident", "_x"),
            ("ident", "a_b"),
            ("ident", "__c1"),
        ]


class TestNumbers:
    def test_decimal_int(self):
        assert kinds("0 7 12345") == [("int", 0), ("int", 7), ("int", 12345)]

    def test_hex_int(self):
        assert kinds("0x10 0xFF") == [("int", 16), ("int", 255)]

    def test_bad_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_float_forms(self):
        assert kinds("1.5") == [("float", 1.5)]
        assert kinds("2.0e3") == [("float", 2000.0)]
        assert kinds("1e-2") == [("float", 0.01)]
        assert kinds("3E+2") == [("float", 300.0)]

    def test_int_then_dot_method_not_float(self):
        # "1." without digits stays an int followed by punct.
        assert kinds("1 . 2")[0] == ("int", 1)


class TestOperators:
    def test_maximal_munch(self):
        assert kinds("<<=") == [("punct", "<<"), ("punct", "=")]
        assert kinds("a<=b") == [("ident", "a"), ("punct", "<="), ("ident", "b")]
        assert kinds("a->b")[1] == ("punct", "->")
        assert kinds("a- >b")[1] == ("punct", "-")

    def test_logical_ops(self):
        assert [k for k, _ in kinds("&& || & |")] == ["punct"] * 4
        assert [v for _, v in kinds("&& || & |")] == ["&&", "||", "&", "|"]

    def test_all_single_punct(self):
        for p in "+-*/%<>=!~&|^?:;,.()[]{}":
            assert kinds(p) == [("punct", p)]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestCommentsAndLocations:
    def test_line_comment(self):
        assert kinds("a // hidden\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("a /* never ends")

    def test_locations(self):
        toks = tokenize("a\n  b")
        assert toks[0].loc.line == 1 and toks[0].loc.col == 1
        assert toks[1].loc.line == 2 and toks[1].loc.col == 3

    def test_token_helpers(self):
        t = tokenize("int")[0]
        assert t.is_kw("int") and not t.is_kw("float")
        p = tokenize(";")[0]
        assert p.is_punct(";") and not p.is_punct(",")
