"""Tests for the affine address analysis used in memory disambiguation."""

from repro.analysis.affine import (
    Affine,
    AffineAddresses,
    coalesce_intervals,
    intervals_overlap,
)
from repro.ir import Constant, Function, GlobalAddress, IRBuilder, Opcode
from repro.ir.types import FLOAT, INT, ArrayType, PointerType
from repro.lang import compile_source
from repro.schedule import DependenceGraph


def block_of(src, func="main", index=None):
    module = compile_source(src, "t")
    blocks = list(module.function(func))
    if index is not None:
        return blocks[index]
    # the block with the most memory ops
    return max(blocks, key=lambda b: sum(1 for op in b if op.is_memory_access()))


class TestAffineForms:
    def test_constant(self):
        a = Affine.constant(5)
        assert a.const == 5 and not a.terms

    def test_add_and_negate(self):
        x = Affine.atom("x")
        e = x.add(Affine.constant(4)).add(x)
        assert e.terms == {"x": 2} and e.const == 4
        n = e.negate()
        assert n.terms == {"x": -2} and n.const == -4

    def test_scale(self):
        x = Affine.atom("x")
        e = x.add(Affine.constant(3)).scale(4)
        assert e.terms == {"x": 4} and e.const == 12

    def test_cancellation_drops_terms(self):
        x = Affine.atom("x")
        e = x.add(x.negate())
        assert not e.terms

    def test_same_symbolic(self):
        x, y = Affine.atom("x"), Affine.atom("y")
        assert x.add(Affine.constant(1)).same_symbolic(x.add(Affine.constant(9)))
        assert not x.same_symbolic(y)

    def test_as_constant(self):
        assert Affine.constant(7).as_constant() == 7
        assert Affine.atom("x").as_constant() is None
        x = Affine.atom("x")
        assert x.add(x.negate()).add(Affine.constant(3)).as_constant() == 3


class TestOffsetClassification:
    """The interval helpers the field-sensitive points-to tier uses to
    carve a global into content regions."""

    def test_overlap_predicate(self):
        assert intervals_overlap((0, 8), (4, 12))
        assert intervals_overlap((4, 12), (0, 8))
        assert intervals_overlap((0, 8), (2, 4))  # containment
        # Adjacency is NOT overlap: p[0] and p[1] touch but don't share.
        assert not intervals_overlap((0, 4), (4, 8))
        assert not intervals_overlap((0, 4), (8, 12))
        assert not intervals_overlap((0, 0), (0, 4))  # empty interval

    def test_overlapping_intervals_merge(self):
        assert coalesce_intervals([(0, 8), (4, 12), (20, 24)]) == [
            (0, 12),
            (20, 24),
        ]

    def test_adjacent_intervals_stay_separate(self):
        """Distinct array slots ([0,4) and [4,8)) must remain distinct
        regions or field sensitivity could never split a pointer table."""
        assert coalesce_intervals([(4, 8), (0, 4)]) == [(0, 4), (4, 8)]

    def test_contained_interval_absorbed(self):
        assert coalesce_intervals([(0, 16), (4, 8)]) == [(0, 16)]

    def test_chain_of_overlaps_collapses(self):
        assert coalesce_intervals([(0, 6), (4, 10), (8, 14)]) == [(0, 14)]

    def test_empty_input(self):
        assert coalesce_intervals([]) == []

    def test_ptradd_offsets_recorded(self):
        block = block_of(
            "int t[8]; int main() { t[0] = 1; t[3] = 2; return 0; }"
        )
        aff = AffineAddresses(block)
        from repro.ir import Opcode

        offs = {
            aff.ptradd_offset[op.uid].as_constant()
            for op in block.ops
            if op.opcode is Opcode.PTRADD and op.uid in aff.ptradd_offset
        }
        assert {0, 12} <= offs

    def test_versioned_atom_redefinition_keeps_offsets_apart(self):
        """After ``i = i + 1`` the new version folds into the old atom, so
        the two stores classify to distinct constant offsets — the field
        tier can place them in different regions."""
        src = """
        int t[16];
        int main() {
          int i = 3;
          t[i] = 1;
          i = i + 1;
          t[i] = 2;
          return 0;
        }
        """
        block = block_of(src)
        aff = AffineAddresses(block)
        from repro.ir import Opcode

        stores = [op for op in block.ops if op.opcode is Opcode.STORE]
        a0 = aff.address_of[stores[0].uid]
        a1 = aff.address_of[stores[1].uid]
        assert a0.same_symbolic(a1)
        assert a1.const - a0.const == 4

    def test_redefinition_to_unknown_loses_constant_offset(self):
        src = """
        int t[16];
        int u[4];
        int main() {
          int i = 3;
          t[i] = 1;
          i = u[0];
          t[i] = 2;
          return 0;
        }
        """
        block = block_of(src)
        aff = AffineAddresses(block)
        from repro.ir import Opcode

        stores = [op for op in block.ops if op.opcode is Opcode.STORE]
        a0 = aff.address_of[stores[0].uid]
        a1 = aff.address_of[stores[1].uid]
        # The second store indexes an opaque atom: different symbolic part.
        assert not a0.same_symbolic(a1)
        assert a1.as_constant() is None


class TestDisambiguation:
    def _accesses(self, block):
        aff = AffineAddresses(block)
        memops = [op for op in block.ops if op.is_memory_access()]
        return aff, memops

    def test_distinct_constant_indices_disjoint(self):
        block = block_of("int t[8]; int main() { t[0] = 1; t[1] = 2; return 0; }")
        aff, (s0, s1) = self._accesses(block)
        assert aff.provably_disjoint(s0, s1)

    def test_same_index_not_disjoint(self):
        block = block_of("int t[8]; int main() { t[3] = 1; return t[3]; }")
        aff, (s, l) = self._accesses(block)
        assert not aff.provably_disjoint(s, l)

    def test_symbolic_offset_difference(self):
        src = """
        int t[8];
        int main() {
          int i = 2;
          t[i] = 1;
          t[i + 1] = 2;
          return 0;
        }
        """
        block = block_of(src)
        aff, stores = self._accesses(block)
        assert aff.provably_disjoint(stores[0], stores[1])

    def test_unknown_relation_not_disjoint(self):
        src = """
        int t[8];
        int u[2];
        int main() {
          int i = u[0]; int j = u[1];
          t[i] = 1;
          t[j] = 2;
          return 0;
        }
        """
        # i and j are distinct opaque atoms: cannot prove disjoint.
        block = block_of(src)
        aff, ops = self._accesses(block)
        from repro.ir import Opcode

        stores = [op for op in ops if op.opcode is Opcode.STORE]
        assert not aff.provably_disjoint(stores[0], stores[1])

    def test_constants_propagate_through_movs(self):
        block = block_of(
            "int t[8]; int main() { int i = 1; int j = 2;"
            " t[i] = 1; t[j] = 2; return 0; }"
        )
        aff, stores = self._accesses(block)
        assert aff.provably_disjoint(stores[0], stores[1])

    def test_redefinition_is_versioned(self):
        src = """
        int t[16];
        int main() {
          int i = 3;
          t[i] = 1;
          i = i + 1;
          t[i] = 2;
          return 0;
        }
        """
        block = block_of(src)
        aff, stores = self._accesses(block)
        # t[i] and t[i+1] after folding through the redefinition: disjoint.
        assert aff.provably_disjoint(stores[0], stores[1])

    def test_redefinition_to_unknown_value(self):
        src = """
        int t[16];
        int u[4];
        int main() {
          int i = 3;
          t[i] = 1;
          i = u[0];
          t[i] = 2;
          return 0;
        }
        """
        block = block_of(src)
        aff, ops = self._accesses(block)
        stores = [op for op in ops if op.opcode is Opcode.STORE]
        assert not aff.provably_disjoint(stores[0], stores[1])

    def test_widths_respected_for_floats(self):
        func = Function("f", [], INT)
        b = IRBuilder(func)
        entry = b.new_block("entry")
        b.set_block(entry)
        base = GlobalAddress("ftab", FLOAT)
        a0 = b.ptradd(base, Constant(0, INT))
        a4 = b.ptradd(base, Constant(4, INT))
        a8 = b.ptradd(base, Constant(8, INT))
        s0 = b.store(Constant(1.0, FLOAT), a0)  # bytes [0,8)
        s4 = b.store(Constant(2.0, FLOAT), a4)  # bytes [4,12) overlaps
        s8 = b.store(Constant(3.0, FLOAT), a8)  # bytes [8,16) disjoint from s0
        b.ret(Constant(0, INT))
        aff = AffineAddresses(entry)
        assert not aff.provably_disjoint(s0, s4)
        assert aff.provably_disjoint(s0, s8)

    def test_scaled_index_via_shift(self):
        func = Function("f", [], INT)
        b = IRBuilder(func)
        entry = b.new_block("entry")
        b.set_block(entry)
        base = GlobalAddress("t", INT)
        i = b.mov(Constant(5, INT))
        off = b.shl(i, Constant(2, INT))  # i * 4
        a_i = b.ptradd(base, off)
        s1 = b.store(Constant(1, INT), a_i)
        off2 = b.mul(i, Constant(4, INT))
        a_same = b.ptradd(base, off2)
        s2 = b.store(Constant(2, INT), a_same)
        b.ret(Constant(0, INT))
        aff = AffineAddresses(entry)
        # Same symbolic address: NOT disjoint.
        assert not aff.provably_disjoint(s1, s2)


class TestDepGraphIntegration:
    def test_shift_loop_now_parallel(self):
        """The delayline-shift pattern: t[i] = t[i-1] for adjacent i in one
        block must not serialise through memory edges."""
        src = """
        int t[8];
        int main() {
          int i = 4;
          t[i] = t[i - 1];
          t[i + 1] = t[i - 2];
          return 0;
        }
        """
        module = compile_source(src, "t")
        func = module.function("main")
        from repro.analysis import annotate_memory_ops

        annotate_memory_ops(module)
        block = max(func, key=len)
        graph = DependenceGraph(block, lambda op: 1)
        mem_edges = [e for e in graph.edges if e.kind == "mem"]
        # stores/loads at distinct offsets: only genuinely-needed edges.
        assert len(mem_edges) == 0

    def test_aliasing_accesses_still_ordered(self):
        src = """
        int t[8];
        int main() {
          int i = 3;
          t[i] = 1;
          int r = t[i];
          return r;
        }
        """
        module = compile_source(src, "t")
        from repro.analysis import annotate_memory_ops

        annotate_memory_ops(module)
        func = module.function("main")
        block = max(func, key=len)
        graph = DependenceGraph(block, lambda op: 1)
        mem_edges = [e for e in graph.edges if e.kind == "mem"]
        assert len(mem_edges) >= 1
