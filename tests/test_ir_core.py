"""Unit tests for operations, blocks, functions, modules, and cloning."""

import pytest

from repro.ir import (
    BasicBlock,
    Constant,
    Function,
    FunctionRef,
    GlobalAddress,
    GlobalVariable,
    IRBuilder,
    Module,
    OpClass,
    Opcode,
    Operation,
    VirtualRegister,
    clone_function,
    clone_module,
    print_function,
    print_module,
)
from repro.ir.types import FLOAT, INT, ArrayType, PointerType


def make_add_function():
    func = Function("add", [], INT)
    b = IRBuilder(func)
    entry = b.new_block("entry")
    b.set_block(entry)
    x = b.add(b.const(2), b.const(3))
    b.ret(x)
    return func


class TestValues:
    def test_vreg_identity(self):
        a = VirtualRegister(1, INT)
        b = VirtualRegister(1, FLOAT, "other")
        assert a == b  # identity is the vid
        assert hash(a) == hash(b)
        assert a != VirtualRegister(2, INT)

    def test_constant_defaults(self):
        assert Constant(3).ty == INT
        assert Constant(2.5).ty == FLOAT

    def test_constant_equality(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(2)
        assert Constant(1) != Constant(1.0, FLOAT)

    def test_global_address(self):
        g = GlobalAddress("tab", ArrayType(INT, 4))
        assert g.ty.is_pointer()
        assert g.symbol == "tab"
        assert g == GlobalAddress("tab", INT)  # symbol-keyed

    def test_function_ref(self):
        assert FunctionRef("f", INT) == FunctionRef("f", FLOAT)
        assert str(FunctionRef("f", INT)) == "@f"


class TestOperations:
    def test_uid_unique(self):
        a = Operation(Opcode.ADD, VirtualRegister(0, INT), [Constant(1), Constant(2)])
        b = Operation(Opcode.ADD, VirtualRegister(0, INT), [Constant(1), Constant(2)])
        assert a.uid != b.uid
        assert a != b

    def test_classification(self):
        load = Operation(Opcode.LOAD, VirtualRegister(0, INT), [Constant(0)])
        assert load.is_memory() and load.is_memory_access()
        malloc = Operation(
            Opcode.MALLOC, VirtualRegister(1, PointerType(INT)), [Constant(8)],
            attrs={"site": "s"},
        )
        assert malloc.is_memory() and not malloc.is_memory_access()
        br = Operation(Opcode.BR, targets=["next"])
        assert br.is_branch() and br.is_terminator()
        call = Operation(
            Opcode.CALL, None, [FunctionRef("f", INT)], attrs={"callee": "f"}
        )
        assert call.is_call() and not call.is_terminator()
        icm = Operation(Opcode.ICMOVE, VirtualRegister(2, INT), [Constant(1)])
        assert icm.is_icmove()
        assert icm.opclass is OpClass.ICMOVE

    def test_address_operand(self):
        addr = VirtualRegister(9, PointerType(INT))
        load = Operation(Opcode.LOAD, VirtualRegister(0, INT), [addr])
        store = Operation(Opcode.STORE, None, [Constant(1), addr])
        add = Operation(Opcode.ADD, VirtualRegister(1, INT), [Constant(1), Constant(2)])
        assert load.address_operand() is addr
        assert store.address_operand() is addr
        assert add.address_operand() is None

    def test_register_srcs(self):
        v = VirtualRegister(3, INT)
        op = Operation(Opcode.ADD, VirtualRegister(4, INT), [v, Constant(1)])
        assert op.register_srcs() == [v]

    def test_replace_src(self):
        v = VirtualRegister(3, INT)
        w = VirtualRegister(5, INT)
        op = Operation(Opcode.ADD, VirtualRegister(4, INT), [v, v])
        assert op.replace_src(v, w) == 2
        assert op.srcs == [w, w]

    def test_clone_fresh_uid(self):
        op = Operation(Opcode.MOV, VirtualRegister(0, INT), [Constant(1)],
                       attrs={"k": 1})
        dup = op.clone()
        assert dup.uid != op.uid
        assert dup.attrs == op.attrs
        dup.attrs["k"] = 2
        assert op.attrs["k"] == 1

    def test_mem_objects_default_empty(self):
        op = Operation(Opcode.LOAD, VirtualRegister(0, INT), [Constant(0)])
        assert op.mem_objects() == frozenset()


class TestBlocksAndFunctions:
    def test_terminator_detection(self):
        block = BasicBlock("b")
        assert block.terminator is None
        block.append(Operation(Opcode.MOV, VirtualRegister(0, INT), [Constant(1)]))
        assert block.terminator is None
        block.append(Operation(Opcode.BR, targets=["x"]))
        assert block.terminator is not None
        assert block.successors() == ["x"]

    def test_index_of(self):
        block = BasicBlock("b")
        op = block.append(Operation(Opcode.MOV, VirtualRegister(0, INT), [Constant(1)]))
        assert block.index_of(op) == 0
        other = Operation(Opcode.MOV, VirtualRegister(1, INT), [Constant(2)])
        with pytest.raises(ValueError):
            block.index_of(other)

    def test_function_vreg_minting(self):
        p = VirtualRegister(0, INT, "a")
        func = Function("f", [p], INT)
        r1 = func.new_vreg(INT)
        r2 = func.new_vreg(FLOAT)
        assert len({p.vid, r1.vid, r2.vid}) == 3

    def test_function_block_names(self):
        func = Function("f", [], INT)
        b1 = func.add_block()
        b2 = func.add_block()
        assert b1.name != b2.name
        with pytest.raises(ValueError):
            func.add_block(b1.name)

    def test_entry_is_first(self):
        func = Function("f", [], INT)
        first = func.add_block("start")
        func.add_block("later")
        assert func.entry is first

    def test_entry_requires_blocks(self):
        with pytest.raises(ValueError):
            Function("f", [], INT).entry

    def test_operations_iteration_and_count(self):
        func = make_add_function()
        ops = list(func.operations())
        assert func.op_count() == len(ops) == 2
        assert ops[-1].opcode is Opcode.RET

    def test_find_block_of(self):
        func = make_add_function()
        op = next(func.operations())
        assert func.find_block_of(op).name == "entry"


class TestModule:
    def test_globals(self):
        mod = Module("m")
        g = mod.add_global("tab", ArrayType(INT, 4), [1, 2, 3, 4])
        assert g.size() == 16
        assert mod.global_var("tab") is g
        with pytest.raises(ValueError):
            mod.add_global("tab", INT)

    def test_functions_and_main(self):
        mod = Module("m")
        with pytest.raises(ValueError):
            mod.main
        func = make_add_function()
        mod.add_function(func)
        with pytest.raises(ValueError):
            mod.add_function(make_add_function())
        assert not mod.has_function("main")
        main = Function("main", [], INT)
        mod.add_function(main)
        assert mod.main is main

    def test_global_address_roundtrip(self):
        mod = Module("m")
        g = mod.add_global("x", INT, 7)
        assert g.address().symbol == "x"


class TestPrinting:
    def test_print_function_contains_ops(self):
        text = print_function(make_add_function())
        assert "func @add" in text
        assert "add 2, 3" in text
        assert "ret" in text

    def test_print_module(self):
        mod = Module("m")
        mod.add_global("x", INT, 1)
        mod.add_function(make_add_function())
        text = print_module(mod)
        assert "global @x" in text and "func @add" in text

    def test_print_with_assignment(self):
        func = make_add_function()
        assignment = {op.uid: 1 for op in func.operations()}
        text = print_function(func, assignment)
        assert "[c1]" in text


class TestCloning:
    def test_clone_function_structure(self):
        func = make_add_function()
        dup, uid_map = clone_function(func)
        assert dup.op_count() == func.op_count()
        assert set(uid_map.keys()) == {op.uid for op in func.operations()}
        for old_op, new_op in zip(func.operations(), dup.operations()):
            assert uid_map[old_op.uid] == new_op.uid
            assert new_op.opcode == old_op.opcode

    def test_clone_is_independent(self):
        func = make_add_function()
        dup, _ = clone_function(func)
        dup.entry.ops.pop()
        assert func.op_count() == 2
        assert dup.op_count() == 1

    def test_clone_module(self):
        mod = Module("m")
        mod.add_global("x", INT, 5)
        mod.add_function(make_add_function())
        dup, uid_map = clone_module(mod)
        assert "x" in dup.globals
        assert dup.function("add").op_count() == 2
        assert len(uid_map) == 2

    def test_clone_preserves_vreg_counter(self):
        func = make_add_function()
        dup, _ = clone_function(func)
        assert dup.new_vreg(INT).vid == func.new_vreg(INT).vid
