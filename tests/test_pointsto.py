"""Tests for the tiered points-to analyses and memory-op annotation."""

import pytest

from repro.analysis import (
    TIERS,
    ObjectTable,
    PointsTo,
    annotate_memory_ops,
    global_object_id,
    heap_object_id,
    solve_pointsto,
)
from repro.ir import Opcode
from repro.lang import compile_source


def annotated(src):
    module = compile_source(src, "t")
    annotate_memory_ops(module)
    return module


def mem_ops(module, func="main"):
    return [
        op for op in module.function(func).operations() if op.is_memory_access()
    ]


class TestDirectAccess:
    def test_global_scalar(self):
        module = annotated("int g = 1; int main() { return g; }")
        (load,) = mem_ops(module)
        assert load.mem_objects() == {global_object_id("g")}

    def test_global_array(self):
        module = annotated("int t[4]; int main() { t[0] = 1; return t[1]; }")
        for op in mem_ops(module):
            assert op.mem_objects() == {"g:t"}

    def test_two_distinct_arrays(self):
        module = annotated(
            "int a[4]; int b[4]; int main() { a[0] = 1; return b[0]; }"
        )
        store, load = mem_ops(module)
        assert store.mem_objects() == {"g:a"}
        assert load.mem_objects() == {"g:b"}

    def test_malloc_annotated(self):
        module = annotated("int main() { int *p = malloc(8); return p[0]; }")
        mallocs = [
            op
            for op in module.function("main").operations()
            if op.opcode is Opcode.MALLOC
        ]
        assert len(mallocs) == 1
        (site,) = mallocs[0].mem_objects()
        assert site.startswith("h:")
        (load,) = mem_ops(module)
        assert load.mem_objects() == {site}


class TestFlowThroughCopiesAndPhis:
    def test_pointer_select_merges(self):
        src = """
        int a[4];
        int b[4];
        int main(){
          int c = 1;
          int *p;
          if (c) { p = a; } else { p = b; }
          return p[0];
        }
        """
        module = annotated(src)
        loads = [op for op in mem_ops(module) if op.opcode is Opcode.LOAD]
        assert loads[-1].mem_objects() == {"g:a", "g:b"}

    def test_pointer_arith_preserves_target(self):
        module = annotated(
            "int t[8]; int main() { int *p = t; p = p + 3; return *p; }"
        )
        (load,) = mem_ops(module)
        assert load.mem_objects() == {"g:t"}


class TestFlowThroughMemory:
    def test_pointer_stored_in_global(self):
        src = """
        int a[4];
        int *gp;
        int main() {
          gp = a;
          return gp[0];
        }
        """
        module = annotated(src)
        ops = mem_ops(module)
        # the load through gp reads both gp itself and then object a
        final = ops[-1]
        assert "g:a" in final.mem_objects()

    def test_heap_pointer_through_global(self):
        src = """
        int *gp;
        int main() {
          gp = malloc(16);
          gp[1] = 5;
          return gp[1];
        }
        """
        module = annotated(src)
        accesses = [op for op in mem_ops(module) if op.mem_objects()]
        heap_objs = {
            o for op in accesses for o in op.mem_objects() if o.startswith("h:")
        }
        assert len(heap_objs) == 1

    def test_paper_figure4_pattern(self):
        """The paper's Figure 4: a pointer that may be heap or global."""
        src = """
        int value1;
        int value2;
        int main() {
          int cond = 1;
          int *x = malloc(4);
          int *foo;
          *x = 1;
          value1 = 2;
          if (cond) { foo = x; } else { foo = &value1; }
          int r = *foo;         /* may access value1 or the heap object */
          value2 = r;
          return value2;
        }
        """
        module = annotated(src)
        loads = [op for op in mem_ops(module) if op.opcode is Opcode.LOAD]
        foo_load = [op for op in loads if len(op.mem_objects()) > 1]
        assert foo_load, "ambiguous load should see both objects"
        objs = foo_load[0].mem_objects()
        assert "g:value1" in objs
        assert any(o.startswith("h:") for o in objs)


class TestInterprocedural:
    def test_pointer_through_call(self):
        src = """
        int a[4];
        int get(int *p) { return p[1]; }
        int main() { return get(a); }
        """
        module = compile_source(src, "t")
        annotate_memory_ops(module)
        (load,) = mem_ops(module, "get")
        assert load.mem_objects() == {"g:a"}

    def test_two_callers_merge(self):
        src = """
        int a[4];
        int b[4];
        int get(int *p) { return p[0]; }
        int main() { return get(a) + get(b); }
        """
        module = compile_source(src, "t")
        annotate_memory_ops(module)
        (load,) = mem_ops(module, "get")
        assert load.mem_objects() == {"g:a", "g:b"}

    def test_returned_pointer(self):
        src = """
        int *make() { return malloc(8); }
        int main() { int *p = make(); return p[0]; }
        """
        module = compile_source(src, "t")
        annotate_memory_ops(module)
        (load,) = mem_ops(module)
        (obj,) = load.mem_objects()
        assert obj.startswith("h:make")


class TestObjectTable:
    def test_sizes_from_types(self):
        module = annotated("int t[10]; float f; int main() { return t[0]; }")
        table = ObjectTable(module)
        assert table["g:t"].size == 40
        assert table["g:f"].size == 8

    def test_heap_sizes_from_profile(self):
        module = annotated("int main() { int *p = malloc(64); return p[0]; }")
        site = next(o for o in ObjectTable(module).ids() if o.startswith("h:"))
        table = ObjectTable(module, heap_sizes={site: 640})
        assert table[site].size == 640

    def test_heap_default_size(self):
        module = annotated("int main() { int *p = malloc(64); return p[0]; }")
        table = ObjectTable(module, default_heap_size=128)
        site = next(o for o in table.ids() if o.startswith("h:"))
        assert table[site].size == 128

    def test_accessors(self):
        module = annotated(
            "int t[4]; int main() { t[0] = 1; t[1] = 2; return t[0]; }"
        )
        table = ObjectTable(module)
        assert len(table.accessors_of("g:t")) == 3
        assert "g:t" in table.accessed_ids()

    def test_total_size(self):
        module = annotated("int a[4]; int b; int main() { return a[0] + b; }")
        table = ObjectTable(module)
        assert table.total_size() == 20

    def test_contains_and_len(self):
        module = annotated("int a; int main() { return a; }")
        table = ObjectTable(module)
        assert "g:a" in table
        assert len(table) == 1


# -- Precision tiers ---------------------------------------------------------

POINTER_TABLE = """
int a[4];
int b[4];
int *tab[2];
int main() {
  tab[0] = a;
  tab[1] = b;
  int *p = tab[0];
  int *q = tab[1];
  return p[0] + q[0];
}
"""

STRUCT_OF_POINTERS = """
struct pair { int *lo; int *hi; };
struct pair pr;
int a[4];
int b[4];
int main() {
  pr.lo = a;
  pr.hi = b;
  int *p = pr.lo;
  return p[0];
}
"""

RETURNED_POINTER = """
int a[4];
int b[4];
int *pick(int *p) { return p; }
int main() {
  int *x = pick(a);
  int *y = pick(b);
  return x[0] + y[0];
}
"""


def deref_loads(module, tier, func="main"):
    """The LOAD ops of ``func`` that read array element data (not the
    pointer table itself), paired with their annotated target sets."""
    annotate_memory_ops(module, tier=tier)
    out = []
    for op in module.function(func).operations():
        if op.opcode is Opcode.LOAD and op.dest is not None and not (
            op.dest.ty.is_pointer()
        ):
            out.append(op.mem_objects())
    return out


class TestFieldTier:
    def test_pointer_table_slots_stay_distinct(self):
        module = compile_source(POINTER_TABLE, "t")
        sets = deref_loads(module, "field")
        assert {"g:a"} in sets and {"g:b"} in sets
        assert {"g:a", "g:b"} not in sets

    def test_andersen_merges_the_same_slots(self):
        module = compile_source(POINTER_TABLE, "t")
        sets = deref_loads(module, "andersen")
        assert all(s == {"g:a", "g:b"} for s in sets)

    def test_struct_pointer_fields_stay_distinct(self):
        module = compile_source(STRUCT_OF_POINTERS, "t")
        (value_load,) = deref_loads(module, "field")
        assert value_load == {"g:a"}
        module2 = compile_source(STRUCT_OF_POINTERS, "t")
        (merged,) = deref_loads(module2, "andersen")
        assert merged == {"g:a", "g:b"}

    def test_unknown_offset_store_reaches_all_slots(self):
        """A store through an unknown index must be seen by every slot's
        readers — field sensitivity cannot pretend it missed."""
        src = """
        int a[4];
        int b[4];
        int c[4];
        int *tab[2];
        int u[1];
        int main() {
          tab[0] = a;
          tab[1] = b;
          tab[u[0]] = c;
          int *p = tab[0];
          return p[0];
        }
        """
        module = compile_source(src, "t")
        sets = deref_loads(module, "field")
        assert any("g:c" in s and "g:a" in s for s in sets)


class TestContextTier:
    def test_returned_pointer_split_by_call_site(self):
        module = compile_source(RETURNED_POINTER, "t")
        sets = deref_loads(module, "cs")
        assert {"g:a"} in sets and {"g:b"} in sets

    def test_andersen_merges_returned_pointers(self):
        module = compile_source(RETURNED_POINTER, "t")
        sets = deref_loads(module, "andersen")
        assert all(s == {"g:a", "g:b"} for s in sets)

    def test_callee_ops_union_over_contexts(self):
        """A deref inside the shared callee genuinely touches both objects
        across the program run, so its annotation must keep both."""
        src = """
        int a[4];
        int b[4];
        int get(int *p) { return p[0]; }
        int main() { return get(a) + get(b); }
        """
        module = compile_source(src, "t")
        annotate_memory_ops(module, tier="cs")
        (load,) = [
            op for op in module.function("get").operations()
            if op.opcode is Opcode.LOAD
        ]
        assert load.mem_objects() == {"g:a", "g:b"}

    def test_cs_includes_field_sensitivity(self):
        module = compile_source(POINTER_TABLE, "t")
        sets = deref_loads(module, "cs")
        assert {"g:a"} in sets and {"g:b"} in sets


class TestRefinementChain:
    @pytest.mark.parametrize(
        "src", [POINTER_TABLE, STRUCT_OF_POINTERS, RETURNED_POINTER]
    )
    def test_every_op_set_shrinks_monotonically(self, src):
        module = compile_source(src, "t")
        sols = {tier: solve_pointsto(module, tier) for tier in TIERS}
        for func in module:
            for op in func.operations():
                if not op.is_memory_access():
                    continue
                sets = [sols[t].objects_for_op(func.name, op) for t in TIERS]
                for coarse, fine in zip(sets, sets[1:]):
                    assert fine <= coarse, (func.name, op.uid, coarse, fine)

    def test_avg_set_size_never_grows(self):
        module = compile_source(RETURNED_POINTER, "t")
        avgs = [solve_pointsto(module, t).stats().avg_set_size for t in TIERS]
        assert avgs == sorted(avgs, reverse=True)
        assert avgs[-1] < avgs[0]


class TestStatsAndInterface:
    def test_stats_fields(self):
        module = compile_source(POINTER_TABLE, "t")
        stats = solve_pointsto(module, "field").stats()
        assert stats.tier == "field"
        assert stats.memory_ops >= stats.annotated_ops > 0
        assert 0.0 <= stats.singleton_ratio <= 1.0
        assert stats.max_set_size >= 1
        assert stats.solver_iterations > 0
        d = stats.to_dict()
        assert d["tier"] == "field"
        assert "avg_set_size" in d and "mayalias_pairs" in d
        assert "field" in stats.describe()

    def test_unknown_tier_rejected(self):
        module = compile_source(POINTER_TABLE, "t")
        with pytest.raises(ValueError):
            solve_pointsto(module, "flow-sensitive")

    def test_annotate_accepts_precomputed_solution(self):
        module = compile_source(POINTER_TABLE, "t")
        sol = solve_pointsto(module, "cs")
        returned = annotate_memory_ops(module, pointsto=sol)
        assert returned is sol

    def test_back_compat_class_is_andersen(self):
        module = compile_source(POINTER_TABLE, "t")
        assert PointsTo(module).stats().tier == "andersen"
