"""Tests for the abstract-interpretation dataflow stack.

Covers the generic worklist engine, the interval client (widening,
branch refinement, interprocedural lifting), trip counts and execution
bounds, the static access-region profile, and the static-vs-dynamic
drift differ — the ``--profile static`` tentpole end to end.
"""

import math

import pytest

from repro.analysis import annotate_memory_ops
from repro.analysis.cfg import CFG
from repro.analysis.dataflow import (
    DataflowProblem,
    ExecutionBounds,
    IntervalAnalysis,
    SetLattice,
    solve,
)
from repro.analysis.dataflow.staticprofile import build_static_profile
from repro.lang import compile_source
from repro.lint import diff_static_dynamic, drift_summary, lint_module
from repro.profiler import Interpreter


def interpret(module, max_steps=2_000_000):
    interp = Interpreter(module, max_steps=max_steps)
    interp.run()
    return interp.profile


LOOP_SRC = """
int main() {
  int s = 0;
  for (int i = 0; i < 10; i = i + 1) {
    s = s + i;
  }
  return s;
}
"""

ARRAY_SRC = """
int A[32];
int B[32];
int main() {
  for (int i = 0; i < 32; i = i + 1) {
    A[i] = i;
  }
  int s = 0;
  for (int j = 0; j < 16; j = j + 2) {
    B[j] = A[j] + A[j + 1];
    s = s + B[j];
  }
  print_int(s);
  return 0;
}
"""


# -- the generic engine --------------------------------------------------------------


class _ReachingBlocks(DataflowProblem):
    """Toy forward may-analysis: indices of blocks on some path here."""

    direction = "forward"

    def __init__(self, func):
        names = sorted(func.blocks)
        self.index = {name: i for i, name in enumerate(names)}
        super().__init__(SetLattice(frozenset(self.index.values())))

    def boundary(self):
        return frozenset()

    def transfer(self, block, state):
        return state | {self.index[block.name]}


class TestEngine:
    def test_forward_may_reaches_fixpoint(self):
        func = compile_source(LOOP_SRC, "t").function("main")
        cfg = CFG(func)
        problem = _ReachingBlocks(func)
        solution = solve(func, cfg, problem)
        # Every reachable block sees itself in its out state.
        for name in cfg.reachable():
            assert problem.index[name] in solution.out_of(name)
        # The entry's in state is the boundary.
        assert solution.in_of(cfg.entry) == frozenset()

    def test_unreachable_block_reports_bottom(self):
        from repro.ir import Constant, Function, Opcode, Operation
        from repro.ir.types import INT

        func = Function("f", [], INT)
        func.add_block("entry").append(
            Operation(Opcode.RET, srcs=[Constant(0)])
        )
        func.add_block("island").append(
            Operation(Opcode.RET, srcs=[Constant(1)])
        )
        cfg = CFG(func)
        problem = _ReachingBlocks(func)
        solution = solve(func, cfg, problem)
        assert solution.in_of("island") == problem.lattice.bottom()

    def test_must_lattice_meets(self):
        lattice = SetLattice(frozenset({1, 2, 3}), must=True)
        assert lattice.join(frozenset({1, 2}), frozenset({2, 3})) == {2}
        assert lattice.bottom() == {1, 2, 3}


# -- the interval client -------------------------------------------------------------


class TestIntervals:
    def test_widening_terminates_and_bounds_counter(self):
        module = compile_source(LOOP_SRC, "t")
        analysis = IntervalAnalysis(module)
        func = module.function("main")
        # Some block's entry env carries the induction variable with a
        # finite-from-below interval (starts at 0, widened above).
        envs = [
            analysis.env_at_entry("main", b)
            for b in func.blocks
            if analysis.env_at_entry("main", b)
        ]
        assert envs
        lows = [
            iv.lo for env in envs for iv in env.values() if iv.lo > -(2**31)
        ]
        assert lows, "widening lost every lower bound"

    def test_interprocedural_parameter_lifting(self):
        src = """
        int scale(int x) { return x * 2; }
        int main() { return scale(21); }
        """
        module = compile_source(src, "t")
        analysis = IntervalAnalysis(module)
        func = module.function("scale")
        env = analysis.env_at_entry("scale", func.entry.name)
        param = func.params[0]
        assert env is not None
        got = env.get(param.vid)
        assert got is not None and got.lo == 21 and got.hi == 21

    def test_recursive_function_params_are_top(self):
        src = """
        int f(int n) { if (n) { return f(n - 1); } return 0; }
        int main() { return f(3); }
        """
        module = compile_source(src, "t")
        analysis = IntervalAnalysis(module)
        func = module.function("f")
        env = analysis.env_at_entry("f", func.entry.name)
        assert env is not None
        assert env.get(func.params[0].vid) is None  # TOP entries dropped

    def test_constant_condition_detected(self):
        src = """
        int main() {
          int x = 5;
          if (x < 3) { return 1; }
          return 0;
        }
        """
        module = compile_source(src, "t")
        analysis = IntervalAnalysis(module)
        found = list(analysis.constant_conditions("main"))
        assert found, "x < 3 with x = 5 must fold"
        _block, term, cond, taken = found[0]
        assert cond.is_const() and cond.lo == 0
        assert taken == term.targets[1]

    def test_data_dependent_condition_not_constant(self):
        module = compile_source(LOOP_SRC, "t")
        analysis = IntervalAnalysis(module)
        assert list(analysis.constant_conditions("main")) == []

    def test_branch_refinement_bounds_loop_index(self):
        # Inside `for (i = 0; i < 32; ...)` the body-entry env must carry
        # i <= 31 — that is the edge refinement the region analysis needs.
        src = """
        int A[32];
        int main() {
          for (int i = 0; i < 32; i = i + 1) {
            A[i] = i;
          }
          return 0;
        }
        """
        module = compile_source(src, "t")
        analysis = IntervalAnalysis(module)
        func = module.function("main")
        body_hi = []
        for name in func.blocks:
            block = func.blocks[name]
            if any(op.is_memory_access() for op in block.ops):
                env = analysis.env_at_entry("main", name)
                assert env is not None
                body_hi.extend(iv.hi for iv in env.values())
        assert body_hi and min(body_hi) <= 31

    def test_infeasible_edge_marks_block_unreachable(self):
        src = """
        int main() {
          int x = 5;
          if (x < 3) { return 1; }
          return 0;
        }
        """
        module = compile_source(src, "t")
        analysis = IntervalAnalysis(module)
        func = module.function("main")
        dead = [
            name
            for name in func.blocks
            if analysis.env_at_entry("main", name) is None
        ]
        # The `return 1` arm is only reachable through 5 < 3.
        assert dead


# -- execution bounds and trip counts ------------------------------------------------


class TestExecutionBounds:
    def test_counted_loop_bound_contains_dynamic(self):
        module = compile_source(LOOP_SRC, "t")
        bounds = ExecutionBounds(module)
        profile = interpret(module)
        for (fname, bname), count in profile.block_counts.items():
            assert count <= bounds.block_bound(fname, bname), (
                fname, bname,
            )

    def test_non_unit_steps_contained(self):
        src = """
        int main() {
          int s = 0;
          for (int i = 0; i < 20; i = i + 3) {
            for (int j = 10; j > 0; j = j - 2) {
              s = s + j;
            }
          }
          return s;
        }
        """
        module = compile_source(src, "t")
        bounds = ExecutionBounds(module)
        profile = interpret(module)
        for (fname, bname), count in profile.block_counts.items():
            assert count <= bounds.block_bound(fname, bname)
        # And the bound is finite — the analysis recognised both loops.
        inner_max = max(profile.block_counts.values())
        finite = [
            bounds.block_bound("main", b)
            for b in module.function("main").blocks
        ]
        assert all(not math.isinf(b) for b in finite)
        assert max(finite) >= inner_max

    def test_recursion_is_unbounded_but_estimated(self):
        src = """
        int f(int n) { if (n) { return f(n - 1); } return 0; }
        int main() { return f(3); }
        """
        module = compile_source(src, "t")
        bounds = ExecutionBounds(module)
        assert math.isinf(bounds.entry_bounds["f"])
        assert bounds.entry_estimates["f"] >= 1

    def test_uncalled_function_bounded_by_zero(self):
        src = """
        int ghost(int x) { return x; }
        int main() { return 0; }
        """
        module = compile_source(src, "t")
        bounds = ExecutionBounds(module)
        assert bounds.entry_bounds["ghost"] == 0


# -- the static profile --------------------------------------------------------------


class TestStaticProfile:
    def prepared(self, src):
        module = compile_source(src, "t")
        pointsto = annotate_memory_ops(module)
        static = build_static_profile(module, pointsto=pointsto)
        dynamic = interpret(module)
        return module, static, dynamic

    def test_is_static(self):
        module, static, dynamic = self.prepared(ARRAY_SRC)
        assert static.is_static()
        assert not dynamic.is_static()

    def test_counters_nonempty(self):
        _module, static, _dynamic = self.prepared(ARRAY_SRC)
        assert static.block_counts
        assert static.op_object_counts
        assert static.op_weight_bounds

    def test_bounds_contain_dynamic_profile(self):
        module, static, dynamic = self.prepared(ARRAY_SRC)
        report = diff_static_dynamic(module, dynamic, static)
        assert not report.has_errors, report.render_text()

    def test_regions_cover_array_walks(self):
        module, static, _dynamic = self.prepared(ARRAY_SRC)
        # The first loop walks all of A; its coalesced static region must
        # reach A's full 128 bytes (or claim the whole object).
        regions = static.object_static_regions.get("g:A")
        if regions is not None:
            assert regions[0][0] == 0
            assert regions[-1][1] == 128


# -- the drift differ ----------------------------------------------------------------


class TestStaticDiff:
    def fixture(self):
        module = compile_source(ARRAY_SRC, "t")
        pointsto = annotate_memory_ops(module)
        static = build_static_profile(module, pointsto=pointsto)
        dynamic = interpret(module)
        return module, static, dynamic

    def test_clean_on_sound_bounds(self):
        module, static, dynamic = self.fixture()
        report = diff_static_dynamic(module, dynamic, static)
        assert not report.has_errors
        assert report.stats["staticdiff"]["violations"] == 0

    def test_weight_violation_detected(self):
        module, static, dynamic = self.fixture()
        uid = next(iter(dynamic.op_object_counts))
        static.op_weight_bounds[uid] = 0
        report = diff_static_dynamic(module, dynamic, static)
        assert report.by_rule("staticdiff-weight")

    def test_block_violation_detected(self):
        module, static, dynamic = self.fixture()
        key = next(iter(dynamic.block_counts))
        static.block_bounds[key] = dynamic.block_counts[key] - 1
        report = diff_static_dynamic(module, dynamic, static)
        assert report.by_rule("staticdiff-block")

    def test_missing_block_bound_detected(self):
        module, static, dynamic = self.fixture()
        key = next(iter(dynamic.block_counts))
        del static.block_bounds[key]
        report = diff_static_dynamic(module, dynamic, static)
        diags = report.by_rule("staticdiff-block")
        assert diags and "no bound" in diags[0].message

    def test_region_violation_detected(self):
        module, static, dynamic = self.fixture()
        tampered = False
        for uid, per_obj in dynamic.op_object_regions.items():
            for obj, (lo, hi) in per_obj.items():
                claimed = static.static_regions.get(uid, {})
                if claimed.get(obj) is not None:
                    slo, shi = claimed[obj]
                    static.static_regions[uid][obj] = (slo, max(slo + 1, hi - 1))
                    if hi > max(slo + 1, hi - 1):
                        tampered = True
                        break
            if tampered:
                break
        if not tampered:
            pytest.skip("no finite region to tamper with")
        report = diff_static_dynamic(module, dynamic, static)
        assert report.by_rule("staticdiff-region")

    def test_drift_summary_shape(self):
        module, static, dynamic = self.fixture()
        summary = drift_summary(module, dynamic, static)
        assert summary["ops_compared"] > 0
        assert summary["violations"] == 0
        assert summary["blocks_bounded"] <= summary["blocks_measured"]

    def test_pass_silent_without_profile(self):
        module, _static, _dynamic = self.fixture()
        report = lint_module(module, only=["staticdiff"])
        assert len(report) == 0

    def test_pass_runs_with_profile(self):
        module = compile_source(ARRAY_SRC, "t")
        dynamic = interpret(module)
        report = lint_module(module, only=["staticdiff"], profile=dynamic)
        assert not report.has_errors


# -- the constant-condition lint pass ------------------------------------------------


class TestConstCondPass:
    def test_fires_on_folded_branch(self):
        src = """
        int main() {
          int x = 5;
          if (x < 3) { return 1; }
          return 0;
        }
        """
        module = compile_source(src, "t")
        report = lint_module(module, only=["constcond"])
        diags = report.by_rule("const-condition")
        assert diags
        assert "never" in diags[0].message

    def test_silent_on_data_dependent_branch(self):
        module = compile_source(LOOP_SRC, "t")
        report = lint_module(module, only=["constcond"])
        assert len(report) == 0

    def test_sarif_metadata_for_new_rules_only(self):
        src = """
        int main() {
          int x = 5;
          if (x < 3) { return 1; }
          return 0;
        }
        """
        import json

        module = compile_source(src, "t")
        report = lint_module(module, only=["constcond"])
        log = json.loads(report.to_sarif())
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert rules[0]["id"] == "const-condition"
        assert "shortDescription" in rules[0]


# -- the --profile knob end to end ---------------------------------------------------


class TestStaticProfileMode:
    def test_runconfig_validates_profile(self):
        from repro.exec import PROFILE_MODES, RunConfig

        assert "static" in PROFILE_MODES
        assert RunConfig(profile="static").profile == "static"
        with pytest.raises(ValueError):
            RunConfig(profile="oracle")

    def test_profile_in_cache_key(self):
        from repro.exec import RunConfig

        dyn = RunConfig().cache_key_material()
        sta = RunConfig(profile="static").cache_key_material()
        assert dyn != sta
        assert sta["profile"] == "static"

    def test_prepared_static_skips_interpreter(self):
        from repro.exec import RunConfig
        from repro.pipeline import PreparedProgram

        prepared = PreparedProgram.from_source(
            ARRAY_SRC, "t", config=RunConfig(profile="static")
        )
        assert prepared.profile.is_static()
        assert prepared.result is None  # nothing was interpreted
        assert prepared.objects and prepared.merge is not None

    def test_static_prepared_artifact_roundtrip(self):
        from repro.exec import RunConfig
        from repro.exec.artifacts import (
            prepared_from_payload,
            prepared_to_payload,
        )
        from repro.pipeline import PreparedProgram

        prepared = PreparedProgram.from_source(
            ARRAY_SRC, "t", config=RunConfig(profile="static")
        )
        payload = prepared_to_payload(prepared)
        assert payload["profile_mode"] == "static"
        again = prepared_from_payload(payload)
        assert again.profile.is_static()
        assert again.profile.block_counts == prepared.profile.block_counts

    def test_profiler_fault_degrades_to_static_rung(self):
        from repro.exec import RunConfig
        from repro.resilience import ResilientPipeline

        pipe = ResilientPipeline.from_config(
            RunConfig(fault_spec="raise:profiler@1", fallback=True)
        )
        prepared, report = pipe.prepare(ARRAY_SRC, "t")
        assert prepared.profile.is_static()
        assert any(
            f.get("from") == "profile:dynamic"
            and f.get("to") == "profile:static"
            for f in report.fallbacks()
        )


# -- trip-count / bound edge cases (PR 9) --------------------------------------------


class TestTripCountEdgeCases:
    def test_negative_induction_step_bounded(self):
        """A countdown loop (negative net progress) gets a finite,
        containing bound from the same induction-step machinery."""
        src = """
        int out[32];
        int main() {
          int s = 0;
          for (int i = 31; i >= 0; i = i - 1) {
            out[i] = s;
            s = s + 1;
          }
          return s;
        }
        """
        module = compile_source(src, "t")
        bounds = ExecutionBounds(module)
        profile = interpret(module)
        finite = True
        for (fname, bname), count in profile.block_counts.items():
            bound = bounds.block_bound(fname, bname)
            assert count <= bound, (fname, bname, count, bound)
            finite = finite and not math.isinf(bound)
        assert finite  # the countdown was recognised, not widened away

    def test_negative_step_with_stride_two(self):
        src = """
        int main() {
          int s = 0;
          for (int i = 19; i > 0; i = i - 2) { s = s + i; }
          return s;
        }
        """
        module = compile_source(src, "t")
        bounds = ExecutionBounds(module)
        profile = interpret(module)
        for (fname, bname), count in profile.block_counts.items():
            bound = bounds.block_bound(fname, bname)
            assert count <= bound
            assert not math.isinf(bound)

    def test_mixed_step_direction_defeats_trip_count(self):
        """An induction variable stepped up on one path and down on the
        other has no strict progress — the loop bound must widen to inf
        rather than invent a finite trip count."""
        src = """
        int main() {
          int i = 0;
          int n = 0;
          while (i < 8) {
            if (n) { i = i - 1; } else { i = i + 1; }
            n = 0;
          }
          return i;
        }
        """
        module = compile_source(src, "t")
        bounds = ExecutionBounds(module)
        header_bounds = [
            bounds.block_bound("main", name)
            for name in module.function("main").blocks
        ]
        assert any(math.isinf(b) for b in header_bounds)

    def test_irreducible_edge_bailout(self):
        """A retreating edge into the middle of another block's cycle is
        invisible to natural-loop detection — every block bound in that
        function must widen to inf (sound bailout), while the estimates
        stay finite."""
        from repro.ir import Function, IRBuilder, Module
        from repro.ir.types import INT

        func = Function("main", [], INT)
        b = IRBuilder(func)
        entry = b.new_block("entry")
        left = b.new_block("left")
        right = b.new_block("right")
        done = b.new_block("done")
        b.set_block(entry)
        cond = b.cmp("lt", b.const(1), b.const(2))
        b.cbr(cond, left, right)
        # left <-> right form a two-block cycle entered at *both* nodes:
        # neither header dominates the other, so the retreating edge is
        # irreducible.
        b.set_block(left)
        c2 = b.cmp("lt", b.const(3), b.const(4))
        b.cbr(c2, right, done)
        b.set_block(right)
        c3 = b.cmp("lt", b.const(5), b.const(6))
        b.cbr(c3, left, done)
        b.set_block(done)
        b.ret(b.const(0))
        module = Module("irreducible")
        module.add_function(func)

        bounds = ExecutionBounds(module)
        assert bounds._irreducible["main"]
        for name in ("left", "right", "done"):
            assert math.isinf(bounds.block_bound("main", name))
        assert bounds.block_estimate("main", "left") >= 1

    def test_adjacent_affine_slots_stay_distinct(self):
        """``coalesce_intervals`` merges overlap but keeps adjacency:
        distinct pointer-table slots ([0,4) vs [4,8)) survive as separate
        regions — the property region splittability is built on."""
        from repro.analysis.affine import coalesce_intervals

        assert coalesce_intervals([(4, 8), (0, 4)]) == [(0, 4), (4, 8)]
        assert coalesce_intervals([(0, 6), (4, 8)]) == [(0, 8)]
        assert coalesce_intervals([(0, 4), (4, 8), (6, 12), (16, 20)]) == [
            (0, 4), (4, 12), (16, 20),
        ]

    def test_pointer_table_regions_decompose_per_slot(self):
        """End to end: the two stores into a two-slot pointer table read
        back as two adjacent-but-disjoint byte regions of the table."""
        from repro.analysis.dataflow import AccessRegionAnalysis

        src = """
        int a[4];
        int b[4];
        int *tab[2];
        int main() {
          tab[0] = a;
          tab[1] = b;
          int *p = tab[0];
          int *q = tab[1];
          return p[0] + q[0];
        }
        """
        module = compile_source(src, "t")
        annotate_memory_ops(module)
        regions = AccessRegionAnalysis(module)
        tab_regions = sorted(
            region
            for per_obj in regions.op_regions.values()
            for obj, region in per_obj.items()
            if obj == "g:tab" and region is not None
        )
        assert (0, 4) in tab_regions
        assert (4, 8) in tab_regions
