"""Clustered-VLIW machine models: resource classes, clusters, the
intercluster move network, and the paper's machine presets."""

from .machine import DEFAULT_LATENCIES, Machine
from .presets import (
    four_cluster_machine,
    heterogeneous_machine,
    paper_cluster,
    single_cluster_machine,
    two_cluster_machine,
)
from .resources import ClusterConfig, FUClass, InterclusterNetwork

__all__ = [
    "DEFAULT_LATENCIES",
    "Machine",
    "four_cluster_machine",
    "heterogeneous_machine",
    "paper_cluster",
    "single_cluster_machine",
    "two_cluster_machine",
    "ClusterConfig",
    "FUClass",
    "InterclusterNetwork",
]
