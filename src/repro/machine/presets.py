"""Machine presets, including the paper's evaluation configuration."""

from __future__ import annotations

from typing import Optional

from .machine import Machine
from .resources import ClusterConfig, FUClass, InterclusterNetwork


def paper_cluster(name: str = "") -> ClusterConfig:
    """One cluster of the paper's machine: 2 integer, 1 float, 1 memory,
    1 branch unit."""
    return ClusterConfig(
        {
            FUClass.INT: 2,
            FUClass.FLOAT: 1,
            FUClass.MEM: 1,
            FUClass.BRANCH: 1,
        },
        name=name,
    )


def two_cluster_machine(
    move_latency: int = 5, unified_memory: bool = False, bandwidth: int = 1
) -> Machine:
    """The paper's evaluation machine: a 2-cluster VLIW with 2I/1F/1M/1B
    per cluster and a 1-move-per-cycle intercluster bus (default latency
    5 cycles)."""
    return Machine(
        [paper_cluster("c0"), paper_cluster("c1")],
        InterclusterNetwork(move_latency, bandwidth),
        unified_memory=unified_memory,
    )


def four_cluster_machine(
    move_latency: int = 5, unified_memory: bool = False, bandwidth: int = 1
) -> Machine:
    """A 4-cluster scaling of the paper's machine (used by the scaling
    ablation)."""
    return Machine(
        [paper_cluster(f"c{i}") for i in range(4)],
        InterclusterNetwork(move_latency, bandwidth),
        unified_memory=unified_memory,
    )


def single_cluster_machine() -> Machine:
    """A 1-cluster machine (degenerate case useful in tests)."""
    return Machine(
        [paper_cluster("c0")], InterclusterNetwork(1, 1), unified_memory=True
    )


def heterogeneous_machine(move_latency: int = 5) -> Machine:
    """A 2-cluster machine where cluster 0 has twice the integer units —
    exercises the balance model from Section 2 of the paper."""
    big = ClusterConfig(
        {FUClass.INT: 4, FUClass.FLOAT: 1, FUClass.MEM: 1, FUClass.BRANCH: 1},
        name="c0",
    )
    small = ClusterConfig(
        {FUClass.INT: 2, FUClass.FLOAT: 1, FUClass.MEM: 1, FUClass.BRANCH: 1},
        name="c1",
    )
    return Machine([big, small], InterclusterNetwork(move_latency, 1))
