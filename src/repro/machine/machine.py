"""The clustered-VLIW machine description.

Latencies are Itanium-like, matching the paper's methodology ("latencies
similar to the Itanium", load latency 2 cycles).  A machine is either
*unified* (single multiported memory reachable from every cluster's memory
unit — the paper's upper-bound model) or *partitioned* (each cluster owns
a scratchpad-like memory; every data object has exactly one home).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import OpClass, Opcode, Operation
from .resources import ClusterConfig, FUClass, InterclusterNetwork

#: Default operation latencies (cycles until the result may be consumed).
DEFAULT_LATENCIES: Dict[Opcode, int] = {
    Opcode.MUL: 3,
    Opcode.DIV: 8,
    Opcode.REM: 8,
    Opcode.FADD: 4,
    Opcode.FSUB: 4,
    Opcode.FMUL: 4,
    Opcode.FDIV: 12,
    Opcode.FNEG: 2,
    Opcode.ITOF: 4,
    Opcode.FTOI: 4,
    Opcode.FCMPEQ: 2,
    Opcode.FCMPNE: 2,
    Opcode.FCMPLT: 2,
    Opcode.FCMPLE: 2,
    Opcode.FCMPGT: 2,
    Opcode.FCMPGE: 2,
    Opcode.LOAD: 2,
    Opcode.STORE: 1,
    Opcode.MALLOC: 2,
    Opcode.CALL: 1,
    Opcode.BR: 1,
    Opcode.CBR: 1,
    Opcode.RET: 1,
}

_CLASS_TO_FU = {
    OpClass.INT_ALU: FUClass.INT,
    OpClass.FLOAT_ALU: FUClass.FLOAT,
    OpClass.MEMORY: FUClass.MEM,
    OpClass.BRANCH: FUClass.BRANCH,
}


class Machine:
    """A multicluster VLIW processor model."""

    def __init__(
        self,
        clusters: List[ClusterConfig],
        network: InterclusterNetwork,
        unified_memory: bool = False,
        latencies: Optional[Dict[Opcode, int]] = None,
    ):
        if not clusters:
            raise ValueError("machine needs at least one cluster")
        self.clusters = list(clusters)
        self.network = network
        self.unified_memory = unified_memory
        self.latencies = dict(DEFAULT_LATENCIES)
        if latencies:
            self.latencies.update(latencies)

    # -- queries --------------------------------------------------------------------

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def move_latency(self) -> int:
        return self.network.move_latency

    def latency_of(self, op: Operation) -> int:
        if op.opcode is Opcode.ICMOVE:
            return self.network.move_latency
        return self.latencies.get(op.opcode, 1)

    def fu_class_of(self, op: Operation) -> Optional[FUClass]:
        """FU class executing the op; None for bus-only ICMOVE."""
        if op.opcode is Opcode.ICMOVE:
            return None
        return _CLASS_TO_FU[op.opclass]

    def units(self, cluster: int, cls: FUClass) -> int:
        return self.clusters[cluster].units(cls)

    def describe(self) -> Dict:
        """JSON-ready structural description (everything that can change
        a partitioning or scheduling result)."""
        return {
            "clusters": [
                {
                    "name": cluster.name,
                    "fu": {
                        cls.value: cluster.units(cls) for cls in FUClass
                    },
                    "memory_bytes": cluster.memory_bytes,
                }
                for cluster in self.clusters
            ],
            "network": {
                "move_latency": self.network.move_latency,
                "bandwidth": self.network.bandwidth,
            },
            "unified_memory": self.unified_memory,
            "latencies": {
                op.name: lat for op, lat in sorted(
                    self.latencies.items(), key=lambda kv: kv[0].name
                )
            },
        }

    def fingerprint(self) -> str:
        """Content hash of the machine configuration, embedded in the
        artifact-cache key so outcomes computed for one machine can never
        satisfy a lookup for another."""
        import hashlib
        import json

        blob = json.dumps(
            self.describe(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def with_move_latency(self, latency: int) -> "Machine":
        """A copy of this machine with a different intercluster latency."""
        return Machine(
            self.clusters,
            InterclusterNetwork(latency, self.network.bandwidth),
            self.unified_memory,
            self.latencies,
        )

    def as_unified(self) -> "Machine":
        """A copy modelling the single, shared multiported memory."""
        return Machine(self.clusters, self.network, True, self.latencies)

    def as_partitioned(self) -> "Machine":
        """A copy modelling fully partitioned per-cluster memories."""
        return Machine(self.clusters, self.network, False, self.latencies)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "unified" if self.unified_memory else "partitioned"
        return (
            f"<machine {self.num_clusters} clusters, {kind} memory, "
            f"move latency {self.move_latency}>"
        )
