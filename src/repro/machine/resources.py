"""Function-unit resource classes and per-cluster configurations."""

from __future__ import annotations

import enum
from typing import Dict, Optional


class FUClass(enum.Enum):
    """Function-unit classes; each op class executes on exactly one."""

    INT = "int"
    FLOAT = "float"
    MEM = "mem"
    BRANCH = "branch"


class ClusterConfig:
    """Resources of one cluster: FU counts and local memory capacity.

    ``memory_bytes`` bounds the data-object bytes homed on the cluster when
    a finite scratchpad is modelled; ``None`` means unbounded (the paper
    parameterises balance rather than capacity).
    """

    def __init__(
        self,
        fu_counts: Dict[FUClass, int],
        memory_bytes: Optional[int] = None,
        name: str = "",
    ):
        self.fu_counts = dict(fu_counts)
        self.memory_bytes = memory_bytes
        self.name = name
        for cls in FUClass:
            self.fu_counts.setdefault(cls, 0)

    def units(self, cls: FUClass) -> int:
        return self.fu_counts.get(cls, 0)

    def total_units(self) -> int:
        return sum(self.fu_counts.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = ", ".join(f"{c.value}={n}" for c, n in self.fu_counts.items())
        return f"<cluster {self.name or '?'}: {counts}>"


class InterclusterNetwork:
    """The shared move network: fixed bandwidth bus with uniform latency.

    The paper's model: "The intercluster network bandwidth allows for
    1 move per cycle with latencies of 1, 5 or 10 cycles."
    """

    def __init__(self, move_latency: int = 5, bandwidth: int = 1):
        if move_latency < 0 or bandwidth < 1:
            raise ValueError("move_latency >= 0 and bandwidth >= 1 required")
        self.move_latency = move_latency
        self.bandwidth = bandwidth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<bus latency={self.move_latency} bw={self.bandwidth}/cycle>"
