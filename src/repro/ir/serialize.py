"""Exact textual serialization of IR modules.

:func:`dumps` emits a fully-typed, lossless text form; :func:`loads`
parses it back.  Unlike :mod:`repro.ir.printer` (a human-oriented,
lossy rendering), ``loads(dumps(m))`` reconstructs the module exactly:
types, register ids, block order, branch targets, and the well-known
operation attributes (``site``, ``callee``, ``from``/``to``,
``mem_objects``).

Grammar (one construct per line)::

    module "<name>"
    struct <Name> { <field>: <type>, ... }
    global @<name> : <type> [= <scalar> | = [<scalar>, ...]]
    func @<name>(%<id>: <type>, ...) -> <type> {
    block <label>:
      %<id>:<type> = <mnemonic> <operand>, ...  [-> t1, t2] [{k=v, ...}]
      <mnemonic> <operand>, ...                 [-> t1, t2] [{k=v, ...}]
    }

Operands: ``%<id>`` (register), ``@<name>`` (global address or function
reference — calls always name their callee in ``{callee=...}``),
integer and float literals.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .function import Function
from .module import Module
from .ops import Opcode, Operation
from .types import (
    FLOAT,
    INT,
    VOID,
    ArrayType,
    IntType,
    IRType,
    PointerType,
    StructType,
)
from .values import Constant, FunctionRef, GlobalAddress, VirtualRegister


class SerializeError(Exception):
    """Malformed serialized-IR text."""


# ---------------------------------------------------------------------------
# Dumping
# ---------------------------------------------------------------------------


def _type_str(ty: IRType) -> str:
    if isinstance(ty, PointerType):
        return _type_str(ty.pointee) + "*"
    if isinstance(ty, ArrayType):
        return f"[{ty.count} x {_type_str(ty.element)}]"
    if isinstance(ty, StructType):
        return f"struct.{ty.name}"
    return str(ty)


def _value_str(v) -> str:
    if isinstance(v, VirtualRegister):
        return f"%{v.vid}"
    if isinstance(v, Constant):
        if isinstance(v.value, float):
            text = repr(v.value)
            return text if ("." in text or "e" in text or "inf" in text) else text + ".0"
        return str(v.value)
    if isinstance(v, GlobalAddress):
        return f"@{v.symbol}"
    if isinstance(v, FunctionRef):
        return f"@{v.symbol}"
    raise SerializeError(f"cannot serialize value {v!r}")


def _attrs_str(op: Operation) -> str:
    parts = []
    if "callee" in op.attrs:
        parts.append(f'callee="{op.attrs["callee"]}"')
    if "site" in op.attrs:
        parts.append(f'site="{op.attrs["site"]}"')
    if "from" in op.attrs:
        parts.append(f'from={op.attrs["from"]}')
    if "to" in op.attrs:
        parts.append(f'to={op.attrs["to"]}')
    objs = op.attrs.get("mem_objects")
    if objs:
        inner = ",".join(f'"{o}"' for o in sorted(objs))
        parts.append(f"objs=[{inner}]")
    return " {" + ", ".join(parts) + "}" if parts else ""


def dumps(module: Module) -> str:
    """Serialize a module to text."""
    lines: List[str] = [f'module "{module.name}"']

    structs: Dict[str, StructType] = {}

    def collect(ty: IRType) -> None:
        if isinstance(ty, StructType):
            if ty.name not in structs:
                structs[ty.name] = ty
                for _, fty in ty.fields:
                    collect(fty)
        elif isinstance(ty, PointerType):
            collect(ty.pointee)
        elif isinstance(ty, ArrayType):
            collect(ty.element)

    for gvar in module.globals.values():
        collect(gvar.ty)
    for func in module:
        collect(func.return_type)
        for p in func.params:
            collect(p.ty)
        for op in func.operations():
            if op.dest is not None:
                collect(op.dest.ty)

    for name, struct in structs.items():
        fields = ", ".join(
            f"{fname}: {_type_str(fty)}" for fname, fty in struct.fields
        )
        lines.append(f"struct {name} {{ {fields} }}")

    for gvar in module.globals.values():
        head = f"global @{gvar.name} : {_type_str(gvar.ty)}"
        init = gvar.initializer
        if init is None:
            lines.append(head)
        elif isinstance(init, (list, tuple)):
            lines.append(head + " = [" + ", ".join(str(v) for v in init) + "]")
        else:
            lines.append(head + f" = {init}")

    for func in module:
        params = ", ".join(
            f"%{p.vid}: {_type_str(p.ty)}" for p in func.params
        )
        lines.append(
            f"func @{func.name}({params}) -> {_type_str(func.return_type)} {{"
        )
        for block in func:
            lines.append(f"block {block.name}:")
            for op in block.ops:
                parts = ["  "]
                if op.dest is not None:
                    parts.append(f"%{op.dest.vid}:{_type_str(op.dest.ty)} = ")
                parts.append(op.opcode.mnemonic)
                if op.srcs:
                    parts.append(" " + ", ".join(_value_str(s) for s in op.srcs))
                if op.targets:
                    parts.append(" -> " + ", ".join(op.targets))
                parts.append(_attrs_str(op))
                lines.append("".join(parts))
        lines.append("}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------

_MNEMONIC_TO_OPCODE = {op.mnemonic: op for op in Opcode}

_INT_TYPES = {f"i{b}": IntType(b) for b in (1, 8, 16, 32, 64)}


class _TypeParser:
    def __init__(self, structs: Dict[str, StructType]):
        self.structs = structs

    def parse(self, text: str) -> IRType:
        text = text.strip()
        depth = 0
        while text.endswith("*"):
            depth += 1
            text = text[:-1].strip()
        base = self._base(text)
        for _ in range(depth):
            base = PointerType(base)
        return base

    def _base(self, text: str) -> IRType:
        if text in _INT_TYPES:
            return _INT_TYPES[text]
        if text == "f64":
            return FLOAT
        if text == "void":
            return VOID
        if text.startswith("struct."):
            name = text[len("struct."):]
            if name not in self.structs:
                raise SerializeError(f"unknown struct {name!r}")
            return self.structs[name]
        m = re.fullmatch(r"\[(\d+) x (.+)\]", text)
        if m:
            return ArrayType(self.parse(m.group(2)), int(m.group(1)))
        raise SerializeError(f"cannot parse type {text!r}")


_OP_RE = re.compile(
    r"^\s*(?:%(?P<dest>\d+):(?P<dty>[^=]+?)\s*=\s*)?"
    r"(?P<mn>[a-z]+)"
    r"(?P<rest>.*)$"
)


def loads(text: str) -> Module:
    """Parse serialized-IR text back into a module."""
    lines = [l for l in text.splitlines() if l.strip()]
    if not lines or not lines[0].startswith("module"):
        raise SerializeError("expected module header")
    m = re.fullmatch(r'module "(.*)"', lines[0].strip())
    if not m:
        raise SerializeError("malformed module header")
    module = Module(m.group(1))
    structs: Dict[str, StructType] = {}
    types = _TypeParser(structs)

    i = 1
    func: Optional[Function] = None
    regs: Dict[int, VirtualRegister] = {}
    block = None
    # Function signatures are needed for call FunctionRefs; resolve after.
    ret_types: Dict[str, IRType] = {}

    def get_reg(vid: int, ty: Optional[IRType] = None) -> VirtualRegister:
        if vid not in regs:
            regs[vid] = VirtualRegister(vid, ty if ty is not None else INT)
        elif ty is not None:
            regs[vid] = VirtualRegister(vid, ty, regs[vid].name)
        return regs[vid]

    def parse_operand(tok: str, module: Module):
        tok = tok.strip()
        if tok.startswith("%"):
            return get_reg(int(tok[1:]))
        if tok.startswith("@"):
            name = tok[1:]
            if name in module.globals:
                return module.globals[name].address()
            return FunctionRef(name, ret_types.get(name, VOID))
        if re.fullmatch(r"-?\d+", tok):
            return Constant(int(tok), INT)
        return Constant(float(tok), FLOAT)

    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if line.startswith("struct "):
            m = re.fullmatch(r"struct (\w+) \{ (.*) \}", line)
            if not m:
                raise SerializeError(f"malformed struct: {line}")
            fields: List[Tuple[str, IRType]] = []
            body = m.group(2).strip()
            if body:
                for field in _split_top(body):
                    fname, _, fty = field.partition(":")
                    fields.append((fname.strip(), types.parse(fty)))
            structs[m.group(1)] = StructType(m.group(1), fields)
        elif line.startswith("global "):
            m = re.fullmatch(r"global @(\S+) : ([^=]+?)(?:\s*=\s*(.*))?", line)
            if not m:
                raise SerializeError(f"malformed global: {line}")
            init = None
            if m.group(3):
                raw = m.group(3).strip()
                if raw.startswith("["):
                    init = [_scalar(s) for s in _split_top(raw[1:-1]) if s.strip()]
                else:
                    init = _scalar(raw)
            module.add_global(m.group(1), types.parse(m.group(2)), init)
        elif line.startswith("func "):
            m = re.fullmatch(r"func @(\S+)\((.*)\) -> (\S+) \{", line)
            if not m:
                raise SerializeError(f"malformed func header: {line}")
            regs = {}
            params = []
            if m.group(2).strip():
                for ptxt in _split_top(m.group(2)):
                    pm = re.fullmatch(r"\s*%(\d+): (.+)", ptxt)
                    if not pm:
                        raise SerializeError(f"malformed param: {ptxt}")
                    params.append(get_reg(int(pm.group(1)), types.parse(pm.group(2))))
            ret = types.parse(m.group(3))
            func = Function(m.group(1), params, ret)
            ret_types[func.name] = ret
            module.add_function(func)
            block = None
        elif line == "}":
            if func is not None:
                func._next_vreg = max(regs, default=-1) + 1
            func = None
        elif line.startswith("block "):
            if func is None:
                raise SerializeError("block outside function")
            block = func.add_block(line[len("block "):-1])
        else:
            if func is None or block is None:
                raise SerializeError(f"operation outside block: {line}")
            block.append(_parse_op(line, types, get_reg, parse_operand, module))
    return module


def _scalar(text: str):
    text = text.strip()
    if re.fullmatch(r"-?\d+", text):
        return int(text)
    return float(text)


def _split_top(text: str) -> List[str]:
    """Split on commas not inside brackets/quotes."""
    parts, depth, start, in_str = [], 0, 0, False
    for idx, ch in enumerate(text):
        if ch == '"':
            in_str = not in_str
        elif in_str:
            continue
        elif ch in "[({":
            depth += 1
        elif ch in "])}":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(text[start:idx])
            start = idx + 1
    parts.append(text[start:])
    return [p for p in parts if p.strip()]


def _parse_op(line, types, get_reg, parse_operand, module) -> Operation:
    attrs = {}
    body = line
    am = re.search(r"\{(.*)\}\s*$", body)
    if am:
        body = body[: am.start()].rstrip()
        for item in _split_top(am.group(1)):
            key, _, value = item.partition("=")
            key, value = key.strip(), value.strip()
            if key == "objs":
                objs = frozenset(
                    v.strip().strip('"') for v in _split_top(value[1:-1])
                )
                attrs["mem_objects"] = objs
            elif value.startswith('"'):
                attrs[key] = value.strip('"')
            else:
                attrs[key] = int(value)

    targets: List[str] = []
    tm = re.search(r"->\s*(.*)$", body)
    if tm:
        targets = [t.strip() for t in tm.group(1).split(",")]
        body = body[: tm.start()].rstrip()

    m = _OP_RE.fullmatch(body)
    if not m:
        raise SerializeError(f"malformed operation: {line!r}")
    mnemonic = m.group("mn")
    if mnemonic not in _MNEMONIC_TO_OPCODE:
        raise SerializeError(f"unknown mnemonic {mnemonic!r}")
    opcode = _MNEMONIC_TO_OPCODE[mnemonic]
    dest = None
    if m.group("dest") is not None:
        dest = get_reg(int(m.group("dest")), types.parse(m.group("dty")))
    srcs = []
    rest = m.group("rest").strip()
    if rest:
        srcs = [parse_operand(tok, module) for tok in _split_top(rest)]
    return Operation(opcode, dest, srcs, targets, attrs)
