"""Modules: the whole-program container (globals + functions)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Union

from .function import Function
from .types import IRType
from .values import GlobalAddress


class GlobalVariable:
    """A module-level data object with static storage.

    ``initializer`` is ``None`` (zero-initialised), a scalar int/float, or a
    flat list of scalars for arrays.  The size in bytes is derived from the
    type and is what the data partitioner balances across cluster memories.
    """

    def __init__(
        self,
        name: str,
        ty: IRType,
        initializer: Union[None, int, float, Sequence] = None,
    ):
        self.name = name
        self.ty = ty
        self.initializer = initializer

    def size(self) -> int:
        return self.ty.size()

    def address(self) -> GlobalAddress:
        return GlobalAddress(self.name, self.ty)

    def __str__(self) -> str:
        init = "" if self.initializer is None else f" = {self.initializer!r}"
        return f"global @{self.name}: {self.ty} ({self.size()} bytes){init}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<global {self.name}: {self.ty}>"


class Module:
    """A complete program: named globals and functions.

    The module is the unit the Global Data Partitioner operates on — it
    builds its program-level data-flow graph from every function here and
    assigns every global (and every heap allocation site) a home cluster.
    """

    def __init__(self, name: str = "module"):
        self.name = name
        self.globals: Dict[str, GlobalVariable] = {}
        self.functions: Dict[str, Function] = {}

    # -- globals --------------------------------------------------------------

    def add_global(
        self,
        name: str,
        ty: IRType,
        initializer: Union[None, int, float, Sequence] = None,
    ) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"duplicate global {name!r}")
        var = GlobalVariable(name, ty, initializer)
        self.globals[name] = var
        return var

    def global_var(self, name: str) -> GlobalVariable:
        return self.globals[name]

    # -- functions --------------------------------------------------------------

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def function(self, name: str) -> Function:
        return self.functions[name]

    def has_function(self, name: str) -> bool:
        return name in self.functions

    @property
    def main(self) -> Function:
        """The program entry point (a function named ``main``)."""
        if "main" not in self.functions:
            raise ValueError(f"module {self.name} has no main function")
        return self.functions["main"]

    # -- iteration --------------------------------------------------------------

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def op_count(self) -> int:
        return sum(f.op_count() for f in self.functions.values())

    # -- printing --------------------------------------------------------------

    def __str__(self) -> str:
        lines = [f"module {self.name}"]
        lines.extend(str(g) for g in self.globals.values())
        lines.extend(str(f) for f in self.functions.values())
        return "\n\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<module {self.name} [{len(self.globals)} globals, "
            f"{len(self.functions)} functions, {self.op_count()} ops]>"
        )
