"""Functions: parameterised CFGs of basic blocks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .block import BasicBlock
from .ops import Operation
from .types import IRType, VOID
from .values import VirtualRegister


class Function:
    """A function: ordered blocks, parameter registers, and a return type.

    Blocks are stored in insertion order; the first block is the entry.
    Virtual-register numbering is function-local and managed here so that
    passes can mint fresh registers without collisions.
    """

    def __init__(self, name: str, params: List[VirtualRegister], return_type: IRType = VOID):
        self.name = name
        self.params = list(params)
        self.return_type = return_type
        self.blocks: Dict[str, BasicBlock] = {}
        self._next_vreg = max((p.vid for p in params), default=-1) + 1
        self._next_block = 0

    # -- structure ----------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return next(iter(self.blocks.values()))

    def add_block(self, name: Optional[str] = None) -> BasicBlock:
        if name is None:
            name = f"bb{self._next_block}"
            self._next_block += 1
        if name in self.blocks:
            raise ValueError(f"duplicate block name {name!r} in {self.name}")
        block = BasicBlock(name)
        self.blocks[name] = block
        return block

    def block(self, name: str) -> BasicBlock:
        return self.blocks[name]

    def remove_block(self, name: str) -> None:
        del self.blocks[name]

    def new_vreg(self, ty: IRType, name: str = "") -> VirtualRegister:
        """Mint a fresh virtual register unique within this function."""
        reg = VirtualRegister(self._next_vreg, ty, name)
        self._next_vreg += 1
        return reg

    # -- iteration ----------------------------------------------------------

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())

    def operations(self) -> Iterator[Operation]:
        """All operations of the function, in block order."""
        for block in self.blocks.values():
            yield from block.ops

    def op_count(self) -> int:
        return sum(len(b) for b in self.blocks.values())

    def find_block_of(self, op: Operation) -> BasicBlock:
        """Locate the block containing ``op`` (linear scan)."""
        for block in self.blocks.values():
            for o in block.ops:
                if o is op:
                    return block
        raise ValueError(f"operation {op} not found in function {self.name}")

    # -- printing -----------------------------------------------------------

    def __str__(self) -> str:
        params = ", ".join(f"{p}: {p.ty}" for p in self.params)
        lines = [f"func @{self.name}({params}) -> {self.return_type} {{"]
        for block in self.blocks.values():
            lines.append(str(block))
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<func {self.name} [{len(self.blocks)} blocks, {self.op_count()} ops]>"
