"""Core intermediate representation.

A typed virtual-register IR with modules, functions, basic blocks and
operations — the substrate every analysis and partitioner in this package
operates on.  See :mod:`repro.ir.ops` for the instruction set.
"""

from .block import BasicBlock
from .builder import IRBuilder
from .clone import clone_function, clone_module
from .function import Function
from .module import GlobalVariable, Module
from .ops import OpClass, Opcode, Operation, TERMINATORS, renumber_ops
from .printer import print_function, print_module, print_partitioned
from .serialize import SerializeError, dumps, loads
from .types import (
    FLOAT,
    INT,
    VOID,
    ArrayType,
    FloatType,
    IntType,
    IRType,
    PointerType,
    StructType,
    VoidType,
    element_type,
    pointer_to,
)
from .values import Constant, FunctionRef, GlobalAddress, Value, VirtualRegister
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "BasicBlock",
    "IRBuilder",
    "clone_function",
    "clone_module",
    "Function",
    "GlobalVariable",
    "Module",
    "OpClass",
    "Opcode",
    "Operation",
    "TERMINATORS",
    "print_function",
    "print_module",
    "print_partitioned",
    "SerializeError",
    "dumps",
    "loads",
    "FLOAT",
    "INT",
    "VOID",
    "ArrayType",
    "FloatType",
    "IntType",
    "IRType",
    "PointerType",
    "StructType",
    "VoidType",
    "element_type",
    "pointer_to",
    "Constant",
    "FunctionRef",
    "GlobalAddress",
    "Value",
    "VirtualRegister",
    "VerificationError",
    "verify_function",
    "verify_module",
]
