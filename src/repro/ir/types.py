"""Type system for the repro IR.

The IR is typed just enough to drive the three consumers that need types:

* the MiniC frontend (element sizes for address arithmetic),
* the points-to analysis (which values may hold addresses),
* the profiling interpreter (access widths in the byte-addressed memory).

Sizes follow a conventional 32-bit embedded ABI: ``int`` is 4 bytes,
``float`` is 8 bytes (a C ``double``), pointers are 4 bytes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class IRType:
    """Base class for all IR types.

    Types are immutable value objects: two structurally equal types compare
    equal and hash equally, so they can be used freely as dict keys.
    """

    def size(self) -> int:
        """Size of a value of this type in bytes."""
        raise NotImplementedError

    def is_pointer(self) -> bool:
        return False

    def is_integer(self) -> bool:
        return False

    def is_float(self) -> bool:
        return False

    def is_aggregate(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


class VoidType(IRType):
    """The absence of a value (function returns only)."""

    def size(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


class IntType(IRType):
    """Signed two's-complement integer of a fixed bit width."""

    def __init__(self, bits: int = 32):
        if bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    def size(self) -> int:
        return max(1, self.bits // 8)

    def is_integer(self) -> bool:
        return True

    def _key(self) -> tuple:
        return (self.bits,)

    def __str__(self) -> str:
        return f"i{self.bits}"


class FloatType(IRType):
    """IEEE-754 double precision floating point."""

    def size(self) -> int:
        return 8

    def is_float(self) -> bool:
        return True

    def __str__(self) -> str:
        return "f64"


class PointerType(IRType):
    """Pointer to a pointee type. All pointers are 4 bytes."""

    def __init__(self, pointee: IRType):
        self.pointee = pointee

    def size(self) -> int:
        return 4

    def is_pointer(self) -> bool:
        return True

    def _key(self) -> tuple:
        return (self.pointee,)

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(IRType):
    """Fixed-length array of a scalar or aggregate element type."""

    def __init__(self, element: IRType, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count

    def size(self) -> int:
        return self.element.size() * self.count

    def is_aggregate(self) -> bool:
        return True

    def _key(self) -> tuple:
        return (self.element, self.count)

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


class StructType(IRType):
    """A named record with ordered fields.

    Field layout is sequential with no padding beyond natural alignment to
    4 bytes; ``offset_of`` exposes the byte offset used by the frontend to
    lower field accesses into explicit ``PTRADD`` address arithmetic.
    """

    def __init__(self, name: str, fields: List[Tuple[str, IRType]]):
        self.name = name
        self.fields = list(fields)
        self._offsets = {}
        offset = 0
        for fname, ftype in self.fields:
            align = min(ftype.size(), 8) or 1
            if align and offset % align:
                offset += align - (offset % align)
            self._offsets[fname] = offset
            offset += ftype.size()
        self._size = offset

    def size(self) -> int:
        return self._size

    def is_aggregate(self) -> bool:
        return True

    def offset_of(self, field: str) -> int:
        if field not in self._offsets:
            raise KeyError(f"struct {self.name} has no field {field!r}")
        return self._offsets[field]

    def field_type(self, field: str) -> IRType:
        for fname, ftype in self.fields:
            if fname == field:
                return ftype
        raise KeyError(f"struct {self.name} has no field {field!r}")

    def has_field(self, field: str) -> bool:
        return field in self._offsets

    def _key(self) -> tuple:
        return (self.name, tuple(self.fields))

    def __str__(self) -> str:
        return f"struct.{self.name}"


# Shared singletons for the common scalar types.
VOID = VoidType()
INT = IntType(32)
I1 = IntType(1)
FLOAT = FloatType()


def pointer_to(ty: IRType) -> PointerType:
    """Convenience constructor for pointer types."""
    return PointerType(ty)


def element_type(ty: IRType) -> IRType:
    """Scalar element type reached through one level of indexing.

    For a pointer this is the pointee, for an array the element type.
    """
    if isinstance(ty, PointerType):
        return ty.pointee
    if isinstance(ty, ArrayType):
        return ty.element
    raise TypeError(f"type {ty} is not indexable")


def access_width(ty: IRType) -> int:
    """Width in bytes of a memory access moving a value of type ``ty``."""
    if isinstance(ty, (ArrayType, StructType)):
        raise TypeError("aggregate values are not loaded/stored directly")
    return ty.size()
