"""Textual IR printing with optional annotation overlays.

``print_module``/``print_function`` render the canonical textual form used
in tests and examples.  ``print_partitioned`` overlays a cluster assignment
so a partitioning result can be inspected side by side with the code.
"""

from __future__ import annotations

from typing import Dict, Optional

from .function import Function
from .module import Module
from .ops import Operation


def print_module(module: Module) -> str:
    """Render a whole module as text."""
    parts = [f"; module {module.name}"]
    for var in module.globals.values():
        parts.append(str(var))
    for func in module:
        parts.append(print_function(func))
    return "\n\n".join(parts)


def print_function(func: Function, assignment: Optional[Dict[int, int]] = None) -> str:
    """Render a function; if ``assignment`` maps op uid -> cluster, prefix it."""
    params = ", ".join(f"{p}: {p.ty}" for p in func.params)
    lines = [f"func @{func.name}({params}) -> {func.return_type} {{"]
    for block in func:
        lines.append(f"{block.name}:")
        for op in block.ops:
            prefix = ""
            if assignment is not None and op.uid in assignment:
                prefix = f"[c{assignment[op.uid]}] "
            lines.append(f"  {prefix}{op}")
    lines.append("}")
    return "\n".join(lines)


def print_partitioned(func: Function, assignment: Dict[int, int]) -> str:
    """Render a function with per-operation cluster labels."""
    return print_function(func, assignment)


def format_op(op: Operation) -> str:
    """One-line rendering of a single operation."""
    return str(op)
