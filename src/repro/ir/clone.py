"""Deep cloning of functions and modules.

The evaluation pipeline runs several partitioning schemes over the same
program; schemes mutate the IR (intercluster move insertion), so each
scheme works on its own clone.  Cloning returns a uid map so profiles
recorded on the original can be re-keyed onto the clone.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .function import Function
from .module import Module


def clone_function(func: Function) -> Tuple[Function, Dict[int, int]]:
    """Clone a function; returns (clone, old-uid -> new-uid map).

    Virtual registers are shared between original and clone — they are
    pure (vid, type, name) value objects and register numbering stays
    function-local and identical.
    """
    clone = Function(func.name, list(func.params), func.return_type)
    clone._next_vreg = func._next_vreg
    clone._next_block = func._next_block
    uid_map: Dict[int, int] = {}
    for block in func:
        new_block = clone.add_block(block.name)
        for op in block.ops:
            new_op = op.clone()
            uid_map[op.uid] = new_op.uid
            new_block.append(new_op)
    return clone, uid_map


def clone_module(module: Module) -> Tuple[Module, Dict[int, int]]:
    """Clone a whole module; returns (clone, old-uid -> new-uid map)."""
    clone = Module(module.name)
    uid_map: Dict[int, int] = {}
    for gvar in module.globals.values():
        clone.add_global(gvar.name, gvar.ty, gvar.initializer)
    for func in module:
        new_func, fmap = clone_function(func)
        clone.add_function(new_func)
        uid_map.update(fmap)
    return clone, uid_map
