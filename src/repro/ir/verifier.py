"""Structural verifier for IR modules.

The verifier enforces the invariants every pass may rely on:

* every block ends in exactly one terminator, and terminators appear only
  at block ends;
* branch targets name blocks that exist in the same function;
* every register read is either a parameter or defined by some operation
  in the function (the IR is not SSA, so no dominance requirement);
* operand and destination arity match the opcode;
* calls name functions or known externals, pass the right number of
  arguments, and only capture a result when the callee returns one;
* global references resolve.

:func:`module_errors` / :func:`function_errors` return findings as plain
strings (the :mod:`repro.lint` framework wraps them in diagnostics);
:func:`verify_module` / :func:`verify_function` raise on the first report.
"""

from __future__ import annotations

from typing import List, Optional, Set

from .function import Function
from .module import Module
from .ops import Opcode, Operation
from .types import VoidType
from .values import GlobalAddress, VirtualRegister

#: Call targets that need not be defined in the module (modelled intrinsics).
KNOWN_EXTERNALS = {"print_int", "print_float", "abort"}

#: Argument count and whether each modelled intrinsic produces a result.
_EXTERNAL_ARITY = {
    "print_int": (1, False),
    "print_float": (1, False),
    "abort": (0, False),
}

assert set(_EXTERNAL_ARITY) == KNOWN_EXTERNALS

#: Opcode arity table: (num_srcs, has_dest, num_targets); None = variable.
_ARITY = {
    Opcode.ADD: (2, True, 0),
    Opcode.SUB: (2, True, 0),
    Opcode.MUL: (2, True, 0),
    Opcode.DIV: (2, True, 0),
    Opcode.REM: (2, True, 0),
    Opcode.NEG: (1, True, 0),
    Opcode.AND: (2, True, 0),
    Opcode.OR: (2, True, 0),
    Opcode.XOR: (2, True, 0),
    Opcode.NOT: (1, True, 0),
    Opcode.SHL: (2, True, 0),
    Opcode.SHR: (2, True, 0),
    Opcode.CMPEQ: (2, True, 0),
    Opcode.CMPNE: (2, True, 0),
    Opcode.CMPLT: (2, True, 0),
    Opcode.CMPLE: (2, True, 0),
    Opcode.CMPGT: (2, True, 0),
    Opcode.CMPGE: (2, True, 0),
    Opcode.SELECT: (3, True, 0),
    Opcode.MOV: (1, True, 0),
    Opcode.PTRADD: (2, True, 0),
    Opcode.FADD: (2, True, 0),
    Opcode.FSUB: (2, True, 0),
    Opcode.FMUL: (2, True, 0),
    Opcode.FDIV: (2, True, 0),
    Opcode.FNEG: (1, True, 0),
    Opcode.FCMPEQ: (2, True, 0),
    Opcode.FCMPNE: (2, True, 0),
    Opcode.FCMPLT: (2, True, 0),
    Opcode.FCMPLE: (2, True, 0),
    Opcode.FCMPGT: (2, True, 0),
    Opcode.FCMPGE: (2, True, 0),
    Opcode.ITOF: (1, True, 0),
    Opcode.FTOI: (1, True, 0),
    Opcode.LOAD: (1, True, 0),
    Opcode.STORE: (2, False, 0),
    Opcode.MALLOC: (1, True, 0),
    Opcode.BR: (0, False, 1),
    Opcode.CBR: (1, False, 2),
    Opcode.RET: (None, False, 0),
    Opcode.CALL: (None, None, 0),
    Opcode.ICMOVE: (1, True, 0),
}


class VerificationError(Exception):
    """Raised when a module violates an IR structural invariant."""

    def __init__(self, errors: List[str]):
        self.errors = errors
        super().__init__("\n".join(errors))


def module_errors(module: Module) -> List[str]:
    """All structural findings for ``module`` as ``func/block: text`` strings."""
    errors: List[str] = []
    for func in module:
        errors.extend(_check_function(module, func))
    for func in module:
        for block in func:
            for op in block.ops:
                where = f"{func.name}/{block.name}"
                for src in op.srcs:
                    if (
                        isinstance(src, GlobalAddress)
                        and src.symbol not in module.globals
                    ):
                        errors.append(
                            f"{where}: reference to undefined global @{src.symbol}"
                        )
                if op.is_call():
                    errors.extend(_check_call_signature(module, where, op))
    return errors


def function_errors(func: Function) -> List[str]:
    """Structural findings for one function (no cross-module checks)."""
    return _check_function(None, func)


def verify_module(module: Module) -> None:
    """Verify the whole module; raise :class:`VerificationError` on failure."""
    errors = module_errors(module)
    if errors:
        raise VerificationError(errors)


def verify_function(func: Function) -> None:
    """Verify one function in isolation (no cross-module checks)."""
    errors = function_errors(func)
    if errors:
        raise VerificationError(errors)


def _check_call_signature(module: Module, where: str, op: Operation) -> List[str]:
    """Callee exists; argument count and result capture match its signature."""
    errors: List[str] = []
    callee = op.attrs.get("callee")
    nargs = max(len(op.srcs) - 1, 0)  # srcs[0] is the FunctionRef

    expected: Optional[int] = None
    returns_value: Optional[bool] = None
    if callee in module.functions:
        target = module.functions[callee]
        expected = len(target.params)
        returns_value = not isinstance(target.return_type, VoidType)
    elif callee in KNOWN_EXTERNALS:
        expected, returns_value = _EXTERNAL_ARITY[callee]
    else:
        errors.append(f"{where}: call to undefined function @{callee}")
        return errors

    if nargs != expected:
        errors.append(
            f"{where}: call to @{callee} passes {nargs} argument(s), "
            f"expected {expected}"
        )
    if op.dest is not None and not returns_value:
        errors.append(
            f"{where}: call to @{callee} captures a result, but the "
            "callee returns void"
        )
    return errors


def _check_function(module, func: Function) -> List[str]:
    errors: List[str] = []
    if not func.blocks:
        errors.append(f"{func.name}: function has no blocks")
        return errors

    defined: Set[int] = {p.vid for p in func.params}
    for op in func.operations():
        if op.dest is not None:
            defined.add(op.dest.vid)

    for block in func:
        if not block.ops:
            errors.append(f"{func.name}/{block.name}: empty block")
            continue
        if block.terminator is None:
            errors.append(f"{func.name}/{block.name}: missing terminator")
        for i, op in enumerate(block.ops):
            if op.is_terminator() and i != len(block.ops) - 1:
                errors.append(
                    f"{func.name}/{block.name}: terminator {op.opcode.mnemonic} "
                    f"at position {i} is not last"
                )
            errors.extend(_check_op(func, block.name, op, defined))
        for target in block.successors():
            if target not in func.blocks:
                errors.append(
                    f"{func.name}/{block.name}: branch to unknown block {target!r}"
                )
    return errors


def _check_op(func: Function, bname: str, op: Operation, defined: Set[int]) -> List[str]:
    errors: List[str] = []
    where = f"{func.name}/{bname}"
    arity = _ARITY.get(op.opcode)
    if arity is None:
        errors.append(f"{where}: unknown opcode {op.opcode}")
        return errors
    nsrcs, has_dest, ntargets = arity
    if nsrcs is not None and len(op.srcs) != nsrcs:
        if not (op.opcode is Opcode.RET and len(op.srcs) in (0, 1)):
            errors.append(
                f"{where}: {op.opcode.mnemonic} expects {nsrcs} srcs, "
                f"got {len(op.srcs)}"
            )
    if op.opcode is Opcode.RET and len(op.srcs) > 1:
        errors.append(f"{where}: ret takes at most one value")
    if has_dest is True and op.dest is None:
        errors.append(f"{where}: {op.opcode.mnemonic} requires a destination")
    if has_dest is False and op.dest is not None:
        errors.append(f"{where}: {op.opcode.mnemonic} must not have a destination")
    if len(op.targets) != ntargets:
        errors.append(
            f"{where}: {op.opcode.mnemonic} expects {ntargets} targets, "
            f"got {len(op.targets)}"
        )
    for src in op.register_srcs():
        if src.vid not in defined:
            errors.append(
                f"{where}: use of undefined register {src} in {op.opcode.mnemonic}"
            )
    if op.opcode is Opcode.MALLOC and "site" not in op.attrs:
        errors.append(f"{where}: malloc without allocation-site id")
    if op.is_call() and "callee" not in op.attrs:
        errors.append(f"{where}: call without callee attribute")
    return errors
