"""Structural verifier for IR modules.

The verifier enforces the invariants every pass may rely on:

* every block ends in exactly one terminator, and terminators appear only
  at block ends;
* branch targets name blocks that exist in the same function;
* every register read is either a parameter or defined by some operation
  in the function (the IR is not SSA, so no dominance requirement);
* operand and destination arity match the opcode;
* calls name functions or known externals; global references resolve.
"""

from __future__ import annotations

from typing import List, Set

from .function import Function
from .module import Module
from .ops import Opcode, Operation
from .values import GlobalAddress, VirtualRegister

#: Call targets that need not be defined in the module (modelled intrinsics).
KNOWN_EXTERNALS = {"print_int", "print_float", "abort"}

#: Opcode arity table: (num_srcs, has_dest, num_targets); None = variable.
_ARITY = {
    Opcode.ADD: (2, True, 0),
    Opcode.SUB: (2, True, 0),
    Opcode.MUL: (2, True, 0),
    Opcode.DIV: (2, True, 0),
    Opcode.REM: (2, True, 0),
    Opcode.NEG: (1, True, 0),
    Opcode.AND: (2, True, 0),
    Opcode.OR: (2, True, 0),
    Opcode.XOR: (2, True, 0),
    Opcode.NOT: (1, True, 0),
    Opcode.SHL: (2, True, 0),
    Opcode.SHR: (2, True, 0),
    Opcode.CMPEQ: (2, True, 0),
    Opcode.CMPNE: (2, True, 0),
    Opcode.CMPLT: (2, True, 0),
    Opcode.CMPLE: (2, True, 0),
    Opcode.CMPGT: (2, True, 0),
    Opcode.CMPGE: (2, True, 0),
    Opcode.SELECT: (3, True, 0),
    Opcode.MOV: (1, True, 0),
    Opcode.PTRADD: (2, True, 0),
    Opcode.FADD: (2, True, 0),
    Opcode.FSUB: (2, True, 0),
    Opcode.FMUL: (2, True, 0),
    Opcode.FDIV: (2, True, 0),
    Opcode.FNEG: (1, True, 0),
    Opcode.FCMPEQ: (2, True, 0),
    Opcode.FCMPNE: (2, True, 0),
    Opcode.FCMPLT: (2, True, 0),
    Opcode.FCMPLE: (2, True, 0),
    Opcode.FCMPGT: (2, True, 0),
    Opcode.FCMPGE: (2, True, 0),
    Opcode.ITOF: (1, True, 0),
    Opcode.FTOI: (1, True, 0),
    Opcode.LOAD: (1, True, 0),
    Opcode.STORE: (2, False, 0),
    Opcode.MALLOC: (1, True, 0),
    Opcode.BR: (0, False, 1),
    Opcode.CBR: (1, False, 2),
    Opcode.RET: (None, False, 0),
    Opcode.CALL: (None, None, 0),
    Opcode.ICMOVE: (1, True, 0),
}


class VerificationError(Exception):
    """Raised when a module violates an IR structural invariant."""

    def __init__(self, errors: List[str]):
        self.errors = errors
        super().__init__("\n".join(errors))


def verify_module(module: Module) -> None:
    """Verify the whole module; raise :class:`VerificationError` on failure."""
    errors: List[str] = []
    for func in module:
        errors.extend(_check_function(module, func))
    for func in module:
        for op in func.operations():
            for src in op.srcs:
                if isinstance(src, GlobalAddress) and src.symbol not in module.globals:
                    errors.append(
                        f"{func.name}: reference to undefined global @{src.symbol}"
                    )
            if op.is_call():
                callee = op.attrs.get("callee")
                if (
                    callee not in module.functions
                    and callee not in KNOWN_EXTERNALS
                ):
                    errors.append(
                        f"{func.name}: call to undefined function @{callee}"
                    )
    if errors:
        raise VerificationError(errors)


def verify_function(func: Function) -> None:
    """Verify one function in isolation (no cross-module checks)."""
    errors = _check_function(None, func)
    if errors:
        raise VerificationError(errors)


def _check_function(module, func: Function) -> List[str]:
    errors: List[str] = []
    if not func.blocks:
        errors.append(f"{func.name}: function has no blocks")
        return errors

    defined: Set[int] = {p.vid for p in func.params}
    for op in func.operations():
        if op.dest is not None:
            defined.add(op.dest.vid)

    for block in func:
        if not block.ops:
            errors.append(f"{func.name}/{block.name}: empty block")
            continue
        if block.terminator is None:
            errors.append(f"{func.name}/{block.name}: missing terminator")
        for i, op in enumerate(block.ops):
            if op.is_terminator() and i != len(block.ops) - 1:
                errors.append(
                    f"{func.name}/{block.name}: terminator {op.opcode.mnemonic} "
                    f"at position {i} is not last"
                )
            errors.extend(_check_op(func, block.name, op, defined))
        for target in block.successors():
            if target not in func.blocks:
                errors.append(
                    f"{func.name}/{block.name}: branch to unknown block {target!r}"
                )
    return errors


def _check_op(func: Function, bname: str, op: Operation, defined: Set[int]) -> List[str]:
    errors: List[str] = []
    where = f"{func.name}/{bname}"
    arity = _ARITY.get(op.opcode)
    if arity is None:
        errors.append(f"{where}: unknown opcode {op.opcode}")
        return errors
    nsrcs, has_dest, ntargets = arity
    if nsrcs is not None and len(op.srcs) != nsrcs:
        if not (op.opcode is Opcode.RET and len(op.srcs) in (0, 1)):
            errors.append(
                f"{where}: {op.opcode.mnemonic} expects {nsrcs} srcs, "
                f"got {len(op.srcs)}"
            )
    if op.opcode is Opcode.RET and len(op.srcs) > 1:
        errors.append(f"{where}: ret takes at most one value")
    if has_dest is True and op.dest is None:
        errors.append(f"{where}: {op.opcode.mnemonic} requires a destination")
    if has_dest is False and op.dest is not None:
        errors.append(f"{where}: {op.opcode.mnemonic} must not have a destination")
    if len(op.targets) != ntargets:
        errors.append(
            f"{where}: {op.opcode.mnemonic} expects {ntargets} targets, "
            f"got {len(op.targets)}"
        )
    for src in op.register_srcs():
        if src.vid not in defined:
            errors.append(
                f"{where}: use of undefined register {src} in {op.opcode.mnemonic}"
            )
    if op.opcode is Opcode.MALLOC and "site" not in op.attrs:
        errors.append(f"{where}: malloc without allocation-site id")
    if op.is_call() and "callee" not in op.attrs:
        errors.append(f"{where}: call without callee attribute")
    return errors
