"""Basic blocks: straight-line operation sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from .ops import Operation


class BasicBlock:
    """A named, ordered list of operations.

    The last operation must be a terminator (``BR``/``CBR``/``RET``) for
    the block to verify.  ``CALL`` is *not* a terminator in this IR: calls
    appear mid-block and fall through.
    """

    def __init__(self, name: str):
        self.name = name
        self.ops: List[Operation] = []

    def append(self, op: Operation) -> Operation:
        self.ops.append(op)
        return op

    def insert(self, index: int, op: Operation) -> Operation:
        self.ops.insert(index, op)
        return op

    def remove(self, op: Operation) -> None:
        self.ops.remove(op)

    @property
    def terminator(self) -> Optional[Operation]:
        """The final operation if it is a terminator, else ``None``."""
        if self.ops and self.ops[-1].is_terminator():
            return self.ops[-1]
        return None

    def successors(self) -> List[str]:
        """Names of successor blocks (empty for returns / unterminated)."""
        term = self.terminator
        if term is None:
            return []
        return list(term.targets)

    def index_of(self, op: Operation) -> int:
        for i, o in enumerate(self.ops):
            if o is op:
                return i
        raise ValueError(f"operation not in block {self.name}")

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        lines.extend(f"  {op}" for op in self.ops)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<block {self.name} [{len(self.ops)} ops]>"
