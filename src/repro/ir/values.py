"""SSA-lite value kinds used as operation operands.

The IR is a conventional virtual-register machine (not strict SSA): an
operation defines at most one :class:`VirtualRegister` and reads a list of
values.  Values are:

* :class:`VirtualRegister` — a typed, function-local register,
* :class:`Constant` — an immediate integer or float,
* :class:`GlobalAddress` — the address of a module-level data object,
* :class:`FunctionRef` — the address of a function (for calls).
"""

from __future__ import annotations

from typing import Union

from .types import FLOAT, INT, IRType, PointerType


class Value:
    """Base class for operand values."""

    ty: IRType

    def is_register(self) -> bool:
        return False

    def is_constant(self) -> bool:
        return False


class VirtualRegister(Value):
    """A typed virtual register, unique within its function.

    Registers are identified by integer ``vid``; ``name`` is a readable
    hint carried from the frontend (variable names) for printing.
    """

    __slots__ = ("vid", "ty", "name")

    def __init__(self, vid: int, ty: IRType, name: str = ""):
        self.vid = vid
        self.ty = ty
        self.name = name

    def is_register(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VirtualRegister) and other.vid == self.vid

    def __hash__(self) -> int:
        return hash(("vreg", self.vid))

    def __str__(self) -> str:
        if self.name:
            return f"%{self.name}.{self.vid}"
        return f"%v{self.vid}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualRegister({self.vid}, {self.ty}, {self.name!r})"


class Constant(Value):
    """An immediate integer or floating-point constant."""

    __slots__ = ("value", "ty")

    def __init__(self, value: Union[int, float], ty: IRType = None):
        if ty is None:
            ty = FLOAT if isinstance(value, float) else INT
        self.value = value
        self.ty = ty

    def is_constant(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.value == self.value
            and other.ty == self.ty
        )

    def __hash__(self) -> int:
        return hash(("const", self.value, self.ty))

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constant({self.value!r}, {self.ty})"


class GlobalAddress(Value):
    """The address of a module-level global variable.

    ``symbol`` names the :class:`~repro.ir.module.GlobalVariable`; the type
    is a pointer to the global's value type.
    """

    __slots__ = ("symbol", "ty")

    def __init__(self, symbol: str, pointee: IRType):
        self.symbol = symbol
        self.ty = PointerType(pointee)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GlobalAddress) and other.symbol == self.symbol

    def __hash__(self) -> int:
        return hash(("gaddr", self.symbol))

    def __str__(self) -> str:
        return f"@{self.symbol}"


class FunctionRef(Value):
    """A reference to a function, used as the callee operand of calls."""

    __slots__ = ("symbol", "ty")

    def __init__(self, symbol: str, ty: IRType):
        self.symbol = symbol
        self.ty = ty

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FunctionRef) and other.symbol == self.symbol

    def __hash__(self) -> int:
        return hash(("fref", self.symbol))

    def __str__(self) -> str:
        return f"@{self.symbol}"
