"""IRBuilder: a cursor-style convenience API for constructing IR.

The builder keeps a current insertion block and exposes one method per
opcode family.  It is used both by the MiniC lowering pass and directly by
tests and examples that construct IR by hand.

Example
-------
>>> from repro.ir import Module, Function, IRBuilder, INT
>>> mod = Module("demo")
>>> func = Function("main", [], INT)
>>> mod.add_function(func)                              # doctest: +ELLIPSIS
<func main ...>
>>> b = IRBuilder(func)
>>> entry = b.new_block("entry")
>>> b.set_block(entry)
>>> x = b.add(b.const(2), b.const(3))
>>> _ = b.ret(x)
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .block import BasicBlock
from .function import Function
from .ops import Opcode, Operation
from .types import FLOAT, INT, IRType, PointerType
from .values import Constant, FunctionRef, GlobalAddress, Value, VirtualRegister


class IRBuilder:
    """Builds operations into a current block of a function."""

    def __init__(self, func: Function):
        self.func = func
        self.block: Optional[BasicBlock] = None

    # -- positioning ---------------------------------------------------------

    def new_block(self, name: Optional[str] = None) -> BasicBlock:
        return self.func.add_block(name)

    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    def _emit(self, op: Operation) -> Operation:
        if self.block is None:
            raise RuntimeError("IRBuilder has no current block")
        if self.block.terminator is not None:
            raise RuntimeError(
                f"emitting into terminated block {self.block.name}"
            )
        self.block.append(op)
        return op

    def _binary(self, opcode: Opcode, lhs: Value, rhs: Value, ty: IRType) -> VirtualRegister:
        dest = self.func.new_vreg(ty)
        self._emit(Operation(opcode, dest, [lhs, rhs]))
        return dest

    def _unary(self, opcode: Opcode, src: Value, ty: IRType) -> VirtualRegister:
        dest = self.func.new_vreg(ty)
        self._emit(Operation(opcode, dest, [src]))
        return dest

    # -- constants -------------------------------------------------------------

    @staticmethod
    def const(value: Union[int, float], ty: Optional[IRType] = None) -> Constant:
        return Constant(value, ty)

    # -- integer arithmetic ------------------------------------------------------

    def add(self, a: Value, b: Value) -> VirtualRegister:
        return self._binary(Opcode.ADD, a, b, INT)

    def sub(self, a: Value, b: Value) -> VirtualRegister:
        return self._binary(Opcode.SUB, a, b, INT)

    def mul(self, a: Value, b: Value) -> VirtualRegister:
        return self._binary(Opcode.MUL, a, b, INT)

    def div(self, a: Value, b: Value) -> VirtualRegister:
        return self._binary(Opcode.DIV, a, b, INT)

    def rem(self, a: Value, b: Value) -> VirtualRegister:
        return self._binary(Opcode.REM, a, b, INT)

    def neg(self, a: Value) -> VirtualRegister:
        return self._unary(Opcode.NEG, a, INT)

    def and_(self, a: Value, b: Value) -> VirtualRegister:
        return self._binary(Opcode.AND, a, b, INT)

    def or_(self, a: Value, b: Value) -> VirtualRegister:
        return self._binary(Opcode.OR, a, b, INT)

    def xor(self, a: Value, b: Value) -> VirtualRegister:
        return self._binary(Opcode.XOR, a, b, INT)

    def not_(self, a: Value) -> VirtualRegister:
        return self._unary(Opcode.NOT, a, INT)

    def shl(self, a: Value, b: Value) -> VirtualRegister:
        return self._binary(Opcode.SHL, a, b, INT)

    def shr(self, a: Value, b: Value) -> VirtualRegister:
        return self._binary(Opcode.SHR, a, b, INT)

    def select(self, cond: Value, if_true: Value, if_false: Value) -> VirtualRegister:
        dest = self.func.new_vreg(if_true.ty)
        self._emit(Operation(Opcode.SELECT, dest, [cond, if_true, if_false]))
        return dest

    # -- comparisons --------------------------------------------------------------

    def cmp(self, kind: str, a: Value, b: Value) -> VirtualRegister:
        """Integer compare; ``kind`` in eq/ne/lt/le/gt/ge."""
        opcode = {
            "eq": Opcode.CMPEQ,
            "ne": Opcode.CMPNE,
            "lt": Opcode.CMPLT,
            "le": Opcode.CMPLE,
            "gt": Opcode.CMPGT,
            "ge": Opcode.CMPGE,
        }[kind]
        return self._binary(opcode, a, b, INT)

    def fcmp(self, kind: str, a: Value, b: Value) -> VirtualRegister:
        """Float compare; result is an i32 truth value."""
        opcode = {
            "eq": Opcode.FCMPEQ,
            "ne": Opcode.FCMPNE,
            "lt": Opcode.FCMPLT,
            "le": Opcode.FCMPLE,
            "gt": Opcode.FCMPGT,
            "ge": Opcode.FCMPGE,
        }[kind]
        return self._binary(opcode, a, b, INT)

    # -- float arithmetic -----------------------------------------------------------

    def fadd(self, a: Value, b: Value) -> VirtualRegister:
        return self._binary(Opcode.FADD, a, b, FLOAT)

    def fsub(self, a: Value, b: Value) -> VirtualRegister:
        return self._binary(Opcode.FSUB, a, b, FLOAT)

    def fmul(self, a: Value, b: Value) -> VirtualRegister:
        return self._binary(Opcode.FMUL, a, b, FLOAT)

    def fdiv(self, a: Value, b: Value) -> VirtualRegister:
        return self._binary(Opcode.FDIV, a, b, FLOAT)

    def fneg(self, a: Value) -> VirtualRegister:
        return self._unary(Opcode.FNEG, a, FLOAT)

    def itof(self, a: Value) -> VirtualRegister:
        return self._unary(Opcode.ITOF, a, FLOAT)

    def ftoi(self, a: Value) -> VirtualRegister:
        return self._unary(Opcode.FTOI, a, INT)

    # -- moves ---------------------------------------------------------------------

    def mov(self, src: Value, name: str = "") -> VirtualRegister:
        dest = self.func.new_vreg(src.ty, name)
        self._emit(Operation(Opcode.MOV, dest, [src]))
        return dest

    def mov_to(self, dest: VirtualRegister, src: Value) -> Operation:
        """Copy into an existing register (used for mutable frontend vars)."""
        return self._emit(Operation(Opcode.MOV, dest, [src]))

    # -- memory -----------------------------------------------------------------------

    def ptradd(
        self, base: Value, offset: Value, result_ty: Optional[IRType] = None
    ) -> VirtualRegister:
        """Pointer plus byte offset.

        ``result_ty`` overrides the result pointer type; lowering uses this
        to decay pointer-to-array bases into pointer-to-element results.
        """
        if not base.ty.is_pointer():
            raise TypeError(f"ptradd base must be a pointer, got {base.ty}")
        dest = self.func.new_vreg(result_ty if result_ty is not None else base.ty)
        self._emit(Operation(Opcode.PTRADD, dest, [base, offset]))
        return dest

    def load(self, addr: Value, ty: Optional[IRType] = None) -> VirtualRegister:
        if ty is None:
            if not isinstance(addr.ty, PointerType):
                raise TypeError(f"load address must be a pointer, got {addr.ty}")
            ty = addr.ty.pointee
        dest = self.func.new_vreg(ty)
        self._emit(Operation(Opcode.LOAD, dest, [addr]))
        return dest

    def store(self, value: Value, addr: Value) -> Operation:
        return self._emit(Operation(Opcode.STORE, None, [value, addr]))

    def malloc(self, size: Value, site: str, pointee: IRType = INT) -> VirtualRegister:
        """Heap allocation; ``site`` is the unique allocation-site id."""
        dest = self.func.new_vreg(PointerType(pointee))
        self._emit(Operation(Opcode.MALLOC, dest, [size], attrs={"site": site}))
        return dest

    # -- control flow --------------------------------------------------------------------

    def br(self, target: BasicBlock) -> Operation:
        return self._emit(Operation(Opcode.BR, targets=[target.name]))

    def cbr(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Operation:
        return self._emit(
            Operation(Opcode.CBR, srcs=[cond], targets=[if_true.name, if_false.name])
        )

    def ret(self, value: Optional[Value] = None) -> Operation:
        srcs = [] if value is None else [value]
        return self._emit(Operation(Opcode.RET, srcs=srcs))

    def call(
        self,
        callee: str,
        args: Sequence[Value],
        return_type: IRType,
    ) -> Optional[VirtualRegister]:
        """Call a function by symbol name; returns the result register or None."""
        ref = FunctionRef(callee, return_type)
        dest = None
        if return_type.size() > 0:
            dest = self.func.new_vreg(return_type)
        self._emit(
            Operation(
                Opcode.CALL, dest, [ref] + list(args), attrs={"callee": callee}
            )
        )
        return dest

    # -- misc -------------------------------------------------------------------------------

    def global_addr(self, var) -> GlobalAddress:
        """Address of a :class:`~repro.ir.module.GlobalVariable`."""
        return var.address()
