"""Operations: the nodes of the IR.

Every operation has an opcode, at most one destination register, a list of
source values, optional branch targets, and an attribute dictionary used to
carry analysis annotations (e.g. the set of data-object ids a memory
operation may touch, or the call-site id of a ``MALLOC``).

Opcodes are grouped into :class:`OpClass` categories which drive both the
machine resource mapping (which function unit executes the op) and the
analyses (what counts as a memory operation, a branch, ...).
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional, Sequence

from .types import IRType
from .values import Constant, Value, VirtualRegister


class OpClass(enum.Enum):
    """Coarse functional category; maps one-to-one onto FU resource classes."""

    INT_ALU = "int"
    FLOAT_ALU = "float"
    MEMORY = "mem"
    BRANCH = "branch"
    ICMOVE = "icmove"  # intercluster move: executes on the shared bus


class Opcode(enum.Enum):
    # Integer arithmetic / logic
    ADD = ("add", OpClass.INT_ALU)
    SUB = ("sub", OpClass.INT_ALU)
    MUL = ("mul", OpClass.INT_ALU)
    DIV = ("div", OpClass.INT_ALU)
    REM = ("rem", OpClass.INT_ALU)
    NEG = ("neg", OpClass.INT_ALU)
    AND = ("and", OpClass.INT_ALU)
    OR = ("or", OpClass.INT_ALU)
    XOR = ("xor", OpClass.INT_ALU)
    NOT = ("not", OpClass.INT_ALU)
    SHL = ("shl", OpClass.INT_ALU)
    SHR = ("shr", OpClass.INT_ALU)
    # Integer comparisons (result is 0/1 in an i32 register)
    CMPEQ = ("cmpeq", OpClass.INT_ALU)
    CMPNE = ("cmpne", OpClass.INT_ALU)
    CMPLT = ("cmplt", OpClass.INT_ALU)
    CMPLE = ("cmple", OpClass.INT_ALU)
    CMPGT = ("cmpgt", OpClass.INT_ALU)
    CMPGE = ("cmpge", OpClass.INT_ALU)
    # Select (conditional move): dest = srcs[0] ? srcs[1] : srcs[2]
    SELECT = ("select", OpClass.INT_ALU)
    # Register copy / immediate materialisation
    MOV = ("mov", OpClass.INT_ALU)
    # Pointer arithmetic: dest = base + byte_offset
    PTRADD = ("ptradd", OpClass.INT_ALU)
    # Floating point
    FADD = ("fadd", OpClass.FLOAT_ALU)
    FSUB = ("fsub", OpClass.FLOAT_ALU)
    FMUL = ("fmul", OpClass.FLOAT_ALU)
    FDIV = ("fdiv", OpClass.FLOAT_ALU)
    FNEG = ("fneg", OpClass.FLOAT_ALU)
    FCMPEQ = ("fcmpeq", OpClass.FLOAT_ALU)
    FCMPNE = ("fcmpne", OpClass.FLOAT_ALU)
    FCMPLT = ("fcmplt", OpClass.FLOAT_ALU)
    FCMPLE = ("fcmple", OpClass.FLOAT_ALU)
    FCMPGT = ("fcmpgt", OpClass.FLOAT_ALU)
    FCMPGE = ("fcmpge", OpClass.FLOAT_ALU)
    ITOF = ("itof", OpClass.FLOAT_ALU)
    FTOI = ("ftoi", OpClass.FLOAT_ALU)
    # Memory
    LOAD = ("load", OpClass.MEMORY)  # dest = *(srcs[0])
    STORE = ("store", OpClass.MEMORY)  # *(srcs[1]) = srcs[0]
    MALLOC = ("malloc", OpClass.MEMORY)  # dest = heap alloc of srcs[0] bytes
    # Control flow
    BR = ("br", OpClass.BRANCH)  # unconditional: targets[0]
    CBR = ("cbr", OpClass.BRANCH)  # srcs[0] != 0 ? targets[0] : targets[1]
    RET = ("ret", OpClass.BRANCH)  # optional srcs[0] return value
    CALL = ("call", OpClass.BRANCH)  # srcs[0]=callee ref, srcs[1:]=args
    # Intercluster communication (inserted by the partitioner)
    ICMOVE = ("icmove", OpClass.ICMOVE)

    def __init__(self, mnemonic: str, opclass: OpClass):
        self.mnemonic = mnemonic
        self.opclass = opclass


#: Comparison opcodes, used by the frontend and constant folder.
INT_COMPARES = {
    Opcode.CMPEQ,
    Opcode.CMPNE,
    Opcode.CMPLT,
    Opcode.CMPLE,
    Opcode.CMPGT,
    Opcode.CMPGE,
}
FLOAT_COMPARES = {
    Opcode.FCMPEQ,
    Opcode.FCMPNE,
    Opcode.FCMPLT,
    Opcode.FCMPLE,
    Opcode.FCMPGT,
    Opcode.FCMPGE,
}

#: Opcodes that terminate a basic block.
TERMINATORS = {Opcode.BR, Opcode.CBR, Opcode.RET}

_op_ids = itertools.count()


def renumber_ops(module) -> None:
    """Re-assign every operation's uid in textual order.

    Optimization passes create operations out of textual order, so a
    freshly compiled module's uids and a serialization round-trip's uids
    (assigned in parse order) can disagree on *relative* order.  Anything
    that tie-breaks on uid — graph partitioners most of all — would then
    produce different results for two semantically identical modules.
    Renumbering in the one canonical order (function, block, index) makes
    uid order a pure function of the module text.  Call only while no
    uid-keyed side tables reference the module (uids key ``__hash__``).
    """
    for func in module:
        for block in func:
            for op in block.ops:
                op.uid = next(_op_ids)


class Operation:
    """A single IR operation.

    Attributes
    ----------
    uid:
        A process-unique integer identity, stable for the life of the
        operation.  Graphs built by the analyses and partitioners key nodes
        on ``uid`` so that operations can be hashed without being frozen.
    opcode, dest, srcs, targets:
        The instruction proper. ``targets`` holds successor block names for
        branches (and is empty otherwise).
    attrs:
        Open annotation dictionary.  Well-known keys:

        ``"callee"``       – symbol name for ``CALL``;
        ``"site"``         – allocation-site id for ``MALLOC``;
        ``"mem_objects"``  – frozenset of data-object ids a ``LOAD``/``STORE``
        may access (filled in by the points-to analysis).
    """

    __slots__ = ("uid", "opcode", "dest", "srcs", "targets", "attrs")

    def __init__(
        self,
        opcode: Opcode,
        dest: Optional[VirtualRegister] = None,
        srcs: Sequence[Value] = (),
        targets: Sequence[str] = (),
        attrs: Optional[Dict] = None,
    ):
        self.uid = next(_op_ids)
        self.opcode = opcode
        self.dest = dest
        self.srcs: List[Value] = list(srcs)
        self.targets: List[str] = list(targets)
        self.attrs: Dict = dict(attrs) if attrs else {}

    # -- classification helpers -------------------------------------------

    @property
    def opclass(self) -> OpClass:
        return self.opcode.opclass

    def is_memory(self) -> bool:
        return self.opcode.opclass is OpClass.MEMORY

    def is_memory_access(self) -> bool:
        """True for operations that read or write data memory (not MALLOC)."""
        return self.opcode in (Opcode.LOAD, Opcode.STORE)

    def is_branch(self) -> bool:
        return self.opcode.opclass is OpClass.BRANCH

    def is_terminator(self) -> bool:
        return self.opcode in TERMINATORS

    def is_call(self) -> bool:
        return self.opcode is Opcode.CALL

    def is_icmove(self) -> bool:
        return self.opcode is Opcode.ICMOVE

    # -- operand access ----------------------------------------------------

    def register_srcs(self) -> List[VirtualRegister]:
        """The source operands that are virtual registers."""
        return [s for s in self.srcs if isinstance(s, VirtualRegister)]

    def address_operand(self) -> Optional[Value]:
        """The address operand of a LOAD/STORE, else None."""
        if self.opcode is Opcode.LOAD:
            return self.srcs[0]
        if self.opcode is Opcode.STORE:
            return self.srcs[1]
        return None

    def mem_objects(self) -> frozenset:
        """Data-object ids this memory operation may touch (post-analysis)."""
        return self.attrs.get("mem_objects", frozenset())

    def replace_src(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` in ``srcs``; return count."""
        count = 0
        for i, s in enumerate(self.srcs):
            if s == old:
                self.srcs[i] = new
                count += 1
        return count

    # -- misc ---------------------------------------------------------------

    def clone(self) -> "Operation":
        """A deep-enough copy with a fresh uid (values are shared)."""
        return Operation(
            self.opcode, self.dest, list(self.srcs), list(self.targets), dict(self.attrs)
        )

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __str__(self) -> str:
        parts = []
        if self.dest is not None:
            parts.append(f"{self.dest} = ")
        parts.append(self.opcode.mnemonic)
        if self.srcs:
            parts.append(" " + ", ".join(str(s) for s in self.srcs))
        if self.targets:
            parts.append(" -> " + ", ".join(self.targets))
        extra = []
        if "callee" in self.attrs:
            extra.append(f"callee={self.attrs['callee']}")
        if "site" in self.attrs:
            extra.append(f"site={self.attrs['site']}")
        if "mem_objects" in self.attrs and self.attrs["mem_objects"]:
            objs = ",".join(sorted(str(o) for o in self.attrs["mem_objects"]))
            extra.append(f"objs={{{objs}}}")
        if extra:
            parts.append("  ; " + " ".join(extra))
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<op {self.uid}: {self}>"
