"""Stdlib HTTP front end for the partitioning service.

One :class:`ServiceServer` wraps a :class:`~repro.service.broker.Broker`
behind ``http.server.ThreadingHTTPServer`` — no runtime dependencies,
one thread per connection, which is exactly right for a job server whose
requests are either instant (submit, poll, stats) or deliberately
long-lived (the NDJSON event follow).

Routes (all JSON; errors use ``{"error": {code, message, fields}}``):

========  ==========================  =======================================
POST      ``/v1/jobs``                submit ``{source|bench, config?,
                                      tenant?, priority?}`` → job descriptor
                                      (201 created / 200 coalesced)
GET       ``/v1/jobs``                job index (id, state, bench, tenant)
GET       ``/v1/jobs/{id}``           full job descriptor (``?wait=SECS``
                                      blocks until terminal or timeout)
GET       ``/v1/jobs/{id}/events``    NDJSON event stream; ``?follow=1``
                                      keeps the connection open until the
                                      job is terminal, ``?since=N`` resumes
                                      from sequence N
POST      ``/v1/jobs/{id}/cancel``    cancel a still-queued job
GET       ``/v1/stats``               broker + queue + cache counters
GET       ``/v1/healthz``             liveness (always 200 while serving)
POST      ``/v1/shutdown``            graceful stop; ``?drain=1`` finishes
                                      or journal-parks admitted work first
========  ==========================  =======================================
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .broker import Broker, ServiceError

#: Submissions larger than this are refused outright (a MiniC program is
#: kilobytes; anything bigger is a mistake or abuse).
MAX_BODY_BYTES = 1 << 20


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    #: The stdlib default backlog (5) drops connections under a
    #: concurrent submission burst; the load test drives hundreds.
    request_queue_size = 128


class _Handler(BaseHTTPRequestHandler):
    """Request handler; ``server.service`` is the owning ServiceServer."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    # -- plumbing --------------------------------------------------------------

    @property
    def broker(self) -> Broker:
        return self.server.service.broker  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.service.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        close: bool = False,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if close:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, exc: ServiceError) -> None:
        headers = None
        if exc.retry_after is not None:
            # RFC 7231 Retry-After is delta-seconds (an integer); round
            # up so a client honouring only the header never retries
            # before the broker's own hint.
            headers = {"Retry-After": str(max(1, int(-(-exc.retry_after // 1))))}
        self._send_json(exc.status, exc.to_dict(), headers=headers)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                413, "body_too_large",
                f"request body exceeds {MAX_BODY_BYTES} bytes",
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                400, "invalid_json", f"request body is not JSON: {exc}"
            ) from None

    @staticmethod
    def _number(query: Dict[str, Any], key: str, default: float) -> float:
        raw = query.get(key)
        if raw in (None, ""):
            return default
        try:
            return float(raw)
        except ValueError:
            raise ServiceError(
                400, "invalid_query", f"query parameter {key!r} must be a "
                f"number, got {raw!r}", fields=(key,),
            ) from None

    def _route(self) -> Tuple[str, Dict[str, Any]]:
        parsed = urlparse(self.path)
        query = {
            key: values[-1]
            for key, values in parse_qs(parsed.query).items()
        }
        return parsed.path.rstrip("/") or "/", query

    # -- verbs -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path, query = self._route()
        try:
            if path == "/v1/healthz":
                self._send_json(200, {
                    "status": "ok",
                    "workers_alive": self.broker.stats()["workers"]["alive"],
                })
            elif path == "/v1/stats":
                self._send_json(200, self.broker.stats())
            elif path == "/v1/jobs":
                self._send_json(200, {
                    "jobs": [
                        {
                            "id": job.id, "state": job.state,
                            "bench": job.bench, "tenant": job.tenant,
                        }
                        for job in self.broker.jobs()
                    ]
                })
            elif path.startswith("/v1/jobs/") and path.endswith("/events"):
                self._stream_events(path[len("/v1/jobs/"):-len("/events")]
                                    .strip("/"), query)
            elif path.startswith("/v1/jobs/"):
                job = self.broker.get(path[len("/v1/jobs/"):])
                wait = self._number(query, "wait", 0.0)
                if wait > 0:
                    cap = self.server.service.max_wait  # type: ignore[attr-defined]
                    job.wait(timeout=min(wait, cap))
                self._send_json(200, job.to_dict(include_events=True))
            else:
                raise ServiceError(404, "not_found", f"no route {path!r}")
        except ServiceError as exc:
            self._send_error(exc)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path, query = self._route()
        try:
            if path == "/v1/jobs":
                request = self._read_body()
                job, created = self.broker.submit(request)
                payload = job.to_dict()
                payload["coalesced_onto"] = not created
                self._send_json(201 if created else 200, payload)
            elif path.startswith("/v1/jobs/") and path.endswith("/cancel"):
                job_id = path[len("/v1/jobs/"):-len("/cancel")].strip("/")
                job = self.broker.cancel(job_id)
                self._send_json(200, job.to_dict())
            elif path == "/v1/shutdown":
                drain = query.get("drain") in ("1", "true", "yes")
                self._send_json(
                    200, {"status": "stopping", "drain": drain}, close=True
                )
                self.server.service.request_shutdown(drain=drain)  # type: ignore[attr-defined]
            else:
                raise ServiceError(404, "not_found", f"no route {path!r}")
        except ServiceError as exc:
            self._send_error(exc)

    # -- the NDJSON stream -----------------------------------------------------

    def _stream_events(self, job_id: str, query: Dict[str, Any]) -> None:
        job = self.broker.get(job_id)
        follow = query.get("follow") in ("1", "true", "yes")
        since = int(self._number(query, "since", 0))
        timeout = self._number(query, "timeout", 300.0)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        # Chunked-free streaming: the connection closes when the stream
        # ends, which is the NDJSON framing clients expect.
        self.send_header("Connection", "close")
        self.end_headers()
        if follow:
            events = job.follow_events(timeout=timeout)
        else:
            events = iter(job.snapshot_events(since=since))
        for event in events:
            if event["seq"] < since:
                continue
            line = json.dumps(event, sort_keys=True) + "\n"
            try:
                self.wfile.write(line.encode("utf-8"))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return
        self.close_connection = True


class ServiceServer:
    """The serving process: broker + threaded HTTP listener.

    ``port=0`` binds an ephemeral port (the resolved one is in
    :attr:`port` after construction) — the form every test and the
    check.sh service stage use, so nothing collides in CI.
    """

    def __init__(
        self,
        broker: Optional[Broker] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        max_wait: float = 300.0,
        **broker_kwargs: Any,
    ):
        self.broker = broker or Broker(**broker_kwargs)
        self.verbose = verbose
        #: Server-side cap on one ``?wait=`` long-poll (clients re-poll).
        self.max_wait = max_wait
        self._httpd = _Server((host, port), _Handler)
        self._httpd.service = self  # type: ignore[attr-defined]
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ServiceServer":
        """Serve on a background thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until shutdown is requested."""
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.stop()

    def request_shutdown(self, drain: bool = False) -> None:
        """Asynchronous graceful stop (the ``POST /v1/shutdown`` path and
        the CLI's SIGTERM handler): the listener winds down off-thread so
        the triggering request can still be answered.  ``drain=True``
        lets the broker finish (or journal-park) admitted work first."""
        threading.Thread(
            target=self.stop, kwargs={"drain": drain}, daemon=True
        ).start()

    def stop(self, drain: bool = False) -> None:
        """Stop listening, drain the broker, join the workers."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        # Admission stops before the listener does: an in-flight submit
        # that beats the socket teardown gets a structured 503 instead
        # of a connection reset.
        self.broker._stopping = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self.broker.shutdown(wait=True, drain=drain)
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<service server {self.url} {self.broker!r}>"
