"""Stdlib (urllib) client for the partitioning service.

:class:`ServiceClient` is what ``repro submit``, the load-test harness
and the service tests speak; it mirrors the HTTP surface one method per
route and converts ``{"error": ...}`` envelopes back into
:class:`~repro.service.broker.ServiceError` — callers see the same
exception type on both sides of the wire.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

from .broker import ServiceError


class ServiceClient:
    """Thin blocking client for one service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout or self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._as_service_error(exc) from None

    @staticmethod
    def _as_service_error(exc: urllib.error.HTTPError) -> ServiceError:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            error = payload["error"]
            return ServiceError(
                exc.code, error["code"], error["message"],
                fields=tuple(error.get("fields", ())),
            )
        except Exception:  # noqa: BLE001 - non-JSON error body
            return ServiceError(exc.code, "http_error", str(exc))

    # -- routes ----------------------------------------------------------------

    def submit(
        self,
        source: Optional[str] = None,
        bench: Optional[str] = None,
        name: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        tenant: str = "default",
        priority: int = 0,
    ) -> Dict[str, Any]:
        """POST one job; returns the job descriptor (``coalesced_onto``
        tells whether it folded onto an in-flight duplicate)."""
        body: Dict[str, Any] = {"tenant": tenant, "priority": priority}
        if source is not None:
            body["source"] = source
        if bench is not None:
            body["bench"] = bench
        if name is not None:
            body["name"] = name
        if config is not None:
            body["config"] = config
        return self._request("POST", "/v1/jobs", body)

    def job(self, job_id: str, wait: float = 0.0) -> Dict[str, Any]:
        suffix = f"?wait={wait:g}" if wait > 0 else ""
        return self._request(
            "GET", f"/v1/jobs/{job_id}{suffix}",
            timeout=max(self.timeout, wait + 10.0),
        )

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def events(
        self, job_id: str, follow: bool = False, since: int = 0,
        timeout: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's NDJSON events (blocking when ``follow``)."""
        timeout = self.timeout if timeout is None else timeout
        query = f"?since={since}"
        if follow:
            query += f"&follow=1&timeout={timeout:g}"
        request = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/events{query}",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout + 10.0
            ) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._as_service_error(exc) from None

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns the final descriptor."""
        from .jobs import TERMINAL_STATES

        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            descriptor = self.job(
                job_id, wait=max(0.0, min(remaining, 30.0))
            )
            if descriptor["state"] in TERMINAL_STATES:
                return descriptor
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {descriptor['state']} after "
                    f"{timeout:g}s"
                )

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel", {})

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/v1/shutdown", {})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<service client {self.base_url}>"
