"""Stdlib (urllib) client for the partitioning service.

:class:`ServiceClient` is what ``repro submit``, the load-test harness
and the service tests speak; it mirrors the HTTP surface one method per
route and converts ``{"error": ...}`` envelopes back into
:class:`~repro.service.broker.ServiceError` — callers see the same
exception type on both sides of the wire.

Two client-side robustness contracts live here:

* **Fail fast** — every request carries a finite socket timeout (urllib
  would otherwise block forever on a hung server), and the ``wait``
  long-poll is chunked into ``poll_cap``-second legs so a stalled
  connection surfaces as an error within one leg, not never.
* **Backpressure** — a 429 from the broker's admission control is not an
  error but a "later, please": the client retries with jittered
  exponential backoff, honouring the server's ``Retry-After`` as the
  delay floor, until the ``retry_budget`` (total seconds of backoff) is
  spent — at which point the 429 propagates to the caller.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

from .broker import ServiceError


class ServiceClient:
    """Thin blocking client for one service base URL.

    ``timeout`` is the per-request socket timeout (must be finite —
    hanging forever is the failure mode this client exists to avoid);
    ``retry_budget``/``backoff_base``/``backoff_cap`` shape the 429
    retry loop; ``poll_cap`` bounds one ``wait`` long-poll leg.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry_budget: float = 60.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        poll_cap: float = 30.0,
    ):
        if timeout is None or timeout <= 0:
            raise ValueError("timeout must be a positive number of seconds")
        if poll_cap <= 0:
            raise ValueError("poll_cap must be > 0")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry_budget = retry_budget
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.poll_cap = poll_cap
        #: 429-backoff retries performed (telemetry; the load test
        #: asserts backpressure was actually exercised through here).
        self.retries = 0

    # -- transport -------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One request, with the 429 backoff loop wrapped around it."""
        budget = self.retry_budget
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body, timeout)
            except ServiceError as exc:
                if exc.status != 429:
                    raise
                delay = min(
                    self.backoff_cap, self.backoff_base * (2 ** attempt)
                )
                # Full jitter (0.5x-1.5x) decorrelates a thundering herd
                # of retrying clients; Retry-After is the floor.
                delay *= 0.5 + random.random()
                if exc.retry_after is not None:
                    delay = max(delay, exc.retry_after)
                if delay > budget:
                    raise
                budget -= delay
                attempt += 1
                self.retries += 1
                time.sleep(delay)

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout or self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._as_service_error(exc) from None

    @staticmethod
    def _as_service_error(exc: urllib.error.HTTPError) -> ServiceError:
        retry_after: Optional[float] = None
        try:
            raw = exc.headers.get("Retry-After") if exc.headers else None
            if raw is not None:
                retry_after = float(raw)
        except (TypeError, ValueError):
            retry_after = None
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            error = payload["error"]
            if "retry_after" in error:
                # The body carries the broker's exact float; the header
                # is the same value ceiled to whole seconds (HTTP spec).
                retry_after = float(error["retry_after"])
            return ServiceError(
                exc.code, error["code"], error["message"],
                fields=tuple(error.get("fields", ())),
                retry_after=retry_after,
            )
        except ServiceError:
            raise
        except Exception:  # noqa: BLE001 - non-JSON error body
            return ServiceError(
                exc.code, "http_error", str(exc), retry_after=retry_after
            )

    # -- routes ----------------------------------------------------------------

    def submit(
        self,
        source: Optional[str] = None,
        bench: Optional[str] = None,
        name: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        tenant: str = "default",
        priority: int = 0,
    ) -> Dict[str, Any]:
        """POST one job; returns the job descriptor (``coalesced_onto``
        tells whether it folded onto an in-flight duplicate).  A 429
        rejection is retried with backoff (see class docstring) — safe
        because submission is idempotent under coalescing."""
        body: Dict[str, Any] = {"tenant": tenant, "priority": priority}
        if source is not None:
            body["source"] = source
        if bench is not None:
            body["bench"] = bench
        if name is not None:
            body["name"] = name
        if config is not None:
            body["config"] = config
        return self._request("POST", "/v1/jobs", body)

    def job(self, job_id: str, wait: float = 0.0) -> Dict[str, Any]:
        suffix = f"?wait={wait:g}" if wait > 0 else ""
        return self._request(
            "GET", f"/v1/jobs/{job_id}{suffix}",
            timeout=self.timeout + wait,
        )

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def events(
        self, job_id: str, follow: bool = False, since: int = 0,
        timeout: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's NDJSON events (blocking when ``follow``)."""
        timeout = self.timeout if timeout is None else timeout
        query = f"?since={since}"
        if follow:
            query += f"&follow=1&timeout={timeout:g}"
        request = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/events{query}",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout + 10.0
            ) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._as_service_error(exc) from None

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns the final descriptor.

        Each long-poll leg is capped at :attr:`poll_cap` seconds, so a
        wedged connection costs one leg, never the whole timeout."""
        from .jobs import TERMINAL_STATES

        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            descriptor = self.job(
                job_id, wait=max(0.0, min(remaining, self.poll_cap))
            )
            if descriptor["state"] in TERMINAL_STATES:
                return descriptor
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {descriptor['state']} after "
                    f"{timeout:g}s"
                )

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel", {})

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def shutdown(self, drain: bool = False) -> Dict[str, Any]:
        suffix = "?drain=1" if drain else ""
        return self._request("POST", f"/v1/shutdown{suffix}", {})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<service client {self.base_url}>"
