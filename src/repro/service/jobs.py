"""Job model for the partitioning service.

A :class:`Job` is one admitted unit of work: a MiniC program (inline
source or a registry benchmark) plus the :class:`~repro.exec.RunConfig`
describing how to partition it.  Jobs move through the state machine

    queued -> running -> done | degraded | failed | cancelled

where ``degraded`` is a *terminal* state — the job completed, but the
resilience ladder (or the profiler rung) fell back along the way — and a
``running`` job that loses its worker transitions back to ``queued``
(a requeue) until the requeue budget is spent.

Every transition appends an ordered :func:`Job.record` event; the event
list *is* the job's NDJSON stream (``GET /v1/jobs/{id}/events``).  Event
payloads carry wall clocks, worker ids and the job id for observability;
:func:`scrub_events` strips exactly those fields — the same way
RunReport wall clocks are scrubbed — leaving a byte-stable lifecycle
that goldens can pin.

Coalescing identity: :func:`job_key` hashes the program content together
with every *result-affecting* RunConfig field (execution-only knobs —
``jobs``, ``cache``, ``cache_dir`` — are excluded, since the server owns
those).  Two submissions with equal keys are the same work; the broker
folds the second onto the first while it is in flight.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Optional

from ..exec.cache import canonical_key, content_sha
from ..exec.runconfig import RunConfig

#: Job states, in lifecycle order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
DEGRADED = "degraded"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, DONE, DEGRADED, FAILED, CANCELLED)

#: States a job never leaves.
TERMINAL_STATES = frozenset((DONE, DEGRADED, FAILED, CANCELLED))

#: RunConfig fields that change only *how* a result is obtained, never
#: the result itself; excluded from the coalescing key so e.g. two
#: clients disagreeing about ``jobs`` still share one execution.
_EXECUTION_ONLY_FIELDS = ("jobs", "cache", "cache_dir")

#: Fields :func:`scrub_events` zeroes (wall clocks) or masks (identity),
#: mirroring the RunReport deterministic serialisation contract.
_SCRUB_ZERO = ("ts", "queue_wait", "seconds")
_SCRUB_MASK = ("job", "worker")
_SCRUBBED = "-"


def job_key(bench: str, source: str, config: RunConfig) -> str:
    """Content hash identifying one unit of service work.

    ``bench`` is the display/registry name (it names the prepared-program
    artifact, so it is result-relevant); ``source`` the resolved MiniC
    text; ``config`` contributes every field except the execution-only
    ones.  Equal keys <=> identical results, which is what licenses both
    request coalescing and the artifact-cache fast path.
    """
    material: Dict[str, Any] = {
        "kind": "job",
        "bench": bench,
        "source_sha": content_sha(source),
        "config": {
            k: v for k, v in config.to_dict().items()
            if k not in _EXECUTION_ONLY_FIELDS
        },
    }
    return canonical_key(material)


def scrub_events(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Deterministic projection of an event stream.

    Job ids, worker ids, timestamps and queue-wait clocks are execution
    artifacts — two byte-identical runs of the same job differ only in
    them — so they are masked/zeroed exactly like RunReport wall clocks,
    leaving the seed-determined lifecycle the goldens pin.
    """
    scrubbed = []
    for event in events:
        copy = dict(event)
        for key in _SCRUB_ZERO:
            if key in copy:
                copy[key] = 0.0
        for key in _SCRUB_MASK:
            if key in copy:
                copy[key] = _SCRUBBED
        scrubbed.append(copy)
    return scrubbed


class Job:
    """One admitted submission and its full lifecycle.

    Thread-safety: every mutation happens under ``_cond`` (the broker and
    its workers share job instances); readers either take the lock or
    read immutable snapshots (:meth:`snapshot_events`, :meth:`to_dict`).
    """

    def __init__(
        self,
        job_id: str,
        key: str,
        bench: str,
        source: str,
        config: RunConfig,
        tenant: str = "default",
        priority: int = 0,
        clock=None,
    ):
        import time

        self.id = job_id
        self.key = key
        self.bench = bench
        self.source = source
        self.config = config
        self.tenant = tenant
        self.priority = priority
        self.state = QUEUED
        self.attempt = 1
        self.requeues = 0
        self.coalesced = 0
        self.warm = False
        self.recovered = False
        self.result: Optional[Dict[str, Any]] = None
        #: Terminal summary restored from the journal (a recovered job
        #: has no in-memory engine cell; :meth:`result_summary` falls
        #: back to this).
        self.summary_override: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.events: List[Dict[str, Any]] = []
        self._seq = 0
        self._cond = threading.Condition()
        self._clock = clock or time.perf_counter
        self.created = self._clock()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # -- state & events --------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def record(self, kind: str, state: Optional[str] = None, **fields: Any) -> None:
        """Append one lifecycle event (and apply the state transition, if
        any) under the job lock; wakes every event-stream follower."""
        with self._cond:
            if state is not None:
                self.state = state
            event: Dict[str, Any] = {
                "seq": self._seq,
                "ts": self._clock() - self.created,
                "job": self.id,
                "kind": kind,
                "state": self.state,
            }
            event.update(fields)
            self._seq += 1
            self.events.append(event)
            self._cond.notify_all()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (True) or the
        timeout expires (False)."""
        with self._cond:
            return self._cond.wait_for(lambda: self.terminal, timeout=timeout)

    def snapshot_events(self, since: int = 0) -> List[Dict[str, Any]]:
        """Copy of the events with ``seq >= since`` (stable, lock-held)."""
        with self._cond:
            return [dict(e) for e in self.events if e["seq"] >= since]

    def follow_events(
        self, timeout: Optional[float] = None, poll: float = 0.5
    ) -> Iterator[Dict[str, Any]]:
        """Yield events in order, blocking for new ones until the job is
        terminal (the NDJSON ``?follow=1`` stream).  ``timeout`` bounds
        the whole follow, not each event."""
        deadline = None if timeout is None else self._clock() + timeout
        seq = 0
        while True:
            batch = self.snapshot_events(since=seq)
            for event in batch:
                seq = event["seq"] + 1
                yield event
            with self._cond:
                if self.terminal and self._seq <= seq:
                    return
                if deadline is not None and self._clock() >= deadline:
                    return
                self._cond.wait(timeout=poll)

    # -- serialisation ---------------------------------------------------------

    def result_summary(self) -> Optional[Dict[str, Any]]:
        """The deterministic projection of the engine cell this job ran
        as (None until terminal): the fields the byte-identity acceptance
        compares against serial execution."""
        if self.result is None:
            return self.summary_override
        cell = self.result
        return {
            "bench": cell["bench"],
            "scheme": cell["scheme"],
            "latency": cell["latency"],
            "pointsto_tier": cell["pointsto_tier"],
            "seed": cell["seed"],
            "machine": cell["machine"],
            "status": cell["status"],
            "ran_as": cell["ran_as"],
            "cycles": cell["cycles"],
            "dynamic_moves": cell["dynamic_moves"],
            "roofline_ratio": cell.get("roofline_ratio"),
            "error": cell["error"],
        }

    def to_dict(self, include_events: bool = False) -> Dict[str, Any]:
        """JSON descriptor for ``GET /v1/jobs/{id}`` and submit replies."""
        with self._cond:
            data: Dict[str, Any] = {
                "id": self.id,
                "key": self.key,
                "bench": self.bench,
                "tenant": self.tenant,
                "priority": self.priority,
                "state": self.state,
                "attempt": self.attempt,
                "requeues": self.requeues,
                "coalesced": self.coalesced,
                "warm": self.warm,
                "recovered": self.recovered,
                "config": self.config.to_dict(),
                "error": self.error,
                "result": self.result_summary(),
            }
            if self.result is not None:
                data["resilience"] = self.result["report"]["summary"]
                data["cache"] = dict(self.result["cache"])
            if include_events:
                data["events"] = [dict(e) for e in self.events]
            return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<job {self.id} [{self.state}] {self.bench}/"
            f"{self.config.scheme} tenant={self.tenant}>"
        )
