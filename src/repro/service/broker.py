"""The job broker: admission control, coalescing, supervised execution.

One :class:`Broker` owns the whole serving data path:

* **Admission** — :meth:`submit` validates the request at the boundary
  (strict :class:`~repro.exec.RunConfig` parse; unknown fields and
  schema mismatches become structured 400s carrying the offending
  field), resolves the program (inline ``source`` or a registry
  ``bench``), and computes the job's content key.
* **Coalescing** — a submission whose key matches a queued/running job
  is folded onto it: no new work enters the queue, the existing job's
  ``coalesced`` count rises, and the caller gets the same job id back.
  Together with the artifact cache (which answers *completed* duplicates
  across restarts and tenants) this dedupes identical requests at both
  timescales.
* **Execution** — a supervised pool of worker threads drains the
  :class:`~repro.service.queue.FairQueue`.  Each job runs through the
  execution engine's cell runner, i.e. under the full resilience ladder:
  a faulted scheme degrades rung by rung instead of failing the job, and
  a *crashed worker* (anything escaping the cell runner, including an
  injected ``raise:worker`` fault) is caught by the supervisor, which
  requeues the job — up to ``max_requeues`` — and keeps serving.  The
  server never dies with a job.
* **Observability** — every transition lands in the job's event stream;
  :meth:`stats` aggregates queue depth, per-state job counts, coalesce
  and warm-cache rates, and the artifact cache's own counters.

Workers are *threads*, deliberately: a job is one deterministic engine
cell, and CPU-level parallelism across cells already lives in
:class:`~repro.exec.ParallelRunner`.  Serving throughput comes from
coalescing + the content-addressed cache, which turn duplicate traffic
into O(1) lookups — the measured property in
``benchmarks/bench_service_throughput.py``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..exec.cache import ArtifactCache
from ..exec.engine import lookup_cached_outcome, run_cell
from ..exec.runconfig import RunConfig, RunConfigError
from ..resilience.report import outcome_state_from_final
from .jobs import (
    CANCELLED,
    DEGRADED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    job_key,
)
from .queue import FairQueue


class ServiceError(Exception):
    """A request the service refuses, mapped to an HTTP status.

    ``code`` is a stable machine-readable slug; ``fields`` names the
    offending request/config keys (may be empty).  The HTTP layer
    serialises this as ``{"error": {code, message, fields}}`` — a
    malformed RunConfig is a structured 400, never a 500 traceback.
    """

    def __init__(
        self, status: int, code: str, message: str, fields: tuple = ()
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.fields = tuple(fields)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "error": {
                "code": self.code,
                "message": str(self),
                "fields": list(self.fields),
            }
        }


#: Request keys :meth:`Broker.submit` understands; anything else is a 400
#: (the same strictness RunConfig applies one level down).
_REQUEST_FIELDS = frozenset(
    ("bench", "source", "name", "config", "tenant", "priority")
)


class Broker:
    """Queue + job table + supervised worker pool (see module docstring).

    Parameters
    ----------
    config:
        Server-side base config.  Its ``cache``/``cache_dir`` govern the
        shared artifact store; submissions may not override them (the
        server owns its disk).
    workers:
        Worker thread count.  ``start=False`` builds the broker without
        starting them (tests drive execution manually).
    quota:
        Per-tenant in-flight cap (admission control), None = unbounded.
    max_requeues:
        How many times a job survives losing its worker before it is
        failed.
    """

    def __init__(
        self,
        config: Optional[RunConfig] = None,
        workers: int = 2,
        quota: Optional[int] = None,
        max_requeues: int = 1,
        start: bool = True,
        clock=time.perf_counter,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_requeues < 0:
            raise ValueError("max_requeues must be >= 0")
        self.config = config or RunConfig()
        self.max_requeues = max_requeues
        self.queue = FairQueue(quota=quota)
        self.cache = ArtifactCache(self.config.cache_dir, self.config.cache)
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}  # key -> queued/running job
        self._next_id = 0
        self._stopping = False
        self.started = clock()
        # counters (under _lock)
        self.submitted = 0
        self.coalesced = 0
        self.completed = 0
        self.requeued = 0
        self.worker_crashes = 0
        self.warm_submissions = 0
        self.warm_outcomes = 0
        self._worker_count = workers
        self._workers: List[threading.Thread] = []
        if start:
            self.start()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Start the worker pool (idempotent)."""
        with self._lock:
            missing = self._worker_count - len(
                [t for t in self._workers if t.is_alive()]
            )
            for _ in range(max(0, missing)):
                index = len(self._workers)
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(f"w{index}",),
                    name=f"repro-service-worker-{index}",
                    daemon=True,
                )
                self._workers.append(thread)
                thread.start()

    def shutdown(self, wait: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting work, close the queue, join the workers."""
        self._stopping = True
        self.queue.close()
        if wait:
            deadline = self._clock() + timeout
            for thread in self._workers:
                remaining = max(0.0, deadline - self._clock())
                thread.join(timeout=remaining)

    # -- admission -------------------------------------------------------------

    def _parse_config(self, data: Any) -> RunConfig:
        if data is None:
            data = {}
        try:
            config = RunConfig.from_dict(data)
        except RunConfigError as exc:
            raise ServiceError(
                400, "invalid_config", str(exc), fields=exc.fields
            ) from None
        except ValueError as exc:
            raise ServiceError(400, "invalid_config", str(exc)) from None
        # The server owns the shared store and the worker pool; a job is
        # one cell, so client-side parallelism/cache knobs are stripped
        # before the config reaches the engine (and the coalescing key
        # already ignores them).
        return config.replace(
            jobs=None, cache=self.config.cache,
            cache_dir=self.config.cache_dir,
        )

    def _resolve_program(self, request: Dict[str, Any]) -> Tuple[str, str]:
        source = request.get("source")
        bench = request.get("bench")
        if source is not None and bench is not None:
            raise ServiceError(
                400, "invalid_request",
                "pass either 'source' or 'bench', not both",
                fields=("source", "bench"),
            )
        if source is not None:
            if not isinstance(source, str) or not source.strip():
                raise ServiceError(
                    400, "invalid_request", "'source' must be MiniC text",
                    fields=("source",),
                )
            return str(request.get("name", "program")), source
        if bench is not None:
            from ..bench import get as get_benchmark

            try:
                found = get_benchmark(bench)
            except KeyError:
                raise ServiceError(
                    404, "unknown_bench",
                    f"no benchmark named {bench!r} in the registry",
                    fields=("bench",),
                ) from None
            return found.name, found.source
        raise ServiceError(
            400, "invalid_request",
            "a job needs a 'source' program or a 'bench' name",
            fields=("source", "bench"),
        )

    def submit(self, request: Any) -> Tuple[Job, bool]:
        """Admit one request; returns ``(job, created)``.

        ``created=False`` means the request coalesced onto an in-flight
        job with the same content key (the returned job is that one).
        """
        if self._stopping:
            raise ServiceError(
                503, "shutting_down", "server is shutting down"
            )
        if not isinstance(request, dict):
            raise ServiceError(
                400, "invalid_request", "request body must be a JSON object"
            )
        unknown = sorted(set(request) - _REQUEST_FIELDS)
        if unknown:
            raise ServiceError(
                400, "invalid_request",
                f"unknown request field(s) {unknown}",
                fields=tuple(unknown),
            )
        tenant = str(request.get("tenant", "default"))
        priority = request.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ServiceError(
                400, "invalid_request", "'priority' must be an integer",
                fields=("priority",),
            )
        config = self._parse_config(request.get("config"))
        name, source = self._resolve_program(request)
        key = job_key(name, source, config)
        with self._lock:
            self.submitted += 1
            existing = self._inflight.get(key)
            if existing is not None and not existing.terminal:
                existing.coalesced += 1
                self.coalesced += 1
                existing.record("coalesced", tenant=tenant)
                return existing, False
            self._next_id += 1
            job = Job(
                f"j{self._next_id:06d}", key, name, source, config,
                tenant=tenant, priority=priority, clock=self._clock,
            )
            self._jobs[job.id] = job
            self._inflight[key] = job
        # Warm probe outside the broker lock (it touches the disk store):
        # purely telemetry — the worker's cell runner re-resolves it.
        probe = ArtifactCache(self.config.cache_dir, "readonly")
        job.warm = (
            lookup_cached_outcome(source, name, config, probe) is not None
        )
        if job.warm:
            with self._lock:
                self.warm_submissions += 1
        job.record("queued", state=QUEUED, tenant=tenant,
                   priority=priority, warm=job.warm)
        self.queue.push(job)
        return job, True

    # -- lookup ----------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(
                404, "unknown_job", f"no job {job_id!r}", fields=("id",)
            )
        return job

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[k] for k in sorted(self._jobs)]

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (running/terminal jobs are not
        cancellable — the resilience ladder owns a running cell)."""
        job = self.get(job_id)
        if not self.queue.cancel(job):
            raise ServiceError(
                409, "not_cancellable",
                f"job {job_id} is {job.state}; only queued jobs can be "
                f"cancelled",
            )
        with self._lock:
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]
        return job

    # -- execution -------------------------------------------------------------

    def _worker_loop(self, worker_id: str) -> None:
        while not self._stopping:
            job = self.queue.pop(timeout=0.2)
            if job is None:
                continue
            try:
                self._execute(job, worker_id)
            finally:
                self.queue.task_done(job)

    def _execute(self, job: Job, worker_id: str) -> None:
        with job._cond:
            if job.state == CANCELLED:
                return
        job.started_at = self._clock()
        job.record(
            "started", state=RUNNING, worker=worker_id, attempt=job.attempt,
            queue_wait=job.started_at - job.created,
        )
        try:
            # The worker itself is a fault-injection phase: a
            # ``raise:worker[@attempt]`` clause models this worker dying
            # mid-job.  The supervisor below is what turns that into a
            # requeue instead of a dead server.  Only clauses naming the
            # ``worker`` phase *explicitly* fire here — ``raise:*`` keeps
            # meaning "fault every ladder rung", not "kill the worker".
            self._maybe_crash(job)
            cell = run_cell(
                {
                    "bench": job.bench,
                    "source": job.source,
                    "config": job.config.to_dict(),
                },
                cache=self.cache,
            )
        except Exception as exc:  # noqa: BLE001 - supervision boundary
            self._supervise_crash(job, worker_id, exc)
            return
        self._finish(job, cell)

    @staticmethod
    def _maybe_crash(job: Job) -> None:
        faults = job.config.build_faults()
        if faults is None:
            return
        worker_clauses = [
            c for c in faults.clauses
            if c.kind == "raise" and c.phase == "worker"
        ]
        if not worker_clauses:
            return
        from ..resilience import FaultPlan

        plan = FaultPlan(worker_clauses, seed=faults.seed)
        plan.begin_attempt("worker", job.attempt)
        plan.maybe_raise("worker")

    def _supervise_crash(self, job: Job, worker_id: str, exc: Exception) -> None:
        """A worker died under ``job``: requeue or fail, never propagate."""
        detail = f"{type(exc).__name__}: {exc}"
        with self._lock:
            self.worker_crashes += 1
        job.record("worker-crash", worker=worker_id, attempt=job.attempt,
                   error=detail)
        if job.requeues < self.max_requeues:
            job.requeues += 1
            job.attempt += 1
            with self._lock:
                self.requeued += 1
            job.record("requeued", state=QUEUED, attempt=job.attempt)
            self.queue.push(job)
            return
        job.error = detail
        self._terminal(job, FAILED, error=detail,
                       requeues=job.requeues)

    def _finish(self, job: Job, cell: Dict[str, Any]) -> None:
        """Map a finished engine cell onto the job's terminal state."""
        job.result = cell
        with self._lock:
            if cell["cache"].get("outcome") == "hit":
                self.warm_outcomes += 1
        ladder_state = outcome_state_from_final(
            cell["report"].get("final")
        )
        if cell["status"] == "failed" or ladder_state == "failed":
            job.error = cell["error"]
            self._terminal(job, FAILED, error=cell["error"],
                           requeues=job.requeues)
            return
        if cell["status"] == "degraded" or ladder_state == "degraded":
            job.record("degraded", ran_as=cell["ran_as"],
                       requested=cell["scheme"])
            final = DEGRADED
        else:
            final = DONE
        self._terminal(
            job, final,
            ran_as=cell["ran_as"], cycles=cell["cycles"],
            dynamic_moves=cell["dynamic_moves"],
            requeues=job.requeues, coalesced=job.coalesced,
        )

    def _terminal(self, job: Job, state: str, **fields: Any) -> None:
        job.finished_at = self._clock()
        with self._lock:
            self.completed += 1
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]
        job.record("finished", state=state, **fields)

    # -- observability ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``/v1/stats`` payload: machine-readable counters only."""
        with self._lock:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            submitted = self.submitted
            coalesced = self.coalesced
            jobs = {
                "submitted": submitted,
                "created": len(self._jobs),
                "coalesced": coalesced,
                "completed": self.completed,
                "requeued": self.requeued,
                "worker_crashes": self.worker_crashes,
                "by_state": dict(sorted(by_state.items())),
            }
            warm = {
                "submissions": self.warm_submissions,
                "outcome_hits": self.warm_outcomes,
            }
            alive = sum(1 for t in self._workers if t.is_alive())
        return {
            "uptime_seconds": self._clock() - self.started,
            "jobs": jobs,
            "coalesce_ratio": (coalesced / submitted) if submitted else 0.0,
            "warm": warm,
            "queue": self.queue.stats(),
            "workers": {"pool": self._worker_count, "alive": alive},
            "cache": self.cache.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<broker {len(self._jobs)} job(s), "
            f"queue depth {self.queue.depth()}, "
            f"{self._worker_count} worker(s)>"
        )
