"""The job broker: admission control, coalescing, supervised execution.

One :class:`Broker` owns the whole serving data path:

* **Admission** — :meth:`submit` validates the request at the boundary
  (strict :class:`~repro.exec.RunConfig` parse; unknown fields and
  schema mismatches become structured 400s carrying the offending
  field), resolves the program (inline ``source`` or a registry
  ``bench``), and computes the job's content key.
* **Coalescing** — a submission whose key matches a queued/running job
  is folded onto it: no new work enters the queue, the existing job's
  ``coalesced`` count rises, and the caller gets the same job id back.
  Together with the artifact cache (which answers *completed* duplicates
  across restarts and tenants) this dedupes identical requests at both
  timescales.
* **Execution** — a supervised pool of worker threads drains the
  :class:`~repro.service.queue.FairQueue`.  Each job runs through the
  execution engine's cell runner, i.e. under the full resilience ladder:
  a faulted scheme degrades rung by rung instead of failing the job, and
  a *crashed worker* (anything escaping the cell runner, including an
  injected ``raise:worker`` fault) is caught by the supervisor, which
  requeues the job — up to ``max_requeues`` — and keeps serving.  The
  server never dies with a job.
* **Observability** — every transition lands in the job's event stream;
  :meth:`stats` aggregates queue depth, per-state job counts, coalesce
  and warm-cache rates, and the artifact cache's own counters.
* **Durability** — with a :class:`~repro.service.journal.Journal`
  attached, every transition is write-ahead logged *before* it is
  acknowledged, a fresh broker on the same directory recovers the job
  table (requeueing whatever a crash interrupted, served warm from the
  artifact cache when the outcome already landed), shutdown can *drain*
  (finish or park in-flight work), and bounded queue depth / per-tenant
  admission return 429 + ``Retry-After`` instead of accepting without
  bound.  See :mod:`~repro.service.journal` and DESIGN.md §11.

Workers are *threads*, deliberately: a job is one deterministic engine
cell, and CPU-level parallelism across cells already lives in
:class:`~repro.exec.ParallelRunner`.  Serving throughput comes from
coalescing + the content-addressed cache, which turn duplicate traffic
into O(1) lookups — the measured property in
``benchmarks/bench_service_throughput.py``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..exec.cache import ArtifactCache
from ..exec.engine import lookup_cached_outcome, run_cell
from ..exec.runconfig import RunConfig, RunConfigError
from ..resilience.report import outcome_state_from_final
from .jobs import (
    CANCELLED,
    DEGRADED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    job_key,
)
from .journal import Journal, JournalState
from .queue import FairQueue


class ServiceError(Exception):
    """A request the service refuses, mapped to an HTTP status.

    ``code`` is a stable machine-readable slug; ``fields`` names the
    offending request/config keys (may be empty).  The HTTP layer
    serialises this as ``{"error": {code, message, fields}}`` — a
    malformed RunConfig is a structured 400, never a 500 traceback.

    ``retry_after`` (seconds) rides along on backpressure rejections
    (429): the HTTP layer turns it into a ``Retry-After`` header and
    :class:`~repro.service.client.ServiceClient` honours it as the
    floor of its backoff delay.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        fields: tuple = (),
        retry_after: Optional[float] = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.fields = tuple(fields)
        self.retry_after = retry_after

    def to_dict(self) -> Dict[str, Any]:
        error: Dict[str, Any] = {
            "code": self.code,
            "message": str(self),
            "fields": list(self.fields),
        }
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        return {"error": error}


#: Request keys :meth:`Broker.submit` understands; anything else is a 400
#: (the same strictness RunConfig applies one level down).
_REQUEST_FIELDS = frozenset(
    ("bench", "source", "name", "config", "tenant", "priority")
)


class Broker:
    """Queue + job table + supervised worker pool (see module docstring).

    Parameters
    ----------
    config:
        Server-side base config.  Its ``cache``/``cache_dir`` govern the
        shared artifact store; submissions may not override them (the
        server owns its disk).
    workers:
        Worker thread count.  ``start=False`` builds the broker without
        starting them (tests drive execution manually).
    quota:
        Per-tenant in-flight cap (admission control), None = unbounded.
    max_requeues:
        How many times a job survives losing its worker before it is
        failed.
    journal / journal_dir:
        An explicit :class:`~repro.service.journal.Journal`, or a
        directory to open one in (``fsync`` selects its policy).  With
        either, every lifecycle transition is write-ahead logged and a
        fresh broker on the same directory *recovers*: terminal jobs are
        restored as history, queued/running ones are requeued (served
        warm from the artifact cache when their outcome already landed).
    max_depth:
        Queue-depth admission bound: a submission that would push the
        backlog past it is refused with 429 + ``Retry-After``
        (coalescing duplicates always pass — they add no work).
    tenant_pending:
        Per-tenant bound on *non-terminal* jobs, same 429 contract.
    retry_after:
        The hint (seconds) sent with backpressure rejections.
    """

    def __init__(
        self,
        config: Optional[RunConfig] = None,
        workers: int = 2,
        quota: Optional[int] = None,
        max_requeues: int = 1,
        start: bool = True,
        clock=time.perf_counter,
        journal: Optional[Journal] = None,
        journal_dir: Optional[str] = None,
        fsync: str = "always",
        max_depth: Optional[int] = None,
        tenant_pending: Optional[int] = None,
        retry_after: float = 1.0,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_requeues < 0:
            raise ValueError("max_requeues must be >= 0")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1 (or None for unbounded)")
        if tenant_pending is not None and tenant_pending < 1:
            raise ValueError(
                "tenant_pending must be >= 1 (or None for unbounded)"
            )
        self.config = config or RunConfig()
        self.max_requeues = max_requeues
        self.max_depth = max_depth
        self.tenant_pending = tenant_pending
        self.retry_after = retry_after
        self.queue = FairQueue(quota=quota)
        self.cache = ArtifactCache(self.config.cache_dir, self.config.cache)
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}  # key -> queued/running job
        self._tenant_pending: Dict[str, int] = {}  # tenant -> non-terminal
        self._next_id = 0
        self._stopping = False   # admission off
        self._halting = False    # workers wind down
        self.started = clock()
        # counters (under _lock)
        self.submitted = 0
        self.coalesced = 0
        self.completed = 0
        self.requeued = 0
        self.worker_crashes = 0
        self.warm_submissions = 0
        self.warm_outcomes = 0
        self.rejected_depth = 0
        self.rejected_tenant = 0
        self.journal_errors = 0
        self.recovered_jobs = 0
        self.recovery_requeued = 0
        self.parked = 0
        self._worker_count = workers
        self._workers: List[threading.Thread] = []
        if journal is None and journal_dir is not None:
            journal = Journal(journal_dir, fsync=fsync)
        self.journal = journal
        if self.journal is not None:
            self._recover(self.journal.load())
            # Fold recovery into a fresh snapshot immediately: restart
            # loops never replay the same log twice.
            self._compact_journal()
        if start:
            self.start()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Start the worker pool (idempotent)."""
        with self._lock:
            missing = self._worker_count - len(
                [t for t in self._workers if t.is_alive()]
            )
            for _ in range(max(0, missing)):
                index = len(self._workers)
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(f"w{index}",),
                    name=f"repro-service-worker-{index}",
                    daemon=True,
                )
                self._workers.append(thread)
                thread.start()

    def shutdown(
        self, wait: bool = True, timeout: float = 30.0, drain: bool = False
    ) -> None:
        """Stop accepting work, close the queue, join the workers.

        ``drain=True`` is the graceful path (SIGTERM, ``POST
        /v1/shutdown?drain=1``): admission stops immediately, but the
        workers keep draining already-admitted jobs until the table is
        terminal or ``timeout`` expires.  Whatever is still non-terminal
        then is *parked* — journaled as queued so the next broker on the
        same journal directory requeues it — and the journal is
        compacted and closed.
        """
        self._stopping = True
        deadline = self._clock() + timeout
        if drain:
            while self._clock() < deadline:
                with self._lock:
                    busy = any(
                        not job.terminal for job in self._jobs.values()
                    )
                if not busy:
                    break
                time.sleep(0.05)
        self._halting = True
        self.queue.close()
        if wait:
            for thread in self._workers:
                remaining = max(0.05, deadline - self._clock())
                thread.join(timeout=remaining)
        with self._lock:
            leftovers = [
                job for job in self._jobs.values() if not job.terminal
            ]
            self.parked += len(leftovers)
        for job in leftovers:
            job.record("parked", state=QUEUED)
            self._journal_append("park", job=job.id)
        if self.journal is not None:
            self._compact_journal()
            self.journal.close()

    # -- durability ------------------------------------------------------------

    def _journal_append(self, kind: str, **fields: Any) -> None:
        """Write-ahead one transition; a journal failure degrades
        durability, never availability (counted, not raised)."""
        if self.journal is None:
            return
        try:
            self.journal.append(kind, **fields)
        except Exception:  # noqa: BLE001 - durability vs availability
            with self._lock:
                self.journal_errors += 1
            return
        if self.journal.compaction_due:
            self._compact_journal()

    def _job_journal_entry(self, job: Job) -> Dict[str, Any]:
        """Snapshot-entry projection of one job (journal replay shape)."""
        return {
            "job": job.id,
            "key": job.key,
            "bench": job.bench,
            "source": job.source,
            "config": job.config.to_dict(),
            "tenant": job.tenant,
            "priority": job.priority,
            "state": job.state,
            "attempt": job.attempt,
            "requeues": job.requeues,
            "coalesced": job.coalesced,
            "error": job.error,
            "summary": job.result_summary(),
        }

    def _compact_journal(self) -> None:
        if self.journal is None:
            return
        with self._lock:
            jobs = [
                self._job_journal_entry(self._jobs[jid])
                for jid in sorted(self._jobs)
            ]
        try:
            self.journal.compact(jobs)
        except Exception:  # noqa: BLE001 - durability vs availability
            with self._lock:
                self.journal_errors += 1

    def _recover(self, state: JournalState) -> None:
        """Rebuild the job table from a loaded journal.

        Terminal jobs come back as history (their summary answers
        ``GET /v1/jobs/{id}`` without recompute).  Queued/running jobs —
        the ones a crash interrupted — are requeued; the existing
        ``job_key`` dedupe plus the artifact cache make the rerun
        idempotent: work whose outcome landed before the crash is served
        warm, everything else recomputes deterministically.
        """
        probe = ArtifactCache(self.config.cache_dir, "readonly")
        for rec in state.jobs.values():
            try:
                config = RunConfig.from_dict(rec["config"]).replace(
                    jobs=None, cache=self.config.cache,
                    cache_dir=self.config.cache_dir,
                )
                job = Job(
                    rec["job"], rec["key"], rec["bench"], rec["source"],
                    config, tenant=rec.get("tenant", "default"),
                    priority=rec.get("priority", 0), clock=self._clock,
                )
            except Exception:  # noqa: BLE001 - a foreign/corrupt record
                self.journal_errors += 1
                continue
            job.recovered = True
            job.attempt = rec.get("attempt", 1)
            job.requeues = rec.get("requeues", 0)
            job.coalesced = rec.get("coalesced", 0)
            self._jobs[job.id] = job
            self.recovered_jobs += 1
            try:
                self._next_id = max(self._next_id, int(job.id.lstrip("j")))
            except ValueError:
                pass
            if rec["state"] in TERMINAL_STATES:
                job.error = rec.get("error")
                job.summary_override = rec.get("summary")
                job.record("recovered", state=rec["state"],
                           requeues=job.requeues)
                continue
            job.warm = (
                lookup_cached_outcome(
                    job.source, job.bench, config, probe
                ) is not None
            )
            job.record("recovered", state=QUEUED, attempt=job.attempt,
                       warm=job.warm)
            self._inflight[job.key] = job
            self._tenant_pending[job.tenant] = (
                self._tenant_pending.get(job.tenant, 0) + 1
            )
            self.queue.push(job)
            self.recovery_requeued += 1

    # -- admission -------------------------------------------------------------

    def _parse_config(self, data: Any) -> RunConfig:
        if data is None:
            data = {}
        try:
            config = RunConfig.from_dict(data)
        except RunConfigError as exc:
            raise ServiceError(
                400, "invalid_config", str(exc), fields=exc.fields
            ) from None
        except ValueError as exc:
            raise ServiceError(400, "invalid_config", str(exc)) from None
        # The server owns the shared store and the worker pool; a job is
        # one cell, so client-side parallelism/cache knobs are stripped
        # before the config reaches the engine (and the coalescing key
        # already ignores them).
        return config.replace(
            jobs=None, cache=self.config.cache,
            cache_dir=self.config.cache_dir,
        )

    def _resolve_program(self, request: Dict[str, Any]) -> Tuple[str, str]:
        source = request.get("source")
        bench = request.get("bench")
        if source is not None and bench is not None:
            raise ServiceError(
                400, "invalid_request",
                "pass either 'source' or 'bench', not both",
                fields=("source", "bench"),
            )
        if source is not None:
            if not isinstance(source, str) or not source.strip():
                raise ServiceError(
                    400, "invalid_request", "'source' must be MiniC text",
                    fields=("source",),
                )
            return str(request.get("name", "program")), source
        if bench is not None:
            from ..bench import get as get_benchmark

            try:
                found = get_benchmark(bench)
            except KeyError:
                raise ServiceError(
                    404, "unknown_bench",
                    f"no benchmark named {bench!r} in the registry",
                    fields=("bench",),
                ) from None
            return found.name, found.source
        raise ServiceError(
            400, "invalid_request",
            "a job needs a 'source' program or a 'bench' name",
            fields=("source", "bench"),
        )

    def submit(self, request: Any) -> Tuple[Job, bool]:
        """Admit one request; returns ``(job, created)``.

        ``created=False`` means the request coalesced onto an in-flight
        job with the same content key (the returned job is that one).
        """
        if self._stopping:
            raise ServiceError(
                503, "shutting_down", "server is shutting down"
            )
        if not isinstance(request, dict):
            raise ServiceError(
                400, "invalid_request", "request body must be a JSON object"
            )
        unknown = sorted(set(request) - _REQUEST_FIELDS)
        if unknown:
            raise ServiceError(
                400, "invalid_request",
                f"unknown request field(s) {unknown}",
                fields=tuple(unknown),
            )
        tenant = str(request.get("tenant", "default"))
        priority = request.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ServiceError(
                400, "invalid_request", "'priority' must be an integer",
                fields=("priority",),
            )
        config = self._parse_config(request.get("config"))
        name, source = self._resolve_program(request)
        key = job_key(name, source, config)
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None and not existing.terminal:
                # Coalescing bypasses the backpressure checks below: a
                # duplicate adds zero work, so refusing it would only
                # make an overloaded server *more* loaded via retries.
                self.submitted += 1
                existing.coalesced += 1
                self.coalesced += 1
                existing.record("coalesced", tenant=tenant)
                journal_coalesce = existing.id
            else:
                journal_coalesce = None
                if (
                    self.max_depth is not None
                    and self.queue.depth() >= self.max_depth
                ):
                    self.rejected_depth += 1
                    raise ServiceError(
                        429, "overloaded",
                        f"queue depth is at its bound ({self.max_depth}); "
                        f"retry later",
                        retry_after=self.retry_after,
                    )
                if (
                    self.tenant_pending is not None
                    and self._tenant_pending.get(tenant, 0)
                    >= self.tenant_pending
                ):
                    self.rejected_tenant += 1
                    raise ServiceError(
                        429, "tenant_overloaded",
                        f"tenant {tenant!r} has {self.tenant_pending} "
                        f"job(s) pending (its admission bound); retry later",
                        fields=("tenant",),
                        retry_after=self.retry_after,
                    )
                self.submitted += 1
                self._next_id += 1
                job = Job(
                    f"j{self._next_id:06d}", key, name, source, config,
                    tenant=tenant, priority=priority, clock=self._clock,
                )
                self._jobs[job.id] = job
                self._inflight[key] = job
                self._tenant_pending[tenant] = (
                    self._tenant_pending.get(tenant, 0) + 1
                )
        if journal_coalesce is not None:
            self._journal_append("coalesce", job=journal_coalesce)
            return existing, False
        # Write-ahead *before* the ack: under fsync=always a submission
        # the client saw accepted survives any crash from here on.
        self._journal_append(
            "submit", job=job.id, key=key, bench=name, source=source,
            config=config.to_dict(), tenant=tenant, priority=priority,
        )
        # Warm probe outside the broker lock (it touches the disk store):
        # purely telemetry — the worker's cell runner re-resolves it.
        probe = ArtifactCache(self.config.cache_dir, "readonly")
        job.warm = (
            lookup_cached_outcome(source, name, config, probe) is not None
        )
        if job.warm:
            with self._lock:
                self.warm_submissions += 1
        job.record("queued", state=QUEUED, tenant=tenant,
                   priority=priority, warm=job.warm)
        try:
            self.queue.push(job)
        except RuntimeError:
            # Shutdown raced the admission check; the job is journaled
            # and will be recovered, but this caller should back off.
            raise ServiceError(
                503, "shutting_down", "server is shutting down"
            ) from None
        return job, True

    # -- lookup ----------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(
                404, "unknown_job", f"no job {job_id!r}", fields=("id",)
            )
        return job

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[k] for k in sorted(self._jobs)]

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (running/terminal jobs are not
        cancellable — the resilience ladder owns a running cell)."""
        job = self.get(job_id)
        if not self.queue.cancel(job):
            raise ServiceError(
                409, "not_cancellable",
                f"job {job_id} is {job.state}; only queued jobs can be "
                f"cancelled",
            )
        with self._lock:
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]
            self._release_tenant(job.tenant)
        self._journal_append("cancel", job=job.id)
        return job

    # -- execution -------------------------------------------------------------

    def _worker_loop(self, worker_id: str) -> None:
        # Gated on _halting, not _stopping: a draining shutdown stops
        # admission first but keeps the pool running until the backlog
        # is terminal (or the drain deadline parks it).
        while not self._halting:
            job = self.queue.pop(timeout=0.2)
            if job is None:
                continue
            try:
                self._execute(job, worker_id)
            finally:
                self.queue.task_done(job)

    def _execute(self, job: Job, worker_id: str) -> None:
        with job._cond:
            if job.state == CANCELLED:
                return
        job.started_at = self._clock()
        job.record(
            "started", state=RUNNING, worker=worker_id, attempt=job.attempt,
            queue_wait=job.started_at - job.created,
        )
        self._journal_append("start", job=job.id, attempt=job.attempt)
        try:
            # The worker itself is a fault-injection phase: a
            # ``raise:worker[@attempt]`` clause models this worker dying
            # mid-job.  The supervisor below is what turns that into a
            # requeue instead of a dead server.  Only clauses naming the
            # ``worker`` phase *explicitly* fire here — ``raise:*`` keeps
            # meaning "fault every ladder rung", not "kill the worker".
            self._maybe_crash(job)
            cell = run_cell(
                {
                    "bench": job.bench,
                    "source": job.source,
                    "config": job.config.to_dict(),
                },
                cache=self.cache,
            )
        except Exception as exc:  # noqa: BLE001 - supervision boundary
            self._supervise_crash(job, worker_id, exc)
            return
        self._finish(job, cell)

    @staticmethod
    def _maybe_crash(job: Job) -> None:
        faults = job.config.build_faults()
        if faults is None:
            return
        worker_clauses = [
            c for c in faults.clauses
            if c.kind == "raise" and c.phase == "worker"
        ]
        if not worker_clauses:
            return
        from ..resilience import FaultPlan

        plan = FaultPlan(worker_clauses, seed=faults.seed)
        plan.begin_attempt("worker", job.attempt)
        plan.maybe_raise("worker")

    def _supervise_crash(self, job: Job, worker_id: str, exc: Exception) -> None:
        """A worker died under ``job``: requeue or fail, never propagate."""
        detail = f"{type(exc).__name__}: {exc}"
        with self._lock:
            self.worker_crashes += 1
        job.record("worker-crash", worker=worker_id, attempt=job.attempt,
                   error=detail)
        if job.requeues < self.max_requeues:
            job.requeues += 1
            job.attempt += 1
            with self._lock:
                self.requeued += 1
            job.record("requeued", state=QUEUED, attempt=job.attempt)
            self._journal_append("requeue", job=job.id, attempt=job.attempt,
                                 requeues=job.requeues)
            try:
                self.queue.push(job)
            except RuntimeError:
                # Requeue raced shutdown: leave the job queued — the
                # park pass (and the journal) hand it to the next boot.
                pass
            return
        job.error = detail
        self._terminal(job, FAILED, error=detail,
                       requeues=job.requeues)

    def _finish(self, job: Job, cell: Dict[str, Any]) -> None:
        """Map a finished engine cell onto the job's terminal state."""
        job.result = cell
        with self._lock:
            if cell["cache"].get("outcome") == "hit":
                self.warm_outcomes += 1
        ladder_state = outcome_state_from_final(
            cell["report"].get("final")
        )
        if cell["status"] == "failed" or ladder_state == "failed":
            job.error = cell["error"]
            self._terminal(job, FAILED, error=cell["error"],
                           requeues=job.requeues)
            return
        if cell["status"] == "degraded" or ladder_state == "degraded":
            job.record("degraded", ran_as=cell["ran_as"],
                       requested=cell["scheme"])
            final = DEGRADED
        else:
            final = DONE
        self._terminal(
            job, final,
            ran_as=cell["ran_as"], cycles=cell["cycles"],
            dynamic_moves=cell["dynamic_moves"],
            requeues=job.requeues, coalesced=job.coalesced,
        )

    def _terminal(self, job: Job, state: str, **fields: Any) -> None:
        job.finished_at = self._clock()
        with self._lock:
            self.completed += 1
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]
            self._release_tenant(job.tenant)
        job.record("finished", state=state, **fields)
        self._journal_append(
            "finish", job=job.id, state=state, error=job.error,
            summary=job.result_summary(), requeues=job.requeues,
        )

    def _release_tenant(self, tenant: str) -> None:
        """Drop one from the tenant's non-terminal count (lock held)."""
        count = self._tenant_pending.get(tenant, 0) - 1
        if count > 0:
            self._tenant_pending[tenant] = count
        else:
            self._tenant_pending.pop(tenant, None)

    # -- observability ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``/v1/stats`` payload: machine-readable counters only."""
        with self._lock:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            submitted = self.submitted
            coalesced = self.coalesced
            jobs = {
                "submitted": submitted,
                "created": len(self._jobs),
                "coalesced": coalesced,
                "completed": self.completed,
                "requeued": self.requeued,
                "worker_crashes": self.worker_crashes,
                "by_state": dict(sorted(by_state.items())),
            }
            warm = {
                "submissions": self.warm_submissions,
                "outcome_hits": self.warm_outcomes,
            }
            admission = {
                "max_depth": self.max_depth,
                "tenant_pending": self.tenant_pending,
                "retry_after": self.retry_after,
                "rejected_depth": self.rejected_depth,
                "rejected_tenant": self.rejected_tenant,
                "pending_by_tenant": dict(
                    sorted(self._tenant_pending.items())
                ),
            }
            recovery = {
                "recovered": self.recovered_jobs,
                "requeued": self.recovery_requeued,
                "parked": self.parked,
                "journal_errors": self.journal_errors,
            }
            ratios = [
                job.result["roofline_ratio"]
                for job in self._jobs.values()
                if job.result is not None
                and job.result.get("roofline_ratio")
            ]
            roofline = {
                "jobs": len(ratios),
                "min_ratio": round(min(ratios), 4) if ratios else None,
                "max_ratio": round(max(ratios), 4) if ratios else None,
                "mean_ratio": (
                    round(sum(ratios) / len(ratios), 4) if ratios else None
                ),
            }
            alive = sum(1 for t in self._workers if t.is_alive())
        journal = (
            self.journal.stats() if self.journal is not None
            else {"enabled": False}
        )
        return {
            "uptime_seconds": self._clock() - self.started,
            "jobs": jobs,
            "coalesce_ratio": (coalesced / submitted) if submitted else 0.0,
            "warm": warm,
            "admission": admission,
            "recovery": recovery,
            "journal": journal,
            "queue": self.queue.stats(),
            "workers": {"pool": self._worker_count, "alive": alive},
            "cache": self.cache.stats(),
            "roofline": roofline,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<broker {len(self._jobs)} job(s), "
            f"queue depth {self.queue.depth()}, "
            f"{self._worker_count} worker(s)>"
        )
