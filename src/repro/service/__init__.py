"""Partitioning-as-a-service: a long-running job server over the engine.

The sweep engine (PR 4) answers "run this matrix now, in this process".
This package answers the serving question: accept MiniC + RunConfig
submissions over HTTP, queue them fairly across tenants, dedupe
identical requests against both the artifact cache and the in-flight
job table, execute on a supervised worker pool under the resilience
ladder, and stream every lifecycle transition back as NDJSON.

Layering (no HTTP below the top):

- :mod:`~repro.service.jobs` — the :class:`Job` state machine, content
  keyed (:func:`job_key`), with an ordered event log and the
  deterministic :func:`scrub_events` projection goldens pin;
- :mod:`~repro.service.queue` — :class:`FairQueue`: priority buckets,
  round-robin across tenants, FIFO per tenant, per-tenant quotas;
- :mod:`~repro.service.broker` — :class:`Broker`: admission (structured
  400s via :class:`ServiceError`), request coalescing, the supervised
  worker pool (a crashed worker requeues its job, never kills the
  server), counters;
- :mod:`~repro.service.journal` — :class:`Journal`: the crash-safe
  write-ahead log + snapshot pair behind ``repro serve --journal``
  (checksummed NDJSON records, torn-tail truncation, fsync policies,
  snapshot compaction) and the broker's recovery/drain machinery;
- :mod:`~repro.service.http` — :class:`ServiceServer`: the stdlib
  ``ThreadingHTTPServer`` front end (``repro serve``);
- :mod:`~repro.service.client` — :class:`ServiceClient`: the urllib
  client (``repro submit``, load test, tests).
"""

from .broker import Broker, ServiceError
from .client import ServiceClient
from .http import ServiceServer
from .jobs import (
    CANCELLED,
    DEGRADED,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    job_key,
    scrub_events,
)
from .journal import Journal, JournalState
from .queue import FairQueue

__all__ = [
    "Broker",
    "CANCELLED",
    "DEGRADED",
    "DONE",
    "FAILED",
    "FairQueue",
    "JOB_STATES",
    "Job",
    "Journal",
    "JournalState",
    "QUEUED",
    "RUNNING",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "TERMINAL_STATES",
    "job_key",
    "scrub_events",
]
