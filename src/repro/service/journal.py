"""Crash-safe job journal: a checksummed NDJSON write-ahead log.

The broker's job table is in-memory; this module is what survives a
``kill -9``.  Every lifecycle transition is appended to
``<root>/journal.ndjson`` as one JSON line carrying a monotonic ``seq``
and a ``crc`` (truncated SHA-256 over the record's canonical JSON), so
recovery can tell a torn tail — the half-record a crash leaves behind
mid-``write(2)`` — from a valid one, and truncate the log at the first
bad line instead of refusing to start.

Record kinds mirror the job state machine::

    submit    {job, key, bench, source, config, tenant, priority}
    coalesce  {job}                        duplicate folded onto the job
    start     {job, attempt}               a worker picked it up
    requeue   {job, attempt, requeues}     worker crashed, job re-entered
    finish    {job, state, error, summary} terminal (done|degraded|failed)
    cancel    {job}
    park      {job}                        shutdown left it non-terminal

Replaying the log (or a snapshot + log suffix) folds these into the
latest known state per job: terminal jobs are restored as history,
queued/running jobs are the ones a restarted broker must requeue.

Durability knobs:

* ``fsync`` policy — ``always`` (fsync every append: an acked submission
  survives any crash; the ``repro serve --journal`` default), ``interval``
  (flush every append, fsync at most every ``fsync_interval`` seconds),
  ``never`` (flush only; the OS decides).
* compaction — every ``compact_every`` appends (and at clean shutdown)
  the broker folds its live job table into ``<root>/snapshot.json``
  (written atomically) and truncates the log, so the journal stays
  O(live + recent) instead of growing forever.

Fault injection: a :class:`~repro.resilience.faults.FaultPlan` passed as
``faults`` makes ``raise:journal`` clauses raise on append and
``torn-write:journal[@seq]`` clauses cut a record's bytes in half — the
deterministic way tests manufacture the torn tails recovery must absorb.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Union

from ..resilience.faults import FaultPlan
from .jobs import CANCELLED, QUEUED, RUNNING, TERMINAL_STATES

#: Bumped when the record/snapshot layout changes; a snapshot written
#: under another schema is ignored (the log still replays).
JOURNAL_SCHEMA = 1

JOURNAL_FILE = "journal.ndjson"
SNAPSHOT_FILE = "snapshot.json"

FSYNC_POLICIES = ("always", "interval", "never")

#: Record kinds :meth:`Journal.append` accepts (documentation more than
#: enforcement — replay ignores kinds it does not know, so a newer
#: writer's log still recovers on an older reader).
RECORD_KINDS = (
    "submit", "coalesce", "start", "requeue", "finish", "cancel", "park",
)


def record_checksum(record: Dict[str, Any]) -> str:
    """Truncated SHA-256 over the canonical JSON of ``record`` (minus
    any ``crc`` field): the per-record integrity stamp."""
    material = {k: v for k, v in record.items() if k != "crc"}
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class JournalState:
    """What :meth:`Journal.load` recovered: the folded per-job states.

    ``jobs`` maps job id -> a flat dict (same shape snapshot entries
    use): job/key/bench/source/config/tenant/priority/state/attempt/
    requeues/coalesced/error/summary.  Iteration order is submission
    order (snapshot order first, then replayed submits), which is the
    order recovery requeues in.
    """

    def __init__(self) -> None:
        self.jobs: Dict[str, Dict[str, Any]] = {}
        self.last_seq = 0
        self.replayed = 0      # records applied from the log
        self.torn = 0          # bad tail records truncated away
        self.orphaned = 0      # records naming an unknown job (dropped)
        self.from_snapshot = False

    @property
    def live(self) -> List[Dict[str, Any]]:
        """Jobs that were queued or running at crash time (must requeue)."""
        return [
            rec for rec in self.jobs.values()
            if rec["state"] not in TERMINAL_STATES
        ]

    def apply(self, record: Dict[str, Any]) -> None:
        """Fold one (verified) record into the per-job states."""
        kind = record.get("kind")
        if kind == "submit":
            self.jobs[record["job"]] = {
                "job": record["job"],
                "key": record["key"],
                "bench": record["bench"],
                "source": record["source"],
                "config": record["config"],
                "tenant": record.get("tenant", "default"),
                "priority": record.get("priority", 0),
                "state": QUEUED,
                "attempt": 1,
                "requeues": 0,
                "coalesced": 0,
                "error": None,
                "summary": None,
            }
            return
        job = self.jobs.get(record.get("job"))
        if job is None:
            self.orphaned += 1
            return
        if kind == "coalesce":
            job["coalesced"] += 1
        elif kind == "start":
            job["state"] = RUNNING
            job["attempt"] = record.get("attempt", job["attempt"])
        elif kind in ("requeue", "park"):
            job["state"] = QUEUED
            job["attempt"] = record.get("attempt", job["attempt"])
            job["requeues"] = record.get("requeues", job["requeues"])
        elif kind == "finish":
            job["state"] = record["state"]
            job["error"] = record.get("error")
            job["summary"] = record.get("summary")
            job["requeues"] = record.get("requeues", job["requeues"])
        elif kind == "cancel":
            job["state"] = CANCELLED
        # unknown kinds: forward-compat, ignored


class Journal:
    """One directory holding the WAL + snapshot pair (see module doc).

    Thread-safe: appends, compaction and load serialise on an internal
    lock which is never held while calling out, so it cannot participate
    in a lock cycle with the broker or its jobs.
    """

    def __init__(
        self,
        root: str,
        fsync: str = "always",
        fsync_interval: float = 0.1,
        compact_every: int = 4096,
        faults: Union[FaultPlan, str, None] = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        self.root = root
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self.compact_every = compact_every
        if isinstance(faults, str):
            faults = FaultPlan.parse(faults)
        self.faults = faults
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.RLock()
        self._fh = None
        self._seq = 0
        self._since_compact = 0
        self._last_fsync = 0.0
        # counters (session)
        self.appended = 0
        self.compactions = 0
        self.torn_at_load = 0

    # -- paths -----------------------------------------------------------------

    @property
    def journal_path(self) -> str:
        return os.path.join(self.root, JOURNAL_FILE)

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.root, SNAPSHOT_FILE)

    # -- recovery --------------------------------------------------------------

    def load(self) -> JournalState:
        """Recover the folded job states: snapshot first (if readable),
        then every log record newer than it.  A record that fails the
        checksum (or is not one JSON object per line) is a torn tail:
        the file is truncated right before it and replay stops — what
        was acked before it is intact, what was mid-write is gone, which
        is exactly the WAL contract.
        """
        with self._lock:
            self._close_handle()
            state = JournalState()
            self._load_snapshot(state)
            self._replay_log(state)
            self._seq = max(self._seq, state.last_seq)
            self.torn_at_load = state.torn
            return state

    def _load_snapshot(self, state: JournalState) -> None:
        try:
            with open(self.snapshot_path) as handle:
                snapshot = json.load(handle)
        except (FileNotFoundError, OSError, ValueError):
            return
        if (
            not isinstance(snapshot, dict)
            or snapshot.get("schema") != JOURNAL_SCHEMA
            or snapshot.get("crc") != record_checksum(snapshot)
        ):
            # Unreadable/foreign snapshot: fall back to pure log replay.
            return
        for rec in snapshot.get("jobs", []):
            state.jobs[rec["job"]] = dict(rec)
        state.last_seq = int(snapshot.get("seq", 0))
        state.from_snapshot = True

    def _replay_log(self, state: JournalState) -> None:
        try:
            handle = open(self.journal_path, "rb")
        except FileNotFoundError:
            return
        truncate_at: Optional[int] = None
        with handle:
            offset = 0
            for raw in handle:
                line_start = offset
                offset += len(raw)
                try:
                    record = json.loads(raw.decode("utf-8"))
                    if not isinstance(record, dict):
                        raise ValueError("record is not an object")
                    if record.get("crc") != record_checksum(record):
                        raise ValueError("checksum mismatch")
                except ValueError:
                    # Torn tail: everything from here on is untrusted
                    # (a half-written record shifts the framing of every
                    # later line), so cut the log and stop.
                    state.torn += 1
                    truncate_at = line_start
                    break
                seq = int(record.get("seq", 0))
                if seq > state.last_seq:
                    state.last_seq = seq
                    state.apply(record)
                    state.replayed += 1
        if truncate_at is not None:
            try:
                with open(self.journal_path, "r+b") as handle:
                    handle.truncate(truncate_at)
            except OSError:
                pass

    # -- the append path -------------------------------------------------------

    def _handle(self):
        if self._fh is None:
            self._fh = open(self.journal_path, "ab")
        return self._fh

    def _close_handle(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def append(self, kind: str, **fields: Any) -> int:
        """Append one checksummed record; returns its sequence number.

        Under ``fsync="always"`` the record is on disk when this
        returns — the property that makes an acked submission durable.
        """
        with self._lock:
            self._seq += 1
            record: Dict[str, Any] = {"seq": self._seq, "kind": kind}
            record.update(fields)
            record["crc"] = record_checksum(record)
            data = (
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                + "\n"
            ).encode("utf-8")
            if self.faults is not None:
                self.faults.begin_attempt("journal", self._seq)
                self.faults.maybe_raise("journal")
                if self.faults.torn_write("journal"):
                    data = data[: max(1, len(data) // 2)]
            handle = self._handle()
            handle.write(data)
            handle.flush()
            if self.fsync == "always":
                os.fsync(handle.fileno())
            elif self.fsync == "interval":
                now = time.monotonic()
                if now - self._last_fsync >= self.fsync_interval:
                    os.fsync(handle.fileno())
                    self._last_fsync = now
            self.appended += 1
            self._since_compact += 1
            return self._seq

    @property
    def compaction_due(self) -> bool:
        with self._lock:
            return self._since_compact >= self.compact_every

    def compact(self, jobs: List[Dict[str, Any]]) -> None:
        """Fold ``jobs`` (the broker's live table, snapshot-entry shape)
        into ``snapshot.json`` and truncate the log.  The snapshot is
        written atomically (temp + ``os.replace`` + fsync) *before* the
        log is cut, so a crash between the two steps merely replays
        records the snapshot already covers — idempotent by seq."""
        with self._lock:
            snapshot: Dict[str, Any] = {
                "schema": JOURNAL_SCHEMA,
                "seq": self._seq,
                "jobs": jobs,
            }
            snapshot["crc"] = record_checksum(snapshot)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(snapshot, handle, sort_keys=True)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, self.snapshot_path)
            except OSError:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                return
            self._close_handle()
            with open(self.journal_path, "wb") as handle:
                handle.flush()
                os.fsync(handle.fileno())
            self._since_compact = 0
            self.compactions += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and self.fsync != "never":
                try:
                    self._fh.flush()
                    os.fsync(self._fh.fileno())
                except (OSError, ValueError):
                    pass
            self._close_handle()

    # -- observability ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            try:
                log_bytes = os.path.getsize(self.journal_path)
            except OSError:
                log_bytes = 0
            return {
                "enabled": True,
                "root": self.root,
                "fsync": self.fsync,
                "seq": self._seq,
                "appended": self.appended,
                "since_compact": self._since_compact,
                "compactions": self.compactions,
                "torn_at_load": self.torn_at_load,
                "log_bytes": log_bytes,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<journal {self.root} fsync={self.fsync} seq={self._seq} "
            f"appended={self.appended}>"
        )
