"""Priority job queue with per-tenant quotas and fair scheduling.

Admission order is deterministic given the arrival order:

1. **Priority first** — higher ``priority`` buckets drain before lower
   ones (within the eligible set; see quotas below).
2. **Round-robin across tenants** inside a priority bucket: after a
   tenant is served it rotates to the back of the bucket, so one tenant
   flooding the queue cannot starve the others however many jobs it
   submits.
3. **FIFO within a tenant** — a tenant's own jobs run in submission
   order.

Per-tenant quotas bound *concurrency*, not queue depth: a tenant with
``quota`` jobs already running is skipped by :meth:`pop` until one of
them completes (:meth:`task_done`), which is the admission-control knob
that keeps a single tenant from occupying every worker.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, Optional

from .jobs import CANCELLED, QUEUED, Job


class FairQueue:
    """Blocking multi-tenant priority queue (see module docstring).

    ``quota`` is the per-tenant in-flight cap (None = unbounded).  All
    methods are thread-safe; :meth:`pop` blocks until a job is eligible,
    the timeout expires, or the queue is closed.
    """

    def __init__(self, quota: Optional[int] = None):
        if quota is not None and quota < 1:
            raise ValueError("quota must be >= 1 (or None for unbounded)")
        self.quota = quota
        self._cond = threading.Condition()
        #: priority -> tenant -> FIFO of jobs (buckets removed when empty)
        self._pending: Dict[int, Dict[str, deque]] = {}
        #: priority -> tenant rotation order (round-robin cursor)
        self._order: Dict[int, deque] = {}
        self._running: Dict[str, int] = {}
        self._closed = False
        self.pushed = 0
        self.popped = 0
        self.cancelled = 0

    # -- producers -------------------------------------------------------------

    def push(self, job: Job) -> None:
        """Enqueue ``job`` (also how a requeued job re-enters)."""
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            bucket = self._pending.setdefault(job.priority, {})
            if job.tenant not in bucket:
                bucket[job.tenant] = deque()
                self._order.setdefault(job.priority, deque()).append(
                    job.tenant
                )
            bucket[job.tenant].append(job)
            self.pushed += 1
            self._cond.notify()

    # -- consumers -------------------------------------------------------------

    def _eligible_job(self) -> Optional[Job]:
        """The next job per the fairness policy, or None.  Lock held."""
        for priority in sorted(self._pending, reverse=True):
            bucket = self._pending[priority]
            order = self._order[priority]
            for _ in range(len(order)):
                tenant = order[0]
                order.rotate(-1)
                queue = bucket.get(tenant)
                if not queue:
                    continue
                if (
                    self.quota is not None
                    and self._running.get(tenant, 0) >= self.quota
                ):
                    continue
                job = queue.popleft()
                if not queue:
                    del bucket[tenant]
                    order.remove(tenant)
                if not bucket:
                    del self._pending[priority]
                    del self._order[priority]
                return job
        return None

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Dequeue the next eligible job, marking its tenant as running.

        Returns None when the timeout expires or the queue is closed and
        drained.  Cancelled jobs are skipped (and not returned).
        """
        with self._cond:
            while True:
                job = self._eligible_job()
                while job is not None and job.state == CANCELLED:
                    self.cancelled += 1
                    job = self._eligible_job()
                if job is not None:
                    self._running[job.tenant] = (
                        self._running.get(job.tenant, 0) + 1
                    )
                    self.popped += 1
                    return job
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    def task_done(self, job: Job) -> None:
        """Release ``job``'s tenant quota slot (call once per pop)."""
        with self._cond:
            count = self._running.get(job.tenant, 0) - 1
            if count > 0:
                self._running[job.tenant] = count
            else:
                self._running.pop(job.tenant, None)
            self._cond.notify_all()

    # -- management ------------------------------------------------------------

    def cancel(self, job: Job) -> bool:
        """Mark a queued job cancelled (it is dropped at pop time).
        Returns False when the job is no longer cancellable."""
        with self._cond:
            if job.state != QUEUED:
                return False
            job.record("cancelled", state=CANCELLED)
            return True

    def close(self) -> None:
        """Stop accepting work and wake every blocked consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def depth(self) -> int:
        with self._cond:
            return sum(
                len(q)
                for bucket in self._pending.values()
                for q in bucket.values()
            )

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            tenants: Dict[str, int] = {}
            for bucket in self._pending.values():
                for tenant, queue in bucket.items():
                    tenants[tenant] = tenants.get(tenant, 0) + len(queue)
            return {
                "depth": sum(tenants.values()),
                "tenants": dict(sorted(tenants.items())),
                "running": dict(sorted(self._running.items())),
                "quota": self.quota,
                "pushed": self.pushed,
                "popped": self.popped,
                "cancelled": self.cancelled,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<fair queue depth={self.depth()} quota={self.quota}>"
