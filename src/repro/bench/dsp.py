"""DSP kernels: fsed, sobel, fir, latnrm.

The "set of DSP kernels" of Section 4.1.  ``fsed`` (Floyd–Steinberg error
diffusion) is called out by name in the paper as the benchmark with the
largest intercluster-move increase in Figure 10.
"""

from .registry import Benchmark, register

FSED_SOURCE = """
int W = 48;
int H = 32;
int image[1536];
int errbuf[100];
int bitmap[1536];
int threshold = 128;

int main() {
  int i;
  int seed = 21;
  for (i = 0; i < W * H; i = i + 1) {
    int x = i % W;
    seed = seed * 1103515245 + 12345;
    image[i] = ((x * 5) & 255) / 2 + ((seed >> 20) & 127);
  }
  for (i = 0; i < W + 2; i = i + 1) {
    errbuf[i] = 0;
  }
  int y;
  for (y = 0; y < H; y = y + 1) {
    int carry = 0;
    int x;
    for (x = 0; x < W; x = x + 1) {
      int old = image[y * W + x] + carry + errbuf[x + 1];
      int newv = 0;
      if (old >= threshold) { newv = 255; }
      int err = old - newv;
      bitmap[y * W + x] = newv / 255;
      carry = (err * 7) / 16;
      errbuf[x] = errbuf[x] + (err * 3) / 16;
      errbuf[x + 1] = (err * 5) / 16;
      errbuf[x + 2] = errbuf[x + 2] + err / 16;
    }
  }
  int ones = 0;
  int sig = 0;
  for (i = 0; i < W * H; i = i + 1) {
    ones = ones + bitmap[i];
    sig = (sig * 2 + bitmap[i]) & 16777215;
  }
  print_int(ones);
  print_int(sig);
  return sig;
}
"""

SOBEL_SOURCE = """
int W = 40;
int H = 30;
int image[1200];
int gradmag[1200];
int gxk[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
int gyk[9] = {-1, -2, -1, 0, 0, 0, 1, 2, 1};
int histo[8];

int main() {
  int i;
  int seed = 43;
  for (i = 0; i < W * H; i = i + 1) {
    int x = i % W;
    int y = i / W;
    seed = seed * 1103515245 + 12345;
    image[i] = ((x + y * 2) & 255) + ((seed >> 22) & 63);
  }
  int y;
  for (y = 1; y < H - 1; y = y + 1) {
    int x;
    for (x = 1; x < W - 1; x = x + 1) {
      int gx = 0;
      int gy = 0;
      int ky;
      for (ky = 0; ky < 3; ky = ky + 1) {
        int kx;
        for (kx = 0; kx < 3; kx = kx + 1) {
          int p = image[(y + ky - 1) * W + (x + kx - 1)];
          gx = gx + gxk[ky * 3 + kx] * p;
          gy = gy + gyk[ky * 3 + kx] * p;
        }
      }
      if (gx < 0) { gx = -gx; }
      if (gy < 0) { gy = -gy; }
      int mag = gx + gy;
      gradmag[y * W + x] = mag;
      histo[(mag >> 6) & 7] = histo[(mag >> 6) & 7] + 1;
    }
  }
  int sum = 0;
  for (i = 0; i < W * H; i = i + 1) {
    sum = (sum + gradmag[i]) & 16777215;
  }
  for (i = 0; i < 8; i = i + 1) {
    print_int(histo[i]);
  }
  print_int(sum);
  return sum;
}
"""

FIR_SOURCE = """
int NTAPS = 32;
int NSAMP = 512;
int coeff[32] = {3, -9, 14, -21, 30, -41, 55, -70, 86, -101, 115, -126,
                 134, -138, 139, 560, 560, 139, -138, 134, -126, 115,
                 -101, 86, -70, 55, -41, 30, -21, 14, -9, 3};
int delayline[32];
int input[512];
int output[512];

int fir_step(int sample) {
  int i;
  for (i = NTAPS - 1; i > 0; i = i - 1) {
    delayline[i] = delayline[i - 1];
  }
  delayline[0] = sample;
  int acc = 0;
  for (i = 0; i < NTAPS; i = i + 1) {
    acc = acc + coeff[i] * delayline[i];
  }
  return acc >> 10;
}

int main() {
  int i;
  int seed = 63;
  for (i = 0; i < NSAMP; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    input[i] = ((i & 127) - 64) * 120 + ((seed >> 21) & 255);
  }
  for (i = 0; i < NSAMP; i = i + 1) {
    output[i] = fir_step(input[i]);
  }
  int sum = 0;
  for (i = 0; i < NSAMP; i = i + 1) {
    sum = (sum + output[i]) & 16777215;
  }
  print_int(sum);
  return sum;
}
"""

LATNRM_SOURCE = """
int ORDER = 8;
int NSAMP = 800;
int kcoef[8] = {51, -38, 27, -19, 13, -9, 6, -4};
int vcoef[9] = {8, 11, 14, 17, 20, 23, 26, 29, 32};
int state[9];
int input[800];
int output[800];

int lattice_step(int sample) {
  int top = sample;
  int i;
  for (i = 0; i < ORDER; i = i + 1) {
    top = top - ((kcoef[i] * state[i]) >> 7);
    state[i + 1] = state[i] + ((kcoef[i] * top) >> 7);
  }
  state[0] = top;
  int acc = 0;
  for (i = 0; i <= ORDER; i = i + 1) {
    acc = acc + vcoef[i] * state[i];
  }
  return acc >> 5;
}

int main() {
  int i;
  int seed = 101;
  for (i = 0; i < NSAMP; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    input[i] = ((i * 11) & 255) * 32 - 4096 + ((seed >> 22) & 127);
  }
  for (i = 0; i < NSAMP; i = i + 1) {
    output[i] = lattice_step(input[i]);
  }
  int sum = 0;
  for (i = 0; i < NSAMP; i = i + 1) {
    sum = (sum + (output[i] >> 2)) & 16777215;
  }
  print_int(sum);
  return sum;
}
"""

register(
    Benchmark(
        "fsed",
        FSED_SOURCE,
        "Floyd-Steinberg error-diffusion dithering (DSP kernel)",
        "dsp",
    )
)
register(
    Benchmark(
        "sobel",
        SOBEL_SOURCE,
        "Sobel 3x3 edge detection with gradient histogram (DSP kernel)",
        "dsp",
    )
)
register(
    Benchmark(
        "fir",
        FIR_SOURCE,
        "32-tap FIR filter over 512 samples (DSP kernel)",
        "dsp",
    )
)
register(
    Benchmark(
        "latnrm",
        LATNRM_SOURCE,
        "Normalised lattice filter, DSPstone-style (DSP kernel)",
        "dsp",
    )
)
