"""rawcaudio / rawdaudio — IMA ADPCM coder and decoder.

MiniC ports of the Mediabench ``adpcm`` application (Intel/DVI ADPCM,
Jack Jansen's reference coder).  These are the two benchmarks the paper
examines exhaustively in Figure 9, so their data-object counts are kept
small: the step-size table, the index-adjustment table, the PCM buffer,
the code buffer, and the two-word predictor state.
"""

from .registry import Benchmark, register

_STEPSIZE_TABLE = (
    "int stepsizeTable[89] = {7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21,\n"
    "  23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107,\n"
    "  118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408,\n"
    "  449, 494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411,\n"
    "  1552, 1707, 1878, 2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026,\n"
    "  4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487,\n"
    "  12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794,\n"
    "  32767};\n"
    "int indexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8,\n"
    "                      -1, -1, -1, -1, 2, 4, 6, 8};\n"
)

RAWCAUDIO_SOURCE = (
    """
int NSAMP = 512;
"""
    + _STEPSIZE_TABLE
    + """
int pcm[512];
int code[512];
int state_valpred = 0;
int state_index = 0;

/* One 4-bit code per output word (the unpacked variant common in DSP
   ports: it keeps the inner loop free of conditional stores). */
void adpcm_coder(int *inp, int *outp, int len) {
  int valpred = state_valpred;
  int index = state_index;
  int step = stepsizeTable[index];
  int i;
  for (i = 0; i < len; i = i + 1) {
    int val = inp[i];
    int diff = val - valpred;
    int sign = 0;
    if (diff < 0) { sign = 8; diff = -diff; }
    int delta = 0;
    int vpdiff = step >> 3;
    if (diff >= step) { delta = 4; diff = diff - step; vpdiff = vpdiff + step; }
    step = step >> 1;
    if (diff >= step) { delta = delta | 2; diff = diff - step; vpdiff = vpdiff + step; }
    step = step >> 1;
    if (diff >= step) { delta = delta | 1; vpdiff = vpdiff + step; }
    if (sign) { valpred = valpred - vpdiff; }
    else { valpred = valpred + vpdiff; }
    if (valpred > 32767) { valpred = 32767; }
    else { if (valpred < -32768) { valpred = -32768; } }
    delta = delta | sign;
    index = index + indexTable[delta];
    if (index < 0) { index = 0; }
    if (index > 88) { index = 88; }
    step = stepsizeTable[index];
    outp[i] = delta;
  }
  state_valpred = valpred;
  state_index = index;
}

int main() {
  int i;
  int seed = 7;
  for (i = 0; i < NSAMP; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    int noise = (seed >> 18) & 1023;
    int wave = ((i & 63) - 32) * 700;
    pcm[i] = wave + noise - 512;
  }
  adpcm_coder(pcm, code, NSAMP);
  int sum = 0;
  for (i = 0; i < NSAMP; i = i + 1) {
    sum = (sum + code[i] * (i + 1)) & 16777215;
  }
  print_int(sum);
  print_int(state_valpred);
  print_int(state_index);
  return sum;
}
"""
)

RAWDAUDIO_SOURCE = (
    """
int NBYTES = 256;
"""
    + _STEPSIZE_TABLE
    + """
int code[512];
int pcm_out[512];
int state_valpred = 0;
int state_index = 0;

/* One 4-bit code per input word (unpacked variant). */
void adpcm_decoder(int *inp, int *outp, int len) {
  int valpred = state_valpred;
  int index = state_index;
  int step = stepsizeTable[index];
  int i;
  for (i = 0; i < len; i = i + 1) {
    int delta = inp[i] & 15;
    index = index + indexTable[delta];
    if (index < 0) { index = 0; }
    if (index > 88) { index = 88; }
    int sign = delta & 8;
    delta = delta & 7;
    int vpdiff = step >> 3;
    if (delta & 4) { vpdiff = vpdiff + step; }
    if (delta & 2) { vpdiff = vpdiff + (step >> 1); }
    if (delta & 1) { vpdiff = vpdiff + (step >> 2); }
    if (sign) { valpred = valpred - vpdiff; }
    else { valpred = valpred + vpdiff; }
    if (valpred > 32767) { valpred = 32767; }
    else { if (valpred < -32768) { valpred = -32768; } }
    step = stepsizeTable[index];
    outp[i] = valpred;
  }
  state_valpred = valpred;
  state_index = index;
}

int main() {
  int i;
  int seed = 99;
  for (i = 0; i < NBYTES * 2; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    code[i] = (seed >> 20) & 15;
  }
  adpcm_decoder(code, pcm_out, NBYTES * 2);
  int sum = 0;
  for (i = 0; i < NBYTES * 2; i = i + 1) {
    sum = (sum + pcm_out[i]) & 16777215;
  }
  print_int(sum);
  print_int(state_index);
  return sum;
}
"""
)

register(
    Benchmark(
        "rawcaudio",
        RAWCAUDIO_SOURCE,
        "IMA ADPCM speech coder (Mediabench adpcm rawcaudio)",
        "mediabench",
    )
)

register(
    Benchmark(
        "rawdaudio",
        RAWDAUDIO_SOURCE,
        "IMA ADPCM speech decoder (Mediabench adpcm rawdaudio)",
        "mediabench",
    )
)
