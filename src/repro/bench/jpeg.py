"""cjpeg / djpeg — JPEG-style transform coding over component planes.

The encoder runs a separable butterfly transform over 8x8 blocks of the
Y/Cb/Cr planes, quantises with per-component tables, and packs a run/level
stream; the decoder dequantises and inverse-transforms into output planes
held in a struct.  Both are pointer-heavy in the way the paper's suite is:
a component-pointer table (``int *planes[3]``), struct-of-pointer output
buffers, and row-base helpers called per component — the access patterns
that field- and context-sensitive points-to keep apart.
"""

from .registry import Benchmark, register

CJPEG_SOURCE = """
int W = 16;
int H = 16;
int ybuf[256];
int cbbuf[256];
int crbuf[256];
int *planes[3];
int lumqt[64];
int chromqt[64];
int block[64];
int coeff[64];
int runlevels[512];

int *row_base(int *plane, int r) {
  return plane + r * W;
}

void build_quant_tables() {
  int i;
  for (i = 0; i < 64; i = i + 1) {
    int r = i / 8;
    int c = i - r * 8;
    lumqt[i] = 8 + r + c;
    chromqt[i] = 12 + 2 * (r + c);
  }
}

void fill_planes() {
  int i;
  int seed = 9157;
  for (i = 0; i < W * H; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 8388607;
    ybuf[i] = (seed >> 12) & 255;
    cbbuf[i] = (seed >> 6) & 255;
    crbuf[i] = seed & 255;
  }
}

void forward_block() {
  /* Separable 4-point butterfly pairs per row, then per column: a stand-in
     for the DCT with the same add/shift structure. */
  int r;
  int c;
  for (r = 0; r < 8; r = r + 1) {
    for (c = 0; c < 4; c = c + 1) {
      int a = block[r * 8 + c];
      int b = block[r * 8 + 7 - c];
      block[r * 8 + c] = a + b;
      block[r * 8 + 7 - c] = a - b;
    }
  }
  for (c = 0; c < 8; c = c + 1) {
    for (r = 0; r < 4; r = r + 1) {
      int a = block[r * 8 + c];
      int b = block[(7 - r) * 8 + c];
      block[r * 8 + c] = (a + b) / 2;
      block[(7 - r) * 8 + c] = (a - b) / 2;
    }
  }
}

int quantize_block(int *qt) {
  int i;
  int nz = 0;
  for (i = 0; i < 64; i = i + 1) {
    int q = block[i] / qt[i];
    coeff[i] = q;
    if (q != 0) { nz = nz + 1; }
  }
  return nz;
}

int pack_runlevels(int base) {
  int i;
  int run = 0;
  int n = base;
  for (i = 0; i < 64; i = i + 1) {
    if (coeff[i] == 0) {
      run = run + 1;
    } else {
      if (n < 510) {
        runlevels[n] = run;
        runlevels[n + 1] = coeff[i];
        n = n + 2;
      }
      run = 0;
    }
  }
  return n;
}

int encode_plane_luma() {
  int bx;
  int by;
  int r;
  int c;
  int nz = 0;
  int *luma = planes[0];
  for (by = 0; by < H / 8; by = by + 1) {
    for (bx = 0; bx < W / 8; bx = bx + 1) {
      for (r = 0; r < 8; r = r + 1) {
        int *row = row_base(luma, by * 8 + r);
        for (c = 0; c < 8; c = c + 1) {
          block[r * 8 + c] = row[bx * 8 + c] - 128;
        }
      }
      forward_block();
      nz = nz + quantize_block(lumqt);
    }
  }
  return nz;
}

int main() {
  int bx;
  int by;
  int r;
  int c;
  int i;
  int nz = 0;
  int n = 0;
  planes[0] = ybuf;
  planes[1] = cbbuf;
  planes[2] = crbuf;
  build_quant_tables();
  fill_planes();

  /* DC bias per component: direct derefs through the pointer table —
     field-sensitivity keeps each slot's target distinct. */
  int *yp = planes[0];
  int *cbp = planes[1];
  int *crp = planes[2];
  int ybias = 0;
  int cbias = 0;
  for (i = 0; i < W * H; i = i + 1) {
    ybias = ybias + yp[i];
  }
  for (i = 0; i < W * H; i = i + 1) {
    cbias = cbias + cbp[i] + crp[i];
  }
  ybias = ybias / (W * H);
  cbias = cbias / (2 * W * H);

  /* Luma blocks through the component-pointer table. */
  nz = nz + encode_plane_luma();
  n = pack_runlevels(n);

  /* Each chroma component in its own pass, via its own call site. */
  for (by = 0; by < H / 8; by = by + 1) {
    for (bx = 0; bx < W / 8; bx = bx + 1) {
      for (r = 0; r < 8; r = r + 1) {
        int *cbrow = row_base(cbbuf, by * 8 + r);
        for (c = 0; c < 8; c = c + 1) {
          block[r * 8 + c] = cbrow[bx * 8 + c] - cbias;
        }
      }
      forward_block();
      nz = nz + quantize_block(chromqt);
      n = pack_runlevels(n);
    }
  }
  for (by = 0; by < H / 8; by = by + 1) {
    for (bx = 0; bx < W / 8; bx = bx + 1) {
      for (r = 0; r < 8; r = r + 1) {
        int *crrow = row_base(crbuf, by * 8 + r);
        for (c = 0; c < 8; c = c + 1) {
          block[r * 8 + c] = crrow[bx * 8 + c] - cbias;
        }
      }
      forward_block();
      nz = nz + quantize_block(chromqt);
      n = pack_runlevels(n);
    }
  }

  int sum = ybias;
  for (i = 0; i < n; i = i + 1) {
    sum = (sum * 31 + runlevels[i]) & 16777215;
  }
  print_int(nz);
  print_int(n);
  print_int(sum);
  return sum;
}
"""

DJPEG_SOURCE = """
int W = 16;
int H = 16;
int coeffs[256];
int lumqt[64];
int chromqt[64];
int block[64];
struct outbufs { int *lum; int *chrom; };
struct outbufs out;

int *block_base(int *plane, int b) {
  return plane + b * 64;
}

void build_quant_tables() {
  int i;
  for (i = 0; i < 64; i = i + 1) {
    int r = i / 8;
    int c = i - r * 8;
    lumqt[i] = 8 + r + c;
    chromqt[i] = 12 + 2 * (r + c);
  }
}

void fill_coeffs() {
  int i;
  int seed = 20077;
  for (i = 0; i < W * H; i = i + 1) {
    seed = (seed * 69069 + 1) & 8388607;
    int v = (seed >> 10) & 31;
    if ((seed & 3) != 0) { v = 0; }
    coeffs[i] = v - 15;
  }
}

void dequantize_block(int b, int *qt) {
  int i;
  for (i = 0; i < 64; i = i + 1) {
    block[i] = coeffs[b * 64 + i] * qt[i];
  }
}

void inverse_block() {
  int r;
  int c;
  for (c = 0; c < 8; c = c + 1) {
    for (r = 0; r < 4; r = r + 1) {
      int a = block[r * 8 + c];
      int b = block[(7 - r) * 8 + c];
      block[r * 8 + c] = a + b;
      block[(7 - r) * 8 + c] = a - b;
    }
  }
  for (r = 0; r < 8; r = r + 1) {
    for (c = 0; c < 4; c = c + 1) {
      int a = block[r * 8 + c];
      int b = block[r * 8 + 7 - c];
      block[r * 8 + c] = (a + b) / 2;
      block[r * 8 + 7 - c] = (a - b) / 2;
    }
  }
}

int main() {
  int b;
  int i;
  out.lum = malloc(W * H * sizeof(int));
  out.chrom = malloc(W * H * sizeof(int));
  build_quant_tables();
  fill_coeffs();

  /* First half of the blocks are luma, second half chroma; each side
     writes through its own struct-field pointer. */
  int nblocks = W * H / 64;
  for (b = 0; b < nblocks / 2; b = b + 1) {
    dequantize_block(b, lumqt);
    inverse_block();
    int *dst = block_base(out.lum, b);
    for (i = 0; i < 64; i = i + 1) {
      int v = block[i] + 128;
      if (v < 0) { v = 0; }
      if (v > 255) { v = 255; }
      dst[i] = v;
    }
  }
  for (b = nblocks / 2; b < nblocks; b = b + 1) {
    dequantize_block(b, chromqt);
    inverse_block();
    int *dst = block_base(out.chrom, b - nblocks / 2);
    for (i = 0; i < 64; i = i + 1) {
      int v = block[i] + 128;
      if (v < 0) { v = 0; }
      if (v > 255) { v = 255; }
      dst[i] = v;
    }
  }

  int *lum = out.lum;
  int *chrom = out.chrom;
  int sum = 0;
  for (i = 0; i < W * H / 2; i = i + 1) {
    sum = (sum + lum[i] * 3 + chrom[i]) & 16777215;
  }
  print_int(nblocks);
  print_int(sum);
  return sum;
}
"""

register(
    Benchmark(
        "cjpeg",
        CJPEG_SOURCE,
        "JPEG-style encoder: block transform, quantise, run/level pack",
        "mediabench",
    )
)

register(
    Benchmark(
        "djpeg",
        DJPEG_SOURCE,
        "JPEG-style decoder: dequantise and inverse transform into planes",
        "mediabench",
    )
)
