"""viterbi — soft-decision Viterbi decoder for a K=5, rate-1/2 code.

A classic telecom DSP kernel: branch metrics against the received symbol
pair, 16-state add-compare-select with path-metric arrays, and traceback.
Data objects: the output-symbol tables, two path-metric arrays (ping-
pong), the survivor matrix, and the decoded bit buffer.
"""

from .registry import Benchmark, register

VITERBI_SOURCE = """
int NSTATES = 16;
int NBITS = 192;
int out0[16];
int out1[16];
int received[384];
int metric_a[16];
int metric_b[16];
int survivors[3072];
int decoded[192];

void build_tables() {
  int s;
  for (s = 0; s < NSTATES; s = s + 1) {
    int g0 = (s ^ (s >> 1) ^ (s >> 3)) & 1;
    int g1 = (s ^ (s >> 2) ^ (s >> 3)) & 1;
    out0[s] = g0 * 2 + g1;
    int t = s | 16;
    g0 = (t ^ (t >> 1) ^ (t >> 3)) & 1;
    g1 = (t ^ (t >> 2) ^ (t >> 3)) & 1;
    out1[s] = g0 * 2 + g1;
  }
}

int branch_metric(int sym, int r0, int r1) {
  int e0 = ((sym >> 1) & 1) * 15 - r0;
  int e1 = (sym & 1) * 15 - r1;
  if (e0 < 0) { e0 = -e0; }
  if (e1 < 0) { e1 = -e1; }
  return e0 + e1;
}

int main() {
  int i;
  int seed = 29;
  build_tables();
  /* Encode a pseudo-random bit stream, then add noise. */
  int state = 0;
  for (i = 0; i < NBITS; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    int bit = (seed >> 24) & 1;
    int sy0 = out0[state];
    int sy1 = out1[state];
    int sym = bit ? sy1 : sy0;
    state = ((state >> 1) | (bit << 3)) & 15;
    seed = seed * 1103515245 + 12345;
    int n0 = (seed >> 26) & 3;
    seed = seed * 1103515245 + 12345;
    int n1 = (seed >> 26) & 3;
    received[i * 2] = ((sym >> 1) & 1) * 15 + n0 - 1;
    received[i * 2 + 1] = (sym & 1) * 15 + n1 - 1;
  }

  int s;
  for (s = 0; s < NSTATES; s = s + 1) {
    metric_a[s] = 4096;
  }
  metric_a[0] = 0;
  int t;
  for (t = 0; t < NBITS; t = t + 1) {
    int r0 = received[t * 2];
    int r1 = received[t * 2 + 1];
    for (s = 0; s < NSTATES; s = s + 1) {
      /* Predecessors of s are (s<<1)&15 and ((s<<1)|1)&15; the shifted-in
         bit is the high bit of s. */
      int p0 = (s * 2) & 15;
      int p1 = (s * 2 + 1) & 15;
      int inbit = (s >> 3) & 1;
      /* Load both candidate symbols, select branch-free (predication-
         friendly formulation). */
      int a0 = out0[p0];
      int b0 = out1[p0];
      int a1 = out0[p1];
      int b1 = out1[p1];
      int sym0 = inbit ? b0 : a0;
      int sym1 = inbit ? b1 : a1;
      int m0 = metric_a[p0] + branch_metric(sym0, r0, r1);
      int m1 = metric_a[p1] + branch_metric(sym1, r0, r1);
      int take0 = m0 <= m1;
      metric_b[s] = take0 ? m0 : m1;
      survivors[t * NSTATES + s] = take0 ? p0 : p1;
    }
    for (s = 0; s < NSTATES; s = s + 1) {
      metric_a[s] = metric_b[s];
      if (metric_a[s] > 60000) { metric_a[s] = metric_a[s] - 30000; }
    }
  }

  /* Traceback from the best final state. */
  int best = 0;
  for (s = 1; s < NSTATES; s = s + 1) {
    if (metric_a[s] < metric_a[best]) { best = s; }
  }
  int cur = best;
  for (t = NBITS - 1; t >= 0; t = t - 1) {
    decoded[t] = (cur >> 3) & 1;
    cur = survivors[t * NSTATES + cur];
  }

  int sum = 0;
  for (i = 0; i < NBITS; i = i + 1) {
    sum = (sum * 2 + decoded[i]) & 16777215;
  }
  print_int(metric_a[best]);
  print_int(sum);
  return sum;
}
"""

register(
    Benchmark(
        "viterbi",
        VITERBI_SOURCE,
        "K=5 rate-1/2 Viterbi decoder: ACS butterflies + traceback",
        "dsp",
    )
)
