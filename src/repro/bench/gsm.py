"""gsmenc — GSM 06.10 short-term LPC analysis kernel.

The hot path of the Mediabench GSM encoder: windowed autocorrelation of a
160-sample frame followed by the Schur recursion computing 8 reflection
coefficients, then preemphasis-filtering the residual.  Integer
arithmetic throughout, as in the reference coder.
"""

from .registry import Benchmark, register

GSMENC_SOURCE = """
int FRAME = 160;
int NFRAMES = 6;
int samples[160];
int acf[9];
int refc[8];
int pp[8];
int kk[8];
int residual[160];
int out_energy[6];

void autocorrelation(int *s, int *corr) {
  int k;
  for (k = 0; k < 9; k = k + 1) {
    int acc = 0;
    int i;
    for (i = k; i < FRAME; i = i + 1) {
      acc = acc + ((s[i] >> 3) * (s[i - k] >> 3));
    }
    corr[k] = acc;
  }
}

void schur(int *corr, int *r) {
  int i;
  int m;
  if (corr[0] == 0) {
    for (i = 0; i < 8; i = i + 1) { r[i] = 0; }
    return;
  }
  for (i = 0; i < 8; i = i + 1) {
    kk[i] = corr[i + 1];
    pp[i] = corr[i];
  }
  for (m = 0; m < 8; m = m + 1) {
    if (pp[0] == 0) { r[m] = 0; }
    else {
      r[m] = -((kk[0] * 256) / pp[0]);
      if (r[m] > 255) { r[m] = 255; }
      if (r[m] < -255) { r[m] = -255; }
    }
    int n;
    for (n = 0; n < 7 - m; n = n + 1) {
      pp[n] = pp[n] + ((kk[n] * r[m]) / 256);
      kk[n] = kk[n + 1] + ((pp[n + 1] * r[m]) / 256);
    }
  }
}

void short_term_filter(int *s, int *r, int *res) {
  int i;
  int u0 = 0;
  int u1 = 0;
  for (i = 0; i < FRAME; i = i + 1) {
    int d = s[i];
    d = d - ((r[0] * u0) / 256);
    d = d - ((r[1] * u1) / 256);
    u1 = u0;
    u0 = s[i];
    res[i] = d;
  }
}

int main() {
  int f;
  int i;
  int seed = 17;
  for (f = 0; f < NFRAMES; f = f + 1) {
    for (i = 0; i < FRAME; i = i + 1) {
      seed = seed * 1103515245 + 12345;
      int voiced = ((i * (f + 3)) & 31) * 220 - 3300;
      samples[i] = voiced + ((seed >> 21) & 255);
    }
    autocorrelation(samples, acf);
    schur(acf, refc);
    short_term_filter(samples, refc, residual);
    int energy = 0;
    for (i = 0; i < FRAME; i = i + 1) {
      int v = residual[i] >> 4;
      energy = (energy + v * v) & 16777215;
    }
    out_energy[f] = energy;
  }
  int sum = 0;
  for (f = 0; f < NFRAMES; f = f + 1) {
    sum = (sum + out_energy[f]) & 16777215;
    print_int(out_energy[f]);
  }
  for (i = 0; i < 8; i = i + 1) {
    sum = (sum + refc[i]) & 16777215;
  }
  print_int(sum);
  return sum;
}
"""

register(
    Benchmark(
        "gsmenc",
        GSMENC_SOURCE,
        "GSM 06.10 LPC analysis: autocorrelation + Schur recursion",
        "mediabench",
    )
)
