"""Benchmark registry.

Each benchmark is a MiniC program modelled on the Mediabench / DSP-kernel
workloads of the paper's evaluation (Section 4.1).  A benchmark carries
its source, a description, and the expected ``print_int`` output trace so
the interpreter's execution can be checked for correctness before any
partitioning experiment trusts its profile.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class Benchmark:
    """One MiniC workload."""

    def __init__(
        self,
        name: str,
        source: str,
        description: str,
        category: str,
        expected_output: Optional[List[int]] = None,
    ):
        self.name = name
        self.source = source
        self.description = description
        self.category = category  # "mediabench" | "dsp"
        self.expected_output = expected_output

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<benchmark {self.name}>"


_REGISTRY: Dict[str, Benchmark] = {}


def register(benchmark: Benchmark) -> Benchmark:
    if benchmark.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark {benchmark.name!r}")
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def get(name: str) -> Benchmark:
    _ensure_loaded()
    return _REGISTRY[name]


def names() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def all_benchmarks() -> List[Benchmark]:
    _ensure_loaded()
    return [_REGISTRY[n] for n in sorted(_REGISTRY)]


def mediabench() -> List[Benchmark]:
    return [b for b in all_benchmarks() if b.category == "mediabench"]


def dsp_kernels() -> List[Benchmark]:
    return [b for b in all_benchmarks() if b.category == "dsp"]


_loaded = False


def _ensure_loaded() -> None:
    """Import the kernel modules exactly once (they self-register)."""
    global _loaded
    if _loaded:
        return
    from . import (  # noqa: F401
        adpcm,
        dsp,
        epic,
        fftbench,
        g721,
        gsm,
        huffman,
        jpeg,
        mpeg2,
        pegwit,
        unepic,
        viterbi,
    )

    _loaded = True
