"""fft — fixed-point radix-2 FFT with a sine lookup table.

Integer in-place decimation-in-time FFT over 256 points, twiddles from a
quarter-wave sine table — the standard embedded-DSP formulation.
"""

from .registry import Benchmark, register

FFT_SOURCE = """
int N = 256;
int LOGN = 8;
int re[256];
int im[256];
int sintab[256];
int spectrum[128];

void build_sintab() {
  /* 256-entry sine table, amplitude 4096, via 2nd-order resonator. */
  int i;
  int s0 = 0;
  int s1 = 100;
  /* k = 2*4096*cos(2*pi/256) ~ 8189.5 -> resonator approx; use direct
     polynomial approximation instead for stability. */
  for (i = 0; i < 256; i = i + 1) {
    int x = i & 127;
    if (x > 63) { x = 127 - x; }
    /* parabola approximating sin on [0, pi/2], peak 4096 at x=64 */
    int v = (x * (128 - x) * 4096) / 4096;
    if ((i & 128) != 0) { v = -v; }
    sintab[i] = v;
  }
}

int sin_lookup(int idx) {
  return sintab[idx & 255];
}

int cos_lookup(int idx) {
  return sintab[(idx + 64) & 255];
}

void fft() {
  /* bit-reversal permutation */
  int i;
  int j = 0;
  for (i = 0; i < N - 1; i = i + 1) {
    if (i < j) {
      int tr = re[i]; re[i] = re[j]; re[j] = tr;
      int ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
    int k = N / 2;
    while (k <= j) {
      j = j - k;
      k = k / 2;
    }
    j = j + k;
  }
  int le = 1;
  int stage;
  for (stage = 0; stage < LOGN; stage = stage + 1) {
    int le2 = le * 2;
    int step = N / le2;
    int m;
    for (m = 0; m < le; m = m + 1) {
      int wr = cos_lookup(m * step);
      int wi = -sin_lookup(m * step);
      for (i = m; i < N; i = i + le2) {
        int ip = i + le;
        int tr = (wr * re[ip] - wi * im[ip]) >> 12;
        int ti = (wr * im[ip] + wi * re[ip]) >> 12;
        re[ip] = (re[i] - tr) / 2;
        im[ip] = (im[i] - ti) / 2;
        re[i] = (re[i] + tr) / 2;
        im[i] = (im[i] + ti) / 2;
      }
    }
    le = le2;
  }
}

int main() {
  int i;
  int seed = 301;
  build_sintab();
  for (i = 0; i < N; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    int tone = sin_lookup((i * 8) & 255) / 4 + sin_lookup((i * 21) & 255) / 8;
    re[i] = tone + ((seed >> 22) & 63);
    im[i] = 0;
  }
  fft();
  int peak = 0;
  int peakbin = 0;
  for (i = 0; i < N / 2; i = i + 1) {
    int p = (re[i] * re[i] + im[i] * im[i]) >> 8;
    spectrum[i] = p;
    if (p > peak) { peak = p; peakbin = i; }
  }
  int sum = 0;
  for (i = 0; i < N / 2; i = i + 1) {
    sum = (sum + spectrum[i]) & 16777215;
  }
  print_int(peakbin);
  print_int(sum);
  return sum;
}
"""

register(
    Benchmark(
        "fft",
        FFT_SOURCE,
        "256-point fixed-point radix-2 FFT with sine LUT",
        "dsp",
    )
)
