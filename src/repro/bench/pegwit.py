"""pegwit — message digest + stream encryption kernel.

Stands in for the Mediabench ``pegwit`` public-key tool's symmetric hot
path: an SBox-driven mixing hash (square-style, as pegwit uses) over the
message, followed by keystream generation and encryption.  Data objects:
the substitution box, the message buffer, the hash state, the key
schedule and the ciphertext buffer.
"""

from .registry import Benchmark, register

PEGWIT_SOURCE = """
int MSGLEN = 512;
int sbox[256];
int message[512];
int cipher[512];
int hstate[8];
int keysched[32];

void build_sbox() {
  int i;
  int v = 113;
  for (i = 0; i < 256; i = i + 1) {
    v = (v * 167 + 41) & 255;
    sbox[i] = v;
  }
}

void hash_block(int *msg, int off, int len) {
  int i;
  for (i = 0; i < len; i = i + 1) {
    int b = msg[off + i] & 255;
    int j = i & 7;
    int mixed = hstate[j] ^ sbox[(b + i) & 255];
    mixed = (mixed << 5) | ((mixed >> 27) & 31);
    hstate[j] = (mixed + sbox[b] + hstate[(j + 1) & 7]) & 16777215;
  }
}

void expand_key(int seedval) {
  int i;
  int v = seedval;
  for (i = 0; i < 32; i = i + 1) {
    v = v * 69069 + 1;
    keysched[i] = (v >> 16) & 65535;
  }
}

void encrypt(int *msg, int *out, int len) {
  int i;
  int ks = 0;
  for (i = 0; i < len; i = i + 1) {
    int k = keysched[i & 31];
    ks = (ks + sbox[(k + i) & 255]) & 255;
    out[i] = (msg[i] & 255) ^ sbox[ks] ^ (k & 255);
  }
}

int main() {
  int i;
  int seed = 77;
  build_sbox();
  for (i = 0; i < MSGLEN; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    message[i] = (seed >> 17) & 255;
  }
  for (i = 0; i < 8; i = i + 1) {
    hstate[i] = i * 257 + 1;
  }
  hash_block(message, 0, 256);
  hash_block(message, 256, 256);
  expand_key(hstate[0] ^ hstate[3]);
  encrypt(message, cipher, MSGLEN);
  hash_block(cipher, 0, MSGLEN);
  int sum = 0;
  for (i = 0; i < 8; i = i + 1) {
    sum = (sum + hstate[i]) & 16777215;
    print_int(hstate[i]);
  }
  for (i = 0; i < MSGLEN; i = i + 1) {
    sum = (sum + cipher[i]) & 16777215;
  }
  print_int(sum);
  return sum;
}
"""

register(
    Benchmark(
        "pegwit",
        PEGWIT_SOURCE,
        "Pegwit-style message digest + SBox stream encryption",
        "mediabench",
    )
)
