"""unepic — EPIC image-pyramid reconstruction (decoder side of ``epic``).

Unquantises the coded subbands and runs the inverse lowpass filters to
rebuild the image, level by level.  The pyramid levels live in a
struct-of-pointers (``low``/``high`` band buffers) over malloc'd storage,
and the band-pointer helper is called once per subband — the decoder-side
pointer idioms the precision-tiered points-to analysis is built for.
"""

from .registry import Benchmark, register

UNEPIC_SOURCE = """
int W = 16;
int H = 16;
int codes0[256];
int codes1[64];
int quant_step = 6;
struct level { int *low; int *high; };
struct level lev0;
struct level lev1;

int *band_ptr(int *base, int off) {
  return base + off;
}

void fill_codes() {
  int i;
  int seed = 31121;
  for (i = 0; i < W * H; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 8388607;
    int v = (seed >> 13) & 15;
    if ((seed & 7) < 5) { v = 0; }
    codes0[i] = v - 8;
  }
  for (i = 0; i < (W / 2) * (H / 2); i = i + 1) {
    seed = (seed * 69069 + 1) & 8388607;
    codes1[i] = ((seed >> 11) & 7) - 4;
  }
}

void unquantize(int *codes, int *band, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    int c = codes[i];
    int v = c * quant_step;
    if (c > 0) { v = v + quant_step / 2; }
    if (c < 0) { v = v - quant_step / 2; }
    band[i] = v;
  }
}

void interpolate_rows(int *src, int *dst, int w, int h) {
  int r;
  int c;
  for (r = 0; r < h; r = r + 1) {
    for (c = 0; c < w - 1; c = c + 1) {
      int a = src[r * w + c];
      int b = src[r * w + c + 1];
      dst[r * w + c] = (a + b) / 2;
    }
    dst[r * w + w - 1] = src[r * w + w - 1];
  }
}

int main() {
  int i;
  lev0.low = malloc(W * H * sizeof(int));
  lev0.high = malloc(W * H * sizeof(int));
  lev1.low = malloc((W / 2) * (H / 2) * sizeof(int));
  lev1.high = malloc((W / 2) * (H / 2) * sizeof(int));
  fill_codes();

  /* Coarse level first: unquantise, smooth, then add the detail band. */
  int *l1low = lev1.low;
  int *l1high = lev1.high;
  unquantize(codes1, l1high, (W / 2) * (H / 2));
  interpolate_rows(l1high, l1low, W / 2, H / 2);
  for (i = 0; i < (W / 2) * (H / 2); i = i + 1) {
    l1low[i] = l1low[i] + l1high[i] / 2;
  }

  /* Full-resolution level: expand the coarse band into the low buffer,
     unquantise the detail codes into the high buffer, and sum. */
  int *l0low = band_ptr(lev0.low, 0);
  int *l0high = band_ptr(lev0.high, 0);
  unquantize(codes0, l0high, W * H);
  int r;
  int c;
  for (r = 0; r < H; r = r + 1) {
    for (c = 0; c < W; c = c + 1) {
      int v = l1low[(r / 2) * (W / 2) + c / 2];
      l0low[r * W + c] = v + l0high[r * W + c];
    }
  }
  interpolate_rows(l0low, l0high, W, H);

  int sum = 0;
  int nz = 0;
  for (i = 0; i < W * H; i = i + 1) {
    sum = (sum + l0low[i] * 5 + l0high[i]) & 16777215;
    if (l0low[i] != 0) { nz = nz + 1; }
  }
  print_int(nz);
  print_int(sum);
  return sum;
}
"""

register(
    Benchmark(
        "unepic",
        UNEPIC_SOURCE,
        "EPIC pyramid reconstruction: unquantise and inverse filters",
        "mediabench",
    )
)
