"""g721enc / g721dec — simplified G.721 ADPCM with an adaptive predictor.

Structured after the Mediabench ``g721`` codec: a multi-level quantizer
with lookup tables, an adaptive FIR predictor whose coefficients update
sign-sign LMS style, and a scale-factor adaptation table.  Considerably
simplified arithmetically, but with the same data-object structure
(quantizer tables, predictor state, sample buffers) that drives the
partitioning problem.
"""

from .registry import Benchmark, register

_COMMON_TABLES = """
int qtab[7] = {124, 256, 388, 520, 652, 784, 916};
int iqtab[8] = {62, 190, 322, 454, 586, 718, 850, 982};
int witab[8] = {-12, 18, 41, 64, 112, 198, 355, 1122};
int predco[4];
int predhist[4];
int scale_state = 256;
"""

_PREDICT = """
int predict() {
  int acc = 0;
  int i;
  for (i = 0; i < 4; i = i + 1) {
    acc = acc + predco[i] * predhist[i];
  }
  return acc >> 14;
}

void update_predictor(int err, int recon) {
  int i;
  for (i = 0; i < 4; i = i + 1) {
    int grad = 0;
    if (err > 0 && predhist[i] > 0) { grad = 48; }
    if (err > 0 && predhist[i] < 0) { grad = -48; }
    if (err < 0 && predhist[i] > 0) { grad = -48; }
    if (err < 0 && predhist[i] < 0) { grad = 48; }
    predco[i] = predco[i] - (predco[i] >> 8) + grad;
  }
  for (i = 3; i > 0; i = i - 1) {
    predhist[i] = predhist[i - 1];
  }
  predhist[0] = recon;
}

int quantize(int err, int scale) {
  int mag = err;
  int sign = 0;
  if (mag < 0) { sign = 8; mag = -mag; }
  int level = 0;
  int scaled = (mag << 8) / scale;
  int i;
  for (i = 0; i < 7; i = i + 1) {
    if (scaled >= qtab[i]) { level = i + 1; }
  }
  return sign | level;
}

int inv_quantize(int codeword, int scale) {
  int level = codeword & 7;
  int mag = (iqtab[level] * scale) >> 8;
  if (codeword & 8) { return -mag; }
  return mag;
}

int adapt_scale(int codeword, int scale) {
  int level = codeword & 7;
  int next = scale + witab[level] - (scale >> 5);
  if (next < 64) { next = 64; }
  if (next > 16384) { next = 16384; }
  return next;
}
"""

G721ENC_SOURCE = (
    """
int NSAMP = 400;
int pcm_in[400];
int codes[400];
"""
    + _COMMON_TABLES
    + _PREDICT
    + """
int main() {
  int i;
  int seed = 31;
  for (i = 0; i < NSAMP; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    int tone = ((i * 13) & 127) * 180 - 11000;
    pcm_in[i] = tone + ((seed >> 19) & 511);
  }
  int scale = scale_state;
  for (i = 0; i < NSAMP; i = i + 1) {
    int est = predict();
    int err = pcm_in[i] - est;
    int cw = quantize(err, scale);
    int dq = inv_quantize(cw, scale);
    int recon = est + dq;
    update_predictor(dq, recon);
    scale = adapt_scale(cw, scale);
    codes[i] = cw;
  }
  scale_state = scale;
  int sum = 0;
  for (i = 0; i < NSAMP; i = i + 1) {
    sum = (sum + codes[i] * (i + 3)) & 16777215;
  }
  print_int(sum);
  print_int(scale_state);
  return sum;
}
"""
)

G721DEC_SOURCE = (
    """
int NSAMP = 400;
int codes[400];
int pcm_out[400];
"""
    + _COMMON_TABLES
    + _PREDICT
    + """
int main() {
  int i;
  int seed = 57;
  for (i = 0; i < NSAMP; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    codes[i] = (seed >> 21) & 15;
  }
  int scale = scale_state;
  for (i = 0; i < NSAMP; i = i + 1) {
    int est = predict();
    int dq = inv_quantize(codes[i], scale);
    int recon = est + dq;
    update_predictor(dq, recon);
    scale = adapt_scale(codes[i], scale);
    if (recon > 32767) { recon = 32767; }
    if (recon < -32768) { recon = -32768; }
    pcm_out[i] = recon;
  }
  scale_state = scale;
  int sum = 0;
  for (i = 0; i < NSAMP; i = i + 1) {
    sum = (sum + pcm_out[i]) & 16777215;
  }
  print_int(sum);
  return sum;
}
"""
)

register(
    Benchmark(
        "g721enc",
        G721ENC_SOURCE,
        "Simplified G.721 ADPCM encoder with adaptive predictor",
        "mediabench",
    )
)

register(
    Benchmark(
        "g721dec",
        G721DEC_SOURCE,
        "Simplified G.721 ADPCM decoder with adaptive predictor",
        "mediabench",
    )
)
