"""huffman — canonical Huffman length assignment and bitstream encode.

Entropy-coding kernel: symbol frequency count, a simplified length
assignment (log-rank based, canonical-code style), code table build, and
a bit-packing encode loop.  Exercises indirect table lookups feeding a
serial bit accumulator.
"""

from .registry import Benchmark, register

HUFFMAN_SOURCE = """
int NSYM = 64;
int MSGLEN = 1024;
int freq[64];
int lengths[64];
int codes[64];
int message[1024];
int bitstream[1024];

void count_frequencies() {
  int i;
  for (i = 0; i < NSYM; i = i + 1) {
    freq[i] = 0;
  }
  for (i = 0; i < MSGLEN; i = i + 1) {
    int s = message[i];
    freq[s] = freq[s] + 1;
  }
}

void assign_lengths() {
  /* Rank-based length assignment: more frequent -> shorter code.
     Approximates the Huffman tree with length = 2 + rank bucket. */
  int i;
  int maxf = 1;
  for (i = 0; i < NSYM; i = i + 1) {
    if (freq[i] > maxf) { maxf = freq[i]; }
  }
  for (i = 0; i < NSYM; i = i + 1) {
    int f = freq[i];
    int len = 12;
    int bound = maxf;
    int l = 2;
    while (l < 12) {
      if (f * 2 >= bound) { len = l; break; }
      bound = bound / 2;
      l = l + 1;
    }
    if (f == 0) { len = 12; }
    lengths[i] = len;
  }
}

void build_codes() {
  /* Canonical code assignment in (length, symbol) order. */
  int code = 0;
  int len;
  for (len = 2; len <= 12; len = len + 1) {
    int i;
    for (i = 0; i < NSYM; i = i + 1) {
      if (lengths[i] == len) {
        codes[i] = code;
        code = code + 1;
      }
    }
    code = code * 2;
  }
}

int encode() {
  int bitpos = 0;
  int word = 0;
  int nbits = 0;
  int outpos = 0;
  int i;
  for (i = 0; i < MSGLEN; i = i + 1) {
    int s = message[i];
    word = (word << lengths[s]) | (codes[s] & ((1 << lengths[s]) - 1));
    nbits = nbits + lengths[s];
    while (nbits >= 16) {
      nbits = nbits - 16;
      bitstream[outpos] = (word >> nbits) & 65535;
      outpos = outpos + 1;
      bitpos = bitpos + 16;
    }
    word = word & ((1 << nbits) - 1);
  }
  if (nbits > 0) {
    bitstream[outpos] = (word << (16 - nbits)) & 65535;
    outpos = outpos + 1;
  }
  return outpos;
}

int main() {
  int i;
  int seed = 401;
  for (i = 0; i < MSGLEN; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    int r = (seed >> 18) & 4095;
    /* Skewed symbol distribution: low symbols much more frequent. */
    int s = 0;
    while (r > 0 && s < NSYM - 1) {
      r = r / 3;
      s = s + 1;
    }
    message[i] = s;
  }
  count_frequencies();
  assign_lengths();
  build_codes();
  int words = encode();
  int sum = 0;
  for (i = 0; i < words; i = i + 1) {
    sum = (sum + bitstream[i] * (1 + (i & 7))) & 16777215;
  }
  print_int(words);
  print_int(sum);
  return sum;
}
"""

register(
    Benchmark(
        "huffman",
        HUFFMAN_SOURCE,
        "Canonical Huffman length assignment + bitstream encoder",
        "dsp",
    )
)
