"""epic — image pyramid decomposition kernel.

Modelled on the Mediabench EPIC encoder's hot loop: a separable low-pass
filter builds a two-level image pyramid; detail bands are quantised with
a dead-zone quantiser.  Uses heap buffers for the pyramid levels, so the
benchmark exercises malloc-site data objects as well as globals.
"""

from .registry import Benchmark, register

EPIC_SOURCE = """
int W = 32;
int H = 32;
int image[1024];
int filtertaps[5] = {3, 12, 34, 12, 3};
int qstep = 9;

void lowpass_rows(int *src, int *dst, int w, int h) {
  int y;
  for (y = 0; y < h; y = y + 1) {
    int x;
    for (x = 0; x < w; x = x + 1) {
      int acc = 0;
      int t;
      for (t = -2; t <= 2; t = t + 1) {
        int xx = x + t;
        if (xx < 0) { xx = 0; }
        if (xx >= w) { xx = w - 1; }
        acc = acc + filtertaps[t + 2] * src[y * w + xx];
      }
      dst[y * w + x] = acc >> 6;
    }
  }
}

void lowpass_cols(int *src, int *dst, int w, int h) {
  int y;
  for (y = 0; y < h; y = y + 1) {
    int x;
    for (x = 0; x < w; x = x + 1) {
      int acc = 0;
      int t;
      for (t = -2; t <= 2; t = t + 1) {
        int yy = y + t;
        if (yy < 0) { yy = 0; }
        if (yy >= h) { yy = h - 1; }
        acc = acc + filtertaps[t + 2] * src[yy * w + x];
      }
      dst[y * w + x] = acc >> 6;
    }
  }
}

void decimate(int *src, int *dst, int w, int h) {
  int y;
  for (y = 0; y < h / 2; y = y + 1) {
    int x;
    for (x = 0; x < w / 2; x = x + 1) {
      dst[y * (w / 2) + x] = src[(y * 2) * w + (x * 2)];
    }
  }
}

int quantize_band(int *band, int *codes, int n) {
  int i;
  int nz = 0;
  for (i = 0; i < n; i = i + 1) {
    int v = band[i];
    int mag = v;
    if (mag < 0) { mag = -mag; }
    int q = 0;
    if (mag > qstep / 2) { q = mag / qstep; }
    if (v < 0) { q = -q; }
    codes[i] = q;
    if (q != 0) { nz = nz + 1; }
  }
  return nz;
}

int main() {
  int i;
  int seed = 5;
  for (i = 0; i < W * H; i = i + 1) {
    int x = i % W;
    int y = i / W;
    seed = seed * 1103515245 + 12345;
    image[i] = ((x * x + y * y) & 255) + ((seed >> 23) & 31);
  }
  int *tmp = malloc(W * H * sizeof(int));
  int *smooth = malloc(W * H * sizeof(int));
  int *level1 = malloc((W / 2) * (H / 2) * sizeof(int));
  int *detail = malloc(W * H * sizeof(int));
  int *codes = malloc(W * H * sizeof(int));

  lowpass_rows(image, tmp, W, H);
  lowpass_cols(tmp, smooth, W, H);
  for (i = 0; i < W * H; i = i + 1) {
    detail[i] = image[i] - smooth[i];
  }
  int nz0 = quantize_band(detail, codes, W * H);
  decimate(smooth, level1, W, H);

  lowpass_rows(level1, tmp, W / 2, H / 2);
  lowpass_cols(tmp, smooth, W / 2, H / 2);
  for (i = 0; i < (W / 2) * (H / 2); i = i + 1) {
    detail[i] = level1[i] - smooth[i];
  }
  int nz1 = quantize_band(detail, codes, (W / 2) * (H / 2));

  int sum = 0;
  for (i = 0; i < (W / 2) * (H / 2); i = i + 1) {
    sum = (sum + smooth[i] * 3 + codes[i]) & 16777215;
  }
  print_int(nz0);
  print_int(nz1);
  print_int(sum);
  return sum;
}
"""

register(
    Benchmark(
        "epic",
        EPIC_SOURCE,
        "EPIC image-pyramid decomposition with dead-zone quantiser",
        "mediabench",
    )
)
