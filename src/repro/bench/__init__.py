"""Benchmark suite: MiniC workloads modelled on the paper's Mediabench
applications and DSP kernels (Section 4.1)."""

from .registry import (
    Benchmark,
    all_benchmarks,
    dsp_kernels,
    get,
    mediabench,
    names,
    register,
)

__all__ = [
    "Benchmark",
    "all_benchmarks",
    "dsp_kernels",
    "get",
    "mediabench",
    "names",
    "register",
]
