"""mpeg2enc / mpeg2dec — 8x8 block DCT pipeline kernels.

The hot loops of the Mediabench MPEG-2 codecs: the encoder runs a
separable integer DCT, quantisation against the intra quantiser matrix
and zig-zag scanning per macroblock; the decoder runs the inverse chain.
Frames are synthetic.  Data objects: the frame buffer, the coefficient
buffer, the quantiser matrix, the zig-zag table, and the DCT cosine
table — the multi-object working set that makes placement matter.
"""

from .registry import Benchmark, register

_TABLES = """
int quant_matrix[64] = {
   8, 16, 19, 22, 26, 27, 29, 34,
  16, 16, 22, 24, 27, 29, 34, 37,
  19, 22, 26, 27, 29, 34, 34, 38,
  22, 22, 26, 27, 29, 34, 37, 40,
  22, 26, 27, 29, 32, 35, 40, 48,
  26, 27, 29, 32, 35, 40, 48, 58,
  26, 27, 29, 34, 38, 46, 56, 69,
  27, 29, 35, 38, 46, 56, 69, 83};
int zigzag[64] = {
   0,  1,  8, 16,  9,  2,  3, 10,
  17, 24, 32, 25, 18, 11,  4,  5,
  12, 19, 26, 33, 40, 48, 41, 34,
  27, 20, 13,  6,  7, 14, 21, 28,
  35, 42, 49, 56, 57, 50, 43, 36,
  29, 22, 15, 23, 30, 37, 44, 51,
  58, 59, 52, 45, 38, 31, 39, 46,
  53, 60, 61, 54, 47, 55, 62, 63};
int costab[64] = {
  362, 362, 362, 362, 362, 362, 362, 362,
  502, 426, 284, 100, -100, -284, -426, -502,
  473, 196, -196, -473, -473, -196, 196, 473,
  426, -100, -502, -284, 284, 502, 100, -426,
  362, -362, -362, 362, 362, -362, -362, 362,
  284, -502, 100, 426, -426, -100, 502, -284,
  196, -473, 473, -196, -196, 473, -473, 196,
  100, -284, 426, -502, 502, -426, 284, -100};
"""

_DCT = """
int workspace[64];

void fdct8x8(int *block) {
  int u;
  int x;
  /* rows */
  for (u = 0; u < 8; u = u + 1) {
    for (x = 0; x < 8; x = x + 1) {
      int acc = 0;
      int t;
      for (t = 0; t < 8; t = t + 1) {
        acc = acc + costab[u * 8 + t] * block[x * 8 + t];
      }
      workspace[x * 8 + u] = acc >> 9;
    }
  }
  /* columns */
  for (u = 0; u < 8; u = u + 1) {
    for (x = 0; x < 8; x = x + 1) {
      int acc = 0;
      int t;
      for (t = 0; t < 8; t = t + 1) {
        acc = acc + costab[u * 8 + t] * workspace[t * 8 + x];
      }
      block[u * 8 + x] = acc >> 9;
    }
  }
}

void idct8x8(int *block) {
  int u;
  int x;
  for (x = 0; x < 8; x = x + 1) {
    int t;
    for (t = 0; t < 8; t = t + 1) {
      int acc = 0;
      int u2;
      for (u2 = 0; u2 < 8; u2 = u2 + 1) {
        acc = acc + costab[u2 * 8 + t] * block[x * 8 + u2];
      }
      workspace[x * 8 + t] = acc >> 9;
    }
  }
  for (x = 0; x < 8; x = x + 1) {
    int t;
    for (t = 0; t < 8; t = t + 1) {
      int acc = 0;
      int u2;
      for (u2 = 0; u2 < 8; u2 = u2 + 1) {
        acc = acc + costab[u2 * 8 + x] * workspace[u2 * 8 + t];
      }
      block[x * 8 + t] = acc >> 9;
    }
  }
}
"""

MPEG2ENC_SOURCE = (
    """
int NBLOCKS = 12;
int frame[768];
int coeffs[768];
int block[64];
"""
    + _TABLES
    + _DCT
    + """
int main() {
  int b;
  int i;
  int seed = 3;
  for (i = 0; i < NBLOCKS * 64; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    frame[i] = ((seed >> 22) & 255) - 128;
  }
  for (b = 0; b < NBLOCKS; b = b + 1) {
    for (i = 0; i < 64; i = i + 1) {
      block[i] = frame[b * 64 + i];
    }
    fdct8x8(block);
    for (i = 0; i < 64; i = i + 1) {
      int q = quant_matrix[i];
      int level = (block[i] * 16) / q;
      coeffs[b * 64 + zigzag[i]] = level;
    }
  }
  int sum = 0;
  for (i = 0; i < NBLOCKS * 64; i = i + 1) {
    sum = (sum + coeffs[i] * (i & 31)) & 16777215;
  }
  print_int(sum);
  return sum;
}
"""
)

MPEG2DEC_SOURCE = (
    """
int NBLOCKS = 12;
int coeffs[768];
int frame_out[768];
int block[64];
"""
    + _TABLES
    + _DCT
    + """
int main() {
  int b;
  int i;
  int seed = 11;
  for (i = 0; i < NBLOCKS * 64; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    int mag = (seed >> 24) & 63;
    if ((i & 63) > 20) { mag = mag & 3; }
    coeffs[i] = mag - 32;
  }
  for (b = 0; b < NBLOCKS; b = b + 1) {
    for (i = 0; i < 64; i = i + 1) {
      int level = coeffs[b * 64 + zigzag[i]];
      block[i] = (level * quant_matrix[i]) / 16;
    }
    idct8x8(block);
    for (i = 0; i < 64; i = i + 1) {
      int v = block[i];
      if (v > 255) { v = 255; }
      if (v < -256) { v = -256; }
      frame_out[b * 64 + i] = v;
    }
  }
  int sum = 0;
  for (i = 0; i < NBLOCKS * 64; i = i + 1) {
    sum = (sum + frame_out[i]) & 16777215;
  }
  print_int(sum);
  return sum;
}
"""
)

register(
    Benchmark(
        "mpeg2enc",
        MPEG2ENC_SOURCE,
        "MPEG-2 encoder kernel: forward DCT + quantisation + zig-zag",
        "mediabench",
    )
)

register(
    Benchmark(
        "mpeg2dec",
        MPEG2DEC_SOURCE,
        "MPEG-2 decoder kernel: dequantisation + inverse DCT",
        "mediabench",
    )
)
