"""Program preparation shared by every partitioning scheme.

One :class:`PreparedProgram` per benchmark: the annotated module, its
execution profile, the data-object table, the program-level DFG, and the
access-pattern merge — everything the schemes consume, computed once.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..analysis import (
    ObjectTable,
    PointsToResult,
    ProgramGraph,
    annotate_memory_ops,
)
from ..ir import Module, clone_module, verify_module
from ..lang import compile_source
from ..partition.merges import MergeResult, access_pattern_merge
from ..profiler import Interpreter, ProfileData


class PreparedProgram:
    """A compiled, profiled, annotated program ready for partitioning.

    ``pointsto_tier`` selects the precision tier of the points-to solve
    that annotates the memory ops (``"andersen"`` | ``"field"`` |
    ``"cs"``); everything downstream — object table, access-pattern
    merge, GDP, memory locks — consumes the chosen tier's annotations.
    """

    def __init__(
        self,
        module: Module,
        profile: Optional[ProfileData] = None,
        max_steps: int = 50_000_000,
        pointsto_tier: str = "andersen",
    ):
        self.module = module
        if profile is None:
            interp = Interpreter(module, max_steps=max_steps)
            self.result = interp.run()
            profile = interp.profile
        else:
            self.result = None
        self.profile = profile
        self.pointsto_tier = pointsto_tier
        self.pointsto: PointsToResult = annotate_memory_ops(
            module, tier=pointsto_tier
        )
        self.objects = ObjectTable(module, dict(profile.heap_sizes))
        self.block_freq: Callable[[str, str], float] = profile.frequency_fn()
        self.program_graph = ProgramGraph(module, self.block_freq)
        self.merge: MergeResult = access_pattern_merge(
            self.program_graph, self.objects
        )

    #: Default unroll factor — restores the region-level ILP the paper's
    #: Trimaran superblocks provide (see repro.lang.unroll).
    DEFAULT_UNROLL = 4

    @classmethod
    def from_source(
        cls,
        source: str,
        name: str = "program",
        max_steps: int = 50_000_000,
        unroll_factor: Optional[int] = None,
        if_convert: bool = True,
        optimize: bool = True,
        pointsto_tier: str = "andersen",
    ) -> "PreparedProgram":
        """Compile MiniC source — with if-conversion, loop unrolling and
        scalar optimization by default, recovering the region-level ILP
        and code quality of the paper's hyperblock-forming compiler —
        then profile and prepare it."""
        if unroll_factor is None:
            unroll_factor = cls.DEFAULT_UNROLL
        module = compile_source(
            source, name, unroll_factor=unroll_factor, if_convert=if_convert
        )
        if optimize:
            from ..opt import optimize_module

            optimize_module(module)
        return cls(module, max_steps=max_steps, pointsto_tier=pointsto_tier)

    # -- per-scheme working copies -------------------------------------------------

    def fresh_copy(self):
        """(clone, uid map) — schemes mutate clones, never the original."""
        return clone_module(self.module)

    def translated_op_counts(self, uid_map: Dict[int, int]):
        """Per-op dynamic object-access counters re-keyed onto a clone."""
        return {
            uid_map[uid]: counts
            for uid, counts in self.profile.op_object_counts.items()
            if uid in uid_map
        }

    def object_access_counts(self) -> Dict[str, int]:
        """Total dynamic accesses per data object."""
        return dict(self.profile.object_access_counts())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<prepared {self.module.name}: {self.module.op_count()} ops, "
            f"{len(self.objects)} objects>"
        )
