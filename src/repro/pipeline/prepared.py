"""Program preparation shared by every partitioning scheme.

One :class:`PreparedProgram` per benchmark: the annotated module, its
execution profile, the data-object table, the program-level DFG, and the
access-pattern merge — everything the schemes consume, computed once.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..analysis import (
    ObjectTable,
    PointsToResult,
    ProgramGraph,
    annotate_memory_ops,
)
from ..ir import Module, clone_module, renumber_ops
from ..lang import compile_source
from ..partition.merges import MergeResult, access_pattern_merge
from ..profiler import Interpreter, ProfileData

#: Sentinel distinguishing "kwarg not passed" from an explicit value, so
#: the deprecation shim only warns on actual legacy spellings.
_UNSET = object()


def _resolve_tier(owner: str, pointsto_tier, config, legacy_warn: bool) -> str:
    if pointsto_tier is not _UNSET:
        if legacy_warn:
            from ..exec.runconfig import warn_legacy_kwarg

            warn_legacy_kwarg(owner, "pointsto_tier", "pointsto_tier")
        return pointsto_tier
    if config is not None:
        return config.pointsto_tier
    return "andersen"


class PreparedProgram:
    """A compiled, profiled, annotated program ready for partitioning.

    The points-to precision tier (``"andersen"`` | ``"field"`` | ``"cs"``)
    selecting the solve that annotates the memory ops comes from
    ``config`` (a :class:`~repro.exec.RunConfig`); everything downstream —
    object table, access-pattern merge, GDP, memory locks — consumes the
    chosen tier's annotations.  The bare ``pointsto_tier=`` keyword still
    works but is deprecated (DESIGN.md section 8).

    ``profile`` and ``pointsto`` let the artifact cache rehydrate a
    prepared program without re-interpreting or re-solving: the serialized
    module text already carries the ``mem_objects`` annotations.

    ``profile_mode="static"`` skips the interpreter entirely and
    synthesizes the profile from the abstract-interpretation access-region
    analysis (``analysis.dataflow.staticprofile``) — the partitioners then
    run on derived weights instead of measured ones.
    """

    def __init__(
        self,
        module: Module,
        profile: Optional[ProfileData] = None,
        max_steps: int = 50_000_000,
        pointsto_tier=_UNSET,
        config=None,
        pointsto: Optional[PointsToResult] = None,
        profile_mode: Optional[str] = None,
        _legacy_warn: bool = True,
    ):
        self.module = module
        self.pointsto_tier = _resolve_tier(
            "PreparedProgram", pointsto_tier, config, _legacy_warn
        )
        if profile_mode is None:
            profile_mode = config.profile if config is not None else "dynamic"
        self.profile_mode = profile_mode
        if profile is None and profile_mode == "static":
            # Static preparation annotates first: the region analysis
            # needs the points-to object sets the interpreter path only
            # computes afterwards.
            from ..analysis.dataflow.staticprofile import build_static_profile

            self.pointsto = (
                pointsto
                if pointsto is not None
                else annotate_memory_ops(module, tier=self.pointsto_tier)
            )
            profile = build_static_profile(module, pointsto=self.pointsto)
            self.result = None
            self.profile = profile
        else:
            if profile is None:
                interp = Interpreter(module, max_steps=max_steps)
                self.result = interp.run()
                profile = interp.profile
            else:
                self.result = None
            self.profile = profile
            self.pointsto = (
                pointsto
                if pointsto is not None
                else annotate_memory_ops(module, tier=self.pointsto_tier)
            )
        self._fingerprint: Optional[str] = None
        self.objects = ObjectTable(module, dict(profile.heap_sizes))
        self.block_freq: Callable[[str, str], float] = profile.frequency_fn()
        self.program_graph = ProgramGraph(module, self.block_freq)
        self.merge: MergeResult = access_pattern_merge(
            self.program_graph, self.objects
        )

    #: Default unroll factor — restores the region-level ILP the paper's
    #: Trimaran superblocks provide (see repro.lang.unroll).
    DEFAULT_UNROLL = 4

    @classmethod
    def from_source(
        cls,
        source: str,
        name: str = "program",
        max_steps: int = 50_000_000,
        unroll_factor: Optional[int] = None,
        if_convert: bool = True,
        optimize: bool = True,
        pointsto_tier=_UNSET,
        config=None,
    ) -> "PreparedProgram":
        """Compile MiniC source — with if-conversion, loop unrolling and
        scalar optimization by default, recovering the region-level ILP
        and code quality of the paper's hyperblock-forming compiler —
        then profile and prepare it."""
        tier = _resolve_tier(
            "PreparedProgram.from_source", pointsto_tier, config, True
        )
        profile_mode = config.profile if config is not None else "dynamic"
        if unroll_factor is None:
            unroll_factor = cls.DEFAULT_UNROLL
        module = compile_source(
            source, name, unroll_factor=unroll_factor, if_convert=if_convert
        )
        if optimize:
            from ..opt import optimize_module

            optimize_module(module)
        # Canonicalize uid order before any uid-keyed side table exists:
        # the optimizer creates ops out of textual order, and partitioner
        # tie-breaks on relative uid order must match what a cache
        # rehydration (uids in parse order) would produce.
        renumber_ops(module)
        return cls(
            module, max_steps=max_steps, pointsto_tier=tier,
            profile_mode=profile_mode, _legacy_warn=False,
        )

    def fingerprint(self) -> str:
        """Content hash of the annotated module (memoized); the IR half of
        every outcome-cache key."""
        if self._fingerprint is None:
            from ..exec.artifacts import module_fingerprint

            self._fingerprint = module_fingerprint(self.module)
        return self._fingerprint

    # -- per-scheme working copies -------------------------------------------------

    def fresh_copy(self):
        """(clone, uid map) — schemes mutate clones, never the original."""
        return clone_module(self.module)

    def translated_op_counts(self, uid_map: Dict[int, int]):
        """Per-op dynamic object-access counters re-keyed onto a clone."""
        return {
            uid_map[uid]: counts
            for uid, counts in self.profile.op_object_counts.items()
            if uid in uid_map
        }

    def object_access_counts(self) -> Dict[str, int]:
        """Total dynamic accesses per data object."""
        return dict(self.profile.object_access_counts())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<prepared {self.module.name}: {self.module.op_count()} ops, "
            f"{len(self.objects)} objects>"
        )
