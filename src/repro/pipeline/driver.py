"""One-call driver: compile → profile → partition → schedule → evaluate."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..machine import Machine
from ..partition.gdp import GDPConfig
from ..partition.rhop import RHOPConfig
from .prepared import _UNSET, PreparedProgram
from .schemes import SchemeOutcome, run_scheme


class Pipeline:
    """Runs partitioning schemes over prepared programs.

    Configuration comes from one frozen :class:`~repro.exec.RunConfig`
    (see :meth:`from_config`); the legacy ``validate=`` /
    ``pointsto_tier=`` keywords still work behind a deprecation shim
    (DESIGN.md section 8).  The legacy constructor defaults to
    ``cache="off"`` so direct ``Pipeline(...)`` use keeps its historical
    recompute-everything behaviour; configs built by callers default to
    the artifact cache being on.

    Example
    -------
    >>> from repro.exec import RunConfig
    >>> from repro.pipeline import Pipeline
    >>> pipe = Pipeline.from_config(RunConfig(latency=5, validate=True))
    """

    def __init__(
        self,
        machine: Optional[Machine] = None,
        gdp_config: Optional[GDPConfig] = None,
        rhop_config: Optional[RHOPConfig] = None,
        validate=_UNSET,
        pointsto_tier=_UNSET,
        config=None,
    ):
        from ..exec.runconfig import RunConfig, warn_legacy_kwarg

        if config is None:
            if validate is not _UNSET:
                warn_legacy_kwarg("Pipeline", "validate", "validate")
            if pointsto_tier is not _UNSET:
                warn_legacy_kwarg("Pipeline", "pointsto_tier", "pointsto_tier")
            config = RunConfig(
                validate=validate if validate is not _UNSET else False,
                pointsto_tier=(
                    pointsto_tier if pointsto_tier is not _UNSET
                    else "andersen"
                ),
                cache="off",
            )
        elif validate is not _UNSET or pointsto_tier is not _UNSET:
            raise ValueError(
                "pass either config= or the legacy keywords, not both"
            )
        self.config = config
        self.machine = machine if machine is not None else config.build_machine()
        #: Expert knobs overriding the partitioner defaults; when either
        #: is set, results are no longer a function of the RunConfig cache
        #: key, so the artifact cache is bypassed.
        self.gdp_config = gdp_config
        self.rhop_config = rhop_config
        #: When set, every phase output is checked against the paper's
        #: invariants; :class:`repro.lint.PartitionValidityError` is raised
        #: at the first violating phase.
        self.validate = config.validate
        #: Points-to precision tier used by :meth:`prepare`.
        self.pointsto_tier = config.pointsto_tier

    @classmethod
    def from_config(
        cls,
        config,
        machine: Optional[Machine] = None,
        gdp_config: Optional[GDPConfig] = None,
        rhop_config: Optional[RHOPConfig] = None,
    ) -> "Pipeline":
        """The non-deprecated constructor: everything from a RunConfig."""
        return cls(
            machine=machine, gdp_config=gdp_config, rhop_config=rhop_config,
            config=config,
        )

    def prepare(self, source: str, name: str = "program") -> PreparedProgram:
        return PreparedProgram.from_source(source, name, config=self.config)

    def _cache(self):
        from ..exec.cache import ArtifactCache

        return ArtifactCache(self.config.cache_dir, self.config.cache)

    def _cache_usable(self) -> bool:
        """The artifact cache only answers for results that are a pure
        function of the RunConfig key — custom partitioner configs are
        outside it."""
        return (
            self.config.cacheable_results
            and self.gdp_config is None
            and self.rhop_config is None
        )

    def run(
        self,
        prepared: PreparedProgram,
        scheme: str = "gdp",
        object_home: Optional[Dict[str, int]] = None,
        validate: Optional[bool] = None,
    ) -> SchemeOutcome:
        return run_scheme(
            prepared,
            self.machine,
            scheme,
            gdp_config=self.gdp_config,
            rhop_config=self.rhop_config,
            object_home=object_home,
            validate=self.validate if validate is None else validate,
            seed_offset=self.config.seed,
        )

    def run_all(
        self,
        prepared: PreparedProgram,
        schemes: Iterable[str] = ("unified", "gdp", "profilemax", "naive"),
    ) -> Dict[str, SchemeOutcome]:
        """Run each distinct scheme once, in first-seen order (a caller
        passing a list that repeats a scheme doesn't pay for it twice).
        With a cache-enabled config, each scheme is served from / stored
        into the artifact cache via the execution engine."""
        if not self._cache_usable():
            return {
                name: self.run(prepared, name)
                for name in dict.fromkeys(schemes)
            }
        from ..exec.engine import run_prepared_scheme

        cache = self._cache()
        return {
            name: run_prepared_scheme(
                prepared, self.machine, self.config, name, cache,
                validate=self.validate,
            )[0]
            for name in dict.fromkeys(schemes)
        }

    def compare(
        self,
        prepared: PreparedProgram,
        schemes: Iterable[str] = ("gdp", "profilemax", "naive"),
    ) -> Dict[str, float]:
        """Relative performance of each scheme vs the unified upper bound
        (the paper's headline metric; 1.0 = matches unified memory)."""
        ordered = ["unified"] + [s for s in schemes if s != "unified"]
        outcomes = self.run_all(prepared, ordered)
        base = outcomes["unified"].cycles
        return {
            name: (base / outcomes[name].cycles if outcomes[name].cycles else 0.0)
            for name in dict.fromkeys(schemes)
        }
