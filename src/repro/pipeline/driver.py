"""One-call driver: compile → profile → partition → schedule → evaluate."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..machine import Machine, two_cluster_machine
from ..partition.gdp import GDPConfig
from ..partition.rhop import RHOPConfig
from .prepared import PreparedProgram
from .schemes import SCHEME_TABLE, SchemeOutcome, run_scheme


class Pipeline:
    """Runs partitioning schemes over prepared programs.

    Example
    -------
    >>> from repro.machine import two_cluster_machine
    >>> from repro.pipeline import Pipeline
    >>> pipe = Pipeline(two_cluster_machine(move_latency=5))
    """

    def __init__(
        self,
        machine: Optional[Machine] = None,
        gdp_config: Optional[GDPConfig] = None,
        rhop_config: Optional[RHOPConfig] = None,
        validate: bool = False,
        pointsto_tier: str = "andersen",
    ):
        self.machine = machine or two_cluster_machine()
        self.gdp_config = gdp_config
        self.rhop_config = rhop_config
        #: When set, every phase output is checked against the paper's
        #: invariants; :class:`repro.lint.PartitionValidityError` is raised
        #: at the first violating phase.
        self.validate = validate
        #: Points-to precision tier used by :meth:`prepare`.
        self.pointsto_tier = pointsto_tier

    def prepare(self, source: str, name: str = "program") -> PreparedProgram:
        return PreparedProgram.from_source(
            source, name, pointsto_tier=self.pointsto_tier
        )

    def run(
        self,
        prepared: PreparedProgram,
        scheme: str = "gdp",
        object_home: Optional[Dict[str, int]] = None,
        validate: Optional[bool] = None,
    ) -> SchemeOutcome:
        return run_scheme(
            prepared,
            self.machine,
            scheme,
            gdp_config=self.gdp_config,
            rhop_config=self.rhop_config,
            object_home=object_home,
            validate=self.validate if validate is None else validate,
        )

    def run_all(
        self,
        prepared: PreparedProgram,
        schemes: Iterable[str] = ("unified", "gdp", "profilemax", "naive"),
    ) -> Dict[str, SchemeOutcome]:
        """Run each distinct scheme once, in first-seen order (a caller
        passing a list that repeats a scheme doesn't pay for it twice)."""
        return {
            name: self.run(prepared, name) for name in dict.fromkeys(schemes)
        }

    def compare(
        self,
        prepared: PreparedProgram,
        schemes: Iterable[str] = ("gdp", "profilemax", "naive"),
    ) -> Dict[str, float]:
        """Relative performance of each scheme vs the unified upper bound
        (the paper's headline metric; 1.0 = matches unified memory)."""
        ordered = ["unified"] + [s for s in schemes if s != "unified"]
        outcomes = self.run_all(prepared, ordered)
        base = outcomes["unified"].cycles
        return {
            name: (base / outcomes[name].cycles if outcomes[name].cycles else 0.0)
            for name in dict.fromkeys(schemes)
        }
