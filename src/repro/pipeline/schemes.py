"""The four object/computation partitioning schemes of Table 1.

| Algorithm   | Object partitioner        | Object assignment      | Computation |
|-------------|---------------------------|------------------------|-------------|
| GDP         | Global Data Partitioning  | (from graph partition) | RHOP        |
| Profile Max | RHOP (first pass)         | Greedy by dyn. freq    | RHOP        |
| Naïve       | none (post-pass moves)    | max-access, no balance | RHOP        |
| Unified     | n/a (single memory)       | n/a                    | RHOP        |

Every scheme works on its own clone of the prepared module, ends with
intercluster move insertion, and is evaluated by profile-weighted list
scheduling.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from ..evalmodel import EvalResult, evaluate_module
from ..ir import Module
from ..machine import Machine
from ..partition.assign import insert_intercluster_moves
from ..partition.gdp import DataPartition, GDPConfig, gdp_partition
from ..partition.locks import memory_locks
from ..partition.rhop import RHOP, RHOPConfig, RHOPResult
from ..resilience.faults import FaultPlan
from ..resilience.report import PhaseTimer
from ..lint import (
    DiagnosticReport,
    PartitionValidityError,
    check_data_partition,
    check_memory_locks,
    check_moves,
    check_schedule,
    diagnose_lock_violations,
)
from .prepared import PreparedProgram

#: Scheme descriptors used to regenerate Table 1.
SCHEME_TABLE = {
    "gdp": {
        "label": "GDP",
        "object_partitioner": "Global Data Partitioning",
        "object_assignment": "multilevel graph partition (size-balanced)",
        "computation_partitioner": "RHOP",
        "rhop_runs": 1,
    },
    "profilemax": {
        "label": "Profile Max",
        "object_partitioner": "RHOP",
        "object_assignment": "Greedy (dynamic frequency order)",
        "computation_partitioner": "RHOP",
        "rhop_runs": 2,
    },
    "naive": {
        "label": "Naive",
        "object_partitioner": "None - data object moves inserted "
        "post-computation partitioning",
        "object_assignment": "highest-access cluster (no balance)",
        "computation_partitioner": "RHOP",
        "rhop_runs": 1,
    },
    "unified": {
        "label": "Unified Memory",
        "object_partitioner": "N/A - data object moves not required for "
        "single, unified memory",
        "object_assignment": "N/A",
        "computation_partitioner": "RHOP",
        "rhop_runs": 1,
    },
}


class SchemeOutcome:
    """Everything one scheme produced for one benchmark/machine pair.

    ``timings`` maps pipeline-phase names (``"gdp"``, ``"homes"``,
    ``"rhop"``, ``"finalize"``) to wall seconds — the per-phase clocks the
    resilience run reports and the compile-time benchmarks both read, so
    the two can never drift apart.  A bare float is accepted for backward
    compatibility and interpreted as the RHOP time.
    """

    def __init__(
        self,
        scheme: str,
        machine: Machine,
        module: Module,
        assignment: Dict[int, int],
        object_home: Optional[Dict[str, int]],
        eval_result: EvalResult,
        timings: Union[float, Dict[str, float]],
        rhop_runs: int,
    ):
        self.scheme = scheme
        self.machine = machine
        self.module = module
        self.assignment = assignment
        self.object_home = object_home
        self.eval = eval_result
        if isinstance(timings, dict):
            self.timings = dict(timings)
        else:
            self.timings = {"rhop": float(timings)}
        self.rhop_runs = rhop_runs
        #: Data-movement roofline summary (``evalmodel.roofline``), set by
        #: the scheme runners once the move count is known.
        self.roofline: Optional[Dict[str, float]] = None

    @property
    def rhop_seconds(self) -> float:
        """Seconds spent in the detailed computation partitioner (the
        Section 4.5 compile-time metric), derived from :attr:`timings`."""
        return self.timings.get("rhop", 0.0)

    @property
    def cycles(self) -> float:
        return self.eval.cycles

    @property
    def dynamic_moves(self) -> float:
        return self.eval.dynamic_moves

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.scheme}: {self.cycles:.0f} cycles>"


def run_scheme(
    prepared: PreparedProgram,
    machine: Machine,
    scheme: str,
    gdp_config: Optional[GDPConfig] = None,
    rhop_config: Optional[RHOPConfig] = None,
    object_home: Optional[Dict[str, int]] = None,
    pmax_imbalance: float = 1.15,
    validate: bool = False,
    seed_offset: int = 0,
    faults: Optional[FaultPlan] = None,
) -> SchemeOutcome:
    """Run one named scheme end to end.

    ``object_home`` overrides the object placement (used by the exhaustive
    search of Figure 9 with the "gdp" second-pass machinery).

    With ``validate=True`` every phase output is checked against the
    paper's invariants (see :mod:`repro.lint.partcheck`) and a
    :class:`~repro.lint.PartitionValidityError` is raised at the first
    phase whose output violates one.

    ``seed_offset`` bumps the randomized partitioners' base seeds (the
    resilient pipeline's retry-with-reseed knob); ``faults`` installs a
    deterministic :class:`~repro.resilience.faults.FaultPlan` whose
    clauses fire at this function's injection points.
    """
    if seed_offset:
        gdp_config = (gdp_config or GDPConfig()).reseeded(seed_offset)
        rhop_config = (rhop_config or RHOPConfig()).reseeded(seed_offset)
    if faults is not None:
        machine = faults.machine_for(machine)
    if scheme == "gdp":
        return run_gdp(
            prepared, machine, gdp_config, rhop_config, object_home,
            validate=validate, faults=faults,
        )
    if scheme == "profilemax":
        return run_profile_max(
            prepared, machine, rhop_config, pmax_imbalance, validate=validate,
            faults=faults,
        )
    if scheme == "naive":
        return run_naive(
            prepared, machine, rhop_config, validate=validate, faults=faults
        )
    if scheme == "unified":
        return run_unified(
            prepared, machine, rhop_config, validate=validate, faults=faults
        )
    raise ValueError(f"unknown scheme {scheme!r} (see SCHEME_TABLE)")


def _with_roofline(
    prepared: PreparedProgram, outcome: SchemeOutcome
) -> SchemeOutcome:
    """Price the outcome's data movement against the program's I/O lower
    bound (one memoized model per prepared program serves all schemes)."""
    from ..evalmodel.roofline import roofline_for

    outcome.roofline = roofline_for(prepared).report(outcome.dynamic_moves)
    return outcome


def _require_valid(report: DiagnosticReport, phase: str) -> None:
    """Raise :class:`PartitionValidityError` if ``report`` holds errors."""
    if report.has_errors:
        raise PartitionValidityError(report, phase=phase)


def _validate_computation(
    prepared: PreparedProgram,
    module: Module,
    result: RHOPResult,
    assignment: Dict[int, int],
    object_home: Optional[Dict[str, int]],
) -> None:
    """Post-phase-2 hook: locks honoured and feasible for the machine."""
    report = diagnose_lock_violations(result, module)
    if object_home is not None:
        report.extend(
            check_memory_locks(
                module, assignment, object_home,
                prepared.object_access_counts(), phase=result.phase,
            )
        )
    _require_valid(report, result.phase)


def _validate_final(
    machine: Machine, module: Module, assignment: Dict[int, int]
) -> None:
    """Post-move-insertion hook: cut edges bridged, schedule feasible."""
    _require_valid(check_moves(module, assignment, machine), "moves")
    _require_valid(check_schedule(module, assignment, machine), "schedule")


def finalize_and_evaluate(
    prepared: PreparedProgram,
    machine: Machine,
    module: Module,
    assignment: Dict[int, int],
    rhop_result: RHOPResult,
) -> EvalResult:
    """Insert intercluster moves and evaluate cycles.

    Public so ablations can plug alternative computation partitioners
    (e.g. BUG) into the same finishing pipeline."""
    for func in module:
        homes = rhop_result.vreg_home.get(func.name, {})
        param_homes = {
            p.vid: homes[p.vid] for p in func.params if p.vid in homes
        }
        insert_intercluster_moves(func, assignment, machine, param_homes)
    return evaluate_module(module, assignment, machine, prepared.block_freq)


def run_unified(
    prepared: PreparedProgram,
    machine: Machine,
    rhop_config: Optional[RHOPConfig] = None,
    validate: bool = False,
    faults: Optional[FaultPlan] = None,
) -> SchemeOutcome:
    """Upper bound: single multiported memory, plain RHOP."""
    timer = PhaseTimer()
    if faults is not None:
        faults.maybe_raise("unified")
    module, _uid_map = prepared.fresh_copy()
    rhop = RHOP(machine.as_unified(), rhop_config, prepared.block_freq)
    if faults is not None:
        faults.maybe_raise("rhop")
    with timer.phase("rhop"):
        result = rhop.partition_module(module)
    if validate:
        _validate_computation(prepared, module, result, result.assignment, None)
    with timer.phase("finalize"):
        eval_result = finalize_and_evaluate(
            prepared, machine, module, result.assignment, result
        )
    if validate:
        _validate_final(machine, module, result.assignment)
    return _with_roofline(prepared, SchemeOutcome(
        "unified", machine, module, result.assignment, None, eval_result,
        timer.timings, 1,
    ))


def run_gdp(
    prepared: PreparedProgram,
    machine: Machine,
    gdp_config: Optional[GDPConfig] = None,
    rhop_config: Optional[RHOPConfig] = None,
    object_home: Optional[Dict[str, int]] = None,
    validate: bool = False,
    faults: Optional[FaultPlan] = None,
) -> SchemeOutcome:
    """The paper's method: global data partitioning, then locked RHOP."""
    timer = PhaseTimer()
    if object_home is None:
        if faults is not None:
            faults.maybe_raise("gdp")
        with timer.phase("gdp"):
            data_partition = gdp_partition(
                prepared.module,
                prepared.objects,
                machine.num_clusters,
                block_freq=prepared.block_freq,
                config=gdp_config,
                merge=prepared.merge,
                program_graph=prepared.program_graph,
            )
        object_home = data_partition.object_home
    if validate:
        _require_valid(
            check_data_partition(
                prepared.objects, object_home, machine,
                size_imbalance=(gdp_config or GDPConfig()).size_imbalance,
                merge=prepared.merge, phase="gdp",
            ),
            "gdp",
        )
    module, _uid_map = prepared.fresh_copy()
    locks = memory_locks(module, object_home, prepared.object_access_counts())
    if faults is not None:
        # Post-lock corruption models phase-1 output poisoning: the homes
        # the run records disagree with the locks RHOP honoured — exactly
        # the cross-phase inconsistency the validity checker detects.
        locks = faults.drop_locks(locks, "gdp")
        object_home = faults.corrupt_homes(
            object_home, machine.num_clusters, "gdp",
            accessed=prepared.object_access_counts(),
        )
        faults.maybe_raise("rhop")
    rhop = RHOP(machine.as_partitioned(), rhop_config, prepared.block_freq)
    with timer.phase("rhop"):
        result = rhop.partition_module(module, mem_locks=locks)
    if validate:
        _validate_computation(
            prepared, module, result, result.assignment, object_home
        )
    with timer.phase("finalize"):
        eval_result = finalize_and_evaluate(
            prepared, machine, module, result.assignment, result
        )
    if validate:
        _validate_final(machine, module, result.assignment)
    return _with_roofline(prepared, SchemeOutcome(
        "gdp", machine, module, result.assignment, dict(object_home),
        eval_result, timer.timings, 1,
    ))


def run_profile_max(
    prepared: PreparedProgram,
    machine: Machine,
    rhop_config: Optional[RHOPConfig] = None,
    imbalance: float = 1.15,
    validate: bool = False,
    faults: Optional[FaultPlan] = None,
) -> SchemeOutcome:
    """Profile Max: RHOP assuming unified memory, greedy object homing by
    dynamic access frequency (with a memory-balance threshold), then a
    second locked RHOP run."""
    timer = PhaseTimer()
    module, uid_map = prepared.fresh_copy()
    rhop1 = RHOP(machine.as_unified(), rhop_config, prepared.block_freq)
    if faults is not None:
        faults.maybe_raise("rhop")
    with timer.phase("rhop"):
        first = rhop1.partition_module(module)

    if faults is not None:
        faults.maybe_raise("profilemax")
    op_counts = prepared.translated_op_counts(uid_map)
    with timer.phase("homes"):
        object_home = _greedy_profile_homes(
            prepared, module, first.assignment, op_counts, machine, imbalance
        )
    if validate:
        _require_valid(
            check_data_partition(
                prepared.objects, object_home, machine,
                size_imbalance=imbalance, merge=prepared.merge,
                phase="profilemax",
            ),
            "profilemax",
        )

    module2, _ = prepared.fresh_copy()
    locks = memory_locks(module2, object_home, prepared.object_access_counts())
    if faults is not None:
        locks = faults.drop_locks(locks, "profilemax")
        object_home = faults.corrupt_homes(
            object_home, machine.num_clusters, "profilemax",
            accessed=prepared.object_access_counts(),
        )
    rhop2 = RHOP(machine.as_partitioned(), rhop_config, prepared.block_freq)
    with timer.phase("rhop"):
        second = rhop2.partition_module(module2, mem_locks=locks)
    if validate:
        _validate_computation(
            prepared, module2, second, second.assignment, object_home
        )
    with timer.phase("finalize"):
        eval_result = finalize_and_evaluate(
            prepared, machine, module2, second.assignment, second
        )
    if validate:
        _validate_final(machine, module2, second.assignment)
    return _with_roofline(prepared, SchemeOutcome(
        "profilemax", machine, module2, second.assignment, object_home,
        eval_result, timer.timings, 2,
    ))


def _greedy_profile_homes(
    prepared: PreparedProgram,
    module: Module,
    assignment: Dict[int, int],
    op_counts,
    machine: Machine,
    imbalance: float,
) -> Dict[str, int]:
    """Greedy object homing in dynamic-frequency order with a balance cap.

    Objects grouped exactly as GDP's coarsening grouped them (the paper:
    "The program-level graph of the application is created and coarsened
    as before, so objects are grouped together the same").
    """
    k = machine.num_clusters
    merge = prepared.merge
    groups = merge.object_groups()

    # Dynamic accesses of each group per cluster, under the first-pass
    # (unified) computation partition.
    group_freq: Dict[int, Dict[int, float]] = {g.gid: {} for g in groups}
    group_by_object = merge.group_of_object
    for func in module:
        for op in func.operations():
            if not op.is_memory_access():
                continue
            counts = op_counts.get(op.uid)
            cluster = assignment[op.uid]
            for obj in op.mem_objects():
                gid = group_by_object.get(obj)
                if gid is None:
                    continue
                dyn = counts.get(obj, 0) if counts else 0
                per = group_freq.setdefault(gid, {})
                per[cluster] = per.get(cluster, 0.0) + dyn

    total_bytes = float(prepared.objects.total_size())
    cap = imbalance * total_bytes / k if total_bytes > 0 else float("inf")
    loads = [0.0] * k
    object_home: Dict[str, int] = {}

    ordered = sorted(
        groups,
        key=lambda g: -sum(group_freq.get(g.gid, {}).values()),
    )
    for group in ordered:
        per = group_freq.get(group.gid, {})
        preference = sorted(
            range(k), key=lambda c: (-per.get(c, 0.0), loads[c], c)
        )
        size = prepared.objects.size_of(group.object_ids)
        chosen = None
        for c in preference:
            if loads[c] + size <= cap or size > cap:
                chosen = c
                break
        if chosen is None:
            chosen = min(range(k), key=lambda c: loads[c])
        loads[chosen] += size
        for obj in group.object_ids:
            object_home[obj] = chosen
    return object_home


def run_naive(
    prepared: PreparedProgram,
    machine: Machine,
    rhop_config: Optional[RHOPConfig] = None,
    validate: bool = False,
    faults: Optional[FaultPlan] = None,
) -> SchemeOutcome:
    """Naïve post-pass placement (Section 2 / Figure 2): partition assuming
    unified memory, then home each object where it is accessed most and
    patch remote accesses with intercluster transfers.  No balance, and
    the computation partitioner never sees the data locations."""
    timer = PhaseTimer()
    if faults is not None:
        faults.maybe_raise("naive")
    module, uid_map = prepared.fresh_copy()
    rhop = RHOP(machine.as_unified(), rhop_config, prepared.block_freq)
    if faults is not None:
        faults.maybe_raise("rhop")
    with timer.phase("rhop"):
        result = rhop.partition_module(module)
    assignment = dict(result.assignment)

    op_counts = prepared.translated_op_counts(uid_map)
    k = machine.num_clusters
    with timer.phase("homes"):
        per_object: Dict[str, Dict[int, float]] = {}
        for func in module:
            for op in func.operations():
                if not op.is_memory_access():
                    continue
                counts = op_counts.get(op.uid)
                cluster = assignment[op.uid]
                for obj in op.mem_objects():
                    dyn = counts.get(obj, 0) if counts else 0
                    per = per_object.setdefault(obj, {})
                    per[cluster] = per.get(cluster, 0.0) + dyn

        object_home: Dict[str, int] = {}
        for obj in prepared.objects.ids():
            per = per_object.get(obj, {})
            object_home[obj] = (
                max(range(k), key=lambda c: (per.get(c, 0.0), -c)) if per else 0
            )

        # Post-pass: rebind each memory operation to its object's cluster;
        # the generic move inserter then materialises the transfers.
        access_counts = prepared.object_access_counts()
        rebinds = memory_locks(module, object_home, access_counts)
        if faults is not None:
            rebinds = faults.drop_locks(rebinds, "naive")
        for uid, cluster in rebinds.items():
            assignment[uid] = cluster
        if faults is not None:
            object_home = faults.corrupt_homes(
                object_home, k, "naive", accessed=access_counts
            )

    if validate:
        # Naïve has no balance contract: only coverage and lock honesty.
        _require_valid(
            check_data_partition(
                prepared.objects, object_home, machine, phase="naive"
            ),
            "naive",
        )
        _validate_computation(prepared, module, result, assignment, object_home)
    with timer.phase("finalize"):
        eval_result = finalize_and_evaluate(
            prepared, machine, module, assignment, result
        )
    if validate:
        _validate_final(machine, module, assignment)
    return _with_roofline(prepared, SchemeOutcome(
        "naive", machine, module, assignment, object_home, eval_result,
        timer.timings, 1,
    ))
