"""End-to-end pipeline: preparation, the four Table-1 schemes, and the
one-call driver."""

from .driver import Pipeline
from .prepared import PreparedProgram
from .schemes import (
    SCHEME_TABLE,
    finalize_and_evaluate,
    SchemeOutcome,
    run_gdp,
    run_naive,
    run_profile_max,
    run_scheme,
    run_unified,
)

__all__ = [
    "Pipeline",
    "PreparedProgram",
    "SCHEME_TABLE",
    "finalize_and_evaluate",
    "SchemeOutcome",
    "run_gdp",
    "run_naive",
    "run_profile_max",
    "run_scheme",
    "run_unified",
]
