"""VLIW scheduling: per-block dependence graphs and the cycle-accurate
resource-table list scheduler."""

from .depgraph import DepEdge, DependenceGraph
from .listsched import ListScheduler, ScheduleResult

__all__ = ["DepEdge", "DependenceGraph", "ListScheduler", "ScheduleResult"]
