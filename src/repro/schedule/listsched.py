"""Cycle-accurate VLIW list scheduler for a clustered machine.

Schedules one basic block given a cluster assignment for every operation.
Resources modelled per cycle: FU slots per (cluster, class) — units are
fully pipelined — and the shared intercluster bus with its fixed
moves-per-cycle bandwidth.  Flow dependences that cross clusters are
expected to be materialised as explicit ``ICMOVE`` operations *before*
scheduling (see :mod:`repro.partition.assign`); the scheduler only checks
resources and dependence delays.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..ir import BasicBlock, Opcode, Operation
from ..machine import FUClass, Machine
from .depgraph import DependenceGraph


class ScheduleResult:
    """Outcome of scheduling one block."""

    def __init__(
        self,
        block: BasicBlock,
        issue_cycle: Dict[int, int],
        length: int,
        move_count: int,
    ):
        self.block = block
        self.issue_cycle = issue_cycle  # op uid -> cycle
        self.length = length  # cycles until all results complete
        self.move_count = move_count  # ICMOVE ops in the block

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<schedule {self.block.name}: {self.length} cycles>"


class ListScheduler:
    """Greedy cycle-by-cycle scheduler with critical-path priority."""

    def __init__(self, machine: Machine):
        self.machine = machine

    def schedule_block(
        self,
        block: BasicBlock,
        cluster_of: Dict[int, int],
        depgraph: Optional[DependenceGraph] = None,
    ) -> ScheduleResult:
        """Schedule ``block``; ``cluster_of`` maps op uid -> cluster index.

        Raises ``KeyError`` if an operation lacks a cluster assignment.
        """
        machine = self.machine
        graph = depgraph or DependenceGraph(block, machine.latency_of)
        if not graph.ops:
            return ScheduleResult(block, {}, 0, 0)

        unscheduled_preds: Dict[int, int] = {
            op.uid: len(graph.preds[op.uid]) for op in graph.ops
        }
        earliest: Dict[int, int] = {op.uid: 0 for op in graph.ops}
        issue: Dict[int, int] = {}
        # ready heap entries: (-height, seq, uid); seq keeps FIFO stability.
        ready: List[Tuple[int, int, int]] = []
        for seq, op in enumerate(graph.ops):
            if unscheduled_preds[op.uid] == 0:
                heapq.heappush(ready, (-graph.height(op.uid), seq, op.uid))

        # Resource tables: (cycle, cluster, fu_class) -> used; bus per cycle.
        fu_used: Dict[Tuple[int, int, FUClass], int] = {}
        bus_used: Dict[int, int] = {}
        bandwidth = machine.network.bandwidth

        move_count = 0
        scheduled = 0
        total = len(graph.ops)
        cycle = 0
        max_completion = 0
        seq_counter = total

        while scheduled < total:
            # Pull ops whose dependence-earliest time has arrived.
            issued_this_cycle = True
            while issued_this_cycle:
                issued_this_cycle = False
                deferred: List[Tuple[int, int, int]] = []
                while ready:
                    neg_height, seq, uid = heapq.heappop(ready)
                    op = graph.op_by_uid[uid]
                    t = max(cycle, earliest[uid])
                    if t > cycle:
                        deferred.append((neg_height, seq, uid))
                        continue
                    if not self._reserve(op, cluster_of, cycle, fu_used, bus_used, bandwidth):
                        deferred.append((neg_height, seq, uid))
                        continue
                    issue[uid] = cycle
                    scheduled += 1
                    if op.opcode is Opcode.ICMOVE:
                        move_count += 1
                    completion = cycle + machine.latency_of(op)
                    max_completion = max(max_completion, completion)
                    for edge in graph.succs[uid]:
                        earliest[edge.dst] = max(
                            earliest[edge.dst], cycle + edge.delay
                        )
                        unscheduled_preds[edge.dst] -= 1
                        if unscheduled_preds[edge.dst] == 0:
                            seq_counter += 1
                            heapq.heappush(
                                ready,
                                (-graph.height(edge.dst), seq_counter, edge.dst),
                            )
                    issued_this_cycle = True
                for item in deferred:
                    heapq.heappush(ready, item)
            cycle += 1
            if cycle > 4 * total * (machine.move_latency + 8) + 64:
                raise RuntimeError(
                    f"scheduler failed to converge on block {block.name}"
                )

        # A block takes at least one cycle per issued terminator.
        length = max(max_completion, 1)
        return ScheduleResult(block, issue, length, move_count)

    def _reserve(
        self,
        op: Operation,
        cluster_of: Dict[int, int],
        cycle: int,
        fu_used: Dict[Tuple[int, int, FUClass], int],
        bus_used: Dict[int, int],
        bandwidth: int,
    ) -> bool:
        """Try to reserve the resources for issuing ``op`` at ``cycle``."""
        if op.opcode is Opcode.ICMOVE:
            if bus_used.get(cycle, 0) >= bandwidth:
                return False
            bus_used[cycle] = bus_used.get(cycle, 0) + 1
            return True
        cluster = cluster_of[op.uid]
        cls = self.machine.fu_class_of(op)
        key = (cycle, cluster, cls)
        if fu_used.get(key, 0) >= self.machine.units(cluster, cls):
            return False
        fu_used[key] = fu_used.get(key, 0) + 1
        return True
