"""Intra-block dependence graphs.

One DAG per basic block (the scheduling region): flow (def-use), anti
(use-def), output (def-def), memory-ordering and call-barrier edges.
Memory edges are pruned when the points-to annotations prove two accesses
touch disjoint object sets.  The DAG also provides ASAP/ALAP times and the
per-edge *slack* that drives RHOP's coarsening priorities.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..analysis.affine import AffineAddresses
from ..ir import BasicBlock, Opcode, Operation


class DepEdge:
    """A dependence from ``src`` to ``dst`` with a minimum issue delay.

    ``kind``: "flow" (value flows, delay = src latency), "anti" (delay 0),
    "output" (delay 1), "mem"/"call" (ordering, delay depends on kinds).
    Only flow edges require intercluster moves when cut.
    """

    __slots__ = ("src", "dst", "delay", "kind")

    def __init__(self, src: int, dst: int, delay: int, kind: str):
        self.src = src
        self.dst = dst
        self.delay = delay
        self.kind = kind

    def is_flow(self) -> bool:
        return self.kind == "flow"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} {self.src}->{self.dst} d={self.delay}>"


def _objects_disjoint(a: Operation, b: Operation) -> bool:
    """True when points-to annotations prove a and b cannot alias."""
    oa, ob = a.mem_objects(), b.mem_objects()
    return bool(oa) and bool(ob) and not (oa & ob)


class DependenceGraph:
    """The scheduling DAG of one basic block."""

    def __init__(self, block: BasicBlock, latency_of: Callable[[Operation], int]):
        self.block = block
        self.latency_of = latency_of
        self.ops: List[Operation] = list(block.ops)
        self.op_by_uid: Dict[int, Operation] = {op.uid: op for op in self.ops}
        self._affine = AffineAddresses(block)
        self.edges: List[DepEdge] = []
        self.preds: Dict[int, List[DepEdge]] = {op.uid: [] for op in self.ops}
        self.succs: Dict[int, List[DepEdge]] = {op.uid: [] for op in self.ops}
        self._build()
        self._order = [op.uid for op in self.ops]  # block order is topological

        self._asap: Optional[Dict[int, int]] = None
        self._alap: Optional[Dict[int, int]] = None

    # -- construction ------------------------------------------------------------

    def _add_edge(self, src: int, dst: int, delay: int, kind: str) -> None:
        if src == dst:
            return
        edge = DepEdge(src, dst, delay, kind)
        self.edges.append(edge)
        self.preds[dst].append(edge)
        self.succs[src].append(edge)

    def _build(self) -> None:
        last_def: Dict[int, Operation] = {}
        uses_since_def: Dict[int, List[Operation]] = {}
        pending_stores: List[Operation] = []
        pending_loads: List[Operation] = []
        last_call: Optional[Operation] = None
        terminator = self.ops[-1] if self.ops and self.ops[-1].is_terminator() else None

        for op in self.ops:
            # Flow edges from the most recent def of each source register.
            for src in op.register_srcs():
                d = last_def.get(src.vid)
                if d is not None:
                    self._add_edge(d.uid, op.uid, self.latency_of(d), "flow")
                uses_since_def.setdefault(src.vid, []).append(op)
            # Anti and output edges for the destination register.
            if op.dest is not None:
                vid = op.dest.vid
                for use in uses_since_def.get(vid, ()):
                    if use is not op:
                        self._add_edge(use.uid, op.uid, 0, "anti")
                prev = last_def.get(vid)
                if prev is not None:
                    self._add_edge(prev.uid, op.uid, 1, "output")
                last_def[vid] = op
                uses_since_def[vid] = []
            # Memory ordering.
            if op.opcode is Opcode.LOAD:
                for store in pending_stores:
                    if not self._independent(store, op):
                        self._add_edge(
                            store.uid, op.uid, self.latency_of(store), "mem"
                        )
                pending_loads.append(op)
            elif op.opcode is Opcode.STORE:
                for store in pending_stores:
                    if not self._independent(store, op):
                        self._add_edge(store.uid, op.uid, 1, "mem")
                for load in pending_loads:
                    if not self._independent(load, op):
                        self._add_edge(load.uid, op.uid, 0, "mem")
                pending_stores.append(op)
            # Calls are barriers for memory and for other calls.
            if op.is_call():
                for other in pending_stores + pending_loads:
                    self._add_edge(other.uid, op.uid, 0, "call")
                if last_call is not None:
                    self._add_edge(
                        last_call.uid, op.uid, self.latency_of(last_call), "call"
                    )
                pending_stores = []
                pending_loads = []
                last_call = op
            elif op.is_memory_access() and last_call is not None:
                self._add_edge(last_call.uid, op.uid, self.latency_of(last_call), "call")
            # Everything issues no later than the terminator.
            if terminator is not None and op is not terminator:
                self._add_edge(op.uid, terminator.uid, 0, "order")

    def _independent(self, a: Operation, b: Operation) -> bool:
        """Memory accesses proven independent by object sets or by the
        affine address analysis (same array, non-overlapping offsets)."""
        return _objects_disjoint(a, b) or self._affine.provably_disjoint(a, b)

    # -- timing ----------------------------------------------------------------------

    def asap(self) -> Dict[int, int]:
        """Earliest issue cycle per op, unconstrained by resources."""
        if self._asap is None:
            times: Dict[int, int] = {}
            for uid in self._order:
                t = 0
                for edge in self.preds[uid]:
                    t = max(t, times[edge.src] + edge.delay)
                times[uid] = t
            self._asap = times
        return self._asap

    def alap(self) -> Dict[int, int]:
        """Latest issue cycle per op given the critical-path length."""
        if self._alap is None:
            asap = self.asap()
            horizon = max(
                (asap[op.uid] + self.latency_of(op) for op in self.ops), default=0
            )
            times: Dict[int, int] = {}
            for uid in reversed(self._order):
                op = self.op_by_uid[uid]
                t = horizon - self.latency_of(op)
                for edge in self.succs[uid]:
                    t = min(t, times[edge.dst] - edge.delay)
                times[uid] = t
            self._alap = times
        return self._alap

    def slack(self, edge: DepEdge) -> int:
        """Schedule freedom of an edge: alap(dst) - asap(src) - delay."""
        return self.alap()[edge.dst] - self.asap()[edge.src] - edge.delay

    def critical_path_length(self) -> int:
        asap = self.asap()
        return max(
            (asap[op.uid] + self.latency_of(op) for op in self.ops), default=0
        )

    def height(self, uid: int) -> int:
        """Longest delay-weighted path from op to any sink (list-scheduler
        priority)."""
        heights: Dict[int, int] = getattr(self, "_heights", None)
        if heights is None:
            heights = {}
            for node in reversed(self._order):
                op = self.op_by_uid[node]
                h = self.latency_of(op)
                for edge in self.succs[node]:
                    h = max(h, edge.delay + heights[edge.dst])
                heights[node] = h
            self._heights = heights
        return heights[uid]

    def flow_edges(self) -> List[DepEdge]:
        return [e for e in self.edges if e.is_flow()]

    def __len__(self) -> int:
        return len(self.ops)
