"""Resilient scheme execution: retry-with-reseed + degradation ladder.

:class:`ResilientPipeline` wraps :func:`repro.pipeline.schemes.run_scheme`
with the survival policy the paper's own quality ladder implies
(GDP → Profile Max → Naïve → Unified):

1. run the requested scheme; validate its output with the partition
   validity checker (PR 1's ``check_scheme_outcome``);
2. on a raise or a rejected output, *retry with a reseeded randomized
   partitioner* (the multilevel partitioners derive their rng from
   ``seed + attempt`` — the retry bumps the base seed by a large stride
   so restart sets don't overlap);
3. when every retry of a rung fails, *fall back one rung down the
   ladder* and repeat;
4. record every attempt, fault, retry, fallback, and budget event in a
   :class:`~repro.resilience.report.RunReport`.

A shared :class:`~repro.resilience.budget.Budget` bounds the whole run:
the partitioners poll it inside their refinement loops (anytime
behaviour) and the ladder stops spending on retries once it expires.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional

from ..machine import Machine
from ..partition.gdp import GDPConfig
from ..partition.rhop import RHOPConfig
from .errors import LadderExhausted, as_phase_error
from .report import RunReport

#: The paper's quality ladder, best rung first (Table 1 order).
LADDER = ("gdp", "profilemax", "naive", "unified")

#: Seed stride between retry attempts.  The multilevel partitioners run
#: ``restarts`` internal cycles seeded ``seed + 0 .. seed + restarts-1``;
#: a stride much larger than any restart count guarantees a retry explores
#: a disjoint seed range instead of replaying the same cycles shifted.
RESEED_STRIDE = 9973


class ResilientOutcome:
    """A scheme outcome plus the story of how it was obtained.

    ``scheme`` is the rung that actually produced the result;
    ``requested`` what the caller asked for; ``report`` the full event
    log.  Unknown attributes delegate to the wrapped
    :class:`~repro.pipeline.schemes.SchemeOutcome`.
    """

    def __init__(self, outcome, scheme: str, requested: str, report: RunReport):
        self.outcome = outcome
        self.scheme = scheme
        self.requested = requested
        self.report = report

    @property
    def fell_back(self) -> bool:
        return self.scheme != self.requested

    def __getattr__(self, name: str):
        return getattr(self.outcome, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        via = "" if not self.fell_back else f" (fallback from {self.requested})"
        return f"<resilient {self.scheme}{via}: {self.outcome.cycles:.0f} cycles>"


#: Sentinel distinguishing "kwarg not passed" from an explicit value.
_UNSET = object()

#: legacy keyword -> RunConfig field (the DESIGN.md section 8 mapping).
_LEGACY_FIELDS = {
    "retries": "retries",
    "fallback": "fallback",
    "validate": "validate",
    "budget": "max_seconds",
    "faults": "fault_spec",
}


class ResilientPipeline:
    """Runs schemes with retries, fallbacks, budgets, and fault injection.

    Configuration comes from a :class:`~repro.exec.RunConfig` (see
    :meth:`from_config`); the legacy ``retries=`` / ``fallback=`` /
    ``validate=`` / ``budget=`` / ``faults=`` keywords still work behind
    a deprecation shim (DESIGN.md section 8).  ``seed`` offsets every
    attempt's base seed, so sweep cells with different RunConfig seeds
    explore disjoint partitioner restarts.

    Example
    -------
    >>> from repro.exec import RunConfig
    >>> from repro.resilience import ResilientPipeline
    >>> pipe = ResilientPipeline.from_config(
    ...     RunConfig(retries=1, max_seconds=30, fault_spec="raise:gdp@1")
    ... )
    """

    def __init__(
        self,
        machine: Optional[Machine] = None,
        gdp_config: Optional[GDPConfig] = None,
        rhop_config: Optional[RHOPConfig] = None,
        retries=_UNSET,
        fallback=_UNSET,
        validate=_UNSET,
        budget=_UNSET,
        faults=_UNSET,
        schedule_check: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        config=None,
    ):
        from ..exec.runconfig import RunConfig, warn_legacy_kwarg

        legacy = {
            "retries": retries, "fallback": fallback, "validate": validate,
            "budget": budget, "faults": faults,
        }
        if config is None:
            for kwarg, value in legacy.items():
                if value is not _UNSET:
                    warn_legacy_kwarg(
                        "ResilientPipeline", kwarg, _LEGACY_FIELDS[kwarg]
                    )
            retries = 1 if retries is _UNSET else retries
            if retries < 0:
                raise ValueError("retries must be >= 0")
            config = RunConfig(
                retries=retries,
                fallback=True if fallback is _UNSET else fallback,
                validate=True if validate is _UNSET else validate,
                cache="off",
            )
            self.budget = None if budget is _UNSET else budget
            self.faults = None if faults is _UNSET else faults
        else:
            if any(value is not _UNSET for value in legacy.values()):
                raise ValueError(
                    "pass either config= or the legacy keywords, not both"
                )
            self.budget = config.build_budget()
            self.faults = config.build_faults()
        self.config = config
        self.machine = (
            machine if machine is not None else config.build_machine()
        )
        self.gdp_config = gdp_config
        self.rhop_config = rhop_config
        self.retries = config.retries
        self.fallback = config.fallback
        self.validate = config.validate
        self.seed = config.seed
        self.schedule_check = schedule_check
        self._clock = clock

    @classmethod
    def from_config(
        cls,
        config,
        machine: Optional[Machine] = None,
        gdp_config: Optional[GDPConfig] = None,
        rhop_config: Optional[RHOPConfig] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> "ResilientPipeline":
        """The non-deprecated constructor: everything from a RunConfig
        (budget and fault plan are built fresh from ``max_seconds`` /
        ``fault_spec``, so each pipeline owns its own mutable state)."""
        return cls(
            machine=machine, gdp_config=gdp_config, rhop_config=rhop_config,
            clock=clock, config=config,
        )

    # -- configuration plumbing ------------------------------------------------

    def _ladder_from(self, scheme: str) -> List[str]:
        if scheme not in LADDER:
            return [scheme]
        return list(LADDER[LADDER.index(scheme):])

    def _gdp_config(self, seed_offset: int) -> GDPConfig:
        base = self.gdp_config or GDPConfig()
        return base.reseeded(seed_offset, budget=self.budget)

    def _rhop_config(self, seed_offset: int) -> RHOPConfig:
        base = self.rhop_config or RHOPConfig()
        return base.reseeded(seed_offset, budget=self.budget)

    def _drain_faults(self, report: RunReport) -> None:
        if self.faults is None:
            return
        for event in self.faults.drain_fired():
            report.record_fault(
                scheme=event["scheme"] or "?",
                attempt=event["attempt"],
                clause=event["clause"],
                phase=event["phase"],
                detail=event["detail"],
            )

    # -- execution -------------------------------------------------------------

    def prepare(
        self,
        source: str,
        name: str = "program",
        report: Optional[RunReport] = None,
    ):
        """Prepare a program under the profiler rung of the ladder.

        The dynamic profiler is itself a rung: when interpretation fails —
        an injected ``raise:profiler`` fault, an interpreter error, or the
        step-limit timeout — preparation degrades to the statically
        derived profile (``profile:static``) instead of aborting, so the
        partitioners still get access weights rather than dropping
        straight to naive placement.  Returns ``(prepared, report)``.
        """
        from ..pipeline.prepared import PreparedProgram
        from ..profiler import InterpreterError
        from .errors import InjectedFault

        report = report or RunReport(clock=self._clock)
        config = self.config
        if config.profile == "static":
            prepared = PreparedProgram.from_source(source, name, config=config)
            return prepared, report
        started = self._clock()
        try:
            if self.faults is not None:
                self.faults.begin_attempt("profiler", 1)
                self.faults.maybe_raise("profiler")
            prepared = PreparedProgram.from_source(source, name, config=config)
        except (InjectedFault, InterpreterError) as exc:
            self._drain_faults(report)
            reason = str(exc)
            report.record_attempt(
                "profile:dynamic", 1, "error",
                self._clock() - started, error=reason,
            )
            report.record_fallback("profile:dynamic", "profile:static", reason)
            started = self._clock()
            prepared = PreparedProgram.from_source(
                source, name, config=config.replace(profile="static")
            )
            report.record_attempt(
                "profile:static", 1, "ok", self._clock() - started
            )
            return prepared, report
        self._drain_faults(report)
        report.record_attempt(
            "profile:dynamic", 1, "ok", self._clock() - started
        )
        return prepared, report

    def run(
        self,
        prepared,
        scheme: str = "gdp",
        fallback: Optional[bool] = None,
        retries: Optional[int] = None,
        report: Optional[RunReport] = None,
    ) -> ResilientOutcome:
        """Run ``scheme`` end to end, surviving failures per the policy.

        Returns a :class:`ResilientOutcome`; raises
        :class:`~repro.resilience.errors.LadderExhausted` (report attached)
        only when every rung of the ladder failed every attempt.
        """
        from ..lint import check_scheme_outcome
        from ..pipeline.schemes import run_scheme

        fallback = self.fallback if fallback is None else fallback
        retries = self.retries if retries is None else retries
        report = report or RunReport(clock=self._clock)
        ladder = self._ladder_from(scheme) if fallback else [scheme]
        report.record_run(scheme, ladder)

        budget = self.budget
        total_attempts = 0
        last_failure = "never ran"
        stop = False
        for rung_index, rung in enumerate(ladder):
            for attempt in range(1, retries + 2):
                if budget is not None and not budget.allows_attempt(
                    total_attempts + 1
                ):
                    report.record_budget(
                        rung, f"attempt cap ({budget.max_attempts}) reached"
                    )
                    stop = True
                    break
                if attempt > 1 and budget is not None and budget.expired():
                    report.record_budget(
                        rung,
                        "wall-clock budget exhausted; skipping retries",
                    )
                    break
                total_attempts += 1
                if self.faults is not None:
                    self.faults.begin_attempt(rung, attempt)
                seed_offset = self.seed + (attempt - 1) * RESEED_STRIDE
                started = self._clock()
                try:
                    outcome = run_scheme(
                        prepared,
                        self.machine,
                        rung,
                        gdp_config=self._gdp_config(seed_offset),
                        rhop_config=self._rhop_config(seed_offset),
                        validate=False,
                        faults=self.faults,
                    )
                except Exception as exc:  # noqa: BLE001 - the whole point
                    self._drain_faults(report)
                    error = as_phase_error(exc, rung, rung)
                    last_failure = str(error)
                    report.record_attempt(
                        rung,
                        attempt,
                        "error",
                        self._clock() - started,
                        error=last_failure,
                    )
                    continue
                self._drain_faults(report)
                if self.validate:
                    diag = check_scheme_outcome(
                        prepared, outcome, schedule=self.schedule_check
                    )
                    if diag.has_errors:
                        last_failure = (
                            f"validity check rejected {rung} output: "
                            f"{diag.summary()}"
                        )
                        report.record_attempt(
                            rung,
                            attempt,
                            "invalid",
                            self._clock() - started,
                            phases=outcome.timings,
                            error=last_failure,
                            diagnostics=[
                                f"{d.rule}@{d.location()}" for d in diag.errors
                            ],
                        )
                        continue
                report.record_attempt(
                    rung,
                    attempt,
                    "ok",
                    self._clock() - started,
                    phases=outcome.timings,
                )
                report.record_final(scheme, rung, "ok")
                return ResilientOutcome(outcome, rung, scheme, report)
            if stop:
                break
            if rung_index + 1 < len(ladder):
                report.record_fallback(rung, ladder[rung_index + 1], last_failure)
        report.record_final(scheme, None, "failed")
        raise LadderExhausted(
            f"all rungs of ladder {ladder} failed for scheme {scheme!r}; "
            f"last failure: {last_failure}",
            run_report=report,
        )

    def run_all(
        self,
        prepared,
        schemes: Iterable[str] = ("unified", "gdp", "profilemax", "naive"),
        report: Optional[RunReport] = None,
    ) -> Dict[str, ResilientOutcome]:
        """Resilient analogue of :meth:`repro.pipeline.Pipeline.run_all`
        (duplicate scheme names are run once); all runs share ``report``
        and this pipeline's budget."""
        report = report or RunReport(clock=self._clock)
        return {
            name: self.run(prepared, name, report=report)
            for name in dict.fromkeys(schemes)
        }

    def compare(
        self,
        prepared,
        schemes: Iterable[str] = ("gdp", "profilemax", "naive"),
        report: Optional[RunReport] = None,
    ) -> Dict[str, float]:
        """Relative performance vs the unified upper bound, computed from
        whatever rung each scheme degraded to (the report says which)."""
        ordered = ["unified"] + [s for s in schemes if s != "unified"]
        outcomes = self.run_all(prepared, ordered, report=report)
        base = outcomes["unified"].cycles
        return {
            name: (base / outcomes[name].cycles if outcomes[name].cycles else 0.0)
            for name in dict.fromkeys(schemes)
        }
