"""Cooperative wall-clock / attempt budgets for anytime partitioning.

A :class:`Budget` is shared by reference between the resilient pipeline
and the iterative partitioners (``GDPConfig.budget`` /
``RHOPConfig.budget``).  The partitioners *poll* it inside their restart
and refinement loops and return the best assignment found so far when it
expires — a deadline never aborts a run mid-phase, it only trims optional
work (extra multi-start cycles, extra refinement passes), so the result
is always a complete, valid assignment.

The clock is injectable so tests can drive expiry deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class Budget:
    """A cooperative deadline: wall-clock seconds and/or attempt count.

    ``expired()`` is cheap and safe to call in inner loops.  The budget
    starts ticking at construction; call :meth:`restart` to re-arm it
    (e.g. when a budget built with a config is only used later).
    """

    def __init__(
        self,
        max_seconds: Optional[float] = None,
        max_attempts: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_seconds is not None and max_seconds < 0:
            raise ValueError("max_seconds must be >= 0")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_seconds = max_seconds
        self.max_attempts = max_attempts
        self._clock = clock
        self._start = clock()

    # -- wall clock ------------------------------------------------------------

    def restart(self) -> "Budget":
        """Re-arm the deadline from *now*; returns self for chaining."""
        self._start = self._clock()
        return self

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> Optional[float]:
        """Seconds left, or None when no wall-clock limit is set."""
        if self.max_seconds is None:
            return None
        return max(0.0, self.max_seconds - self.elapsed())

    def expired(self) -> bool:
        if self.max_seconds is None:
            return False
        return self.elapsed() >= self.max_seconds

    # -- attempts --------------------------------------------------------------

    def allows_attempt(self, attempt: int) -> bool:
        """Whether 1-based attempt number ``attempt`` may start."""
        if self.max_attempts is None:
            return True
        return attempt <= self.max_attempts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<budget {self.elapsed():.3f}s elapsed, "
            f"max_seconds={self.max_seconds}, max_attempts={self.max_attempts}>"
        )


def budget_expired(budget: Optional[Budget]) -> bool:
    """``budget is not None and budget.expired()`` — the poll the
    partitioner loops use so an unset budget costs one ``is None`` test."""
    return budget is not None and budget.expired()
