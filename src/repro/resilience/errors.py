"""Phase-attributed error taxonomy for the resilient pipeline.

Every failure the resilience layer handles is normalised into a
:class:`PhaseError` carrying the pipeline phase that failed (``"gdp"``,
``"profilemax"``, ``"rhop"``, ``"moves"``, ``"schedule"``, ...), the
scheme being run, and the underlying cause.  This is what lets the
:class:`~repro.resilience.pipeline.ResilientPipeline` decide *where* a
run went wrong and record an attributable entry in the
:class:`~repro.resilience.report.RunReport` instead of letting a bare
``ValueError`` abort the whole comparison.
"""

from __future__ import annotations

from typing import Optional


class ResilienceError(Exception):
    """Base class for everything the resilience layer raises itself."""


class PhaseError(ResilienceError):
    """A pipeline phase failed (raised, or produced an invalid output).

    ``phase`` names the phase at fault, ``scheme`` the scheme that was
    running it, and ``cause`` the original exception (also chained via
    ``__cause__`` so tracebacks stay useful).
    """

    def __init__(
        self,
        phase: str,
        message: str,
        scheme: Optional[str] = None,
        cause: Optional[BaseException] = None,
    ):
        self.phase = phase
        self.scheme = scheme
        self.cause = cause
        where = f" [scheme {scheme}]" if scheme else ""
        super().__init__(f"phase {phase!r}{where}: {message}")
        if cause is not None:
            self.__cause__ = cause


class InjectedFault(PhaseError):
    """A deterministic fault fired by a :class:`~repro.resilience.faults.
    FaultPlan` — distinguishable from organic failures in reports."""


class InvalidPhaseOutput(PhaseError):
    """A phase completed but its output was rejected by the partition
    validity checker (:mod:`repro.lint.partcheck`)."""

    def __init__(
        self,
        phase: str,
        scheme: Optional[str] = None,
        report: Optional[object] = None,
    ):
        self.diagnostics = report
        summary = (
            report.summary() if report is not None else "validity check failed"
        )
        super().__init__(phase, summary, scheme=scheme)


class LadderExhausted(ResilienceError):
    """Every rung of the degradation ladder failed; ``run_report`` holds
    the full retry/fallback history for post-mortem."""

    def __init__(self, message: str, run_report: Optional[object] = None):
        self.run_report = run_report
        super().__init__(message)


def as_phase_error(
    exc: BaseException, phase: str, scheme: Optional[str] = None
) -> PhaseError:
    """Normalise an arbitrary exception into a :class:`PhaseError`.

    Exceptions that already carry a phase (``PhaseError`` subclasses and
    :class:`repro.lint.PartitionValidityError`) keep their own attribution;
    everything else is attributed to ``phase``.
    """
    if isinstance(exc, PhaseError):
        if exc.scheme is None:
            exc.scheme = scheme
        return exc
    exc_phase = getattr(exc, "phase", None)
    if exc_phase and getattr(exc, "report", None) is not None:
        # repro.lint.PartitionValidityError: validation rejected the output.
        err = InvalidPhaseOutput(exc_phase, scheme=scheme, report=exc.report)
        err.cause = exc
        err.__cause__ = exc
        return err
    return PhaseError(
        phase, f"{type(exc).__name__}: {exc}", scheme=scheme, cause=exc
    )
