"""Run reports: JSON-serialisable telemetry for resilient pipeline runs.

A :class:`RunReport` records, in order, everything that happened while a
scheme (or a whole comparison) ran: every attempt with its per-phase wall
clocks, every injected or organic fault, every retry-with-reseed, every
fallback down the degradation ladder, and every budget expiry.  The JSON
form is deterministic (sorted keys, stable event order); with
``deterministic=True`` wall-clock fields are zeroed so two runs with the
same :class:`~repro.resilience.faults.FaultPlan` seed serialise to
byte-identical JSON — the property the fault-injection tests pin.

:class:`PhaseTimer` is the per-phase clock the schemes fill in; its
timings ride on :class:`~repro.pipeline.schemes.SchemeOutcome` and are
copied into the report, so compile-time benchmarks and resilience
telemetry read the same numbers.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional


class PhaseTimer:
    """Accumulates wall-clock seconds per pipeline phase."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.timings: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - start
            self.timings[name] = self.timings.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        self.timings[name] = self.timings.get(name, 0.0) + seconds

    def total(self) -> float:
        return sum(self.timings.values())


def outcome_state_from_final(final: Optional[Dict[str, Any]]) -> str:
    """Map a ``final`` event (live or deserialised from a report dict) to
    the resilience-ladder outcome state: ``ok`` / ``degraded`` /
    ``failed``.  A run that finished on a rung other than the one
    requested — including the cache-served fast path, which records no
    fallback events — counts as degraded."""
    if not final or final.get("status") != "ok":
        return "failed"
    if final.get("scheme") != final.get("requested"):
        return "degraded"
    return "ok"


class RunReport:
    """Ordered event log of one resilient run (or comparison of runs).

    Event kinds:

    - ``run``       — a requested scheme starts (one per ``run()`` call)
    - ``attempt``   — one end-to-end scheme execution: status ``ok`` /
      ``error`` / ``invalid``, per-phase seconds, error text, diagnostics
    - ``fault``     — a :class:`FaultPlan` clause fired
    - ``fallback``  — the ladder stepped down a rung
    - ``budget``    — the budget expired / attempt cap hit, ending retries
    - ``final``     — terminal status for a requested scheme
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._t0 = clock()
        self.events: List[Dict[str, Any]] = []

    # -- recording -------------------------------------------------------------

    def _event(self, kind: str, **fields: Any) -> Dict[str, Any]:
        event: Dict[str, Any] = {"kind": kind}
        event.update(fields)
        self.events.append(event)
        return event

    def record_run(self, requested: str, ladder: List[str]) -> None:
        self._event("run", requested=requested, ladder=list(ladder))

    def record_attempt(
        self,
        scheme: str,
        attempt: int,
        status: str,
        seconds: float,
        phases: Optional[Dict[str, float]] = None,
        error: Optional[str] = None,
        diagnostics: Optional[List[str]] = None,
    ) -> None:
        self._event(
            "attempt",
            scheme=scheme,
            attempt=attempt,
            status=status,
            seconds=seconds,
            phases=dict(sorted((phases or {}).items())),
            error=error,
            diagnostics=sorted(diagnostics or []),
        )

    def record_fault(
        self, scheme: str, attempt: int, clause: str, phase: str, detail: str
    ) -> None:
        self._event(
            "fault",
            scheme=scheme,
            attempt=attempt,
            clause=clause,
            phase=phase,
            detail=detail,
        )

    def record_fallback(self, from_scheme: str, to_scheme: str, reason: str) -> None:
        self._event(
            "fallback", **{"from": from_scheme, "to": to_scheme, "reason": reason}
        )

    def record_budget(self, scheme: str, detail: str) -> None:
        self._event("budget", scheme=scheme, detail=detail)

    def record_pointsto(self, tier: str, stats: Dict[str, Any]) -> None:
        """Record the points-to precision stats the run was prepared with
        (one event per solved tier; ``stats`` as from
        :meth:`PointsToStats.to_dict`)."""
        self._event("pointsto", tier=tier, stats=dict(stats))

    def record_roofline(self, scheme: str, stats: Dict[str, Any]) -> None:
        """Record the data-movement roofline of the scheme that answered
        the run (``stats`` as from
        :meth:`~repro.evalmodel.roofline.RooflineModel.report`).  Every
        field is seed-determined, so the event survives deterministic
        serialisation unscrubbed."""
        self._event("roofline", scheme=scheme, stats=dict(stats))

    def roofline_events(self) -> List[Dict[str, Any]]:
        return [e for e in self.events if e["kind"] == "roofline"]

    def record_cache(self, kind: str, status: str, detail: str = "") -> None:
        """Record an artifact-cache consultation (``kind`` is ``prepared``
        or ``outcome``; ``status`` is ``hit`` / ``miss`` / ``stale``).
        Carries no wall clocks, so it is stable under deterministic
        serialisation."""
        self._event("cache", cache=kind, status=status, detail=detail)

    def cache_events(self) -> List[Dict[str, Any]]:
        return [e for e in self.events if e["kind"] == "cache"]

    def record_final(self, requested: str, scheme: Optional[str], status: str) -> None:
        self._event(
            "final",
            requested=requested,
            scheme=scheme,
            status=status,
            seconds=self._clock() - self._t0,
        )

    # -- queries ---------------------------------------------------------------

    def attempts(self, scheme: Optional[str] = None) -> List[Dict[str, Any]]:
        return [
            e
            for e in self.events
            if e["kind"] == "attempt"
            and (scheme is None or e["scheme"] == scheme)
        ]

    def faults(self) -> List[Dict[str, Any]]:
        return [e for e in self.events if e["kind"] == "fault"]

    def fallbacks(self) -> List[Dict[str, Any]]:
        return [e for e in self.events if e["kind"] == "fallback"]

    def final(self) -> Optional[Dict[str, Any]]:
        for event in reversed(self.events):
            if event["kind"] == "final":
                return event
        return None

    def outcome_state(self) -> Optional[str]:
        """The job-facing terminal state of this run: ``"ok"`` when the
        requested scheme itself won, ``"degraded"`` when any ladder rung
        or profile fallback produced the result, ``"failed"`` when the
        ladder exhausted.  None while the run is still open (no ``final``
        event yet).  This is the single mapping the job server uses to
        surface per-job budgets/retries as job states."""
        final = self.final()
        if final is None:
            return None
        return outcome_state_from_final(final)

    def phase_seconds(
        self, phase: str, scheme: Optional[str] = None, status: str = "ok"
    ) -> float:
        """Total wall seconds spent in ``phase`` over matching attempts.

        The per-phase clocks come straight from the schemes'
        :class:`PhaseTimer`, so these are the authoritative compile-time
        numbers (used by ``bench_sec45_compile_time``)."""
        total = 0.0
        for event in self.attempts(scheme):
            if status is not None and event["status"] != status:
                continue
            total += event["phases"].get(phase, 0.0)
        return total

    # -- serialisation ---------------------------------------------------------

    _TIMING_KEYS = ("seconds",)

    def to_dict(self, deterministic: bool = False) -> Dict[str, Any]:
        """JSON-ready dict.  With ``deterministic=True`` every wall-clock
        field (``seconds`` and per-phase timings) is zeroed, leaving only
        the seed-determined structure — byte-stable across runs."""
        events = []
        for event in self.events:
            copy = dict(event)
            if deterministic:
                if copy["kind"] == "cache":
                    # Cache locality depends on execution order (pool
                    # workers race on shared artifacts) and on what
                    # earlier runs left on disk — scrub like wall clocks.
                    continue
                for key in self._TIMING_KEYS:
                    if key in copy:
                        copy[key] = 0.0
                if "phases" in copy:
                    copy["phases"] = {name: 0.0 for name in copy["phases"]}
                if "stats" in copy:
                    # Solver wall clock and worklist pop count depend on
                    # hash seed / machine; zero them like other timings.
                    stats = dict(copy["stats"])
                    for key in ("solve_seconds", "solver_iterations"):
                        if key in stats:
                            stats[key] = 0
                    copy["stats"] = stats
            events.append(copy)
        summary = {
            "attempts": len(self.attempts()),
            "faults": len(self.faults()),
            "fallbacks": len(self.fallbacks()),
        }
        final = self.final()
        return {
            "events": events,
            "final": (
                {
                    "requested": final["requested"],
                    "scheme": final["scheme"],
                    "status": final["status"],
                }
                if final is not None
                else None
            ),
            "summary": summary,
        }

    def to_json(self, deterministic: bool = False, indent: int = 2) -> str:
        return json.dumps(
            self.to_dict(deterministic), indent=indent, sort_keys=True
        )

    def save(self, path: str, deterministic: bool = False) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json(deterministic))
            handle.write("\n")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<run report: {len(self.attempts())} attempt(s), "
            f"{len(self.faults())} fault(s), "
            f"{len(self.fallbacks())} fallback(s)>"
        )
