"""Deterministic, seed-driven fault injection for the pipeline.

A :class:`FaultPlan` is a parsed ``--fault-spec``: a list of clauses that
fire at well-defined injection points inside the schemes
(:mod:`repro.pipeline.schemes`).  Everything is derived from the plan
seed and the (clause, scheme, phase, attempt) coordinates, so the same
spec produces the same faults — and therefore the same degradation path
and the same deterministic :class:`~repro.resilience.report.RunReport` —
on every run.  That is what lets tests and CI exercise every rung of the
degradation ladder instead of waiting for a real failure.

Spec grammar (clauses joined by ``;`` or ``,``)::

    seed=<int>                      rng seed for home/lock selection (default 0)
    raise:<phase>[@<attempt>]       raise InjectedFault entering <phase>
    corrupt-homes:<phase>:<K>[@<attempt>]   flip K object homes after <phase>
    unlock:<phase>:<M>[@<attempt>]  drop M memory-op locks in <phase>
    slow-moves:<factor>[@<attempt>] multiply intercluster move latency
    torn-write:<phase>[@<attempt>]  truncate a durable write mid-record

``<phase>`` is a scheme/phase name (``gdp``, ``profilemax``, ``naive``,
``unified``, ``rhop``) or ``*`` for any.  Without ``@<attempt>`` a clause
fires on *every* attempt (forcing a ladder fallback); with it, only on
that 1-based attempt (so a reseed retry recovers).

Two phases live outside the scheme ladder: ``worker`` (the service's
worker threads; only *explicit* ``raise:worker`` clauses fire there) and
``journal`` (the service's write-ahead log, where the attempt coordinate
is the append sequence number).  ``torn-write`` is consulted via
:meth:`FaultPlan.torn_write` by the journal to simulate a crash landing
mid-``write(2)``: the record's bytes are cut in half and the trailing
newline lost, exactly the corruption recovery must truncate away.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from .errors import InjectedFault

_KINDS = ("raise", "corrupt-homes", "unlock", "slow-moves", "torn-write")


class FaultClause:
    """One parsed clause of a fault spec."""

    def __init__(
        self,
        kind: str,
        phase: str = "*",
        count: int = 0,
        factor: float = 1.0,
        attempt: Optional[int] = None,
    ):
        if kind not in _KINDS:
            raise ValueError(f"unknown fault kind {kind!r} (one of {_KINDS})")
        self.kind = kind
        self.phase = phase
        self.count = count
        self.factor = factor
        self.attempt = attempt

    def matches(self, phase: str, attempt: int) -> bool:
        if self.phase not in ("*", phase):
            return False
        return self.attempt is None or self.attempt == attempt

    def __str__(self) -> str:
        if self.kind in ("raise", "torn-write"):
            body = f"{self.kind}:{self.phase}"
        elif self.kind == "slow-moves":
            body = f"slow-moves:{self.factor:g}"
        else:
            body = f"{self.kind}:{self.phase}:{self.count}"
        if self.attempt is not None:
            body += f"@{self.attempt}"
        return body

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<fault {self}>"


def _parse_clause(text: str) -> FaultClause:
    body, attempt = text, None
    if "@" in text:
        body, _, attempt_text = text.rpartition("@")
        try:
            attempt = int(attempt_text)
        except ValueError:
            raise ValueError(f"bad attempt number in fault clause {text!r}") from None
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1 in fault clause {text!r}")
    parts = body.split(":")
    kind = parts[0]
    if kind in ("raise", "torn-write"):
        if len(parts) != 2:
            raise ValueError(f"expected {kind}:<phase> in {text!r}")
        return FaultClause(kind, phase=parts[1], attempt=attempt)
    if kind in ("corrupt-homes", "unlock"):
        if len(parts) != 3:
            raise ValueError(f"expected {kind}:<phase>:<count> in {text!r}")
        try:
            count = int(parts[2])
        except ValueError:
            raise ValueError(f"bad count in fault clause {text!r}") from None
        if count < 1:
            raise ValueError(f"count must be >= 1 in fault clause {text!r}")
        return FaultClause(kind, phase=parts[1], count=count, attempt=attempt)
    if kind == "slow-moves":
        if len(parts) != 2:
            raise ValueError(f"expected slow-moves:<factor> in {text!r}")
        try:
            factor = float(parts[1])
        except ValueError:
            raise ValueError(f"bad factor in fault clause {text!r}") from None
        if factor <= 0:
            raise ValueError(f"factor must be > 0 in fault clause {text!r}")
        return FaultClause("slow-moves", factor=factor, attempt=attempt)
    raise ValueError(f"unknown fault kind {kind!r} in clause {text!r}")


class FaultPlan:
    """A set of fault clauses plus the attempt context they fire in.

    The resilient pipeline calls :meth:`begin_attempt` before each scheme
    execution; the injection points inside the schemes then consult the
    plan.  Every firing is appended to :attr:`fired` (drained into the
    run report via :meth:`drain_fired`).
    """

    def __init__(self, clauses: Optional[List[FaultClause]] = None, seed: int = 0):
        self.clauses = list(clauses or [])
        self.seed = seed
        self.fired: List[Dict[str, Any]] = []
        self._scheme: Optional[str] = None
        self._attempt = 1

    # -- parsing ---------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``--fault-spec`` string (see module docstring)."""
        clauses: List[FaultClause] = []
        seed = 0
        for raw in spec.replace(",", ";").split(";"):
            text = raw.strip()
            if not text:
                continue
            if text.startswith("seed="):
                try:
                    seed = int(text[len("seed="):])
                except ValueError:
                    raise ValueError(f"bad seed in fault spec: {text!r}") from None
                continue
            clauses.append(_parse_clause(text))
        if not clauses:
            raise ValueError(f"fault spec {spec!r} contains no fault clauses")
        return cls(clauses, seed=seed)

    # -- attempt context -------------------------------------------------------

    def begin_attempt(self, scheme: str, attempt: int) -> None:
        self._scheme = scheme
        self._attempt = attempt

    def drain_fired(self) -> List[Dict[str, Any]]:
        fired, self.fired = self.fired, []
        return fired

    def _record(self, clause: FaultClause, phase: str, detail: str) -> None:
        self.fired.append(
            {
                "clause": str(clause),
                "phase": phase,
                "scheme": self._scheme,
                "attempt": self._attempt,
                "detail": detail,
            }
        )

    def _rng(self, clause: FaultClause, phase: str) -> random.Random:
        # String seeds hash through SHA-512 in random.seed(version=2):
        # deterministic across runs and processes, unlike hash(str).
        return random.Random(
            f"{self.seed}|{clause}|{phase}|{self._scheme}|{self._attempt}"
        )

    def _matching(self, kind: str, phase: str) -> List[FaultClause]:
        return [
            c
            for c in self.clauses
            if c.kind == kind and c.matches(phase, self._attempt)
        ]

    # -- injection points ------------------------------------------------------

    def maybe_raise(self, phase: str) -> None:
        """Raise :class:`InjectedFault` if a ``raise`` clause matches."""
        for clause in self._matching("raise", phase):
            self._record(clause, phase, "raised")
            raise InjectedFault(
                phase,
                f"injected fault ({clause})",
                scheme=self._scheme,
            )

    def torn_write(self, phase: str) -> bool:
        """True when a ``torn-write`` clause matches: the caller should
        truncate the record it is about to persist mid-write (the
        journal's simulated crash-during-``write``)."""
        for clause in self._matching("torn-write", phase):
            self._record(clause, phase, "tore write")
            return True
        return False

    def corrupt_homes(
        self,
        object_home: Dict[str, int],
        num_clusters: int,
        phase: str,
        accessed: Optional[Dict[str, int]] = None,
    ) -> Dict[str, int]:
        """Flip up to K object homes to a wrong cluster (seed-chosen).

        Applied *after* memory locks are derived, so it models exactly the
        cross-phase poisoning the validity checker exists to catch: the
        recorded data partition disagrees with the locks the computation
        partitioner honoured.  Candidates are restricted to dynamically
        accessed objects so the corruption is observable.
        """
        clauses = self._matching("corrupt-homes", phase)
        if not clauses or num_clusters < 2:
            return object_home
        corrupted = dict(object_home)
        for clause in clauses:
            candidates = sorted(
                obj
                for obj in corrupted
                if accessed is None or accessed.get(obj, 0) > 0
            ) or sorted(corrupted)
            if not candidates:
                continue
            rng = self._rng(clause, phase)
            chosen = rng.sample(candidates, min(clause.count, len(candidates)))
            for obj in chosen:
                home = corrupted[obj]
                corrupted[obj] = (home + 1 + rng.randrange(num_clusters - 1)) % (
                    num_clusters
                )
            self._record(
                clause, phase, f"corrupted homes of {sorted(chosen)}"
            )
        return corrupted

    def drop_locks(self, locks: Dict[int, int], phase: str) -> Dict[int, int]:
        """Remove up to M memory-op locks (seed-chosen), letting those
        operations float freely through the computation partitioner."""
        clauses = self._matching("unlock", phase)
        if not clauses:
            return locks
        remaining = dict(locks)
        for clause in clauses:
            if not remaining:
                break
            rng = self._rng(clause, phase)
            chosen = rng.sample(
                sorted(remaining), min(clause.count, len(remaining))
            )
            for uid in chosen:
                del remaining[uid]
            self._record(clause, phase, f"unlocked ops {sorted(chosen)}")
        return remaining

    def machine_for(self, machine: Any) -> Any:
        """Apply any ``slow-moves`` clause: a copy of the machine with the
        intercluster move latency inflated by the clause factor."""
        for clause in self._matching("slow-moves", "*"):
            slowed = max(1, int(round(machine.move_latency * clause.factor)))
            self._record(
                clause,
                "*",
                f"move latency {machine.move_latency} -> {slowed}",
            )
            machine = machine.with_move_latency(slowed)
        return machine

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        clauses = "; ".join(str(c) for c in self.clauses)
        return f"<fault plan seed={self.seed}: {clauses}>"
