"""Resilience layer: deadlines, retry-with-reseed, degradation ladder,
and deterministic fault injection for the partitioning pipeline.

The pipeline (points-to + profiling → GDP graph partition → RHOP with
locked memory ops) is a chain where one bad phase output poisons
everything downstream.  This package makes the chain survivable:

- :class:`Budget` — cooperative wall-clock/attempt deadline polled inside
  the multilevel and RHOP refinement loops (anytime partitioning: expiry
  returns the best assignment found so far, never a crash);
- :class:`PhaseError` / :class:`InjectedFault` / :class:`LadderExhausted`
  — phase-attributed error taxonomy;
- :class:`RunReport` — deterministic, JSON-serialisable telemetry of
  every attempt, fault, fallback, and budget event;
- :class:`FaultPlan` — seed-driven fault injection (``--fault-spec``) so
  every degradation path is exercisable in tests and CI;
- :class:`ResilientPipeline` — retry-with-reseed plus the paper's quality
  ladder GDP → Profile Max → Naïve → Unified.

``ResilientPipeline`` is imported lazily (PEP 562) because it pulls in
the scheme runners, which themselves use this package's clocks.
"""

from .budget import Budget, budget_expired
from .errors import (
    InjectedFault,
    InvalidPhaseOutput,
    LadderExhausted,
    PhaseError,
    ResilienceError,
    as_phase_error,
)
from .faults import FaultClause, FaultPlan
from .report import PhaseTimer, RunReport, outcome_state_from_final

__all__ = [
    "Budget",
    "budget_expired",
    "FaultClause",
    "FaultPlan",
    "InjectedFault",
    "InvalidPhaseOutput",
    "LadderExhausted",
    "PhaseError",
    "PhaseTimer",
    "ResilienceError",
    "RunReport",
    "outcome_state_from_final",
    "as_phase_error",
    "LADDER",
    "RESEED_STRIDE",
    "ResilientOutcome",
    "ResilientPipeline",
]

_LAZY = ("LADDER", "RESEED_STRIDE", "ResilientOutcome", "ResilientPipeline")


def __getattr__(name):
    if name in _LAZY:
        from . import pipeline as _pipeline

        return getattr(_pipeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
