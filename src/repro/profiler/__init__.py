"""Profiling interpreter: executes IR modules and gathers the dynamic
profile (block counts, per-object access counts, heap sizes) consumed by
the partitioning algorithms."""

from .interp import Interpreter, InterpreterError, StepLimitExceeded, profile_module
from .memory import Memory, MemoryError_
from .profiledata import ProfileData

__all__ = [
    "Interpreter",
    "InterpreterError",
    "StepLimitExceeded",
    "profile_module",
    "Memory",
    "MemoryError_",
    "ProfileData",
]
