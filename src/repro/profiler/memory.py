"""Byte-addressed memory model for the IR interpreter.

Globals are laid out once at construction; ``malloc`` bumps a heap pointer.
Each address range is registered to a data-object id so the profiler can
attribute every dynamic access to the object it touches — the information
the paper gathers with execution profiling.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple, Union

from ..ir import Module
from ..ir.types import ArrayType, FloatType, IntType, PointerType, StructType
from ..analysis.pointsto import global_object_id, heap_object_id

_GLOBAL_BASE = 0x1000
_HEAP_BASE = 0x4000_0000
_ALIGN = 8


class MemoryError_(Exception):
    """Out-of-range or unmapped memory access during interpretation."""


class Memory:
    """Flat scalar-granular memory with object-range bookkeeping."""

    def __init__(self, module: Module):
        self.module = module
        self.cells: Dict[int, Union[int, float]] = {}
        self.global_base: Dict[str, int] = {}
        # Parallel sorted arrays for object lookup by address.
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._ids: List[str] = []
        self._heap_next = _HEAP_BASE
        self._layout_globals()

    # -- layout -----------------------------------------------------------------

    def _layout_globals(self) -> None:
        addr = _GLOBAL_BASE
        for gvar in self.module.globals.values():
            size = max(gvar.size(), 1)
            addr = _align(addr, _ALIGN)
            self.global_base[gvar.name] = addr
            self._register(addr, size, global_object_id(gvar.name))
            self._initialize(gvar, addr)
            addr += size

    def _initialize(self, gvar, base: int) -> None:
        init = gvar.initializer
        if init is None:
            return
        ty = gvar.ty
        if isinstance(ty, ArrayType):
            elem_size = ty.element.size()
            values = init if isinstance(init, (list, tuple)) else [init]
            for i, value in enumerate(values):
                if ty.element.is_float():
                    self.cells[base + i * elem_size] = float(value)
                else:
                    self.cells[base + i * elem_size] = _wrap32(int(value))
        else:
            if ty.is_float():
                self.cells[base] = float(init)
            else:
                self.cells[base] = _wrap32(int(init))

    def _register(self, start: int, size: int, obj_id: str) -> None:
        idx = bisect.bisect_left(self._starts, start)
        self._starts.insert(idx, start)
        self._ends.insert(idx, start + size)
        self._ids.insert(idx, obj_id)

    # -- allocation -----------------------------------------------------------------

    def malloc(self, size: int, site: str) -> int:
        size = max(int(size), 1)
        addr = _align(self._heap_next, _ALIGN)
        self._heap_next = addr + size
        self._register(addr, size, heap_object_id(site))
        return addr

    # -- access -----------------------------------------------------------------------

    def load(self, addr: int, is_float: bool) -> Union[int, float]:
        value = self.cells.get(addr)
        if value is None:
            return 0.0 if is_float else 0
        if is_float and isinstance(value, int):
            return float(value)
        if not is_float and isinstance(value, float):
            return _wrap32(int(value))
        return value

    def store(self, addr: int, value: Union[int, float]) -> None:
        self.cells[addr] = value

    def object_at(self, addr: int) -> Optional[str]:
        """Data-object id whose range covers ``addr`` (None if unmapped)."""
        span = self.span_at(addr)
        return span[0] if span is not None else None

    def span_at(self, addr: int) -> Optional[Tuple[str, int]]:
        """``(object id, object start address)`` covering ``addr``."""
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx >= 0 and self._starts[idx] <= addr < self._ends[idx]:
            return self._ids[idx], self._starts[idx]
        return None

    def address_of_global(self, name: str) -> int:
        return self.global_base[name]


def _align(addr: int, alignment: int) -> int:
    rem = addr % alignment
    return addr if rem == 0 else addr + alignment - rem


def _wrap32(value: int) -> int:
    """Wrap to signed 32-bit two's complement."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value
