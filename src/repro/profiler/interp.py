"""Direct IR interpreter with profiling.

Executes a module starting at ``main`` with C-like semantics: 32-bit
wrapping signed integer arithmetic, truncating division, arithmetic right
shift, IEEE doubles for ``f64``.  While running it fills a
:class:`~repro.profiler.profiledata.ProfileData` with block counts,
per-object access counts and heap allocation sizes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..ir import (
    Constant,
    Function,
    FunctionRef,
    GlobalAddress,
    Module,
    Opcode,
    Operation,
    VirtualRegister,
)
from .memory import Memory, _wrap32
from .profiledata import ProfileData


class InterpreterError(Exception):
    """Runtime failure during interpretation (bad access, step limit...)."""


class StepLimitExceeded(InterpreterError):
    """The program ran longer than the configured instruction budget."""


class Interpreter:
    """Executes a module and gathers an execution profile."""

    def __init__(self, module: Module, max_steps: int = 50_000_000):
        self.module = module
        self.memory = Memory(module)
        self.profile = ProfileData()
        self.max_steps = max_steps
        self._steps = 0

    # -- public API ----------------------------------------------------------------

    def run(self, args: Optional[List[Union[int, float]]] = None) -> Union[int, float, None]:
        """Execute ``main`` and return its result."""
        main = self.module.main
        result = self.call(main, args or [])
        self.profile.instructions_executed = self._steps
        return result

    def call(self, func: Function, args: List[Union[int, float]]):
        if len(args) != len(func.params):
            raise InterpreterError(
                f"{func.name} expects {len(func.params)} args, got {len(args)}"
            )
        regs: Dict[int, Union[int, float]] = {}
        for param, arg in zip(func.params, args):
            regs[param.vid] = arg
        block = func.entry
        self.profile.record_call(func.name)
        while True:
            self.profile.record_block(func.name, block.name)
            next_block: Optional[str] = None
            for op in block.ops:
                self._steps += 1
                if self._steps > self.max_steps:
                    raise StepLimitExceeded(
                        f"exceeded {self.max_steps} interpreted operations"
                    )
                result = self._execute(func, op, regs)
                if result is not None:
                    kind, payload = result
                    if kind == "ret":
                        return payload
                    next_block = payload
                    break
            if next_block is None:
                raise InterpreterError(
                    f"block {func.name}/{block.name} fell through"
                )
            block = func.blocks[next_block]

    # -- operand evaluation -----------------------------------------------------------

    def _value(self, regs: Dict[int, Union[int, float]], v) -> Union[int, float]:
        if isinstance(v, Constant):
            return v.value
        if isinstance(v, VirtualRegister):
            if v.vid not in regs:
                raise InterpreterError(f"read of uninitialised register {v}")
            return regs[v.vid]
        if isinstance(v, GlobalAddress):
            return self.memory.address_of_global(v.symbol)
        if isinstance(v, FunctionRef):
            raise InterpreterError("function references are not first-class")
        raise InterpreterError(f"unknown value kind {v!r}")

    # -- execution ----------------------------------------------------------------------

    def _execute(self, func: Function, op: Operation, regs):
        opcode = op.opcode
        handler = _HANDLERS.get(opcode)
        if handler is not None:
            regs[op.dest.vid] = handler(
                *[self._value(regs, s) for s in op.srcs]
            )
            return None
        if opcode is Opcode.LOAD:
            addr = int(self._value(regs, op.srcs[0]))
            self._record_access(op, addr)
            regs[op.dest.vid] = self.memory.load(addr, op.dest.ty.is_float())
            return None
        if opcode is Opcode.STORE:
            value = self._value(regs, op.srcs[0])
            addr = int(self._value(regs, op.srcs[1]))
            self._record_access(op, addr)
            self.memory.store(addr, value)
            return None
        if opcode is Opcode.MALLOC:
            size = int(self._value(regs, op.srcs[0]))
            site = op.attrs["site"]
            addr = self.memory.malloc(size, site)
            self.profile.record_malloc(f"h:{site}", max(size, 1))
            regs[op.dest.vid] = addr
            return None
        if opcode is Opcode.BR:
            return ("br", op.targets[0])
        if opcode is Opcode.CBR:
            cond = self._value(regs, op.srcs[0])
            return ("br", op.targets[0] if cond != 0 else op.targets[1])
        if opcode is Opcode.RET:
            value = self._value(regs, op.srcs[0]) if op.srcs else None
            return ("ret", value)
        if opcode is Opcode.CALL:
            return self._execute_call(op, regs)
        if opcode is Opcode.MOV or opcode is Opcode.ICMOVE:
            regs[op.dest.vid] = self._value(regs, op.srcs[0])
            return None
        raise InterpreterError(f"cannot interpret opcode {opcode}")

    def _execute_call(self, op: Operation, regs):
        callee = op.attrs["callee"]
        args = [self._value(regs, s) for s in op.srcs[1:]]
        if callee == "print_int":
            self.profile.output.append(int(args[0]))
            return None
        if callee == "print_float":
            self.profile.output.append(float(args[0]))
            return None
        if callee == "abort":
            raise InterpreterError("program aborted")
        if callee not in self.module.functions:
            raise InterpreterError(f"call to unknown function {callee!r}")
        result = self.call(self.module.functions[callee], args)
        if op.dest is not None:
            regs[op.dest.vid] = result if result is not None else 0
        return None

    def _record_access(self, op: Operation, addr: int) -> None:
        span = self.memory.span_at(addr)
        if span is None:
            raise InterpreterError(
                f"access to unmapped address {addr:#x} by op {op}"
            )
        obj, start = span
        self.profile.record_access(op.uid, obj)
        if op.opcode is Opcode.LOAD:
            width = max(op.dest.ty.size(), 1)
        else:
            width = max(op.srcs[0].ty.size(), 1)
        offset = addr - start
        self.profile.record_region(op.uid, obj, offset, offset + width)

    @property
    def steps(self) -> int:
        return self._steps


# -- scalar semantics ---------------------------------------------------------------

def _idiv(a, b):
    a, b = int(a), int(b)
    if b == 0:
        raise InterpreterError("integer division by zero")
    q = abs(a) // abs(b)
    return _wrap32(-q if (a < 0) != (b < 0) else q)


def _irem(a, b):
    a, b = int(a), int(b)
    if b == 0:
        raise InterpreterError("integer remainder by zero")
    return _wrap32(a - _idiv(a, b) * b)


def _fdiv(a, b):
    if b == 0.0:
        raise InterpreterError("float division by zero")
    return float(a) / float(b)


_HANDLERS = {
    Opcode.ADD: lambda a, b: _wrap32(int(a) + int(b)),
    Opcode.SUB: lambda a, b: _wrap32(int(a) - int(b)),
    Opcode.MUL: lambda a, b: _wrap32(int(a) * int(b)),
    Opcode.DIV: _idiv,
    Opcode.REM: _irem,
    Opcode.NEG: lambda a: _wrap32(-int(a)),
    Opcode.AND: lambda a, b: _wrap32(int(a) & int(b)),
    Opcode.OR: lambda a, b: _wrap32(int(a) | int(b)),
    Opcode.XOR: lambda a, b: _wrap32(int(a) ^ int(b)),
    Opcode.NOT: lambda a: _wrap32(~int(a)),
    Opcode.SHL: lambda a, b: _wrap32(int(a) << (int(b) & 31)),
    Opcode.SHR: lambda a, b: int(a) >> (int(b) & 31),  # arithmetic shift
    Opcode.CMPEQ: lambda a, b: 1 if a == b else 0,
    Opcode.CMPNE: lambda a, b: 1 if a != b else 0,
    Opcode.CMPLT: lambda a, b: 1 if a < b else 0,
    Opcode.CMPLE: lambda a, b: 1 if a <= b else 0,
    Opcode.CMPGT: lambda a, b: 1 if a > b else 0,
    Opcode.CMPGE: lambda a, b: 1 if a >= b else 0,
    Opcode.SELECT: lambda c, a, b: a if c != 0 else b,
    Opcode.PTRADD: lambda a, b: int(a) + int(b),
    Opcode.FADD: lambda a, b: float(a) + float(b),
    Opcode.FSUB: lambda a, b: float(a) - float(b),
    Opcode.FMUL: lambda a, b: float(a) * float(b),
    Opcode.FDIV: _fdiv,
    Opcode.FNEG: lambda a: -float(a),
    Opcode.FCMPEQ: lambda a, b: 1 if float(a) == float(b) else 0,
    Opcode.FCMPNE: lambda a, b: 1 if float(a) != float(b) else 0,
    Opcode.FCMPLT: lambda a, b: 1 if float(a) < float(b) else 0,
    Opcode.FCMPLE: lambda a, b: 1 if float(a) <= float(b) else 0,
    Opcode.FCMPGT: lambda a, b: 1 if float(a) > float(b) else 0,
    Opcode.FCMPGE: lambda a, b: 1 if float(a) >= float(b) else 0,
    Opcode.ITOF: lambda a: float(int(a)),
    Opcode.FTOI: lambda a: _wrap32(int(a)),
}


def profile_module(
    module: Module, max_steps: int = 50_000_000
) -> ProfileData:
    """Run ``main`` and return the collected profile."""
    interp = Interpreter(module, max_steps=max_steps)
    interp.run()
    return interp.profile
