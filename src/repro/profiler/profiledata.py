"""Profile data collected by the interpreter.

This is the execution profile the paper's partitioners consume:

* block execution counts (schedule lengths are weighted by these),
* per-memory-operation dynamic access counts split by data object,
* total bytes allocated per ``malloc`` site (object sizes for balance).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple, Union


class ProfileData:
    """Counters filled in during interpretation."""

    def __init__(self):
        self.block_counts: Counter = Counter()  # (func, block) -> executions
        self.op_object_counts: Dict[int, Counter] = {}  # op uid -> obj -> count
        self.heap_sizes: Counter = Counter()  # "h:<site>" -> total bytes
        self.call_counts: Counter = Counter()  # callee name -> calls
        # op uid -> obj -> (lo, hi) byte envelope of observed accesses,
        # offsets relative to the object's start.
        self.op_object_regions: Dict[int, Dict[str, Tuple[int, int]]] = {}
        self.instructions_executed = 0
        self.output: List[Union[int, float]] = []

    def is_static(self) -> bool:
        """True when the counters were derived by static analysis rather
        than measured (see ``analysis.dataflow.staticprofile``)."""
        return False

    # -- recording ----------------------------------------------------------------

    def record_block(self, func: str, block: str) -> None:
        self.block_counts[(func, block)] += 1

    def record_access(self, op_uid: int, obj_id: str) -> None:
        self.op_object_counts.setdefault(op_uid, Counter())[obj_id] += 1

    def record_region(self, op_uid: int, obj_id: str, lo: int, hi: int) -> None:
        regions = self.op_object_regions.setdefault(op_uid, {})
        prev = regions.get(obj_id)
        if prev is None:
            regions[obj_id] = (lo, hi)
        else:
            regions[obj_id] = (min(prev[0], lo), max(prev[1], hi))

    def record_malloc(self, obj_id: str, size: int) -> None:
        self.heap_sizes[obj_id] += size

    def record_call(self, callee: str) -> None:
        self.call_counts[callee] += 1

    # -- queries ------------------------------------------------------------------------

    def block_frequency(self, func: str, block: str) -> float:
        return float(self.block_counts.get((func, block), 0))

    def op_frequency(self, op_uid: int) -> int:
        """Total dynamic executions of one memory operation."""
        counts = self.op_object_counts.get(op_uid)
        return sum(counts.values()) if counts else 0

    def object_access_count(self, obj_id: str) -> int:
        """Total dynamic accesses touching one data object."""
        return sum(
            counts.get(obj_id, 0) for counts in self.op_object_counts.values()
        )

    def object_access_counts(self) -> Counter:
        totals: Counter = Counter()
        for counts in self.op_object_counts.values():
            totals.update(counts)
        return totals

    def frequency_fn(self):
        """A ``(func, block) -> float`` callable for graph construction."""
        return self.block_frequency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<profile: {self.instructions_executed} insts, "
            f"{len(self.block_counts)} blocks, {len(self.heap_sizes)} heap sites>"
        )
