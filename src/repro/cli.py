"""Command-line interface: ``python -m repro <command>``.

Commands
--------
compile    MiniC -> IR (exact serialized form, or --pretty for reading)
run        compile + interpret a MiniC program, print its output
partition  run one partitioning scheme, print placement and cycles
compare    run all four Table-1 schemes, print the comparison table
bench      list or evaluate the bundled benchmark suite (--all sweeps
           every benchmark x scheme cell in parallel)
lint       static analysis: IR lint rules + partition validity checking
config     show the resolved RunConfig for a flag combination
cache      artifact-cache maintenance: stats / gc / clear
serve      run the partitioning job server (HTTP, stdlib only)
submit     submit a job to a running server and await its result

Exit codes (uniform across partition/compare/bench/lint):

- ``0`` — success, the requested work completed as asked
- ``1`` — degraded but survived: a scheme fell down the resilience
  ladder, a sweep cell degraded, or lint found findings
- ``2`` — hard failure: ladder exhausted, partition validity violated,
  or the invocation itself was invalid
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import List, Optional

from .bench import all_benchmarks, get as get_benchmark
from .evalmodel import format_table
from .exec.runconfig import CACHE_POLICIES, MACHINE_PRESETS, RunConfig
from .ir import print_module
from .ir.serialize import dumps
from .lang import compile_source
from .pipeline import Pipeline, PreparedProgram
from .profiler import Interpreter

#: Uniform exit codes (documented in README).
EXIT_OK = 0
EXIT_DEGRADED = 1
EXIT_HARD_FAILURE = 2


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        text = handle.read()
    if path.endswith(".py"):
        # Example scripts (examples/*.py) embed their program in a
        # module-level SOURCE triple-quoted string; lint them directly.
        match = re.search(r'SOURCE\s*=\s*"""(.*?)"""', text, re.DOTALL)
        if match is None:
            raise SystemExit(
                f"{path}: no MiniC SOURCE = \"\"\"...\"\"\" block found"
            )
        return match.group(1)
    return text


def _add_compile_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--unroll", type=int, default=0, metavar="N",
                        help="unroll factor for counted loops (0 = off)")
    parser.add_argument("--if-convert", action="store_true",
                        help="if-convert small control diamonds")
    parser.add_argument("--optimize", action="store_true",
                        help="run constant folding / copy-prop / CSE / DCE")


def _add_machine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--latency", type=int, default=5, metavar="CYCLES",
                        help="intercluster move latency (default 5)")
    parser.add_argument("--machine", default="two_cluster",
                        choices=list(MACHINE_PRESETS),
                        help="machine preset (default two_cluster, the "
                        "paper's evaluation configuration)")


def _add_pointsto_flag(parser: argparse.ArgumentParser) -> None:
    from .analysis import TIERS

    parser.add_argument("--pointsto", default="andersen", choices=list(TIERS),
                        help="points-to precision tier annotating the "
                        "memory ops (default andersen; field adds "
                        "field-sensitivity, cs adds 1-CFA call-site "
                        "context sensitivity on top)")


def _add_profile_flag(parser: argparse.ArgumentParser) -> None:
    from .exec.runconfig import PROFILE_MODES

    parser.add_argument("--profile", default="dynamic",
                        choices=list(PROFILE_MODES),
                        help="profile source for the partitioners: "
                        "'dynamic' interprets the program (the paper's "
                        "execution profiling), 'static' derives weights "
                        "and access regions from abstract interpretation "
                        "with zero interpreter runs")


def _add_exec_flags(parser: argparse.ArgumentParser) -> None:
    """The normalized flag set every evaluating subcommand accepts."""
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="base seed for the randomized partitioners "
                        "(part of the artifact-cache key)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for sweeps (default: "
                        "os.cpu_count())")
    parser.add_argument("--run-report", metavar="PATH",
                        help="write a JSON report of the run (attempts, "
                        "faults, fallbacks, cache events, wall clocks) "
                        "to PATH")
    parser.add_argument("--cache", default="off",
                        choices=list(CACHE_POLICIES),
                        help="artifact-cache policy (default off; 'on' "
                        "reuses profiles, points-to solutions and scheme "
                        "outcomes across runs)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact-cache root (default "
                        "$REPRO_CACHE_DIR or ~/.cache/repro)")


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-seconds", type=float, default=None,
                        metavar="S",
                        help="wall-clock budget: partitioners return their "
                        "best-so-far result once it expires (anytime mode)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="re-run a failed scheme N more times with a "
                        "reseeded partitioner before falling back")
    parser.add_argument("--fallback", action="store_true",
                        help="on failure, degrade down the quality ladder "
                        "gdp -> profilemax -> naive -> unified")
    parser.add_argument("--fault-spec", metavar="SPEC",
                        help="inject deterministic faults, e.g. "
                        "'seed=7;raise:gdp@1' (see DESIGN.md for the "
                        "grammar)")


def _config_from_args(args, **overrides) -> RunConfig:
    """The resolved RunConfig for a parsed flag set (missing flags fall
    back to the RunConfig field defaults)."""
    retries = getattr(args, "retries", None)
    kwargs = dict(
        scheme=getattr(args, "scheme", "gdp"),
        pointsto_tier=getattr(args, "pointsto", "andersen"),
        profile=getattr(args, "profile", "dynamic"),
        machine=getattr(args, "machine", "two_cluster"),
        latency=getattr(args, "latency", 5),
        seed=getattr(args, "seed", 0),
        max_seconds=getattr(args, "max_seconds", None),
        retries=retries if retries is not None else 1,
        fallback=bool(getattr(args, "fallback", False)),
        fault_spec=getattr(args, "fault_spec", None),
        validate=bool(getattr(args, "verify_partition", False)),
        jobs=getattr(args, "jobs", None),
        cache=getattr(args, "cache", "off"),
        cache_dir=getattr(args, "cache_dir", None),
    )
    kwargs.update(overrides)
    return RunConfig(**kwargs)


def _wants_resilience(args) -> bool:
    return any((
        args.max_seconds is not None,
        args.retries is not None,
        args.fallback,
        args.run_report,
        args.fault_spec,
    ))


def _save_run_report(args, report) -> None:
    if getattr(args, "run_report", None):
        report.save(args.run_report)
        print(f"[run report written to {args.run_report}]")


def _compile(args) -> int:
    module = compile_source(
        _read_source(args.file), args.name,
        unroll_factor=args.unroll, if_convert=args.if_convert,
    )
    if args.optimize:
        from .opt import optimize_module

        optimize_module(module)
    text = print_module(module) if args.pretty else dumps(module)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    else:
        print(text)
    return EXIT_OK


def _run(args) -> int:
    module = compile_source(
        _read_source(args.file), args.name,
        unroll_factor=args.unroll, if_convert=args.if_convert,
    )
    if args.optimize:
        from .opt import optimize_module

        optimize_module(module)
    interp = Interpreter(module, max_steps=args.max_steps)
    result = interp.run()
    for value in interp.profile.output:
        print(value)
    print(f"[exit {result}; {interp.steps} operations executed]")
    return EXIT_OK


def _prepared_from_config(args, config: RunConfig) -> PreparedProgram:
    """Prepare via the artifact cache when the config enables it."""
    source = _read_source(args.file)
    if config.cache_enabled:
        from .exec.engine import load_or_prepare

        prepared, _ir_hash, _status = load_or_prepare(
            source, args.name, config
        )
        return prepared
    return PreparedProgram.from_source(source, args.name, config=config)


def _print_precision(prepared: PreparedProgram) -> None:
    print(f"pointsto: {prepared.pointsto.stats().describe()}")


def _partition(args) -> int:
    config = _config_from_args(args)
    if _wants_resilience(args):
        return _partition_resilient(args, config)
    prepared = _prepared_from_config(args, config)
    pipe = Pipeline.from_config(config)
    try:
        if config.cacheable_results:
            from .exec.engine import run_prepared_scheme

            outcome, _status = run_prepared_scheme(
                prepared, pipe.machine, config, args.scheme
            )
        else:
            outcome = pipe.run(prepared, args.scheme)
    except _partition_validity_error() as exc:
        print(exc)
        return EXIT_HARD_FAILURE
    print(f"scheme:  {args.scheme}")
    _print_precision(prepared)
    print(f"cycles:  {outcome.cycles:.0f}")
    print(f"dynamic intercluster moves: {outcome.dynamic_moves:.0f}")
    _print_roofline(outcome.roofline)
    if outcome.object_home:
        print("object placement:")
        for obj, cluster in sorted(outcome.object_home.items()):
            size = prepared.objects[obj].size
            print(f"  cluster {cluster}: {obj} ({size} bytes)")
    return EXIT_OK


def _partition_validity_error():
    from .lint import PartitionValidityError

    return PartitionValidityError


def _print_roofline(roofline) -> None:
    """One-line distance-from-data-movement-optimum summary."""
    if not roofline:
        return
    print(
        f"roofline: {roofline['total_traffic_bytes']:.0f} bytes moved "
        f"vs {roofline['lower_bound_bytes']:.0f} I/O lower bound "
        f"(x{roofline['ratio']:.2f} from optimum)"
    )


def _partition_resilient(args, config: RunConfig) -> int:
    from .resilience import LadderExhausted, ResilientPipeline
    from .profiler import InterpreterError

    pipe = ResilientPipeline.from_config(config.replace(validate=True))
    try:
        prepared, report = pipe.prepare(_read_source(args.file), args.name)
    except InterpreterError as exc:
        print(f"profiling failed beyond recovery: {exc}")
        return EXIT_HARD_FAILURE
    profile_degraded = (
        config.profile == "dynamic" and prepared.profile.is_static()
    )
    try:
        result = pipe.run(prepared, args.scheme, report=report)
    except LadderExhausted as exc:
        print(exc)
        if exc.run_report is not None:
            _save_run_report(args, exc.run_report)
        return EXIT_HARD_FAILURE
    result.report.record_pointsto(
        prepared.pointsto_tier, prepared.pointsto.stats().to_dict()
    )
    scheme = result.scheme
    roofline = getattr(result, "roofline", None)
    if roofline:
        result.report.record_roofline(scheme, roofline)
    if result.fell_back:
        print(f"scheme:  {scheme} (fallback from {result.requested})")
    else:
        print(f"scheme:  {scheme}")
    if profile_degraded:
        print("profile: static (fallback from dynamic)")
    else:
        print(f"profile: {config.profile}")
    _print_precision(prepared)
    print(f"cycles:  {result.cycles:.0f}")
    print(f"dynamic intercluster moves: {result.dynamic_moves:.0f}")
    _print_roofline(roofline)
    summary = result.report.to_dict()["summary"]
    print(f"attempts: {summary['attempts']}  faults: {summary['faults']}  "
          f"fallbacks: {summary['fallbacks']}")
    if result.object_home:
        print("object placement:")
        for obj, cluster in sorted(result.object_home.items()):
            size = prepared.objects[obj].size
            print(f"  cluster {cluster}: {obj} ({size} bytes)")
    _save_run_report(args, result.report)
    return EXIT_DEGRADED if result.fell_back or profile_degraded else EXIT_OK


def _compare_resilient(args, config: RunConfig) -> int:
    from .resilience import LadderExhausted, ResilientPipeline
    from .profiler import InterpreterError

    pipe = ResilientPipeline.from_config(config.replace(validate=True))
    try:
        prepared, report = pipe.prepare(_read_source(args.file), args.name)
    except InterpreterError as exc:
        print(f"profiling failed beyond recovery: {exc}")
        return EXIT_HARD_FAILURE
    profile_degraded = (
        config.profile == "dynamic" and prepared.profile.is_static()
    )
    report.record_pointsto(
        prepared.pointsto_tier, prepared.pointsto.stats().to_dict()
    )
    try:
        outcomes = pipe.run_all(prepared, report=report)
    except LadderExhausted as exc:
        print(exc)
        _save_run_report(args, report)
        return EXIT_HARD_FAILURE
    base = outcomes["unified"].cycles
    rows = []
    degraded = profile_degraded
    for name in ("unified", "gdp", "profilemax", "naive"):
        out = outcomes[name]
        degraded = degraded or out.fell_back
        ran_as = out.scheme if out.fell_back else ""
        roofline = getattr(out, "roofline", None)
        if roofline:
            report.record_roofline(name, roofline)
        rows.append([
            name, ran_as, f"{out.cycles:.0f}",
            f"{base / out.cycles:.3f}" if out.cycles else "-",
            f"{out.dynamic_moves:.0f}",
            f"{roofline['ratio']:.2f}" if roofline else "-",
        ])
    _print_precision(prepared)
    print(format_table(
        ["scheme", "ran as", "cycles", "vs unified", "dyn moves",
         "x-roofline"], rows
    ))
    _save_run_report(args, report)
    return EXIT_DEGRADED if degraded else EXIT_OK


def _compare(args) -> int:
    config = _config_from_args(args)
    if _wants_resilience(args):
        return _compare_resilient(args, config)
    prepared = _prepared_from_config(args, config)
    pipe = Pipeline.from_config(config)
    try:
        outcomes = pipe.run_all(prepared)
    except _partition_validity_error() as exc:
        print(exc)
        return EXIT_HARD_FAILURE
    base = outcomes["unified"].cycles
    rows = []
    for name in ("unified", "gdp", "profilemax", "naive"):
        out = outcomes[name]
        rows.append([
            name, f"{out.cycles:.0f}",
            f"{base / out.cycles:.3f}" if out.cycles else "-",
            f"{out.dynamic_moves:.0f}",
            f"{out.roofline['ratio']:.2f}" if out.roofline else "-",
        ])
    _print_precision(prepared)
    print(format_table(
        ["scheme", "cycles", "vs unified", "dyn moves", "x-roofline"], rows
    ))
    return EXIT_OK


def _resolve_lint_path(path: str) -> str:
    """Allow ``repro lint examples/quickstart`` without an extension."""
    import os

    if path == "-" or os.path.exists(path):
        return path
    for suffix in (".py", ".mc", ".minic"):
        if os.path.exists(path + suffix):
            return path + suffix
    return path  # let open() raise the usual error


def _lint(args) -> int:
    from .analysis.pointsto import TIERS
    from .lint import (
        DETERMINISTIC_COLUMNS,
        Severity,
        check_region_outcome,
        check_scheme_outcome,
        lint_with_stats,
    )

    config = _config_from_args(args)
    module = compile_source(
        _read_source(_resolve_lint_path(args.file)), args.name,
        unroll_factor=args.unroll, if_convert=args.if_convert,
    )
    if args.optimize:
        from .opt import optimize_module

        optimize_module(module)

    profile = None
    if args.dynamic_oracle:
        # The oracle joins on op uids, so interpret the exact module
        # instance being linted (not a recompile).
        interp = Interpreter(module, max_steps=args.max_steps)
        interp.run()
        profile = interp.profile

    machine = config.build_machine()
    try:
        report, ctx = lint_with_stats(
            module, machine=machine, only=args.only or None, profile=profile
        )
    except ValueError as exc:  # unknown pass name in --only
        print(exc, file=sys.stderr)
        return EXIT_HARD_FAILURE

    # Per-tier precision stats ride on the report (deterministic columns
    # only, so --format json output is byte-stable across runs).  The
    # context memoizes the solves the differ pass already performed, so
    # this costs nothing beyond any tier the passes skipped.
    for tier in TIERS:
        stats = ctx.pointsto(tier).stats().to_dict()
        report.stats[tier] = {c: stats[c] for c in DETERMINISTIC_COLUMNS}

    if args.verify_partition:
        prepared = PreparedProgram.from_source(
            _read_source(_resolve_lint_path(args.file)), args.name,
            config=config,
        )
        pipe = Pipeline.from_config(config.replace(validate=False),
                                    machine=machine)
        outcome = pipe.run(prepared, args.scheme)
        report.extend(check_scheme_outcome(prepared, outcome))
        report.extend(check_region_outcome(prepared, outcome))

    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(report.to_json())
    elif fmt == "sarif":
        print(report.to_sarif())
    else:
        print(report.render_text())
    if args.run_report:
        with open(args.run_report, "w") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        print(f"[run report written to {args.run_report}]")
    if report.has_errors:
        return EXIT_DEGRADED
    if args.strict and any(
        d.severity is Severity.WARNING for d in report
    ):
        return EXIT_DEGRADED
    return EXIT_OK


def _bench(args) -> int:
    if args.all:
        return _bench_sweep(args)
    if args.name is None:
        rows = [
            [b.name, b.category, b.description] for b in all_benchmarks()
        ]
        print(format_table(["benchmark", "category", "description"], rows))
        return EXIT_OK
    config = _config_from_args(args)
    bench = get_benchmark(args.name)
    if config.cache_enabled:
        from .exec.engine import load_or_prepare

        prepared, _ir_hash, _status = load_or_prepare(
            bench.source, bench.name, config
        )
    else:
        prepared = PreparedProgram.from_source(
            bench.source, bench.name, config=config
        )
    pipe = Pipeline.from_config(config)
    rel = pipe.compare(prepared, schemes=("gdp", "profilemax", "naive"))
    rows = [[scheme, f"{value:.3f}"] for scheme, value in rel.items()]
    print(f"{bench.name} @ {args.latency}-cycle move latency "
          f"(relative to unified memory):")
    _print_precision(prepared)
    print(format_table(["scheme", "vs unified"], rows))
    return EXIT_OK


def _bench_sweep(args) -> int:
    """Run the Table-1 sweep (all benchmarks x all schemes) in parallel."""
    from .bench import names as bench_names
    from .exec.engine import ParallelRunner

    config = _config_from_args(args)
    benches = [args.name] if args.name else bench_names()
    runner = ParallelRunner(config)
    result = runner.sweep(benches, latencies=[args.latency])
    print(result.render_table())
    if args.run_report:
        result.save(args.run_report)
        print(f"[run report written to {args.run_report}]")
    counts = result.counts()
    if counts["failed"]:
        return EXIT_HARD_FAILURE
    if counts["degraded"]:
        return EXIT_DEGRADED
    return EXIT_OK


def _config_show(args) -> int:
    config = _config_from_args(args)
    if args.format == "json":
        print(config.to_json())
    else:
        print(config.describe())
    return EXIT_OK


def _cache_handle(args):
    from .exec.cache import ArtifactCache

    return ArtifactCache(args.cache_dir, "on")


def _cache_stats(args) -> int:
    stats = _cache_handle(args).stats()
    if args.format == "json":
        print(json.dumps(stats, indent=2, sort_keys=True))
        return EXIT_OK
    print(f"root:    {stats['root']}")
    print(f"entries: {stats['entries']} ({stats['bytes']} bytes)")
    for kind, slot in sorted(stats["disk"].items()):
        print(f"  {kind}: {slot['entries']} entries, {slot['bytes']} bytes")
    quarantine = stats["quarantine"]
    print(f"quarantine: {quarantine['entries']} corrupt entries "
          f"({quarantine['bytes']} bytes)")
    return EXIT_OK


def _cache_gc(args) -> int:
    result = _cache_handle(args).gc(
        max_age_days=args.max_age_days, max_bytes=args.max_bytes,
        grace_seconds=args.grace_seconds,
    )
    print(f"removed {result['removed']} entries, kept {result['kept']}")
    return EXIT_OK


def _serve(args) -> int:
    import signal

    from .service import Broker, ServiceServer

    config = RunConfig(cache=args.cache, cache_dir=args.cache_dir)
    broker = Broker(
        config=config, workers=args.workers, quota=args.quota,
        max_requeues=args.max_requeues,
        journal_dir=args.journal, fsync=args.fsync,
        max_depth=args.max_depth, tenant_pending=args.tenant_pending,
    )
    server = ServiceServer(
        broker=broker, host=args.host, port=args.port, verbose=args.verbose
    )
    # The resolved port matters when --port 0 asked for an ephemeral one
    # (tests and check.sh parse this line).
    print(f"serving on {server.url} "
          f"({args.workers} worker(s), cache {args.cache})", flush=True)
    if args.journal:
        recovery = broker.stats()["recovery"]
        print(f"journal {args.journal} (fsync {args.fsync}): recovered "
              f"{recovery['recovered']} job(s), requeued "
              f"{recovery['requeued']}", flush=True)

    def _drain_and_exit(_signum, _frame):
        # SIGTERM is the orchestrator's "please go away": stop admission,
        # finish or journal-park admitted work, exit 0.
        server.request_shutdown(drain=True)

    try:
        signal.signal(signal.SIGTERM, _drain_and_exit)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    server.serve_forever()
    return EXIT_OK


def _submit(args) -> int:
    from .service import ServiceClient, ServiceError

    if (args.file is None) == (args.bench is None):
        print("pass a source file or --bench NAME (not both)",
              file=sys.stderr)
        return EXIT_HARD_FAILURE
    client = ServiceClient(args.url, timeout=args.timeout)
    config = _config_from_args(args, cache="on")
    kwargs = dict(
        config=config.to_dict(), tenant=args.tenant, priority=args.priority
    )
    try:
        if args.bench:
            descriptor = client.submit(bench=args.bench, **kwargs)
        else:
            descriptor = client.submit(
                source=_read_source(args.file), name=args.name, **kwargs
            )
        job_id = descriptor["id"]
        if descriptor.get("coalesced_onto"):
            print(f"[coalesced onto in-flight job {job_id}]")
        else:
            print(f"[submitted job {job_id}]")
        if args.no_wait:
            print(json.dumps(descriptor, indent=2, sort_keys=True))
            return EXIT_OK
        if args.follow:
            for event in client.events(job_id, follow=True,
                                       timeout=args.timeout):
                print(json.dumps(event, sort_keys=True))
        final = client.wait(job_id, timeout=args.timeout)
    except ServiceError as exc:
        detail = f" (fields: {', '.join(exc.fields)})" if exc.fields else ""
        print(f"service error [{exc.code}]: {exc}{detail}", file=sys.stderr)
        return EXIT_HARD_FAILURE
    except (TimeoutError, OSError) as exc:
        print(f"service unreachable or timed out: {exc}", file=sys.stderr)
        return EXIT_HARD_FAILURE
    print(json.dumps(final, indent=2, sort_keys=True))
    if final["state"] == "done":
        return EXIT_OK
    if final["state"] == "degraded":
        return EXIT_DEGRADED
    return EXIT_HARD_FAILURE


def _cache_clear(args) -> int:
    removed = _cache_handle(args).clear()
    print(f"removed {removed} entries")
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compiler-directed data partitioning for multicluster "
        "processors (CGO 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile MiniC to IR")
    p.add_argument("file", help="MiniC source file ('-' for stdin)")
    p.add_argument("-o", "--output", help="write IR here instead of stdout")
    p.add_argument("--name", default="module")
    p.add_argument("--pretty", action="store_true",
                   help="human-readable form instead of serialized IR")
    _add_compile_flags(p)
    p.set_defaults(func=_compile)

    p = sub.add_parser("run", help="compile and interpret a program")
    p.add_argument("file")
    p.add_argument("--name", default="program")
    p.add_argument("--max-steps", type=int, default=50_000_000)
    _add_compile_flags(p)
    p.set_defaults(func=_run)

    p = sub.add_parser("partition", help="run one partitioning scheme")
    p.add_argument("file")
    p.add_argument("--name", default="program")
    p.add_argument("--scheme", default="gdp",
                   choices=["gdp", "profilemax", "naive", "unified"])
    p.add_argument("--verify-partition", action="store_true",
                   help="check every phase output against the paper's "
                   "invariants (fails on any violation)")
    _add_machine_flags(p)
    _add_pointsto_flag(p)
    _add_profile_flag(p)
    _add_exec_flags(p)
    _add_resilience_flags(p)
    p.set_defaults(func=_partition)

    p = sub.add_parser("compare", help="compare all four schemes")
    p.add_argument("file")
    p.add_argument("--name", default="program")
    p.add_argument("--verify-partition", action="store_true",
                   help="validate each scheme's phase outputs while running")
    _add_machine_flags(p)
    _add_pointsto_flag(p)
    _add_profile_flag(p)
    _add_exec_flags(p)
    _add_resilience_flags(p)
    p.set_defaults(func=_compare)

    p = sub.add_parser("bench", help="list or evaluate bundled benchmarks")
    p.add_argument("name", nargs="?", default=None)
    p.add_argument("--all", action="store_true",
                   help="run every benchmark x scheme cell as one parallel "
                   "sweep (honours --jobs and the artifact cache)")
    _add_machine_flags(p)
    _add_pointsto_flag(p)
    _add_profile_flag(p)
    _add_exec_flags(p)
    p.set_defaults(func=_bench)

    p = sub.add_parser(
        "lint",
        help="run static analysis (IR lint rules, optional partition "
        "validity checks)",
    )
    p.add_argument("file", help="MiniC source, '-' for stdin, or an "
                   "examples/*.py script with a SOURCE block")
    p.add_argument("--name", default="program")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report (stable ordering); "
                   "alias for --format json")
    p.add_argument("--format", default="text",
                   choices=["text", "json", "sarif"],
                   help="report format: human text, stable JSON, or "
                   "SARIF 2.1.0 for CI annotation tooling")
    p.add_argument("--dynamic-oracle", action="store_true",
                   help="interpret the program and check every "
                   "profiler-observed memory target against every "
                   "points-to tier (refinement differ oracle)")
    p.add_argument("--max-steps", type=int, default=50_000_000,
                   help="interpreter step budget for --dynamic-oracle")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on warnings too, not just errors")
    p.add_argument("--only", action="append", metavar="PASS",
                   help="run only the named lint pass (repeatable)")
    p.add_argument("--verify-partition", action="store_true",
                   help="also run a scheme and check the partition "
                   "validity invariants on its output")
    p.add_argument("--scheme", default="gdp",
                   choices=["gdp", "profilemax", "naive", "unified"],
                   help="scheme for --verify-partition (default gdp)")
    _add_compile_flags(p)
    _add_machine_flags(p)
    _add_pointsto_flag(p)
    _add_profile_flag(p)
    _add_exec_flags(p)
    p.set_defaults(func=_lint)

    p = sub.add_parser(
        "config", help="inspect the resolved execution configuration"
    )
    config_sub = p.add_subparsers(dest="config_command", required=True)
    p = config_sub.add_parser(
        "show", help="print the RunConfig a flag combination resolves to"
    )
    p.add_argument("--scheme", default="gdp",
                   choices=["gdp", "profilemax", "naive", "unified"])
    p.add_argument("--format", default="text", choices=["text", "json"])
    p.add_argument("--verify-partition", action="store_true",
                   help="resolve with validation enabled")
    _add_machine_flags(p)
    _add_pointsto_flag(p)
    _add_profile_flag(p)
    _add_exec_flags(p)
    _add_resilience_flags(p)
    p.set_defaults(func=_config_show)

    p = sub.add_parser("cache", help="artifact-cache maintenance")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    c = cache_sub.add_parser("stats", help="session counters and disk use")
    c.add_argument("--cache-dir", default=None, metavar="DIR")
    c.add_argument("--format", default="text", choices=["text", "json"])
    c.set_defaults(func=_cache_stats)
    c = cache_sub.add_parser(
        "gc", help="drop stale-schema, aged, or size-excess entries"
    )
    c.add_argument("--cache-dir", default=None, metavar="DIR")
    c.add_argument("--max-age-days", type=float, default=None, metavar="D",
                   help="remove entries older than D days")
    c.add_argument("--max-bytes", type=int, default=None, metavar="B",
                   help="remove least-recently-used entries until the "
                   "store fits in B")
    c.add_argument("--grace-seconds", type=float, default=0.0, metavar="S",
                   help="never evict entries written within the last S "
                   "seconds (protects concurrent writers; default 0)")
    c.set_defaults(func=_cache_gc)
    c = cache_sub.add_parser("clear", help="delete every stored artifact")
    c.add_argument("--cache-dir", default=None, metavar="DIR")
    c.set_defaults(func=_cache_clear)

    p = sub.add_parser(
        "serve", help="run the partitioning job server (HTTP, stdlib only)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="listen port (0 binds an ephemeral port; the "
                   "resolved URL is printed on startup)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="supervised worker threads (default 2)")
    p.add_argument("--quota", type=int, default=None, metavar="N",
                   help="per-tenant in-flight job cap (default unbounded)")
    p.add_argument("--max-requeues", type=int, default=1, metavar="N",
                   help="requeues before a job that keeps losing its "
                   "worker is failed (default 1)")
    p.add_argument("--journal", default=None, metavar="DIR",
                   help="write-ahead journal directory: every lifecycle "
                   "transition is logged before it is acked, and a "
                   "restart on the same DIR recovers the job table "
                   "(requeueing whatever a crash interrupted)")
    p.add_argument("--fsync", default="always",
                   choices=["always", "interval", "never"],
                   help="journal durability policy (default always: an "
                   "acked submission survives kill -9)")
    p.add_argument("--max-depth", type=int, default=None, metavar="N",
                   help="queue-depth admission bound; submissions past "
                   "it get 429 + Retry-After (default unbounded)")
    p.add_argument("--tenant-pending", type=int, default=None, metavar="N",
                   help="per-tenant bound on non-terminal jobs, same "
                   "429 contract (default unbounded)")
    p.add_argument("--cache", default="on", choices=list(CACHE_POLICIES),
                   help="server-side artifact-cache policy (default on; "
                   "the server's cache settings override submissions')")
    p.add_argument("--cache-dir", default=None, metavar="DIR")
    p.add_argument("--verbose", action="store_true",
                   help="log each HTTP request to stderr")
    p.set_defaults(func=_serve)

    p = sub.add_parser(
        "submit", help="submit a job to a running server and await it"
    )
    p.add_argument("file", nargs="?", default=None,
                   help="MiniC source file ('-' for stdin); omit with "
                   "--bench")
    p.add_argument("--url", default="http://127.0.0.1:8642",
                   help="server base URL (default http://127.0.0.1:8642)")
    p.add_argument("--bench", default=None, metavar="NAME",
                   help="submit a registry benchmark instead of a file")
    p.add_argument("--name", default="program")
    p.add_argument("--tenant", default="default",
                   help="tenant id for fair scheduling and quotas")
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs earlier (default 0)")
    p.add_argument("--scheme", default="gdp",
                   choices=["gdp", "profilemax", "naive", "unified"])
    p.add_argument("--follow", action="store_true",
                   help="stream the job's NDJSON lifecycle events while "
                   "it runs")
    p.add_argument("--no-wait", action="store_true",
                   help="print the submit reply and exit immediately")
    p.add_argument("--timeout", type=float, default=300.0, metavar="S",
                   help="overall wait budget (default 300s)")
    _add_machine_flags(p)
    _add_pointsto_flag(p)
    _add_profile_flag(p)
    p.add_argument("--seed", type=int, default=0, metavar="N")
    p.add_argument("--max-seconds", type=float, default=None, metavar="S")
    p.add_argument("--retries", type=int, default=None, metavar="N")
    p.add_argument("--fallback", action="store_true")
    p.add_argument("--fault-spec", metavar="SPEC")
    p.set_defaults(func=_submit)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # output piped into head etc.
        return EXIT_OK


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
