"""Command-line interface: ``python -m repro <command>``.

Commands
--------
compile    MiniC -> IR (exact serialized form, or --pretty for reading)
run        compile + interpret a MiniC program, print its output
partition  run one partitioning scheme, print placement and cycles
compare    run all four Table-1 schemes, print the comparison table
bench      list or evaluate the bundled benchmark suite
lint       static analysis: IR lint rules + partition validity checking
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import List, Optional

from .bench import all_benchmarks, get as get_benchmark
from .evalmodel import format_table
from .ir import print_module
from .ir.serialize import dumps
from .lang import compile_source
from .machine import two_cluster_machine
from .pipeline import Pipeline, PreparedProgram
from .profiler import Interpreter


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        text = handle.read()
    if path.endswith(".py"):
        # Example scripts (examples/*.py) embed their program in a
        # module-level SOURCE triple-quoted string; lint them directly.
        match = re.search(r'SOURCE\s*=\s*"""(.*?)"""', text, re.DOTALL)
        if match is None:
            raise SystemExit(
                f"{path}: no MiniC SOURCE = \"\"\"...\"\"\" block found"
            )
        return match.group(1)
    return text


def _add_compile_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--unroll", type=int, default=0, metavar="N",
                        help="unroll factor for counted loops (0 = off)")
    parser.add_argument("--if-convert", action="store_true",
                        help="if-convert small control diamonds")
    parser.add_argument("--optimize", action="store_true",
                        help="run constant folding / copy-prop / CSE / DCE")


def _add_machine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--latency", type=int, default=5, metavar="CYCLES",
                        help="intercluster move latency (default 5)")


def _add_pointsto_flag(parser: argparse.ArgumentParser) -> None:
    from .analysis import TIERS

    parser.add_argument("--pointsto", default="andersen", choices=list(TIERS),
                        help="points-to precision tier annotating the "
                        "memory ops (default andersen; field adds "
                        "field-sensitivity, cs adds 1-CFA call-site "
                        "context sensitivity on top)")


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-seconds", type=float, default=None,
                        metavar="S",
                        help="wall-clock budget: partitioners return their "
                        "best-so-far result once it expires (anytime mode)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="re-run a failed scheme N more times with a "
                        "reseeded partitioner before falling back")
    parser.add_argument("--fallback", action="store_true",
                        help="on failure, degrade down the quality ladder "
                        "gdp -> profilemax -> naive -> unified")
    parser.add_argument("--run-report", metavar="PATH",
                        help="write a JSON report of every attempt, fault, "
                        "fallback and per-phase wall time to PATH")
    parser.add_argument("--fault-spec", metavar="SPEC",
                        help="inject deterministic faults, e.g. "
                        "'seed=7;raise:gdp@1' (see DESIGN.md for the "
                        "grammar)")


def _wants_resilience(args) -> bool:
    return any((
        args.max_seconds is not None,
        args.retries is not None,
        args.fallback,
        args.run_report,
        args.fault_spec,
    ))


def _resilient_pipeline(args):
    from .resilience import Budget, FaultPlan, ResilientPipeline

    budget = (
        Budget(max_seconds=args.max_seconds)
        if args.max_seconds is not None else None
    )
    faults = FaultPlan.parse(args.fault_spec) if args.fault_spec else None
    return ResilientPipeline(
        two_cluster_machine(move_latency=args.latency),
        retries=args.retries if args.retries is not None else 1,
        fallback=args.fallback,
        validate=True,
        budget=budget,
        faults=faults,
    )


def _save_run_report(args, report) -> None:
    if args.run_report:
        report.save(args.run_report)
        print(f"[run report written to {args.run_report}]")


def _compile(args) -> int:
    module = compile_source(
        _read_source(args.file), args.name,
        unroll_factor=args.unroll, if_convert=args.if_convert,
    )
    if args.optimize:
        from .opt import optimize_module

        optimize_module(module)
    text = print_module(module) if args.pretty else dumps(module)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    else:
        print(text)
    return 0


def _run(args) -> int:
    module = compile_source(
        _read_source(args.file), args.name,
        unroll_factor=args.unroll, if_convert=args.if_convert,
    )
    if args.optimize:
        from .opt import optimize_module

        optimize_module(module)
    interp = Interpreter(module, max_steps=args.max_steps)
    result = interp.run()
    for value in interp.profile.output:
        print(value)
    print(f"[exit {result}; {interp.steps} operations executed]")
    return 0


def _prepared_from_args(args) -> PreparedProgram:
    return PreparedProgram.from_source(
        _read_source(args.file), args.name,
        pointsto_tier=getattr(args, "pointsto", "andersen"),
    )


def _print_precision(prepared: PreparedProgram) -> None:
    print(f"pointsto: {prepared.pointsto.stats().describe()}")


def _partition(args) -> int:
    prepared = _prepared_from_args(args)
    if _wants_resilience(args):
        return _partition_resilient(args, prepared)
    pipe = Pipeline(
        two_cluster_machine(move_latency=args.latency),
        validate=getattr(args, "verify_partition", False),
    )
    try:
        outcome = pipe.run(prepared, args.scheme)
    except _partition_validity_error() as exc:
        print(exc)
        return 1
    print(f"scheme:  {args.scheme}")
    _print_precision(prepared)
    print(f"cycles:  {outcome.cycles:.0f}")
    print(f"dynamic intercluster moves: {outcome.dynamic_moves:.0f}")
    if outcome.object_home:
        print("object placement:")
        for obj, cluster in sorted(outcome.object_home.items()):
            size = prepared.objects[obj].size
            print(f"  cluster {cluster}: {obj} ({size} bytes)")
    return 0


def _partition_validity_error():
    from .lint import PartitionValidityError

    return PartitionValidityError


def _partition_resilient(args, prepared) -> int:
    from .resilience import LadderExhausted

    pipe = _resilient_pipeline(args)
    try:
        result = pipe.run(prepared, args.scheme)
    except LadderExhausted as exc:
        print(exc)
        if exc.run_report is not None:
            _save_run_report(args, exc.run_report)
        return 1
    result.report.record_pointsto(
        prepared.pointsto_tier, prepared.pointsto.stats().to_dict()
    )
    scheme = result.scheme
    if result.fell_back:
        print(f"scheme:  {scheme} (fallback from {result.requested})")
    else:
        print(f"scheme:  {scheme}")
    _print_precision(prepared)
    print(f"cycles:  {result.cycles:.0f}")
    print(f"dynamic intercluster moves: {result.dynamic_moves:.0f}")
    summary = result.report.to_dict()["summary"]
    print(f"attempts: {summary['attempts']}  faults: {summary['faults']}  "
          f"fallbacks: {summary['fallbacks']}")
    if result.object_home:
        print("object placement:")
        for obj, cluster in sorted(result.object_home.items()):
            size = prepared.objects[obj].size
            print(f"  cluster {cluster}: {obj} ({size} bytes)")
    _save_run_report(args, result.report)
    return 0


def _compare_resilient(args, prepared) -> int:
    from .resilience import LadderExhausted, RunReport

    pipe = _resilient_pipeline(args)
    report = RunReport()
    report.record_pointsto(
        prepared.pointsto_tier, prepared.pointsto.stats().to_dict()
    )
    try:
        outcomes = pipe.run_all(prepared, report=report)
    except LadderExhausted as exc:
        print(exc)
        _save_run_report(args, report)
        return 1
    base = outcomes["unified"].cycles
    rows = []
    for name in ("unified", "gdp", "profilemax", "naive"):
        out = outcomes[name]
        ran_as = out.scheme if out.fell_back else ""
        rows.append([
            name, ran_as, f"{out.cycles:.0f}",
            f"{base / out.cycles:.3f}" if out.cycles else "-",
            f"{out.dynamic_moves:.0f}",
        ])
    _print_precision(prepared)
    print(format_table(
        ["scheme", "ran as", "cycles", "vs unified", "dyn moves"], rows
    ))
    _save_run_report(args, report)
    return 0


def _compare(args) -> int:
    prepared = _prepared_from_args(args)
    if _wants_resilience(args):
        return _compare_resilient(args, prepared)
    pipe = Pipeline(
        two_cluster_machine(move_latency=args.latency),
        validate=getattr(args, "verify_partition", False),
    )
    try:
        outcomes = pipe.run_all(prepared)
    except _partition_validity_error() as exc:
        print(exc)
        return 1
    base = outcomes["unified"].cycles
    rows = []
    for name in ("unified", "gdp", "profilemax", "naive"):
        out = outcomes[name]
        rows.append([
            name, f"{out.cycles:.0f}",
            f"{base / out.cycles:.3f}" if out.cycles else "-",
            f"{out.dynamic_moves:.0f}",
        ])
    _print_precision(prepared)
    print(format_table(["scheme", "cycles", "vs unified", "dyn moves"], rows))
    return 0


def _resolve_lint_path(path: str) -> str:
    """Allow ``repro lint examples/quickstart`` without an extension."""
    import os

    if path == "-" or os.path.exists(path):
        return path
    for suffix in (".py", ".mc", ".minic"):
        if os.path.exists(path + suffix):
            return path + suffix
    return path  # let open() raise the usual error


def _lint(args) -> int:
    from .lint import (
        DETERMINISTIC_COLUMNS,
        Severity,
        check_scheme_outcome,
        lint_module,
        tier_solutions,
    )

    module = compile_source(
        _read_source(_resolve_lint_path(args.file)), args.name,
        unroll_factor=args.unroll, if_convert=args.if_convert,
    )
    if args.optimize:
        from .opt import optimize_module

        optimize_module(module)

    profile = None
    if args.dynamic_oracle:
        # The oracle joins on op uids, so interpret the exact module
        # instance being linted (not a recompile).
        interp = Interpreter(module, max_steps=args.max_steps)
        interp.run()
        profile = interp.profile

    machine = two_cluster_machine(move_latency=args.latency)
    try:
        report = lint_module(
            module, machine=machine, only=args.only or None, profile=profile
        )
    except ValueError as exc:  # unknown pass name in --only
        print(exc, file=sys.stderr)
        return 2

    # Per-tier precision stats ride on the report (deterministic columns
    # only, so --format json output is byte-stable across runs).
    for tier, solution in tier_solutions(module).items():
        stats = solution.stats().to_dict()
        report.stats[tier] = {c: stats[c] for c in DETERMINISTIC_COLUMNS}

    if args.verify_partition:
        prepared = PreparedProgram.from_source(
            _read_source(_resolve_lint_path(args.file)), args.name,
            pointsto_tier=args.pointsto,
        )
        pipe = Pipeline(machine)
        outcome = pipe.run(prepared, args.scheme)
        report.extend(check_scheme_outcome(prepared, outcome))

    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(report.to_json())
    elif fmt == "sarif":
        print(report.to_sarif())
    else:
        print(report.render_text())
    if report.has_errors:
        return 1
    if args.strict and any(
        d.severity is Severity.WARNING for d in report
    ):
        return 1
    return 0


def _bench(args) -> int:
    if args.name is None:
        rows = [
            [b.name, b.category, b.description] for b in all_benchmarks()
        ]
        print(format_table(["benchmark", "category", "description"], rows))
        return 0
    bench = get_benchmark(args.name)
    prepared = PreparedProgram.from_source(
        bench.source, bench.name, pointsto_tier=args.pointsto
    )
    pipe = Pipeline(two_cluster_machine(move_latency=args.latency))
    rel = pipe.compare(prepared, schemes=("gdp", "profilemax", "naive"))
    rows = [[scheme, f"{value:.3f}"] for scheme, value in rel.items()]
    print(f"{bench.name} @ {args.latency}-cycle move latency "
          f"(relative to unified memory):")
    _print_precision(prepared)
    print(format_table(["scheme", "vs unified"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compiler-directed data partitioning for multicluster "
        "processors (CGO 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile MiniC to IR")
    p.add_argument("file", help="MiniC source file ('-' for stdin)")
    p.add_argument("-o", "--output", help="write IR here instead of stdout")
    p.add_argument("--name", default="module")
    p.add_argument("--pretty", action="store_true",
                   help="human-readable form instead of serialized IR")
    _add_compile_flags(p)
    p.set_defaults(func=_compile)

    p = sub.add_parser("run", help="compile and interpret a program")
    p.add_argument("file")
    p.add_argument("--name", default="program")
    p.add_argument("--max-steps", type=int, default=50_000_000)
    _add_compile_flags(p)
    p.set_defaults(func=_run)

    p = sub.add_parser("partition", help="run one partitioning scheme")
    p.add_argument("file")
    p.add_argument("--name", default="program")
    p.add_argument("--scheme", default="gdp",
                   choices=["gdp", "profilemax", "naive", "unified"])
    p.add_argument("--verify-partition", action="store_true",
                   help="check every phase output against the paper's "
                   "invariants (fails on any violation)")
    _add_machine_flags(p)
    _add_pointsto_flag(p)
    _add_resilience_flags(p)
    p.set_defaults(func=_partition)

    p = sub.add_parser("compare", help="compare all four schemes")
    p.add_argument("file")
    p.add_argument("--name", default="program")
    p.add_argument("--verify-partition", action="store_true",
                   help="validate each scheme's phase outputs while running")
    _add_machine_flags(p)
    _add_pointsto_flag(p)
    _add_resilience_flags(p)
    p.set_defaults(func=_compare)

    p = sub.add_parser("bench", help="list or evaluate bundled benchmarks")
    p.add_argument("name", nargs="?", default=None)
    _add_machine_flags(p)
    _add_pointsto_flag(p)
    p.set_defaults(func=_bench)

    p = sub.add_parser(
        "lint",
        help="run static analysis (IR lint rules, optional partition "
        "validity checks)",
    )
    p.add_argument("file", help="MiniC source, '-' for stdin, or an "
                   "examples/*.py script with a SOURCE block")
    p.add_argument("--name", default="program")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report (stable ordering); "
                   "alias for --format json")
    p.add_argument("--format", default="text",
                   choices=["text", "json", "sarif"],
                   help="report format: human text, stable JSON, or "
                   "SARIF 2.1.0 for CI annotation tooling")
    p.add_argument("--dynamic-oracle", action="store_true",
                   help="interpret the program and check every "
                   "profiler-observed memory target against every "
                   "points-to tier (refinement differ oracle)")
    p.add_argument("--max-steps", type=int, default=50_000_000,
                   help="interpreter step budget for --dynamic-oracle")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on warnings too, not just errors")
    p.add_argument("--only", action="append", metavar="PASS",
                   help="run only the named lint pass (repeatable)")
    p.add_argument("--verify-partition", action="store_true",
                   help="also run a scheme and check the partition "
                   "validity invariants on its output")
    p.add_argument("--scheme", default="gdp",
                   choices=["gdp", "profilemax", "naive", "unified"],
                   help="scheme for --verify-partition (default gdp)")
    _add_compile_flags(p)
    _add_machine_flags(p)
    _add_pointsto_flag(p)
    p.set_defaults(func=_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # output piped into head etc.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
