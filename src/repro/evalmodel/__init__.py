"""Cycle-count evaluation model: per-block scheduling weighted by the
execution profile, the exhaustive object-mapping search of Fig. 9, and
plain-text reporting helpers."""

from .cycles import BlockStats, EvalResult, evaluate_module
from .exhaustive import ExhaustiveResult, MappingPoint, exhaustive_search
from .roofline import (
    WORD_BYTES,
    RooflineModel,
    build_roofline,
    roofline_for,
)
from .report import (
    arithmetic_mean,
    bar_chart,
    format_table,
    geomean,
    scatter_plot,
)

__all__ = [
    "BlockStats",
    "EvalResult",
    "evaluate_module",
    "ExhaustiveResult",
    "MappingPoint",
    "exhaustive_search",
    "WORD_BYTES",
    "RooflineModel",
    "build_roofline",
    "roofline_for",
    "arithmetic_mean",
    "bar_chart",
    "format_table",
    "geomean",
    "scatter_plot",
]
