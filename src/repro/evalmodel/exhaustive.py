"""Exhaustive search over data-object mappings (Figure 9).

Section 4.3: "we present two graphs which represent an exhaustive search
of all the possible data object mappings to two clusters for the
rawcaudio and rawdaudio benchmarks ... each point represents the
performance of a possible data object partitioning normalized to the
worst performing partitioning.  The shading of each point indicates the
relative data object size balance between the clusters."

Objects are enumerated at the granularity of the access-pattern merge
groups (objects merged together can never be split, so enumerating them
jointly would only produce duplicate points).  The first group is pinned
to cluster 0 — with two symmetric clusters, mirrored mappings have
identical cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..machine import Machine
from ..partition.rhop import RHOPConfig


class MappingPoint:
    """One evaluated object mapping."""

    def __init__(
        self,
        mapping: Dict[str, int],
        cycles: float,
        cluster_bytes: List[int],
    ):
        self.mapping = mapping
        self.cycles = cycles
        self.cluster_bytes = cluster_bytes

    @property
    def imbalance(self) -> float:
        """0.0 = perfectly balanced byte split, 1.0 = everything on one
        cluster (this is the paper's point shading)."""
        total = sum(self.cluster_bytes)
        if total == 0:
            return 0.0
        share = max(self.cluster_bytes) / total
        return 2.0 * share - 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<mapping {self.cycles:.0f} cycles, imb={self.imbalance:.2f}>"


class ExhaustiveResult:
    """All mappings for one benchmark plus the named schemes' points."""

    def __init__(self, points: List[MappingPoint]):
        self.points = points
        self.scheme_points: Dict[str, MappingPoint] = {}

    @property
    def worst_cycles(self) -> float:
        return max(p.cycles for p in self.points)

    @property
    def best_cycles(self) -> float:
        return min(p.cycles for p in self.points)

    def normalized(self, point: MappingPoint) -> float:
        """Performance relative to the worst mapping (>= 1.0)."""
        return self.worst_cycles / point.cycles if point.cycles else 0.0

    def best_improvement(self) -> float:
        """How much better the best mapping is than the worst."""
        return self.worst_cycles / self.best_cycles if self.best_cycles else 0.0


def exhaustive_search(
    prepared,
    machine: Machine,
    max_groups: int = 12,
    rhop_config: Optional[RHOPConfig] = None,
    scheme_homes: Optional[Dict[str, Dict[str, int]]] = None,
) -> ExhaustiveResult:
    """Evaluate every object-group mapping (2-cluster machines only).

    ``prepared`` is a :class:`repro.pipeline.PreparedProgram`;
    ``scheme_homes`` optionally maps scheme labels (e.g. ``"gdp"``) to
    object placements whose points should be marked on the result.
    """
    from ..pipeline.schemes import run_gdp  # local import: avoids a cycle

    if machine.num_clusters != 2:
        raise ValueError("exhaustive search is defined for 2 clusters")
    groups = sorted(
        prepared.merge.object_groups(), key=lambda g: min(g.object_ids)
    )
    if len(groups) > max_groups:
        raise ValueError(
            f"{len(groups)} object groups exceed max_groups={max_groups}; "
            "exhaustive search would be infeasible"
        )
    objects = prepared.objects

    points: List[MappingPoint] = []
    n = len(groups)
    combos = 1 << max(n - 1, 0)
    for bits in range(combos):
        mapping: Dict[str, int] = {}
        cluster_bytes = [0, 0]
        for i, group in enumerate(groups):
            cluster = 0 if i == 0 else (bits >> (i - 1)) & 1
            for obj in group.object_ids:
                mapping[obj] = cluster
            cluster_bytes[cluster] += objects.size_of(group.object_ids)
        outcome = run_gdp(
            prepared, machine, rhop_config=rhop_config, object_home=mapping
        )
        points.append(MappingPoint(mapping, outcome.cycles, cluster_bytes))

    result = ExhaustiveResult(points)
    for label, homes in (scheme_homes or {}).items():
        result.scheme_points[label] = _locate(result, homes, groups, objects)
    return result


def _locate(result, homes, groups, objects) -> MappingPoint:
    """Find (or synthesise) the mapping point matching a scheme's homes,
    accounting for the cluster-mirroring symmetry."""
    signature = tuple(homes.get(min(g.object_ids), 0) for g in groups)
    mirrored = tuple(1 - c for c in signature)
    for point in result.points:
        psig = tuple(point.mapping[min(g.object_ids)] for g in groups)
        if psig == signature or psig == mirrored:
            return point
    raise KeyError("scheme mapping not found among enumerated points")
