"""Whole-program cycle estimation.

The paper assumes partitioned caches with a 100% hit rate, so execution
time is fully determined by the static schedules: total cycles =
Σ over blocks (list-schedule length × profiled execution count).  The same
weighting yields the dynamic intercluster move count used by Figure 10.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..ir import Module
from ..machine import Machine
from ..schedule import ListScheduler


class BlockStats:
    """Schedule outcome of one block."""

    __slots__ = ("length", "frequency", "moves")

    def __init__(self, length: int, frequency: float, moves: int):
        self.length = length
        self.frequency = frequency
        self.moves = moves


class EvalResult:
    """Whole-program cycle and traffic totals."""

    def __init__(self):
        self.cycles = 0.0
        self.dynamic_moves = 0.0
        self.static_moves = 0
        self.blocks: Dict[Tuple[str, str], BlockStats] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<eval: {self.cycles:.0f} cycles, "
            f"{self.dynamic_moves:.0f} dynamic moves>"
        )


def evaluate_module(
    module: Module,
    assignment: Dict[int, int],
    machine: Machine,
    block_freq: Callable[[str, str], float],
) -> EvalResult:
    """Schedule every block and accumulate profile-weighted totals.

    ``assignment`` must cover every operation (including inserted
    ICMOVEs); ``block_freq(func, block)`` returns execution counts.
    """
    scheduler = ListScheduler(machine)
    result = EvalResult()
    for func in module:
        for block in func:
            if not block.ops:
                continue
            sched = scheduler.schedule_block(block, assignment)
            freq = block_freq(func.name, block.name)
            result.blocks[(func.name, block.name)] = BlockStats(
                sched.length, freq, sched.move_count
            )
            result.cycles += sched.length * freq
            result.dynamic_moves += sched.move_count * freq
            result.static_moves += sched.move_count
    return result
