"""Plain-text reporting: the tables and bar charts the benches print.

Every figure in the paper is a bar chart or scatter plot; these helpers
render the same data as aligned text tables plus ASCII bars so the
reproduction's output can be compared against the paper at a glance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as an aligned text table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def bar_chart(
    labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 40,
    unit: str = "",
    baseline: Optional[float] = None,
) -> str:
    """Horizontal ASCII bar chart with one bar group per label.

    ``series`` maps a series name to one value per label (like the paper's
    grouped bars for GDP vs Profile Max).  ``baseline`` draws a reference
    mark (e.g. 1.0 = unified-memory parity).
    """
    peak = max(
        (v for values in series.values() for v in values), default=1.0
    )
    peak = max(peak, baseline or 0.0, 1e-9)
    lines: List[str] = []
    label_w = max((len(l) for l in labels), default=0)
    name_w = max((len(n) for n in series), default=0)
    for i, label in enumerate(labels):
        for j, (name, values) in enumerate(series.items()):
            value = values[i]
            filled = int(round(width * value / peak))
            bar = "#" * filled
            if baseline is not None:
                mark = int(round(width * baseline / peak))
                if mark >= len(bar):
                    bar = bar + " " * (mark - len(bar)) + "|"
            prefix = label if j == 0 else ""
            lines.append(
                f"{prefix.ljust(label_w)}  {name.ljust(name_w)} "
                f"{bar} {value:.3f}{unit}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def scatter_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    shades: Optional[Sequence[float]] = None,
    marks: Optional[Dict[str, Tuple[float, float]]] = None,
    rows: int = 16,
    cols: int = 60,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Coarse ASCII scatter plot (used for the Figure 9 search clouds).

    ``shades`` in [0, 1] selects the glyph (light '.' to dark '@'),
    mirroring the paper's balance shading; ``marks`` overlays labelled
    points (each label's first character is drawn).
    """
    if not xs:
        return "(no points)"
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    glyphs = ".:oO@"
    grid = [[" "] * cols for _ in range(rows)]

    def cell(x: float, y: float) -> Tuple[int, int]:
        cx = int((x - xmin) / xspan * (cols - 1))
        cy = int((y - ymin) / yspan * (rows - 1))
        return rows - 1 - cy, cx

    for i, (x, y) in enumerate(zip(xs, ys)):
        shade = shades[i] if shades is not None else 0.5
        glyph = glyphs[min(int(shade * len(glyphs)), len(glyphs) - 1)]
        r, c = cell(x, y)
        grid[r][c] = glyph
    for label, (x, y) in (marks or {}).items():
        r, c = cell(x, y)
        grid[r][c] = label[0].upper()

    lines = [f"  y: {y_label} (top={ymax:.3f}, bottom={ymin:.3f})"]
    lines += ["  |" + "".join(row) for row in grid]
    lines.append("  +" + "-" * cols)
    lines.append(f"   x: {x_label} (left={xmin:.3f}, right={xmax:.3f})")
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for performance ratios)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))


def arithmetic_mean(values: Sequence[float]) -> float:
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0
