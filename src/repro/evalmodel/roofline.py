"""Data-movement roofline: how far a homing scheme sits from the I/O
optimum.

Following the red-blue pebble view of data-access complexity (Elango et
al., PAPERS.md), any execution must move at least

    ``LB = Σ_obj min(span(obj), traffic(obj))``

bytes through the memory system: each object's bytes must be touched at
least once each (its live *span* — the coalesced byte regions the
profile actually observed), and no object can cost more than the
traffic the program actually generates on it.  ``LB`` is therefore a
sound lower bound on bytes moved for *every* partitioning scheme, and

    ``ratio = (traffic + moved_words × WORD_BYTES) / LB  ≥  1.0``

is the scheme's distance from the data-movement optimum — 1.0 means
every byte crossed the memory system exactly once and no intercluster
word was wasted.  The bound is partition-independent (it depends only on
the profiled access stream), so one :class:`RooflineModel` per prepared
program serves all four schemes; only the ``dynamic_moves`` term varies.

The ratio surfaces in scheme reports (``repro partition`` /
``repro compare``), in :class:`~repro.resilience.report.RunReport` JSON,
and in the service's ``/v1/stats`` aggregate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.affine import coalesce_intervals
from ..ir import Opcode

#: Bytes carried per intercluster move (one machine word).
WORD_BYTES = 4


def _access_width(op) -> int:
    """Bytes one execution of a memory op moves (type width, min 1)."""
    if op.opcode is Opcode.LOAD and op.dest is not None:
        return max(op.dest.ty.size(), 1)
    if op.opcode is Opcode.STORE and op.srcs:
        return max(op.srcs[0].ty.size(), 1)
    return 1


class RooflineModel:
    """Per-program I/O lower bound and per-object traffic/span totals.

    Built once per :class:`~repro.pipeline.prepared.PreparedProgram`;
    :meth:`report` then prices any scheme outcome's move count against
    the shared bound.
    """

    def __init__(
        self,
        spans: Dict[str, int],
        traffic: Dict[str, int],
    ):
        self.spans = spans
        self.traffic = traffic
        #: Bytes the program is proven to need through the memory system.
        self.lower_bound = sum(
            min(spans.get(obj, 0), bytes_moved)
            for obj, bytes_moved in traffic.items()
        )
        #: Bytes the profiled access stream actually moves (loads+stores).
        self.memory_traffic = sum(traffic.values())
        #: Live footprint: coalesced bytes ever touched, all objects.
        self.footprint = sum(spans.values())

    def ratio(self, dynamic_moves: float = 0.0) -> float:
        """Distance from the data-movement optimum (≥ 1.0 by construction:
        every lower-bound term is clamped by its object's real traffic)."""
        total = self.memory_traffic + float(dynamic_moves) * WORD_BYTES
        if self.lower_bound <= 0:
            return 1.0
        return total / self.lower_bound

    def report(self, dynamic_moves: float = 0.0) -> Dict[str, float]:
        """JSON-ready summary for one scheme outcome (deterministic)."""
        move_traffic = float(dynamic_moves) * WORD_BYTES
        return {
            "footprint_bytes": self.footprint,
            "memory_traffic_bytes": self.memory_traffic,
            "move_traffic_bytes": move_traffic,
            "total_traffic_bytes": self.memory_traffic + move_traffic,
            "lower_bound_bytes": self.lower_bound,
            "ratio": round(self.ratio(dynamic_moves), 4),
        }


def build_roofline(prepared) -> RooflineModel:
    """Derive the roofline from a prepared program's profile.

    * ``traffic(obj)`` — dynamic access count × access width, summed over
      every memory op that may touch ``obj`` (multi-object ops charge
      each candidate its own profiled count, so the total never
      undercounts any one object).
    * ``span(obj)`` — total bytes of the coalesced envelope regions the
      profile observed (static profiles use their sound region bounds),
      clamped to the object's size; objects with traffic but no recorded
      envelope fall back to their full size.
    """
    profile = prepared.profile
    objects = prepared.objects

    widths: Dict[int, int] = {}
    for func in prepared.module:
        for op in func.operations():
            if op.is_memory_access():
                widths[op.uid] = _access_width(op)

    traffic: Dict[str, int] = {}
    envelopes: Dict[str, List[Tuple[int, int]]] = {}
    whole: Dict[str, bool] = {}
    for uid, counts in profile.op_object_counts.items():
        width = widths.get(uid)
        if width is None:
            continue
        regions = profile.op_object_regions.get(uid, {})
        for obj, count in counts.items():
            if count <= 0:
                continue
            traffic[obj] = traffic.get(obj, 0) + int(count) * width
            region = regions.get(obj)
            if region is None:
                whole[obj] = True
            else:
                envelopes.setdefault(obj, []).append(
                    (region[0], region[1])
                )

    spans: Dict[str, int] = {}
    for obj in traffic:
        size = objects.objects[obj].size if obj in objects.objects else 0
        if whole.get(obj) or obj not in envelopes:
            spans[obj] = size
            continue
        covered = sum(
            hi - lo for lo, hi in coalesce_intervals(envelopes[obj])
        )
        spans[obj] = min(covered, size) if size > 0 else covered
    return RooflineModel(spans, traffic)


def roofline_for(prepared) -> RooflineModel:
    """Memoized :func:`build_roofline` (one model serves all schemes)."""
    model: Optional[RooflineModel] = getattr(prepared, "_roofline", None)
    if model is None:
        model = build_roofline(prepared)
        prepared._roofline = model
    return model
