"""Control-flow graph utilities over :class:`repro.ir.Function`.

The IR stores successor names on terminators; this module materialises the
predecessor map and standard traversal orders used by the dataflow
analyses.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir import BasicBlock, Function


class CFG:
    """Successor/predecessor maps plus traversal orders for one function."""

    def __init__(self, func: Function):
        self.func = func
        self.succs: Dict[str, List[str]] = {}
        self.preds: Dict[str, List[str]] = {}
        for block in func:
            self.succs[block.name] = block.successors()
            self.preds.setdefault(block.name, [])
        for name, targets in self.succs.items():
            for target in targets:
                self.preds.setdefault(target, []).append(name)

    @property
    def entry(self) -> str:
        return self.func.entry.name

    def successors(self, name: str) -> List[str]:
        return self.succs.get(name, [])

    def predecessors(self, name: str) -> List[str]:
        return self.preds.get(name, [])

    def exit_blocks(self) -> List[str]:
        """Blocks ending in RET (no successors)."""
        return [name for name, succs in self.succs.items() if not succs]

    def postorder(self) -> List[str]:
        """Postorder over reachable blocks (iterative DFS)."""
        seen: Set[str] = set()
        order: List[str] = []
        stack: List[tuple] = [(self.entry, iter(self.successors(self.entry)))]
        seen.add(self.entry)
        while stack:
            name, child_iter = stack[-1]
            advanced = False
            for child in child_iter:
                if child not in seen:
                    seen.add(child)
                    stack.append((child, iter(self.successors(child))))
                    advanced = True
                    break
            if not advanced:
                order.append(name)
                stack.pop()
        return order

    def reverse_postorder(self) -> List[str]:
        """Reverse postorder — the canonical forward-dataflow ordering."""
        return list(reversed(self.postorder()))

    def reachable(self) -> Set[str]:
        return set(self.postorder())

    def is_back_edge(self, src: str, dst: str, rpo_index: Dict[str, int]) -> bool:
        """Heuristic back-edge test by RPO numbering (exact for reducible CFGs)."""
        return rpo_index.get(dst, -1) <= rpo_index.get(src, -1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<cfg {self.func.name}: {len(self.succs)} blocks>"
