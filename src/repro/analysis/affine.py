"""Block-local affine address analysis for memory disambiguation.

Trimaran-class compilers disambiguate array accesses whose addresses
differ by a known constant (``a[i]`` vs ``a[i-1]``); without that, every
store to an array serialises against every later load of it and unrolled
loops lose all their parallelism.

Each address is expressed as an *affine form*: a linear combination of
opaque atoms (live-in registers, load results — versioned so register
redefinition is handled soundly in the non-SSA IR) plus a constant.  Two
accesses with identical symbolic parts and non-overlapping
``[const, const+width)`` intervals cannot alias.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..ir import BasicBlock, Constant, GlobalAddress, Opcode, Operation, VirtualRegister


def intervals_overlap(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    """True when half-open byte intervals ``[lo, hi)`` share any byte."""
    return a[0] < b[1] and b[0] < a[1]


def coalesce_intervals(
    intervals: Iterable[Tuple[int, int]],
) -> List[Tuple[int, int]]:
    """Merge *overlapping* half-open intervals, sorted by start.

    Field-sensitive points-to uses the result as the canonical field/array
    regions of an object: accesses that can touch the same bytes must
    share one content node.  Merely *adjacent* intervals (``p[0]`` vs
    ``p[1]``) stay distinct — that separation is what lets the field tier
    keep the slots of a pointer table apart.
    """
    merged: List[Tuple[int, int]] = []
    for lo, hi in sorted(intervals):
        if merged and lo < merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


class Affine:
    """``sum(coeff * atom) + const`` with integer coefficients.

    Atoms are hashable opaque value identities; the form is immutable.
    """

    __slots__ = ("terms", "const")

    def __init__(self, terms: Dict, const: int):
        self.terms = {t: c for t, c in terms.items() if c != 0}
        self.const = const

    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine({}, value)

    @staticmethod
    def atom(identity) -> "Affine":
        return Affine({identity: 1}, 0)

    def add(self, other: "Affine") -> "Affine":
        terms = dict(self.terms)
        for t, c in other.terms.items():
            terms[t] = terms.get(t, 0) + c
        return Affine(terms, self.const + other.const)

    def negate(self) -> "Affine":
        return Affine({t: -c for t, c in self.terms.items()}, -self.const)

    def scale(self, factor: int) -> "Affine":
        return Affine(
            {t: c * factor for t, c in self.terms.items()}, self.const * factor
        )

    def same_symbolic(self, other: "Affine") -> bool:
        return self.terms == other.terms

    def as_constant(self) -> Optional[int]:
        """The form's integer value, or ``None`` if it has symbolic terms."""
        return self.const if not self.terms else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{c}*{t}" for t, c in self.terms.items()]
        parts.append(str(self.const))
        return " + ".join(parts)


class AffineAddresses:
    """Affine forms for every memory access address in one block."""

    def __init__(self, block: BasicBlock):
        self.address_of: Dict[int, Affine] = {}  # op uid -> affine address
        #: PTRADD op uid -> affine form of its offset operand; feeds the
        #: field-sensitive points-to tier's offset classification.
        self.ptradd_offset: Dict[int, Affine] = {}
        env: Dict[int, Affine] = {}  # vid -> current affine value
        fresh = 0

        def fresh_atom(tag) -> Affine:
            nonlocal fresh
            fresh += 1
            return Affine.atom((tag, fresh))

        def value_of(v) -> Affine:
            if isinstance(v, Constant) and isinstance(v.value, int):
                return Affine.constant(v.value)
            if isinstance(v, GlobalAddress):
                return Affine.atom(("g", v.symbol))
            if isinstance(v, VirtualRegister):
                form = env.get(v.vid)
                if form is None:
                    form = fresh_atom(("in", v.vid))
                    env[v.vid] = form
                return form
            return fresh_atom(("k",))

        for op in block.ops:
            if op.opcode in (Opcode.LOAD, Opcode.STORE):
                self.address_of[op.uid] = value_of(op.address_operand())
            if op.dest is None:
                continue
            vid = op.dest.vid
            if op.opcode is Opcode.MOV or op.opcode is Opcode.ICMOVE:
                env[vid] = value_of(op.srcs[0])
            elif op.opcode is Opcode.ADD or op.opcode is Opcode.PTRADD:
                if op.opcode is Opcode.PTRADD:
                    self.ptradd_offset[op.uid] = value_of(op.srcs[1])
                env[vid] = value_of(op.srcs[0]).add(value_of(op.srcs[1]))
            elif op.opcode is Opcode.SUB:
                env[vid] = value_of(op.srcs[0]).add(value_of(op.srcs[1]).negate())
            elif op.opcode is Opcode.NEG:
                env[vid] = value_of(op.srcs[0]).negate()
            elif op.opcode is Opcode.MUL:
                env[vid] = self._mul(value_of(op.srcs[0]), value_of(op.srcs[1]), op)
            elif op.opcode is Opcode.SHL and isinstance(op.srcs[1], Constant):
                env[vid] = value_of(op.srcs[0]).scale(1 << (op.srcs[1].value & 31))
            else:
                env[vid] = fresh_atom(("d", op.uid))

        # Access widths (bytes) per memory op.
        self.width_of: Dict[int, int] = {}
        for op in block.ops:
            if op.opcode is Opcode.LOAD:
                self.width_of[op.uid] = max(op.dest.ty.size(), 1)
            elif op.opcode is Opcode.STORE:
                self.width_of[op.uid] = max(op.srcs[0].ty.size(), 1)

    @staticmethod
    def _mul(a: Affine, b: Affine, op: Operation) -> Affine:
        if not a.terms:
            return b.scale(a.const)
        if not b.terms:
            return a.scale(b.const)
        return Affine.atom(("d", op.uid))

    def provably_disjoint(self, a: Operation, b: Operation) -> bool:
        """True when the two accesses cannot touch the same bytes."""
        fa = self.address_of.get(a.uid)
        fb = self.address_of.get(b.uid)
        if fa is None or fb is None:
            return False
        if not fa.same_symbolic(fb):
            return False
        wa = self.width_of.get(a.uid, 1)
        wb = self.width_of.get(b.uid, 1)
        lo_a, hi_a = fa.const, fa.const + wa
        lo_b, hi_b = fb.const, fb.const + wb
        return hi_a <= lo_b or hi_b <= lo_a
