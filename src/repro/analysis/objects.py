"""Data-object model: the entities the Global Data Partitioner places.

A :class:`DataObject` is one unit of memory placement — a global variable
or a heap allocation site.  Composite objects (arrays, structs) are never
split across clusters, exactly as in the paper.  Sizes come from the type
for globals and from the heap profile for allocation sites.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

from ..ir import Module, Opcode, Operation
from .pointsto import PointsTo, global_object_id, heap_object_id


class DataObject:
    """One partitionable memory object."""

    def __init__(self, obj_id: str, kind: str, name: str, size: int):
        self.id = obj_id
        self.kind = kind  # "global" | "heap"
        self.name = name
        self.size = size  # bytes

    def is_heap(self) -> bool:
        return self.kind == "heap"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<object {self.id} ({self.size} bytes)>"


class ObjectTable:
    """All data objects of a module, with sizes and accessor op lists.

    ``heap_sizes`` maps allocation-site ids (``h:<site>``) to profiled byte
    totals; unprofiled sites default to ``default_heap_size`` so the
    partitioner still has a balance signal before profiling.
    """

    DEFAULT_HEAP_SIZE = 64

    def __init__(
        self,
        module: Module,
        heap_sizes: Optional[Dict[str, int]] = None,
        default_heap_size: int = DEFAULT_HEAP_SIZE,
    ):
        self.module = module
        self.objects: Dict[str, DataObject] = {}
        self.accessors: Dict[str, List[Operation]] = {}
        heap_sizes = heap_sizes or {}

        for gvar in module.globals.values():
            obj_id = global_object_id(gvar.name)
            self.objects[obj_id] = DataObject(
                obj_id, "global", gvar.name, gvar.size()
            )
        for func in module:
            for op in func.operations():
                if op.opcode is Opcode.MALLOC:
                    site = op.attrs["site"]
                    obj_id = heap_object_id(site)
                    size = heap_sizes.get(obj_id, default_heap_size)
                    self.objects[obj_id] = DataObject(obj_id, "heap", site, size)

        for func in module:
            for op in func.operations():
                if op.is_memory_access():
                    for obj_id in op.mem_objects():
                        self.accessors.setdefault(obj_id, []).append(op)

    # -- queries ----------------------------------------------------------------

    def __contains__(self, obj_id: str) -> bool:
        return obj_id in self.objects

    def __getitem__(self, obj_id: str) -> DataObject:
        return self.objects[obj_id]

    def __iter__(self):
        return iter(self.objects.values())

    def __len__(self) -> int:
        return len(self.objects)

    def ids(self) -> List[str]:
        return list(self.objects)

    def total_size(self) -> int:
        return sum(o.size for o in self.objects.values())

    def size_of(self, obj_ids: Iterable[str]) -> int:
        return sum(self.objects[o].size for o in obj_ids if o in self.objects)

    def accessors_of(self, obj_id: str) -> List[Operation]:
        return self.accessors.get(obj_id, [])

    def accessed_ids(self) -> List[str]:
        """Objects with at least one static load/store."""
        return [o for o in self.objects if self.accessors.get(o)]
