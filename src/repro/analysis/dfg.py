"""Program-level data-flow graph for the Global Data Partitioner.

Section 3.3 of the paper: "a program-level data-flow graph (DFG) of the
application is created.  When creating this graph, nodes are generated
from every operation in the code.  Memory operations and calls to malloc()
are annotated in the graph with the ids of their associated objects. ...
The only information recorded about the operations are the data-dependent
flow edges."

Nodes are operation uids across the whole module.  Edges are def-use flows
within functions plus argument/return flows across direct calls.  Each
edge carries a weight proportional to the execution frequency of the
defining block so that the min-cut objective approximates dynamic
intercluster communication.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..ir import Function, Module, Opcode, Operation
from .cfg import CFG
from .defuse import DefUse
from .loops import LoopInfo


class ProgramNode:
    """One operation in the program-level graph."""

    __slots__ = ("uid", "op", "func", "block", "freq")

    def __init__(self, uid: int, op: Operation, func: str, block: str, freq: float):
        self.uid = uid
        self.op = op
        self.func = func
        self.block = block
        self.freq = freq


class ProgramGraph:
    """Whole-program operation graph with weighted data-flow edges."""

    def __init__(self, module: Module, block_freq: Optional[Callable[[str, str], float]] = None):
        """``block_freq(func_name, block_name)`` supplies execution
        frequencies (profiled or estimated); defaults to the static
        loop-depth heuristic."""
        self.module = module
        self.nodes: Dict[int, ProgramNode] = {}
        self.edges: Dict[Tuple[int, int], float] = {}
        self._adjacency: Dict[int, Set[int]] = {}

        static_freqs: Dict[str, LoopInfo] = {}

        def default_freq(fname: str, bname: str) -> float:
            if fname not in static_freqs:
                func = module.functions[fname]
                static_freqs[fname] = LoopInfo(CFG(func))
            return static_freqs[fname].static_frequency(bname)

        freq_of = block_freq or default_freq

        for func in module:
            for block in func:
                freq = max(freq_of(func.name, block.name), 0.0)
                for op in block.ops:
                    self.nodes[op.uid] = ProgramNode(
                        op.uid, op, func.name, block.name, freq
                    )

        for func in module:
            defuse = DefUse(func)
            # Sorted for determinism: set iteration order varies with the
            # process-global uid values.
            for (src_uid, dst_uid) in sorted(defuse.edges):
                self._add_edge(src_uid, dst_uid)
            # Stitch the interprocedural flows: call -> parameter uses and
            # return-defining flows back to the call.
            for op in func.operations():
                if op.is_call():
                    callee = op.attrs.get("callee")
                    if callee in module.functions:
                        callee_fn = module.functions[callee]
                        callee_du = DefUse(callee_fn)
                        for param in callee_fn.params:
                            for use_uid in callee_du.param_uses.get(param.vid, ()):
                                self._add_edge(op.uid, use_uid)
                        if op.dest is not None:
                            for cop in callee_fn.operations():
                                if cop.opcode is Opcode.RET and cop.srcs:
                                    self._add_edge(cop.uid, op.uid)

    def _add_edge(self, src: int, dst: int) -> None:
        if src == dst or src not in self.nodes or dst not in self.nodes:
            return
        # Communication frequency ~ how often the producing block runs.
        weight = 1.0 + self.nodes[src].freq
        key = (src, dst)
        self.edges[key] = self.edges.get(key, 0.0) + weight
        self._adjacency.setdefault(src, set()).add(dst)
        self._adjacency.setdefault(dst, set()).add(src)

    # -- queries ---------------------------------------------------------------

    def neighbors(self, uid: int) -> Set[int]:
        return self._adjacency.get(uid, set())

    def memory_nodes(self) -> List[ProgramNode]:
        """Nodes whose operation is annotated with data objects."""
        return [
            n
            for n in self.nodes.values()
            if n.op.mem_objects()
        ]

    def node_count(self) -> int:
        return len(self.nodes)

    def edge_count(self) -> int:
        return len(self.edges)

    def undirected_edges(self) -> Dict[Tuple[int, int], float]:
        """Edges with (min, max) uid keys, weights accumulated."""
        result: Dict[Tuple[int, int], float] = {}
        for (src, dst), w in self.edges.items():
            key = (src, dst) if src < dst else (dst, src)
            result[key] = result.get(key, 0.0) + w
        return result
