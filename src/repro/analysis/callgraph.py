"""Call graph over module functions (direct calls only — MiniC has no
function pointers)."""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir import Module, Operation


class CallGraph:
    """Caller -> callee edges plus the call sites realising them."""

    def __init__(self, module: Module):
        self.module = module
        self.callees: Dict[str, Set[str]] = {f.name: set() for f in module}
        self.callers: Dict[str, Set[str]] = {f.name: set() for f in module}
        self.call_sites: Dict[str, List[Operation]] = {f.name: [] for f in module}
        for func in module:
            for op in func.operations():
                if op.is_call():
                    callee = op.attrs["callee"]
                    if callee in self.callees:
                        self.callees[func.name].add(callee)
                        self.callers.setdefault(callee, set()).add(func.name)
                        self.call_sites[callee].append(op)

    def reachable_from(self, root: str = "main") -> Set[str]:
        """Functions transitively callable from ``root``."""
        seen: Set[str] = set()
        work = [root] if root in self.callees else []
        while work:
            name = work.pop()
            if name in seen:
                continue
            seen.add(name)
            work.extend(self.callees.get(name, ()))
        return seen

    def bottom_up_order(self) -> List[str]:
        """Callees before callers (recursion broken arbitrarily)."""
        order: List[str] = []
        visited: Set[str] = set()

        def visit(name: str, stack: Set[str]) -> None:
            if name in visited or name in stack:
                return
            stack.add(name)
            for callee in sorted(self.callees.get(name, ())):
                visit(callee, stack)
            stack.remove(name)
            visited.add(name)
            order.append(name)

        for name in self.callees:
            visit(name, set())
        return order
