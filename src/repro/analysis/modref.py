"""Interprocedural region-level MOD/REF summaries.

For every function this computes which byte intervals of which data
objects the function (and everything it transitively calls) may *write*
(MOD) and may *read* (REF).  The per-op intervals come from the static
access-region analysis (:class:`~repro.analysis.dataflow.regions.AccessRegionAnalysis`)
and the object sets from whichever points-to tier annotated the module,
so the summaries inherit the precision of both analyses.

The lattice per (function, object) is ``None`` = ⊤ (the whole object)
above finite lists of coalesced half-open byte intervals, ordered by
containment.  Summaries are computed bottom-up over the call graph, one
strongly connected component at a time:

* a singleton, non-recursive SCC folds its callees' transitive
  summaries into its local effects;
* a recursive SCC (self-loop or mutual recursion) takes the union of
  its members' local effects and external callees, then **widens every
  interval to ⊤**: a region expression re-evaluated under unboundedly
  many recursive environments has no finite interval fixpoint here, and
  whole-object is always a sound containment answer;
* a call whose callee is not defined in the module (MiniC has no
  function pointers, so this is the defensive stand-in for indirect
  calls) poisons the caller with :attr:`ModRefSummary.havoc` — the
  summary then claims every object, whole, on both sides.

Clients: the region-granular partition checker
(:mod:`repro.lint.regioncheck`) uses the summaries for cross-cluster
interference checks and for ``region-splittable`` advisories, and the
data-movement roofline uses the footprints they aggregate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .affine import coalesce_intervals
from .callgraph import CallGraph
from .dataflow.regions import AccessRegionAnalysis
from ..ir import Module, Opcode
from ..ir.verifier import KNOWN_EXTERNALS

#: Per-object effect: coalesced byte intervals, or ``None`` = ⊤ (whole).
Effect = Optional[List[Tuple[int, int]]]

#: Object id -> effect.
Effects = Dict[str, Effect]


def merge_effect(a: Effect, b: Effect) -> Effect:
    """Join two effects in the containment lattice (⊤ absorbs)."""
    if a is None or b is None:
        return None
    return coalesce_intervals(list(a) + list(b))


def merge_effects(into: Effects, other: Effects) -> None:
    """In-place join of ``other`` into ``into``."""
    for obj, effect in other.items():
        if obj in into:
            into[obj] = merge_effect(into[obj], effect)
        else:
            into[obj] = None if effect is None else list(effect)


def effect_contains(outer: Effect, inner: Effect) -> bool:
    """True when every byte of ``inner`` lies inside ``outer``."""
    if outer is None:
        return True
    if inner is None:
        return False
    for lo, hi in inner:
        if not any(olo <= lo and hi <= ohi for olo, ohi in outer):
            return False
    return True


class ModRefSummary:
    """MOD/REF effects of one function (local or transitive)."""

    __slots__ = ("mod", "ref", "havoc")

    def __init__(
        self,
        mod: Optional[Effects] = None,
        ref: Optional[Effects] = None,
        havoc: bool = False,
    ):
        self.mod: Effects = mod or {}
        self.ref: Effects = ref or {}
        #: True when an unresolvable call forces the summary to claim
        #: every object whole (the ⊤ of the whole summary lattice).
        self.havoc = havoc

    def objects(self) -> Set[str]:
        return set(self.mod) | set(self.ref)

    def mod_of(self, obj: str) -> Effect:
        """MOD intervals for ``obj`` (``[]`` when never written)."""
        if self.havoc:
            return None
        return self.mod.get(obj, [])

    def ref_of(self, obj: str) -> Effect:
        if self.havoc:
            return None
        return self.ref.get(obj, [])

    def touched(self, obj: str) -> Effect:
        """Union of MOD and REF intervals for ``obj``."""
        if self.havoc:
            return None
        if obj not in self.mod:
            return self.ref_of(obj)
        if obj not in self.ref:
            return self.mod_of(obj)
        return merge_effect(self.mod[obj], self.ref[obj])

    def copy(self) -> "ModRefSummary":
        return ModRefSummary(
            {o: (None if e is None else list(e)) for o, e in self.mod.items()},
            {o: (None if e is None else list(e)) for o, e in self.ref.items()},
            self.havoc,
        )

    def widen(self) -> None:
        """⊤-interval widening: keep the object sets, drop the intervals."""
        for obj in self.mod:
            self.mod[obj] = None
        for obj in self.ref:
            self.ref[obj] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = " havoc" if self.havoc else ""
        return (
            f"<modref{tag}: {len(self.mod)} mod, {len(self.ref)} ref>"
        )


def _sccs(callgraph: CallGraph) -> List[List[str]]:
    """Strongly connected components of the call graph, callees-first
    (iterative Tarjan; reverse topological order over the condensation)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work: List[Tuple[str, Iterable[str]]] = [
            (root, iter(sorted(callgraph.callees.get(root, ()))))
        ]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for callee in it:
                if callee not in index:
                    index[callee] = low[callee] = counter[0]
                    counter[0] += 1
                    stack.append(callee)
                    on_stack.add(callee)
                    work.append(
                        (callee, iter(sorted(callgraph.callees.get(callee, ()))))
                    )
                    advanced = True
                    break
                if callee in on_stack:
                    low[node] = min(low[node], index[callee])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))

    for name in sorted(callgraph.callees):
        if name not in index:
            strongconnect(name)
    return sccs


class ModRefAnalysis:
    """Whole-module interprocedural MOD/REF summaries.

    ``pointsto`` (a solved points-to result) supplies per-op object sets
    when the module is not already annotated; ``regions`` reuses an
    existing :class:`AccessRegionAnalysis` (the lint context shares one
    across passes) instead of solving intervals again.
    """

    def __init__(
        self,
        module: Module,
        pointsto=None,
        regions: Optional[AccessRegionAnalysis] = None,
    ):
        self.module = module
        self.regions = regions or AccessRegionAnalysis(module, pointsto=pointsto)
        self.callgraph = CallGraph(module)
        #: Intraprocedural effects (no callees folded in).
        self.local: Dict[str, ModRefSummary] = {}
        #: Transitive effects (callees folded in, recursion widened).
        self.summaries: Dict[str, ModRefSummary] = {}
        #: Functions whose intervals were widened to ⊤ (recursion).
        self.widened: Set[str] = set()
        self._compute_local()
        self._compute_transitive()

    # -- construction --------------------------------------------------------

    def _compute_local(self) -> None:
        for func in self.module:
            self.local[func.name] = ModRefSummary()
        for func in self.module:
            summary = self.local[func.name]
            for block in func:
                for op in block.ops:
                    if op.is_call():
                        callee = op.attrs.get("callee")
                        if (
                            callee not in self.callgraph.callees
                            and callee not in KNOWN_EXTERNALS
                        ):
                            # No function pointers exist in MiniC, so an
                            # unresolvable callee is the indirect-call
                            # stand-in: havoc the caller.  The modelled
                            # intrinsics take values by register and
                            # touch no data objects.
                            summary.havoc = True
                        continue
                    if not op.is_memory_access():
                        continue
                    per_obj = self.regions.op_regions.get(op.uid, {})
                    side = (
                        summary.mod
                        if op.opcode is Opcode.STORE
                        else summary.ref
                    )
                    for obj, region in per_obj.items():
                        effect: Effect = None if region is None else [region]
                        if obj in side:
                            side[obj] = merge_effect(side[obj], effect)
                        else:
                            side[obj] = effect

    def _compute_transitive(self) -> None:
        for component in _sccs(self.callgraph):
            recursive = len(component) > 1 or (
                component[0] in self.callgraph.callees.get(component[0], ())
            )
            summary = ModRefSummary()
            for name in component:
                local = self.local.get(name)
                if local is None:
                    continue
                summary.havoc = summary.havoc or local.havoc
                merge_effects(summary.mod, local.mod)
                merge_effects(summary.ref, local.ref)
                for callee in self.callgraph.callees.get(name, ()):
                    if callee in component:
                        continue
                    callee_summary = self.summaries.get(callee)
                    if callee_summary is None:
                        continue
                    summary.havoc = summary.havoc or callee_summary.havoc
                    merge_effects(summary.mod, callee_summary.mod)
                    merge_effects(summary.ref, callee_summary.ref)
            if recursive:
                summary.widen()
                self.widened.update(component)
            for name in component:
                self.summaries[name] = (
                    summary if len(component) == 1 else summary.copy()
                )

    # -- queries -------------------------------------------------------------

    def summary_of(self, name: str) -> ModRefSummary:
        """Transitive summary of ``name`` (empty for unknown functions)."""
        return self.summaries.get(name, ModRefSummary())

    def program_effects(self) -> ModRefSummary:
        """Union of every function's local effects — what the whole
        program may touch, with intervals (``main``'s transitive summary
        alone would carry recursion widening)."""
        total = ModRefSummary()
        for summary in self.local.values():
            total.havoc = total.havoc or summary.havoc
            merge_effects(total.mod, summary.mod)
            merge_effects(total.ref, summary.ref)
        return total

    def object_intervals(self) -> Dict[str, Effect]:
        """Per object: every per-op touched interval across the program,
        deliberately *not* coalesced (``None`` = some access claims the
        whole object).  The raw material for splittability."""
        raw: Dict[str, Optional[List[Tuple[int, int]]]] = {}
        for per_obj in self.regions.op_regions.values():
            for obj, region in per_obj.items():
                if obj in raw and raw[obj] is None:
                    continue
                if region is None:
                    raw[obj] = None
                else:
                    raw.setdefault(obj, []).append(region)
        return raw

    def splittable_objects(self) -> Dict[str, List[Tuple[int, int]]]:
        """Objects whose touched regions decompose into ≥2 disjoint,
        never-co-accessed byte intervals — the candidates a sub-object
        partitioner could home on different clusters.

        An object qualifies when no access claims the whole object and
        the per-op intervals coalesce into at least two components (each
        access touches exactly one component, so the components are
        never co-accessed by any single operation).
        """
        out: Dict[str, List[Tuple[int, int]]] = {}
        for obj, intervals in sorted(self.object_intervals().items()):
            if intervals is None:
                continue
            components = coalesce_intervals(intervals)
            if len(components) >= 2:
                out[obj] = components
        return out


def format_effect(effect: Effect) -> str:
    """Render an effect for diagnostics: ``whole`` or ``[lo,hi)+``."""
    if effect is None:
        return "whole"
    if not effect:
        return "none"
    return "+".join(f"[{lo},{hi})" for lo, hi in effect)


__all__ = [
    "Effect",
    "Effects",
    "ModRefAnalysis",
    "ModRefSummary",
    "effect_contains",
    "format_effect",
    "merge_effect",
    "merge_effects",
]
