"""Dominator tree construction (Cooper–Harvey–Kennedy iterative algorithm)."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .cfg import CFG


class DominatorTree:
    """Immediate-dominator map for one function's reachable blocks."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.idom: Dict[str, Optional[str]] = {}
        self._children: Dict[str, List[str]] = {}
        self._compute()

    def _compute(self) -> None:
        rpo = self.cfg.reverse_postorder()
        index = {name: i for i, name in enumerate(rpo)}
        entry = self.cfg.entry
        self.idom = {entry: entry}

        changed = True
        while changed:
            changed = False
            for name in rpo:
                if name == entry:
                    continue
                candidates = [
                    p for p in self.cfg.predecessors(name) if p in self.idom
                ]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for p in candidates[1:]:
                    new_idom = self._intersect(new_idom, p, index)
                if self.idom.get(name) != new_idom:
                    self.idom[name] = new_idom
                    changed = True

        self._children = {}
        for name, parent in self.idom.items():
            if name != self.cfg.entry:
                self._children.setdefault(parent, []).append(name)

    def _intersect(self, a: str, b: str, index: Dict[str, int]) -> str:
        while a != b:
            while index[a] > index[b]:
                a = self.idom[a]
            while index[b] > index[a]:
                b = self.idom[b]
        return a

    # -- queries ---------------------------------------------------------------

    def immediate_dominator(self, name: str) -> Optional[str]:
        if name == self.cfg.entry:
            return None
        return self.idom.get(name)

    def dominates(self, a: str, b: str) -> bool:
        """True if block ``a`` dominates block ``b`` (reflexive)."""
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            if node == self.cfg.entry:
                return False
            node = self.idom.get(node)
        return False

    def children(self, name: str) -> List[str]:
        return self._children.get(name, [])

    def dominated_set(self, name: str) -> Set[str]:
        """All blocks dominated by ``name`` (including itself)."""
        result: Set[str] = set()
        work = [name]
        while work:
            node = work.pop()
            if node in result:
                continue
            result.add(node)
            work.extend(self.children(node))
        return result
