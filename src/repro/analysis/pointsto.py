"""Interprocedural Andersen-style points-to analysis.

The paper uses sophisticated IPA (Nystrom et al.) to assign each static
global and each ``malloc()`` call site a unique object id, and to mark
every load and store with the objects it can access.  This module computes
the same annotations for MiniC IR with a classic inclusion-based
(Andersen) analysis: flow- and context-insensitive, field-insensitive.

Abstract objects:

* ``g:<name>`` — one per global variable;
* ``h:<site>`` — one per ``MALLOC`` allocation site.

The solver is the standard worklist formulation.  Nodes are pointer
variables (registers, function returns) plus one *content* node per
abstract object (field-insensitive summary of everything stored into it).
``LOAD``/``STORE`` contribute complex constraints that grow the copy-edge
graph as points-to sets grow.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..ir import Function, GlobalAddress, Module, Opcode, Operation, VirtualRegister

#: Object-id constructors (shared with repro.analysis.objects).
def global_object_id(name: str) -> str:
    return f"g:{name}"


def heap_object_id(site: str) -> str:
    return f"h:{site}"


class PointsTo:
    """Points-to solution for a module.

    Query with :meth:`objects_for_op` (which objects may a LOAD/STORE
    touch) or :meth:`points_to` (raw register query).
    """

    def __init__(self, module: Module):
        self.module = module
        self._pts: Dict[Tuple, Set[str]] = {}
        self._copy_edges: Dict[Tuple, Set[Tuple]] = {}
        self._loads: List[Tuple[Tuple, Tuple]] = []   # (addr_node, dest_node)
        self._stores: List[Tuple[Tuple, Tuple]] = []  # (value_node, addr_node)
        self._solve()

    # -- node naming --------------------------------------------------------------

    @staticmethod
    def _reg(func: str, reg: VirtualRegister) -> Tuple:
        return ("r", func, reg.vid)

    @staticmethod
    def _content(obj: str) -> Tuple:
        return ("c", obj)

    @staticmethod
    def _ret(func: str) -> Tuple:
        return ("ret", func)

    # -- constraint generation ------------------------------------------------------

    def _value_node(self, func: str, value, out_constants: Set[str]) -> Optional[Tuple]:
        """Node for a source value; GlobalAddress contributes a constant."""
        if isinstance(value, GlobalAddress):
            out_constants.add(global_object_id(value.symbol))
            return None
        if isinstance(value, VirtualRegister):
            return self._reg(func, value)
        return None

    def _add_pts(self, node: Tuple, objs: Set[str], worklist: List[Tuple]) -> None:
        if not objs:
            return
        current = self._pts.setdefault(node, set())
        new = objs - current
        if new:
            current |= new
            worklist.append(node)

    def _add_copy(self, src: Tuple, dst: Tuple, worklist: List[Tuple]) -> None:
        edges = self._copy_edges.setdefault(src, set())
        if dst not in edges:
            edges.add(dst)
            objs = self._pts.get(src)
            if objs:
                self._add_pts(dst, set(objs), worklist)

    def _solve(self) -> None:
        worklist: List[Tuple] = []

        for func in self.module:
            fname = func.name
            for op in func.operations():
                if op.opcode is Opcode.MALLOC:
                    obj = heap_object_id(op.attrs["site"])
                    self._add_pts(self._reg(fname, op.dest), {obj}, worklist)
                elif op.opcode in (Opcode.MOV, Opcode.PTRADD, Opcode.ICMOVE):
                    self._constrain_copy_like(fname, op, worklist)
                elif op.opcode is Opcode.SELECT:
                    consts: Set[str] = set()
                    for src in op.srcs[1:]:
                        node = self._value_node(fname, src, consts)
                        if node is not None:
                            self._add_copy(node, self._reg(fname, op.dest), worklist)
                    self._add_pts(self._reg(fname, op.dest), consts, worklist)
                elif op.opcode is Opcode.LOAD:
                    self._constrain_load(fname, op, worklist)
                elif op.opcode is Opcode.STORE:
                    self._constrain_store(fname, op, worklist)
                elif op.opcode is Opcode.CALL:
                    self._constrain_call(fname, op, worklist)
                elif op.opcode is Opcode.RET and op.srcs:
                    consts = set()
                    node = self._value_node(fname, op.srcs[0], consts)
                    if node is not None:
                        self._add_copy(node, self._ret(fname), worklist)
                    self._add_pts(self._ret(fname), consts, worklist)

        # Fixed point: propagate along copy edges, expanding load/store
        # constraints as address sets grow.
        processed_load: Dict[Tuple, Set[str]] = {}
        processed_store: Dict[Tuple, Set[str]] = {}
        while worklist:
            node = worklist.pop()
            objs = set(self._pts.get(node, ()))
            for dst in list(self._copy_edges.get(node, ())):
                self._add_pts(dst, objs, worklist)
            for addr_node, dest_node in self._loads:
                if addr_node == node:
                    done = processed_load.setdefault((addr_node, dest_node), set())
                    for obj in objs - done:
                        self._add_copy(self._content(obj), dest_node, worklist)
                    done |= objs
            for value_node, addr_node in self._stores:
                if addr_node == node:
                    done = processed_store.setdefault((value_node, addr_node), set())
                    for obj in objs - done:
                        self._add_copy(value_node, self._content(obj), worklist)
                    done |= objs

    def _constrain_copy_like(self, fname: str, op: Operation, worklist) -> None:
        if op.dest is None or not op.dest.ty.is_pointer():
            # Copies of non-pointers cannot carry addresses... except PTRADD,
            # whose dest is always a pointer by construction.
            if op.opcode is not Opcode.PTRADD:
                return
        consts: Set[str] = set()
        node = self._value_node(fname, op.srcs[0], consts)
        if node is not None:
            self._add_copy(node, self._reg(fname, op.dest), worklist)
        self._add_pts(self._reg(fname, op.dest), consts, worklist)

    def _constrain_load(self, fname: str, op: Operation, worklist) -> None:
        consts: Set[str] = set()
        addr_node = self._value_node(fname, op.srcs[0], consts)
        dest_node = self._reg(fname, op.dest)
        if op.dest.ty.is_pointer():
            for obj in consts:
                self._add_copy(self._content(obj), dest_node, worklist)
            if addr_node is not None:
                self._loads.append((addr_node, dest_node))
                objs = self._pts.get(addr_node)
                if objs:
                    worklist.append(addr_node)

    def _constrain_store(self, fname: str, op: Operation, worklist) -> None:
        value, addr = op.srcs[0], op.srcs[1]
        if not value.ty.is_pointer() and not isinstance(value, GlobalAddress):
            return
        vconsts: Set[str] = set()
        value_node = self._value_node(fname, value, vconsts)
        aconsts: Set[str] = set()
        addr_node = self._value_node(fname, addr, aconsts)
        if value_node is None:
            # Storing a constant address: seed the content nodes directly.
            for obj in aconsts:
                self._add_pts(self._content(obj), vconsts, worklist)
            if addr_node is not None and vconsts:
                fake = ("k", op.uid)
                self._add_pts(fake, vconsts, worklist)
                self._stores.append((fake, addr_node))
        else:
            for obj in aconsts:
                self._add_copy(value_node, self._content(obj), worklist)
            if addr_node is not None:
                self._stores.append((value_node, addr_node))
                if self._pts.get(addr_node):
                    worklist.append(addr_node)

    def _constrain_call(self, fname: str, op: Operation, worklist) -> None:
        callee = op.attrs.get("callee")
        if callee not in self.module.functions:
            return
        callee_fn = self.module.functions[callee]
        for arg, param in zip(op.srcs[1:], callee_fn.params):
            consts: Set[str] = set()
            node = self._value_node(fname, arg, consts)
            pnode = self._reg(callee, param)
            if node is not None:
                self._add_copy(node, pnode, worklist)
            self._add_pts(pnode, consts, worklist)
        if op.dest is not None and op.dest.ty.is_pointer():
            self._add_copy(self._ret(callee), self._reg(fname, op.dest), worklist)

    # -- queries --------------------------------------------------------------------

    def points_to(self, func: str, reg: VirtualRegister) -> FrozenSet[str]:
        return frozenset(self._pts.get(self._reg(func, reg), ()))

    def objects_for_address(self, func: str, addr) -> FrozenSet[str]:
        """Objects an address value may point into."""
        if isinstance(addr, GlobalAddress):
            return frozenset({global_object_id(addr.symbol)})
        if isinstance(addr, VirtualRegister):
            return self.points_to(func, addr)
        return frozenset()

    def objects_for_op(self, func: str, op: Operation) -> FrozenSet[str]:
        """Objects a LOAD/STORE may access (empty for other ops)."""
        addr = op.address_operand()
        if addr is None:
            return frozenset()
        return self.objects_for_address(func, addr)


def annotate_memory_ops(module: Module, pointsto: Optional[PointsTo] = None) -> PointsTo:
    """Mark every LOAD/STORE with ``mem_objects`` and every MALLOC with its
    heap object id.  Returns the points-to solution used."""
    pts = pointsto or PointsTo(module)
    for func in module:
        for op in func.operations():
            if op.is_memory_access():
                op.attrs["mem_objects"] = pts.objects_for_op(func.name, op)
            elif op.opcode is Opcode.MALLOC:
                op.attrs["mem_objects"] = frozenset(
                    {heap_object_id(op.attrs["site"])}
                )
    return pts
