"""Precision-tiered interprocedural points-to analysis.

The paper uses sophisticated IPA (Nystrom et al.) to assign each static
global and each ``malloc()`` call site a unique object id, and to mark
every load and store with the objects it can access.  This module computes
those annotations for MiniC IR with a family of inclusion-based solvers of
increasing precision, all behind one :class:`PointsToResult` interface:

``andersen``
    The classic Andersen baseline: flow-, context- and field-insensitive.
``field``
    Field-sensitive: pointer facts carry a byte offset into their target
    object, and every object gets one *content* node per constant-offset
    field/array region instead of a single merged summary.  Offsets are
    classified with the block-local affine forms of
    :mod:`repro.analysis.affine` (so ``p + 4*k`` chains resolve), and
    statically-observed access intervals are coalesced into regions so
    overlapping/adjacent accesses share a node.
``cs``
    Call-site context-sensitive (1-CFA) *and* field-sensitive: every
    function's constraints are generated once as a summary template and
    instantiated per calling context, bottom-up over the call graph.
    Contexts are immediate call sites (k = 1, truncating), so recursion
    stays finite.

Each sharper tier is a *refinement*: for every memory operation,
``pts_cs(op) ⊆ pts_field(op) ⊆ pts_andersen(op)`` at data-object
granularity.  The :mod:`repro.lint.ptdiff` differ checks this statically
and against the profiler's dynamic under-approximation oracle.

Abstract objects (identical across every tier — consumers never see
offsets or contexts):

* ``g:<name>`` — one per global variable;
* ``h:<site>`` — one per ``MALLOC`` allocation site.
"""

from __future__ import annotations

import time
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..ir import Function, GlobalAddress, Module, Opcode, Operation, VirtualRegister
from .affine import AffineAddresses, coalesce_intervals

#: Precision tiers, coarsest first — the refinement lattice order used by
#: the ``ptdiff`` lint pass and the ``--pointsto`` CLI knob.
TIERS: Tuple[str, ...] = ("andersen", "field", "cs")


#: Object-id constructors (shared with repro.analysis.objects).
def global_object_id(name: str) -> str:
    return f"g:{name}"


def heap_object_id(site: str) -> str:
    return f"h:{site}"


class PointsToStats:
    """Precision/observability counters for one solved tier.

    Set-size metrics describe the per-memory-op target sets (the thing the
    access-pattern merge and the memory locks consume); solver metrics
    record what the fixpoint cost.  ``mayalias_pairs`` counts distinct
    object pairs some single memory op may both touch — exactly the pairs
    the access-pattern merge will fuse.
    """

    def __init__(
        self,
        tier: str,
        memory_ops: int,
        annotated_ops: int,
        empty_ops: int,
        avg_set_size: float,
        max_set_size: int,
        singleton_ratio: float,
        mayalias_pairs: int,
        solver_iterations: int,
        solve_seconds: float,
        nodes: int,
        contexts: int,
        content_regions: int,
    ):
        self.tier = tier
        self.memory_ops = memory_ops
        self.annotated_ops = annotated_ops
        self.empty_ops = empty_ops
        self.avg_set_size = avg_set_size
        self.max_set_size = max_set_size
        self.singleton_ratio = singleton_ratio
        self.mayalias_pairs = mayalias_pairs
        self.solver_iterations = solver_iterations
        self.solve_seconds = solve_seconds
        self.nodes = nodes
        self.contexts = contexts
        self.content_regions = content_regions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tier": self.tier,
            "memory_ops": self.memory_ops,
            "annotated_ops": self.annotated_ops,
            "empty_ops": self.empty_ops,
            "avg_set_size": round(self.avg_set_size, 4),
            "max_set_size": self.max_set_size,
            "singleton_ratio": round(self.singleton_ratio, 4),
            "mayalias_pairs": self.mayalias_pairs,
            "solver_iterations": self.solver_iterations,
            "solve_seconds": round(self.solve_seconds, 6),
            "nodes": self.nodes,
            "contexts": self.contexts,
            "content_regions": self.content_regions,
        }

    def describe(self) -> str:
        """Compact one-line summary for CLI output."""
        return (
            f"tier={self.tier}  avg|pts|={self.avg_set_size:.2f}  "
            f"singleton={self.singleton_ratio:.0%}  "
            f"mayalias-pairs={self.mayalias_pairs}  "
            f"({self.solver_iterations} iters, "
            f"{self.solve_seconds * 1000.0:.1f} ms)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<pts-stats {self.describe()}>"


class PointsToResult:
    """Query interface every points-to tier implements.

    Consumers (:func:`annotate_memory_ops`, the access-pattern merge, GDP,
    the memory locks) only ever see data-object ids through this
    interface; offsets and calling contexts are solver-internal.
    """

    tier: str = "?"

    def points_to(self, func: str, reg: VirtualRegister) -> FrozenSet[str]:
        raise NotImplementedError

    def objects_for_address(self, func: str, addr) -> FrozenSet[str]:
        """Objects an address value may point into."""
        if isinstance(addr, GlobalAddress):
            return frozenset({global_object_id(addr.symbol)})
        if isinstance(addr, VirtualRegister):
            return self.points_to(func, addr)
        return frozenset()

    def objects_for_op(self, func: str, op: Operation) -> FrozenSet[str]:
        """Objects a LOAD/STORE may access (empty for other ops)."""
        addr = op.address_operand()
        if addr is None:
            return frozenset()
        return self.objects_for_address(func, addr)

    def stats(self) -> PointsToStats:
        raise NotImplementedError


#: Fact offsets: an ``int`` byte offset into the object, or ``None`` when
#: the offset is unknown (and always ``None`` in offset-insensitive tiers).
_Fact = Tuple[str, Optional[int]]


class TieredPointsTo(PointsToResult):
    """One inclusion-based solver parameterised by precision tier.

    The solver is the standard worklist formulation over a copy-edge graph
    that grows as ``LOAD``/``STORE`` address sets grow.  Tier switches:

    * field sensitivity adds byte offsets to pointer facts (shifted along
      ``PTRADD`` edges by affine-classified constant deltas) and splits
      each object's single content node into one node per field region;
    * context sensitivity instantiates each function's constraint summary
      once per calling call site (1-CFA), bottom-up over the call graph.
    """

    def __init__(self, module: Module, tier: str = "andersen"):
        if tier not in TIERS:
            raise ValueError(f"unknown points-to tier {tier!r}; one of {TIERS}")
        self.module = module
        self.tier = tier
        self._field = tier in ("field", "cs")
        self._ctx = tier == "cs"

        self._pts: Dict[Tuple, Set[_Fact]] = {}
        #: src node -> dst node -> set of offset shifts (0 = plain copy,
        #: int = PTRADD delta, None = unknown delta: offset lost).
        self._edges: Dict[Tuple, Dict[Tuple, Set[Optional[int]]]] = {}
        self._load_sites: Dict[Tuple, Set[Tuple]] = {}   # addr -> dest nodes
        self._store_sites: Dict[Tuple, Set[Tuple]] = {}  # addr -> value nodes
        self._done_load: Dict[Tuple[Tuple, Tuple], Set[_Fact]] = {}
        self._done_store: Dict[Tuple[Tuple, Tuple], Set[_Fact]] = {}
        #: obj -> materialised content regions / registered wildcard readers.
        self._regions: Dict[str, Set[Optional[object]]] = {}
        self._wildcards: Dict[str, Set[Tuple]] = {}
        self._contexts: Dict[str, Tuple] = {}
        self._region_map: Dict[str, List[Tuple[int, int]]] = {}
        self._deltas: Dict[int, Optional[int]] = {}
        self.solver_iterations = 0

        started = time.perf_counter()
        self._prepare()
        self._solve()
        self.solve_seconds = time.perf_counter() - started
        self._stats: Optional[PointsToStats] = None

    # -- node naming --------------------------------------------------------------

    @staticmethod
    def _reg(func: str, ctx, reg: VirtualRegister) -> Tuple:
        return ("r", func, ctx, reg.vid)

    @staticmethod
    def _content(obj: str, region) -> Tuple:
        return ("c", obj, region)

    @staticmethod
    def _ret(func: str, ctx) -> Tuple:
        return ("ret", func, ctx)

    # -- precomputation -----------------------------------------------------------

    def _prepare(self) -> None:
        """Contexts (cs tier) and affine offset classification (field)."""
        if self._ctx:
            from .callgraph import CallGraph

            cg = CallGraph(self.module)
            main = self.module.functions.get("main")
            for name in cg.bottom_up_order():
                sites = tuple(sorted(op.uid for op in cg.call_sites.get(name, ())))
                if main is not None and name == main.name:
                    sites = (None,) + sites
                self._contexts[name] = sites or (None,)
        else:
            self._contexts = {f.name: (None,) for f in self.module}

        if not self._field:
            return
        intervals: Dict[str, List[Tuple[int, int]]] = {}
        for func in self.module:
            for block in func:
                aff = AffineAddresses(block)
                for uid, form in aff.ptradd_offset.items():
                    self._deltas[uid] = form.as_constant()
                # Direct global accesses at constant offsets define the
                # statically known field regions of each object.
                for uid, form in aff.address_of.items():
                    if len(form.terms) != 1:
                        continue
                    ((atom, coeff),) = form.terms.items()
                    if coeff != 1 or not (
                        isinstance(atom, tuple) and len(atom) == 2 and atom[0] == "g"
                    ):
                        continue
                    width = aff.width_of.get(uid, 1)
                    intervals.setdefault(global_object_id(atom[1]), []).append(
                        (form.const, form.const + width)
                    )
        self._region_map = {
            obj: coalesce_intervals(pairs) for obj, pairs in intervals.items()
        }

    def _canon(self, obj: str, off: Optional[int]):
        """Canonical content-region key for a byte offset into ``obj``.

        Offsets inside one coalesced (overlapping/adjacent) statically
        observed access interval share a region; anything else keys on the
        raw offset.  ``None`` (unknown) stays ``None`` — the TOP region.
        """
        if off is None:
            return None
        for i, (lo, hi) in enumerate(self._region_map.get(obj, ())):
            if lo <= off < hi:
                return ("R", i)
        return off

    def _seed_off(self) -> Optional[int]:
        return 0 if self._field else None

    def _delta_for(self, op: Operation) -> Optional[int]:
        """Offset shift carried by a PTRADD edge (0 when offset-insensitive)."""
        if not self._field:
            return 0
        return self._deltas.get(op.uid)

    # -- constraint helpers -------------------------------------------------------

    def _value_facts(
        self, func: str, ctx, value, out_facts: Set[_Fact]
    ) -> Optional[Tuple]:
        """Node for a source value; GlobalAddress contributes a constant fact."""
        if isinstance(value, GlobalAddress):
            out_facts.add((global_object_id(value.symbol), self._seed_off()))
            return None
        if isinstance(value, VirtualRegister):
            return self._reg(func, ctx, value)
        return None

    def _shifted(self, facts: Set[_Fact], shift: Optional[int]) -> Set[_Fact]:
        if shift == 0 or not self._field:
            return facts
        if shift is None:
            return {(obj, None) for obj, _off in facts}
        return {
            (obj, off + shift if off is not None else None)
            for obj, off in facts
        }

    def _add_pts(self, node: Tuple, facts: Set[_Fact], worklist: List[Tuple]) -> None:
        if not facts:
            return
        current = self._pts.setdefault(node, set())
        new = facts - current
        if new:
            current |= new
            worklist.append(node)

    def _add_edge(
        self, src: Tuple, dst: Tuple, shift: Optional[int], worklist: List[Tuple]
    ) -> None:
        shifts = self._edges.setdefault(src, {}).setdefault(dst, set())
        if shift in shifts:
            return
        shifts.add(shift)
        facts = self._pts.get(src)
        if facts:
            self._add_pts(dst, self._shifted(set(facts), shift), worklist)

    def _touch_region(self, obj: str, region, worklist: List[Tuple]) -> None:
        """A store materialised content node (obj, region): connect it to
        every wildcard (unknown-offset) reader of ``obj``."""
        regions = self._regions.setdefault(obj, set())
        if region in regions:
            return
        regions.add(region)
        for dest in tuple(self._wildcards.get(obj, ())):
            self._add_edge(self._content(obj, region), dest, 0, worklist)

    def _add_wildcard(self, obj: str, dest: Tuple, worklist: List[Tuple]) -> None:
        """``dest`` loads from ``obj`` at an unknown offset: it reads every
        content region, including ones future stores materialise."""
        readers = self._wildcards.setdefault(obj, set())
        if dest in readers:
            return
        readers.add(dest)
        for region in tuple(self._regions.get(obj, ())):
            self._add_edge(self._content(obj, region), dest, 0, worklist)

    def _load_fact(self, fact: _Fact, dest: Tuple, worklist: List[Tuple]) -> None:
        obj, off = fact
        region = self._canon(obj, off)
        if region is None:
            self._add_wildcard(obj, dest, worklist)
        else:
            self._add_edge(self._content(obj, region), dest, 0, worklist)
            self._add_edge(self._content(obj, None), dest, 0, worklist)

    def _store_fact(self, fact: _Fact, value_node: Tuple, worklist: List[Tuple]) -> None:
        obj, off = fact
        region = self._canon(obj, off)
        self._add_edge(value_node, self._content(obj, region), 0, worklist)
        self._touch_region(obj, region, worklist)

    def _store_const_fact(
        self, fact: _Fact, vfacts: Set[_Fact], worklist: List[Tuple]
    ) -> None:
        obj, off = fact
        region = self._canon(obj, off)
        self._add_pts(self._content(obj, region), vfacts, worklist)
        self._touch_region(obj, region, worklist)

    def _register_load(self, addr: Tuple, dest: Tuple, worklist: List[Tuple]) -> None:
        self._load_sites.setdefault(addr, set()).add(dest)
        facts = self._pts.get(addr)
        if facts:
            done = self._done_load.setdefault((addr, dest), set())
            for fact in set(facts) - done:
                self._load_fact(fact, dest, worklist)
            done |= facts

    def _register_store(self, addr: Tuple, value: Tuple, worklist: List[Tuple]) -> None:
        self._store_sites.setdefault(addr, set()).add(value)
        facts = self._pts.get(addr)
        if facts:
            done = self._done_store.setdefault((addr, value), set())
            for fact in set(facts) - done:
                self._store_fact(fact, value, worklist)
            done |= facts

    # -- constraint generation ------------------------------------------------------

    def _solve(self) -> None:
        worklist: List[Tuple] = []

        # Each function's constraints form its summary; instantiate the
        # summary once per calling context (bottom-up order in cs mode).
        for fname, ctxs in self._contexts.items():
            func = self.module.functions.get(fname)
            if func is None:
                continue
            for ctx in ctxs:
                self._gen_function(func, ctx, worklist)

        self._propagate(worklist)

    def _gen_function(self, func: Function, ctx, worklist: List[Tuple]) -> None:
        fname = func.name
        for op in func.operations():
            if op.opcode is Opcode.MALLOC:
                obj = heap_object_id(op.attrs["site"])
                self._add_pts(
                    self._reg(fname, ctx, op.dest), {(obj, self._seed_off())}, worklist
                )
            elif op.opcode in (Opcode.MOV, Opcode.PTRADD, Opcode.ICMOVE):
                self._constrain_copy_like(fname, ctx, op, worklist)
            elif op.opcode is Opcode.SELECT:
                facts: Set[_Fact] = set()
                for src in op.srcs[1:]:
                    node = self._value_facts(fname, ctx, src, facts)
                    if node is not None:
                        self._add_edge(
                            node, self._reg(fname, ctx, op.dest), 0, worklist
                        )
                self._add_pts(self._reg(fname, ctx, op.dest), facts, worklist)
            elif op.opcode is Opcode.LOAD:
                self._constrain_load(fname, ctx, op, worklist)
            elif op.opcode is Opcode.STORE:
                self._constrain_store(fname, ctx, op, worklist)
            elif op.opcode is Opcode.CALL:
                self._constrain_call(fname, ctx, op, worklist)
            elif op.opcode is Opcode.RET and op.srcs:
                facts = set()
                node = self._value_facts(fname, ctx, op.srcs[0], facts)
                if node is not None:
                    self._add_edge(node, self._ret(fname, ctx), 0, worklist)
                self._add_pts(self._ret(fname, ctx), facts, worklist)

    def _constrain_copy_like(self, fname: str, ctx, op: Operation, worklist) -> None:
        if op.dest is None or (
            not op.dest.ty.is_pointer() and op.opcode is not Opcode.PTRADD
        ):
            # Copies of non-pointers cannot carry addresses... except PTRADD,
            # whose dest is always a pointer by construction.
            return
        shift = self._delta_for(op) if op.opcode is Opcode.PTRADD else 0
        facts: Set[_Fact] = set()
        node = self._value_facts(fname, ctx, op.srcs[0], facts)
        if node is not None:
            self._add_edge(node, self._reg(fname, ctx, op.dest), shift, worklist)
        self._add_pts(
            self._reg(fname, ctx, op.dest), self._shifted(facts, shift), worklist
        )

    def _constrain_load(self, fname: str, ctx, op: Operation, worklist) -> None:
        if not op.dest.ty.is_pointer():
            return
        afacts: Set[_Fact] = set()
        addr_node = self._value_facts(fname, ctx, op.srcs[0], afacts)
        dest_node = self._reg(fname, ctx, op.dest)
        for fact in afacts:
            self._load_fact(fact, dest_node, worklist)
        if addr_node is not None:
            self._register_load(addr_node, dest_node, worklist)

    def _constrain_store(self, fname: str, ctx, op: Operation, worklist) -> None:
        value, addr = op.srcs[0], op.srcs[1]
        if not value.ty.is_pointer() and not isinstance(value, GlobalAddress):
            return
        vfacts: Set[_Fact] = set()
        value_node = self._value_facts(fname, ctx, value, vfacts)
        afacts: Set[_Fact] = set()
        addr_node = self._value_facts(fname, ctx, addr, afacts)
        if value_node is None:
            # Storing a constant address: seed the content nodes directly.
            for fact in afacts:
                self._store_const_fact(fact, vfacts, worklist)
            if addr_node is not None and vfacts:
                fake = ("k", op.uid, ctx)
                self._add_pts(fake, vfacts, worklist)
                self._register_store(addr_node, fake, worklist)
        else:
            for fact in afacts:
                self._store_fact(fact, value_node, worklist)
            if addr_node is not None:
                self._register_store(addr_node, value_node, worklist)

    def _constrain_call(self, fname: str, ctx, op: Operation, worklist) -> None:
        callee = op.attrs.get("callee")
        if callee not in self.module.functions:
            return
        callee_fn = self.module.functions[callee]
        callee_ctx = op.uid if self._ctx else None
        for arg, param in zip(op.srcs[1:], callee_fn.params):
            facts: Set[_Fact] = set()
            node = self._value_facts(fname, ctx, arg, facts)
            pnode = self._reg(callee, callee_ctx, param)
            if node is not None:
                self._add_edge(node, pnode, 0, worklist)
            self._add_pts(pnode, facts, worklist)
        if op.dest is not None and op.dest.ty.is_pointer():
            self._add_edge(
                self._ret(callee, callee_ctx),
                self._reg(fname, ctx, op.dest),
                0,
                worklist,
            )

    # -- fixpoint -------------------------------------------------------------------

    def _propagate(self, worklist: List[Tuple]) -> None:
        while worklist:
            node = worklist.pop()
            self.solver_iterations += 1
            facts = set(self._pts.get(node, ()))
            for dst, shifts in list(self._edges.get(node, {}).items()):
                for shift in tuple(shifts):
                    self._add_pts(dst, self._shifted(facts, shift), worklist)
            for dest in list(self._load_sites.get(node, ())):
                done = self._done_load.setdefault((node, dest), set())
                for fact in facts - done:
                    self._load_fact(fact, dest, worklist)
                done |= facts
            for value in list(self._store_sites.get(node, ())):
                done = self._done_store.setdefault((node, value), set())
                for fact in facts - done:
                    self._store_fact(fact, value, worklist)
                done |= facts

    # -- queries --------------------------------------------------------------------

    def _ctxs_of(self, func: str) -> Tuple:
        return self._contexts.get(func, (None,))

    def points_to(self, func: str, reg: VirtualRegister) -> FrozenSet[str]:
        out: Set[str] = set()
        for ctx in self._ctxs_of(func):
            for obj, _off in self._pts.get(("r", func, ctx, reg.vid), ()):
                out.add(obj)
        return frozenset(out)

    # -- observability ----------------------------------------------------------------

    def stats(self) -> PointsToStats:
        if self._stats is None:
            self._stats = self._compute_stats()
        return self._stats

    def _compute_stats(self) -> PointsToStats:
        sizes: List[int] = []
        empty = 0
        memory_ops = 0
        max_size = 0
        pairs: Set[Tuple[str, str]] = set()
        for func in self.module:
            for op in func.operations():
                if not op.is_memory_access():
                    continue
                memory_ops += 1
                objs = self.objects_for_op(func.name, op)
                if not objs:
                    empty += 1
                    continue
                sizes.append(len(objs))
                max_size = max(max_size, len(objs))
                ordered = sorted(objs)
                for i, a in enumerate(ordered):
                    for b in ordered[i + 1:]:
                        pairs.add((a, b))
        annotated = len(sizes)
        return PointsToStats(
            tier=self.tier,
            memory_ops=memory_ops,
            annotated_ops=annotated,
            empty_ops=empty,
            avg_set_size=(sum(sizes) / annotated) if annotated else 0.0,
            max_set_size=max_size,
            singleton_ratio=(sizes.count(1) / annotated) if annotated else 0.0,
            mayalias_pairs=len(pairs),
            solver_iterations=self.solver_iterations,
            solve_seconds=self.solve_seconds,
            nodes=len(self._pts),
            contexts=sum(len(c) for c in self._contexts.values()),
            content_regions=sum(len(r) for r in self._regions.values()),
        )


class PointsTo(TieredPointsTo):
    """Back-compat alias: the Andersen baseline tier."""

    def __init__(self, module: Module):
        super().__init__(module, tier="andersen")


def solve_pointsto(module: Module, tier: str = "andersen") -> PointsToResult:
    """Solve one precision tier over ``module``."""
    return TieredPointsTo(module, tier=tier)


def annotate_memory_ops(
    module: Module,
    pointsto: Optional[PointsToResult] = None,
    tier: str = "andersen",
) -> PointsToResult:
    """Mark every LOAD/STORE with ``mem_objects`` and every MALLOC with its
    heap object id.  Returns the points-to solution used."""
    pts = pointsto or solve_pointsto(module, tier)
    for func in module:
        for op in func.operations():
            if op.is_memory_access():
                op.attrs["mem_objects"] = pts.objects_for_op(func.name, op)
            elif op.opcode is Opcode.MALLOC:
                op.attrs["mem_objects"] = frozenset(
                    {heap_object_id(op.attrs["site"])}
                )
    return pts
