"""Synthesize a profiler-compatible profile from static analysis alone.

:class:`StaticProfile` subclasses :class:`~repro.profiler.profiledata.ProfileData`
so GDP / ProfileMax / the unified partitioner can run with *zero*
interpreter executions: block counts come from the execution-bound
estimates, per-op object counts from the access-region analysis, and
heap sizes from constant ``MALLOC`` operands.

Two kinds of numbers live here, and they are deliberately separate:

* the inherited ``ProfileData`` counters hold finite heuristic
  *estimates* (partitioners need weights, not truth);
* the side tables (:attr:`~StaticProfile.op_weight_bounds`,
  :attr:`~StaticProfile.block_bounds`, :attr:`~StaticProfile.static_regions`)
  hold the *sound* bounds (possibly infinite) that the
  ``lint/staticdiff`` differ checks dynamic profiles against.

This module intentionally stays out of ``dataflow/__init__`` — importing
it pulls in :mod:`repro.profiler`, which itself imports the analysis
package, and eager re-export would cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .regions import AccessRegionAnalysis, ESTIMATE_CAP, ExecutionBounds, Region
from ...ir import Constant, Module, Opcode
from ...profiler.profiledata import ProfileData


class StaticProfile(ProfileData):
    """A :class:`ProfileData` whose counters were derived, not measured."""

    def __init__(self) -> None:
        super().__init__()
        #: op uid -> sound upper bound on executions (``math.inf`` allowed).
        self.op_weight_bounds: Dict[int, float] = {}
        #: (func, block) -> sound upper bound on executions.
        self.block_bounds: Dict[Tuple[str, str], float] = {}
        #: op uid -> {object id -> static byte region (None = whole object)}.
        self.static_regions: Dict[int, Dict[str, Region]] = {}
        #: object id -> coalesced touched regions (None = whole object).
        self.object_static_regions: Dict[str, Optional[List[Tuple[int, int]]]] = {}

    def is_static(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<static profile: {len(self.block_counts)} blocks, "
            f"{len(self.op_weight_bounds)} bounded ops>"
        )


def build_static_profile(
    module: Module,
    pointsto=None,
    bounds: Optional[ExecutionBounds] = None,
) -> StaticProfile:
    """Run the region analysis and package it as a profile.

    ``pointsto`` (a solved points-to result) supplies per-op object sets;
    without one the ops must already carry ``mem_objects`` annotations.
    """
    bounds = bounds or ExecutionBounds(module, pointsto=pointsto)
    regions = AccessRegionAnalysis(module, pointsto=pointsto, bounds=bounds)
    profile = StaticProfile()

    for func in module:
        if not func.blocks:
            continue
        cfg = bounds.cfgs.get(func.name)
        reachable = cfg.reachable() if cfg is not None else set(func.blocks)
        call_est = bounds.entry_estimates.get(func.name, 0)
        if call_est > 0 and func.name != "main":
            profile.call_counts[func.name] = call_est
        for block in func:
            if block.name not in reachable:
                continue
            est = bounds.block_estimate(func.name, block.name)
            profile.block_bounds[(func.name, block.name)] = bounds.block_bound(
                func.name, block.name
            )
            if est > 0:
                profile.block_counts[(func.name, block.name)] = est
                profile.instructions_executed = min(
                    profile.instructions_executed + est * len(block.ops),
                    ESTIMATE_CAP,
                )
            for op in block.ops:
                if op.opcode is Opcode.MALLOC and est > 0:
                    size_src = op.srcs[0]
                    if isinstance(size_src, Constant) and isinstance(
                        size_src.value, int
                    ):
                        site = op.attrs.get("site")
                        if site is not None:
                            profile.heap_sizes[f"h:{site}"] = min(
                                max(size_src.value, 1) * est, ESTIMATE_CAP
                            )

    for uid, per_obj in regions.op_regions.items():
        profile.op_weight_bounds[uid] = regions.op_weight_bounds.get(uid, 0.0)
        profile.static_regions[uid] = dict(per_obj)
        est = regions.op_weight_estimates.get(uid, 0)
        if est <= 0 or not per_obj:
            continue
        # The static analysis cannot apportion an op's accesses between
        # its may-target objects; split the weight evenly so every
        # candidate object carries partitioning pressure.
        share = max(est // len(per_obj), 1)
        for obj in sorted(per_obj):
            profile.record_access(uid, obj)
            profile.op_object_counts[uid][obj] = share

    profile.object_static_regions = regions.object_regions()
    return profile


__all__ = ["StaticProfile", "build_static_profile"]
