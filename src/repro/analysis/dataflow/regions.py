"""Static access-region analysis: trip counts, execution bounds, regions.

Three layers, each feeding the next:

* :class:`TripCounts` — per natural loop, a sound upper bound on header
  executions per loop entry, derived from the exit compare, the
  induction-variable step, and the interval analysis' preheader facts
  (``None`` when no sound bound exists);
* :class:`ExecutionBounds` — per function and basic block, a sound upper
  bound on executions across the whole program run (``inf`` for
  recursion, irreducible control flow, or unbounded loops), plus a
  finite heuristic *estimate* mirroring the classic ``10**depth`` static
  frequency used when a bound is infinite;
* :class:`AccessRegionAnalysis` — per memory op, a static access-weight
  bound (the op's block bound) and per ``(op, object)`` the touched byte
  region, computed by evaluating the block's affine address form with
  the block-entry register intervals (``None`` region = whole object).

These are the static counterparts of the dynamic profiler's block counts,
op/object counts, and access offsets — :mod:`.staticprofile` packages
them as a drop-in :class:`~repro.profiler.profiledata.ProfileData`.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Tuple

from .framework import recursive_functions, top_down_order
from .interval import (
    INT32_MAX,
    INT32_MIN,
    EnvLattice,
    Interval,
    IntervalAnalysis,
    eval_value,
)
from ..affine import AffineAddresses, coalesce_intervals
from ..callgraph import CallGraph
from ..cfg import CFG
from ..dominators import DominatorTree
from ..loops import Loop, LoopInfo
from ...ir import BasicBlock, Constant, Function, Module, Opcode, Operation, VirtualRegister

#: Heuristic trip count used when no sound bound exists (matches the
#: 10**depth static frequency estimator in analysis/loops.py).
DEFAULT_TRIP_ESTIMATE = 10

#: Multiplier applied to the entry estimate of recursive functions.
RECURSION_ESTIMATE_FACTOR = 10

#: Ceiling for every finite estimate (weights, not cycle counts).
ESTIMATE_CAP = 10**9

_UPPER = {Opcode.CMPLT: 0, Opcode.CMPLE: 1}  # continue iv < / <= bound
_LOWER = {Opcode.CMPGT: 0, Opcode.CMPGE: 1}  # continue iv > / >= bound
_SWAP = {
    Opcode.CMPLT: Opcode.CMPGT,
    Opcode.CMPLE: Opcode.CMPGE,
    Opcode.CMPGT: Opcode.CMPLT,
    Opcode.CMPGE: Opcode.CMPLE,
}
_NEGATE = {
    Opcode.CMPLT: Opcode.CMPGE,
    Opcode.CMPLE: Opcode.CMPGT,
    Opcode.CMPGT: Opcode.CMPLE,
    Opcode.CMPGE: Opcode.CMPLT,
}


class TripCounts:
    """Sound per-loop iteration bounds for one function.

    A bound counts *header executions per loop entry* and is ``None``
    when the loop shape defeats the analysis: no recognised exit
    compare, induction steps outside the header/latch, mixed step
    directions, a loop-variant bound, or possible 32-bit wraparound.
    Bounds are deliberately slack (a ``+2`` absorbs pre-/post-increment
    test placement) — clients need containment, not tightness.
    """

    def __init__(
        self,
        func: Function,
        cfg: CFG,
        loops: LoopInfo,
        intervals: IntervalAnalysis,
    ):
        self.func = func
        self.cfg = cfg
        self.loops = loops
        self._intervals = intervals
        self.trips: Dict[Loop, Optional[int]] = {
            loop: self._analyze_loop(loop) for loop in loops.loops
        }

    def trip_of(self, loop: Loop) -> Optional[int]:
        return self.trips.get(loop)

    # -- per-loop analysis ---------------------------------------------------

    def _analyze_loop(self, loop: Loop) -> Optional[int]:
        preds = self.cfg.predecessors(loop.header)
        outside = [p for p in preds if p not in loop.body]
        latches = [p for p in preds if p in loop.body]
        if not outside or not latches:
            return None
        lattice = EnvLattice()
        init_env = None
        for pred in outside:
            init_env = lattice.join(
                init_env, self._intervals.env_at_exit(self.func.name, pred)
            )
        if init_env is None:
            return 0  # the loop is never entered
        candidates = [loop.header]
        if len(latches) == 1 and latches[0] != loop.header:
            candidates.append(latches[0])
        best: Optional[int] = None
        for block_name in candidates:
            bound = self._exit_bound(loop, block_name, latches, init_env)
            if bound is not None and (best is None or bound < best):
                best = bound
        return best

    def _exit_bound(
        self,
        loop: Loop,
        block_name: str,
        latches: List[str],
        init_env: Dict[int, Interval],
    ) -> Optional[int]:
        block = self.func.blocks[block_name]
        if not block.ops:
            return None
        term = block.ops[-1]
        if term.opcode is not Opcode.CBR:
            return None
        in_body = [t in loop.body for t in term.targets]
        if in_body[0] == in_body[1]:
            return None  # both targets inside (or outside) the loop
        cond = term.srcs[0]
        if not isinstance(cond, VirtualRegister):
            return None
        cmp_op = self._defining_compare(block, term, cond.vid)
        if cmp_op is None:
            return None
        # Normalise to a continue-condition "lhs REL rhs": the branch
        # stays in the loop when targets[0] is inside and the condition
        # is non-zero, or targets[1] is inside and the condition is zero.
        code = cmp_op.opcode
        if in_body[1]:
            code = _NEGATE.get(code)
            if code is None:
                return None
        # The bound side need not be loop-invariant: its fixpoint
        # interval at the compare over-approximates its value on every
        # iteration (this covers bounds re-loaded from constant globals
        # inside the header).
        cmp_env = self._intervals.env_before_op(self.func.name, block, cmp_op)
        if cmp_env is None:
            return None
        a, b = cmp_op.srcs[0], cmp_op.srcs[1]
        best: Optional[int] = None
        for iv_val, bound_val, c in ((a, b, code), (b, a, _SWAP[code])):
            if not isinstance(iv_val, VirtualRegister):
                continue
            trip = self._candidate_bound(
                loop, latches, init_env, cmp_env, iv_val, bound_val, c
            )
            if trip is not None and (best is None or trip < best):
                best = trip
        return best

    def _candidate_bound(
        self,
        loop: Loop,
        latches: List[str],
        init_env: Dict[int, Interval],
        cmp_env: Dict[int, Interval],
        iv: VirtualRegister,
        bound,
        code: Opcode,
    ) -> Optional[int]:
        step = self._induction_step(loop, iv, latches)
        if step is None:
            return None
        direction, per_iter_min, per_iter_abs = step
        init = init_env.get(iv.vid, Interval.top())
        bound_iv = eval_value(bound, cmp_env)
        # The excursion term absorbs increments that run before the exit
        # test inside an iteration (the test may observe a value up to
        # one iteration's movement behind the per-entry progress).
        if code in _UPPER and direction > 0:
            u_eff = bound_iv.hi + _UPPER[code] - 1
            if u_eff + per_iter_abs > INT32_MAX:
                return None  # the induction variable may wrap
            if init.lo - per_iter_abs < INT32_MIN:
                return None
            span = max(0, u_eff - init.lo + per_iter_abs)
        elif code in _LOWER and direction < 0:
            l_eff = bound_iv.lo - _LOWER[code] + 1
            if l_eff - per_iter_abs < INT32_MIN:
                return None
            if init.hi + per_iter_abs > INT32_MAX:
                return None
            span = max(0, init.hi - l_eff + per_iter_abs)
        else:
            return None
        return span // per_iter_min + 2

    def _defining_compare(
        self, block: BasicBlock, term: Operation, vid: int
    ) -> Optional[Operation]:
        for op in reversed(block.ops):
            if op is term:
                continue
            if op.dest is not None and op.dest.vid == vid:
                return op if op.opcode in _SWAP else None
        return None

    def _induction_step(
        self, loop: Loop, iv: VirtualRegister, latches: List[str]
    ) -> Optional[Tuple[int, int, int]]:
        """Validate ``iv`` as a strict-progress induction variable.

        Every in-loop definition of ``iv`` must live in the header or a
        latch (blocks executed exactly/at most once per iteration) and
        amount to ``iv = iv +/- const`` — possibly through intermediate
        registers (``t = iv + 1; iv = t``).  Returns ``(direction, min
        per-iteration net progress, max per-iteration excursion)``.
        """
        allowed = {loop.header, *latches}
        deltas: Dict[str, int] = {}
        movement: Dict[str, int] = {}
        for name in loop.body:
            block = self.func.blocks.get(name)
            if block is None:
                continue
            if not any(
                op.dest is not None and op.dest.vid == iv.vid
                for op in block.ops
            ):
                continue
            if name not in allowed:
                return None
            step = _block_step(block, iv.vid)
            if step is None:
                return None
            deltas[name], movement[name] = step
        # One iteration passes the header once and exactly one latch; a
        # self-loop's iteration is the header alone.
        head_delta = deltas.get(loop.header, 0)
        head_move = movement.get(loop.header, 0)
        nets: List[int] = []
        moves: List[int] = []
        for latch in latches:
            if latch == loop.header:
                nets.append(head_delta)
                moves.append(head_move)
            else:
                nets.append(head_delta + deltas.get(latch, 0))
                moves.append(head_move + movement.get(latch, 0))
        if all(n > 0 for n in nets):
            direction = 1
        elif all(n < 0 for n in nets):
            direction = -1
        else:
            return None
        return direction, min(abs(n) for n in nets), max(moves)


def _block_step(block: BasicBlock, vid: int) -> Optional[Tuple[int, int]]:
    """Net constant delta of register ``vid`` across one block.

    Tracks every register whose value is provably ``iv_entry + k`` (the
    frontend emits ``t = iv + 1; iv = mov t``); any definition of ``iv``
    outside that language makes the block unanalysable.  Returns ``(net
    delta, max absolute excursion of iv within the block)``.
    """
    rel: Dict[int, int] = {vid: 0}
    excursion = 0
    for op in block.ops:
        dest = op.dest
        if dest is None:
            continue
        form: Optional[int] = None
        if op.opcode in (Opcode.MOV, Opcode.ICMOVE):
            src = op.srcs[0]
            if isinstance(src, VirtualRegister) and src.vid in rel:
                form = rel[src.vid]
        elif op.opcode is Opcode.ADD:
            a, b = op.srcs[0], op.srcs[1]
            if isinstance(a, VirtualRegister) and a.vid in rel and _is_int(b):
                form = rel[a.vid] + b.value
            elif isinstance(b, VirtualRegister) and b.vid in rel and _is_int(a):
                form = rel[b.vid] + a.value
        elif op.opcode is Opcode.SUB:
            a, b = op.srcs[0], op.srcs[1]
            if isinstance(a, VirtualRegister) and a.vid in rel and _is_int(b):
                form = rel[a.vid] - b.value
        if dest.vid == vid:
            if form is None:
                return None
            rel[vid] = form
            excursion = max(excursion, abs(form))
        elif form is None:
            rel.pop(dest.vid, None)
        else:
            rel[dest.vid] = form
    return rel[vid], excursion


def _is_int(v) -> bool:
    return isinstance(v, Constant) and isinstance(v.value, int)


class ExecutionBounds:
    """Whole-program execution bounds per function entry and basic block.

    ``bound`` values are sound upper limits (``math.inf`` when recursion,
    irreducible control flow, or an unbounded loop defeats the
    analysis); ``estimate`` values are the finite stand-ins fed to the
    static profile (``DEFAULT_TRIP_ESTIMATE`` per unbounded loop level,
    ``RECURSION_ESTIMATE_FACTOR`` for recursion, capped at
    ``ESTIMATE_CAP``).  Functions unreachable from ``main`` are bounded
    by zero: calls are direct and function references are not data.
    """

    def __init__(
        self,
        module: Module,
        intervals: Optional[IntervalAnalysis] = None,
        pointsto=None,
    ):
        self.module = module
        self.callgraph = CallGraph(module)
        self.intervals = intervals or IntervalAnalysis(
            module, self.callgraph, pointsto=pointsto
        )
        self.cfgs: Dict[str, CFG] = {}
        self.loopinfos: Dict[str, LoopInfo] = {}
        self.tripcounts: Dict[str, TripCounts] = {}
        self._irreducible: Dict[str, bool] = {}
        self.entry_bounds: Dict[str, float] = {}
        self.entry_estimates: Dict[str, int] = {}
        for func in module:
            if not func.blocks:
                continue
            cfg = self.intervals.cfgs.get(func.name) or CFG(func)
            self.cfgs[func.name] = cfg
            domtree = DominatorTree(cfg)
            loops = LoopInfo(cfg, domtree)
            self.loopinfos[func.name] = loops
            self.tripcounts[func.name] = TripCounts(
                func, cfg, loops, self.intervals
            )
            self._irreducible[func.name] = _has_irreducible_edge(cfg, domtree)
        self._solve_entries()

    # -- per-block local factors ---------------------------------------------

    def _local(self, fname: str, block: str) -> Tuple[float, int]:
        """(sound, estimate) multiplier for one block inside its function."""
        if self._irreducible.get(fname):
            return math.inf, ESTIMATE_CAP
        loops = self.loopinfos.get(fname)
        trips = self.tripcounts.get(fname)
        if loops is None or trips is None:
            return 1.0, 1
        sound: float = 1.0
        est = 1
        for loop in loops.loops:
            if not loop.contains(block):
                continue
            trip = trips.trip_of(loop)
            if trip is None:
                sound = math.inf
                est = min(est * DEFAULT_TRIP_ESTIMATE, ESTIMATE_CAP)
            else:
                sound *= trip
                est = min(est * max(trip, 1), ESTIMATE_CAP)
        return sound, est

    # -- interprocedural entry bounds ----------------------------------------

    def _solve_entries(self) -> None:
        recursive = recursive_functions(self.callgraph)
        order = [
            n for n in top_down_order(self.callgraph) if n in self.module.functions
        ]
        position = {name: i for i, name in enumerate(order)}
        bounds: Dict[str, float] = {n: 0.0 for n in order}
        estimates: Dict[str, float] = {n: 0.0 for n in order}
        if "main" in bounds:
            bounds["main"] = 1.0
            estimates["main"] = 1.0
        for name in recursive:
            if name in bounds:
                bounds[name] = math.inf
        for name in order:
            func = self.module.functions[name]
            if not func.blocks:
                continue
            for block in func:
                for op in block.ops:
                    if not op.is_call():
                        continue
                    callee = op.attrs.get("callee")
                    if callee not in bounds:
                        continue
                    sound, est = self._local(name, block.name)
                    if callee not in recursive:
                        bounds[callee] += bounds[name] * sound
                    # Estimates ignore cycle-closing edges (callee already
                    # processed); recursion is priced by a flat factor below.
                    if position[callee] > position[name]:
                        estimates[callee] += estimates[name] * est
        for name in order:
            est = estimates[name]
            if name in recursive:
                est = max(est, 1.0) * RECURSION_ESTIMATE_FACTOR
            self.entry_estimates[name] = int(min(est, ESTIMATE_CAP))
            self.entry_bounds[name] = bounds[name]

    # -- queries -------------------------------------------------------------

    def entry_bound(self, fname: str) -> float:
        return self.entry_bounds.get(fname, 0.0)

    def block_bound(self, fname: str, block: str) -> float:
        """Sound upper bound on executions of ``block`` per program run."""
        sound, _ = self._local(fname, block)
        return self.entry_bound(fname) * sound

    def block_estimate(self, fname: str, block: str) -> int:
        _, est = self._local(fname, block)
        return int(min(self.entry_estimates.get(fname, 0) * est, ESTIMATE_CAP))


def _has_irreducible_edge(cfg: CFG, domtree: DominatorTree) -> bool:
    """A retreating edge whose target does not dominate its source means
    a cycle natural-loop detection cannot see — all bounds become inf."""
    rpo = cfg.reverse_postorder()
    index = {n: i for i, n in enumerate(rpo)}
    for src in rpo:
        for dst in cfg.successors(src):
            if index.get(dst, -1) <= index[src] and not domtree.dominates(dst, src):
                return True
    return False


#: A touched byte region: half-open ``[lo, hi)``; ``None`` = whole object.
Region = Optional[Tuple[int, int]]


class AccessRegionAnalysis:
    """Static access weights and byte regions for every memory op.

    For each LOAD/STORE the access weight bound is the op's block bound.
    The touched region per object comes from the block's affine address
    form: when the form is ``@g + sum(c_i * in_i) + k`` for exactly the
    global the op may access, the live-in register intervals give a byte
    interval, clamped to the object; any mismatch (heap objects, opaque
    address atoms, out-of-bounds math) falls back to the whole object,
    which is always a sound containment answer.
    """

    def __init__(
        self,
        module: Module,
        pointsto=None,
        bounds: Optional[ExecutionBounds] = None,
    ):
        self.module = module
        self.bounds = bounds or ExecutionBounds(module, pointsto=pointsto)
        self._pointsto = pointsto
        #: op uid -> sound execution bound (may be math.inf)
        self.op_weight_bounds: Dict[int, float] = {}
        #: op uid -> finite heuristic weight for the static profile
        self.op_weight_estimates: Dict[int, int] = {}
        #: op uid -> {object id -> Region}
        self.op_regions: Dict[int, Dict[str, Region]] = {}
        #: op uid -> (function name, block name)
        self.op_location: Dict[int, Tuple[str, str]] = {}
        self._analyze()

    def _objects_for(self, fname: str, op: Operation) -> FrozenSet[str]:
        if self._pointsto is not None:
            return self._pointsto.objects_for_op(fname, op)
        return op.mem_objects()

    def _analyze(self) -> None:
        intervals = self.bounds.intervals
        for func in self.module:
            if not func.blocks:
                continue
            cfg = self.bounds.cfgs.get(func.name)
            reachable = cfg.reachable() if cfg is not None else set(func.blocks)
            for block in func:
                if block.name not in reachable:
                    continue
                affine = AffineAddresses(block)
                entry_env = intervals.env_at_entry(func.name, block.name)
                for op in block.ops:
                    if not op.is_memory_access():
                        continue
                    self.op_location[op.uid] = (func.name, block.name)
                    self.op_weight_bounds[op.uid] = self.bounds.block_bound(
                        func.name, block.name
                    )
                    self.op_weight_estimates[op.uid] = self.bounds.block_estimate(
                        func.name, block.name
                    )
                    regions: Dict[str, Region] = {}
                    for obj in self._objects_for(func.name, op):
                        regions[obj] = self._region_of(
                            op, obj, affine, entry_env
                        )
                    self.op_regions[op.uid] = regions

    def _region_of(
        self,
        op: Operation,
        obj: str,
        affine: AffineAddresses,
        entry_env: Optional[Dict[int, Interval]],
    ) -> Region:
        if not obj.startswith("g:"):
            return None  # heap objects: size is dynamic, claim everything
        symbol = obj[2:]
        var = self.module.globals.get(symbol)
        if var is None:
            return None
        size = var.size()
        form = affine.address_of.get(op.uid)
        if form is None:
            return None
        base = form.terms.get(("g", symbol))
        if base != 1 or entry_env is None:
            return None
        # Offsets are evaluated in unbounded integers: the affine layer
        # models address arithmetic without wraparound (a program whose
        # address math wraps faults in the interpreter before profiling).
        off_lo, off_hi = form.const, form.const
        for atom, coeff in form.terms.items():
            if atom == ("g", symbol):
                continue
            iv = self._atom_interval(atom, entry_env)
            if iv.is_top():
                return None
            lo, hi = iv.lo * coeff, iv.hi * coeff
            if coeff < 0:
                lo, hi = hi, lo
            off_lo, off_hi = off_lo + lo, off_hi + hi
        width = affine.width_of.get(op.uid, 1)
        lo = max(off_lo, 0)
        hi = min(off_hi + width, size)
        if lo >= hi:
            return None  # provably out of bounds: stay conservative
        return (lo, hi)

    @staticmethod
    def _atom_interval(atom, entry_env: Dict[int, Interval]) -> Interval:
        # Live-in register atoms are versioned as (("in", vid), n); their
        # value at first read equals the block-entry value.
        if (
            isinstance(atom, tuple)
            and len(atom) == 2
            and isinstance(atom[0], tuple)
            and len(atom[0]) == 2
            and atom[0][0] == "in"
        ):
            return entry_env.get(atom[0][1], Interval.top())
        return Interval.top()

    # -- aggregate queries ---------------------------------------------------

    def object_regions(self) -> Dict[str, Optional[List[Tuple[int, int]]]]:
        """Per object: coalesced touched byte intervals, or ``None`` when
        any access claims the whole object."""
        raw: Dict[str, Optional[List[Tuple[int, int]]]] = {}
        for regions in self.op_regions.values():
            for obj, region in regions.items():
                if obj in raw and raw[obj] is None:
                    continue
                if region is None:
                    raw[obj] = None
                else:
                    raw.setdefault(obj, []).append(region)  # type: ignore[union-attr]
        return {
            obj: (None if spans is None else coalesce_intervals(spans))
            for obj, spans in raw.items()
        }


__all__ = [
    "AccessRegionAnalysis",
    "DEFAULT_TRIP_ESTIMATE",
    "ESTIMATE_CAP",
    "ExecutionBounds",
    "Region",
    "TripCounts",
]
