"""Engine-based replacements for the ad-hoc lint dataflow traversals.

Two finite set analyses phrased as :class:`DataflowProblem` instances:

* :func:`must_defined_registers` — forward must-analysis: the register
  ids defined on *every* path into each block (parameters count as
  defined at entry).  Replaces ``lint.irlint._must_defined_in``.
* :func:`live_registers` — backward may-analysis producing
  :class:`LivenessFacts`, drop-in compatible with the queries the
  dead-store pass makes against :class:`repro.analysis.Liveness`.

Both keep the exact semantics of the traversals they replace, including
the corner cases: unreachable blocks report the lattice bottom (the full
universe for must-defined, the empty set for liveness), and the entry's
must-defined state stays pinned to the parameter set even when a back
edge targets the entry block.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from .framework import DataflowProblem, SetLattice, solve
from ..cfg import CFG
from ...ir import BasicBlock, Function


def _block_defs(block: BasicBlock) -> Set[int]:
    return {op.dest.vid for op in block.ops if op.dest is not None}


class _MustDefinedProblem(DataflowProblem):
    direction = "forward"
    boundary_is_absolute = True

    def __init__(self, func: Function, universe: FrozenSet[int]):
        super().__init__(SetLattice(universe, must=True))
        self._params = frozenset(p.vid for p in func.params)

    def boundary(self) -> FrozenSet[int]:
        return self._params

    def transfer(self, block: BasicBlock, state: FrozenSet[int]) -> FrozenSet[int]:
        return state | frozenset(_block_defs(block))


def must_defined_registers(func: Function, cfg: CFG) -> Dict[str, Set[int]]:
    """Register ids defined on every path into each block.

    Unreachable blocks report the full universe (nothing can be read
    uninitialised in code that never runs), matching the traversal this
    replaces.
    """
    universe = {p.vid for p in func.params}
    for block in func:
        universe |= _block_defs(block)
    solution = solve(func, cfg, _MustDefinedProblem(func, frozenset(universe)))
    return {name: set(solution.in_of(name)) for name in func.blocks}


class _LivenessProblem(DataflowProblem):
    direction = "backward"

    def __init__(self, universe: FrozenSet[int]):
        super().__init__(SetLattice(universe, must=False))

    def boundary(self) -> FrozenSet[int]:
        return frozenset()

    def transfer(self, block: BasicBlock, state: FrozenSet[int]) -> FrozenSet[int]:
        # Backward: the incoming state is the block's live-out; produce
        # its live-in: use | (out - defs), with use = read-before-write.
        use: Set[int] = set()
        defs: Set[int] = set()
        for op in block.ops:
            for src in op.register_srcs():
                if src.vid not in defs:
                    use.add(src.vid)
            if op.dest is not None:
                defs.add(op.dest.vid)
        return frozenset(use) | (state - frozenset(defs))


class LivenessFacts:
    """Per-block live-in/live-out sets with the :class:`Liveness` query API."""

    def __init__(
        self,
        live_in: Dict[str, FrozenSet[int]],
        live_out: Dict[str, FrozenSet[int]],
    ):
        self.live_in = live_in
        self.live_out = live_out

    def live_across(self, vid: int) -> bool:
        """True if the register is live across any block boundary."""
        return any(vid in live for live in self.live_out.values())

    def live_out_of(self, block: str) -> FrozenSet[int]:
        return self.live_out.get(block, frozenset())

    def live_into(self, block: str) -> FrozenSet[int]:
        return self.live_in.get(block, frozenset())


def live_registers(func: Function, cfg: CFG) -> LivenessFacts:
    """Backward liveness over virtual registers via the fixpoint engine."""
    universe: Set[int] = {p.vid for p in func.params}
    for block in func:
        universe |= _block_defs(block)
        for op in block.ops:
            for src in op.register_srcs():
                universe.add(src.vid)
    solution = solve(func, cfg, _LivenessProblem(frozenset(universe)))
    # Backward problem: in_of is the state at the block's *end* (live-out)
    # and out_of the state at its start (live-in).
    live_out = {name: frozenset(solution.in_of(name)) for name in func.blocks}
    live_in = {name: frozenset(solution.out_of(name)) for name in func.blocks}
    return LivenessFacts(live_in, live_out)


__all__ = ["LivenessFacts", "live_registers", "must_defined_registers"]
