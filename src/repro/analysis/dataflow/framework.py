"""Generic worklist dataflow fixpoint engine.

One solver for every monotone dataflow problem in the tree: a problem
names a direction (``forward`` | ``backward``), a :class:`Lattice`, a
boundary state, and a per-block transfer function; :func:`solve` runs the
classic worklist iteration to a fixpoint with widening at cycle heads and
an optional descending (narrowing) phase afterwards.

Conventions
-----------

* ``lattice.bottom()`` is the *identity of join* — the most optimistic
  state.  For a may-analysis (liveness) that is the empty set; for a
  must-analysis (must-defined) it is the full set, because the join is
  set intersection.  Unreachable blocks keep the bottom state.
* States are treated as immutable: transfer functions return fresh
  values and never mutate their input.
* Widening points are the targets of iteration-order back edges (loop
  headers on reducible CFGs, cycle entries otherwise), so infinite- or
  tall-lattice analyses (intervals) terminate quickly.

Interprocedural lifting uses :class:`~repro.analysis.callgraph.CallGraph`:
:func:`top_down_order` yields callers before callees so a client can
propagate entry facts down the call graph, and
:func:`recursive_functions` names the functions on call cycles, whose
entry facts must be pinned to top.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set

from ..callgraph import CallGraph
from ..cfg import CFG
from ...ir import Function


class Lattice:
    """Join-semilattice protocol for dataflow states.

    ``bottom`` is the identity of ``join``; ``widen`` must eventually
    stabilise any ascending chain; ``narrow`` (used only in the optional
    descending phase) must return a value between ``new`` and ``old``.
    The defaults make widening a plain join and narrowing a no-op, which
    is always sound.
    """

    def bottom(self) -> Any:
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def equals(self, a: Any, b: Any) -> bool:
        return bool(a == b)

    def widen(self, old: Any, new: Any) -> Any:
        return self.join(old, new)

    def narrow(self, old: Any, new: Any) -> Any:
        return old


class SetLattice(Lattice):
    """Finite powerset lattice over ``universe``.

    ``must=False`` is the may-configuration (bottom = empty set, join =
    union: liveness, reaching defs); ``must=True`` the must-configuration
    (bottom = full universe, join = intersection: must-defined,
    available expressions).
    """

    def __init__(self, universe: FrozenSet[int], must: bool = False):
        self.universe = universe
        self.must = must

    def bottom(self) -> FrozenSet[int]:
        return self.universe if self.must else frozenset()

    def join(self, a: FrozenSet[int], b: FrozenSet[int]) -> FrozenSet[int]:
        return (a & b) if self.must else (a | b)


class DataflowProblem:
    """One analysis: direction + lattice + boundary + transfer."""

    #: ``"forward"`` (states flow entry -> exits) or ``"backward"``.
    direction: str = "forward"

    #: When true, boundary blocks take exactly the boundary state and
    #: ignore incoming edges (e.g. a must-defined entry stays at the
    #: parameter set even if a back edge targets the entry block).
    boundary_is_absolute: bool = False

    def __init__(self, lattice: Lattice):
        self.lattice = lattice

    def boundary(self) -> Any:
        """State at the entry block (forward) / every exit (backward)."""
        raise NotImplementedError

    def transfer(self, block: Any, state: Any) -> Any:
        """The block's effect on an incoming state (must not mutate it)."""
        raise NotImplementedError

    def edge_transfer(self, src: Any, dst_name: str, state: Any) -> Any:
        """Refine the state flowing along one edge before it is joined.

        ``src`` is the input-side block object in the problem's direction
        (a predecessor for forward problems, a successor for backward
        ones) and ``state`` its out state.  Overrides may sharpen the
        state per target — branch refinement — or return the lattice
        bottom to mark the edge infeasible.  Must not mutate ``state``.
        """
        return state


class DataflowSolution:
    """Fixpoint states per block plus solver telemetry."""

    def __init__(
        self,
        problem: DataflowProblem,
        in_states: Dict[str, Any],
        out_states: Dict[str, Any],
        iterations: int,
        widened: Set[str],
    ):
        self.problem = problem
        self.in_states = in_states
        self.out_states = out_states
        self.iterations = iterations
        self.widened = widened

    def in_of(self, block: str) -> Any:
        """State *entering* the block in the problem's direction (for a
        backward problem that is the state at the block's end)."""
        if block in self.in_states:
            return self.in_states[block]
        return self.problem.lattice.bottom()

    def out_of(self, block: str) -> Any:
        if block in self.out_states:
            return self.out_states[block]
        return self.problem.lattice.bottom()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<dataflow {self.problem.direction}: "
            f"{len(self.in_states)} blocks, {self.iterations} iterations>"
        )


def solve(
    func: Function,
    cfg: CFG,
    problem: DataflowProblem,
    widen_after: int = 3,
    narrow_passes: int = 0,
) -> DataflowSolution:
    """Run ``problem`` over one function's reachable blocks to a fixpoint.

    ``widen_after`` is the number of visits a widening point tolerates
    before widening kicks in; ``narrow_passes`` descending sweeps run
    after the ascending fixpoint (0 disables narrowing).
    """
    lattice = problem.lattice
    forward = problem.direction == "forward"
    rpo = cfg.reverse_postorder()
    order = rpo if forward else list(reversed(rpo))
    index = {name: i for i, name in enumerate(order)}
    reachable = set(rpo)

    def inputs_of(name: str) -> List[str]:
        edges = cfg.predecessors(name) if forward else cfg.successors(name)
        return [p for p in edges if p in reachable]

    def outputs_of(name: str) -> List[str]:
        edges = cfg.successors(name) if forward else cfg.predecessors(name)
        return [s for s in edges if s in reachable]

    if forward:
        boundary_blocks = {cfg.entry}
    else:
        boundary_blocks = {b for b in rpo if not cfg.successors(b)}

    # Targets of iteration-order back edges: loop headers on reducible
    # CFGs, cycle entries otherwise.  These are the widening points.
    widen_points: Set[str] = set()
    for src in order:
        for dst in outputs_of(src):
            if index[dst] <= index[src]:
                widen_points.add(dst)

    in_states: Dict[str, Any] = {n: lattice.bottom() for n in order}
    out_states: Dict[str, Any] = {n: lattice.bottom() for n in order}
    visits: Dict[str, int] = {n: 0 for n in order}
    widened: Set[str] = set()

    def joined_input(name: str) -> Any:
        if name in boundary_blocks:
            state = problem.boundary()
            if problem.boundary_is_absolute:
                return state
        else:
            state = lattice.bottom()
        for src in inputs_of(name):
            state = lattice.join(
                state,
                problem.edge_transfer(func.blocks[src], name, out_states[src]),
            )
        return state

    pending: Set[str] = set(order)
    iterations = 0
    while pending:
        name = min(pending, key=index.__getitem__)
        pending.discard(name)
        iterations += 1
        state = joined_input(name)
        visits[name] += 1
        if name in widen_points and visits[name] > widen_after:
            state = lattice.widen(in_states[name], state)
            widened.add(name)
        if visits[name] > 1 and lattice.equals(state, in_states[name]):
            continue
        in_states[name] = state
        new_out = problem.transfer(func.blocks[name], state)
        if visits[name] > 1 and lattice.equals(new_out, out_states[name]):
            continue
        out_states[name] = new_out
        pending.update(outputs_of(name))

    # Optional descending phase: recompute without widening, narrowing
    # each state against the ascending result (recovers precision that
    # widening threw away; sound because narrow stays above the new value).
    for _ in range(narrow_passes):
        changed = False
        for name in order:
            state = lattice.narrow(in_states[name], joined_input(name))
            if not lattice.equals(state, in_states[name]):
                in_states[name] = state
                changed = True
            new_out = problem.transfer(func.blocks[name], state)
            if not lattice.equals(new_out, out_states[name]):
                out_states[name] = new_out
                changed = True
        if not changed:
            break

    return DataflowSolution(problem, in_states, out_states, iterations, widened)


# -- interprocedural lifting ----------------------------------------------------


def top_down_order(callgraph: CallGraph) -> List[str]:
    """Function names with every caller before its callees (cycles broken
    arbitrarily) — the propagation order for entry-fact lifting."""
    return list(reversed(callgraph.bottom_up_order()))


def recursive_functions(callgraph: CallGraph) -> Set[str]:
    """Functions on a call-graph cycle (including self-recursion); their
    entry facts cannot be computed top-down and must be pinned to top."""
    recursive: Set[str] = set()
    for name in callgraph.callees:
        seen: Set[str] = set()
        work = list(callgraph.callees.get(name, ()))
        while work:
            callee = work.pop()
            if callee == name:
                recursive.add(name)
                break
            if callee in seen:
                continue
            seen.add(callee)
            work.extend(callgraph.callees.get(callee, ()))
    return recursive


def call_sites_with_blocks(module) -> List[tuple]:
    """``(caller_func, block, op)`` for every direct call to a function
    defined in the module (the block context CallGraph.call_sites lacks)."""
    sites = []
    for func in module:
        for block in func:
            for op in block.ops:
                if op.is_call() and op.attrs.get("callee") in module.functions:
                    sites.append((func, block, op))
    return sites


InputJoin = Callable[[str], Optional[Any]]
