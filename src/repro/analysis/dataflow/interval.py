"""Interval value-range analysis over MiniC IR.

Abstract interpretation with the classic interval domain, clipped to the
interpreter's 32-bit integer semantics: every interval is a subrange of
``[INT32_MIN, INT32_MAX]`` and any arithmetic whose true result could
escape that range goes to TOP — the sound model of the interpreter's
``_wrap32``.  There is no bottom *interval*; unreachability lives one
level up, in the per-block environment lattice whose bottom is ``None``.

Environments map virtual-register ids to intervals; an absent key means
TOP (unknown 32-bit value), so environments stay small and joins only
keep registers both sides know something about.

Interprocedural lifting walks the call graph top-down: a callee's entry
environment is the join of its call-site argument intervals; recursive
functions and functions unreachable from ``main`` get TOP parameters.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from .framework import (
    DataflowProblem,
    DataflowSolution,
    Lattice,
    recursive_functions,
    solve,
    top_down_order,
)
from ..callgraph import CallGraph
from ..cfg import CFG
from ...ir import (
    BasicBlock,
    Constant,
    Function,
    GlobalAddress,
    IntType,
    Module,
    Opcode,
    Operation,
    Value,
    VirtualRegister,
)

INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1


class Interval:
    """A non-empty subrange of the 32-bit signed integers."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int):
        if lo > hi:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        self.lo = max(lo, INT32_MIN)
        self.hi = min(hi, INT32_MAX)

    # -- constructors --------------------------------------------------------

    @staticmethod
    def top() -> "Interval":
        return _TOP

    @staticmethod
    def const(value: int) -> "Interval":
        if INT32_MIN <= value <= INT32_MAX:
            return Interval(value, value)
        return _TOP

    @staticmethod
    def from_bounds(lo: int, hi: int) -> "Interval":
        """Escape-to-TOP constructor: a true result range that leaves the
        32-bit space may wrap anywhere, so the only sound answer is TOP."""
        if lo < INT32_MIN or hi > INT32_MAX:
            return _TOP
        return Interval(lo, hi)

    # -- queries -------------------------------------------------------------

    def is_top(self) -> bool:
        return self.lo == INT32_MIN and self.hi == INT32_MAX

    def is_const(self) -> bool:
        return self.lo == self.hi

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def width(self) -> int:
        return self.hi - self.lo + 1

    # -- lattice operators ---------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def widen(self, new: "Interval") -> "Interval":
        lo = self.lo if new.lo >= self.lo else INT32_MIN
        hi = self.hi if new.hi <= self.hi else INT32_MAX
        return Interval(lo, hi)

    def narrow(self, new: "Interval") -> "Interval":
        """Refine only the endpoints widening blew out (standard interval
        narrowing, sound within a descending iteration)."""
        lo = new.lo if self.lo == INT32_MIN else self.lo
        hi = new.hi if self.hi == INT32_MAX else self.hi
        return Interval(lo, hi) if lo <= hi else self

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Interval)
            and other.lo == self.lo
            and other.hi == self.hi
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __str__(self) -> str:
        if self.is_top():
            return "[-inf, +inf]"
        return f"[{self.lo}, {self.hi}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interval({self.lo}, {self.hi})"


_TOP = Interval(INT32_MIN, INT32_MAX)

#: vid -> interval; absent key means TOP.  ``None`` is the env-lattice bottom.
Env = Optional[Dict[int, Interval]]


class EnvLattice(Lattice):
    """Pointwise lift of :class:`Interval` over register environments."""

    def bottom(self) -> Env:
        return None

    def join(self, a: Env, b: Env) -> Env:
        if a is None:
            return b if b is None else dict(b)
        if b is None:
            return dict(a)
        out: Dict[int, Interval] = {}
        for vid, iv in a.items():
            other = b.get(vid)
            if other is None:
                continue  # absent means TOP; the join is TOP -> drop
            joined = iv.join(other)
            if not joined.is_top():
                out[vid] = joined
        return out

    def widen(self, old: Env, new: Env) -> Env:
        if old is None or new is None:
            return self.join(old, new)
        out: Dict[int, Interval] = {}
        for vid, iv in old.items():
            other = new.get(vid)
            if other is None:
                continue
            widened = iv.widen(other)
            if not widened.is_top():
                out[vid] = widened
        return out

    def narrow(self, old: Env, new: Env) -> Env:
        if old is None or new is None:
            return old
        out: Dict[int, Interval] = {}
        for vid, niv in new.items():
            narrowed = old.get(vid, _TOP).narrow(niv)
            if not narrowed.is_top():
                out[vid] = narrowed
        for vid, oiv in old.items():
            if vid not in new and not oiv.is_top():
                out[vid] = oiv
        return out


def eval_value(value: Value, env: Dict[int, Interval]) -> Interval:
    """The interval of one operand under ``env`` (TOP for anything that is
    not a 32-bit integer: floats, global addresses, function refs)."""
    if isinstance(value, Constant):
        if isinstance(value.value, bool) or not isinstance(value.value, int):
            return _TOP
        return Interval.const(value.value)
    if isinstance(value, VirtualRegister):
        return env.get(value.vid, _TOP)
    return _TOP


def _div_trunc(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _combos(f, a: Interval, b: Interval) -> Interval:
    cands = [f(x, y) for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
    return Interval.from_bounds(min(cands), max(cands))


def never_stored_global_values(module: Module, pointsto=None) -> Dict[str, int]:
    """Scalar int globals no STORE in the module may touch, with their
    initial (and therefore only) value.

    Store targets come from ``pointsto`` (a solved result) or the ops'
    ``mem_objects`` annotations; a store with an *empty* target set lost
    its address entirely, so the safe answer is then "no constant
    globals at all".
    """
    stored: set = set()
    for func in module:
        for op in func.operations():
            if op.opcode is not Opcode.STORE:
                continue
            if pointsto is not None:
                objs = pointsto.objects_for_op(func.name, op)
            else:
                objs = op.mem_objects()
            if not objs:
                return {}
            stored.update(objs)
    values: Dict[str, int] = {}
    for name, gvar in module.globals.items():
        if f"g:{name}" in stored or not isinstance(gvar.ty, IntType):
            continue
        init = gvar.initializer
        if init is None:
            values[name] = 0
        elif isinstance(init, int) and not isinstance(init, bool):
            wrapped = init & 0xFFFFFFFF
            values[name] = (
                wrapped - 0x100000000 if wrapped >= 0x80000000 else wrapped
            )
    return values


def transfer_op(
    op: Operation,
    env: Dict[int, Interval],
    const_globals: Optional[Dict[str, int]] = None,
) -> None:
    """Apply one operation's effect to ``env`` in place (TOP entries are
    dropped; STORE/branches leave the environment untouched)."""
    dest = op.dest
    if dest is None:
        return
    iv = _eval_op(op, env, const_globals)
    if iv is None or iv.is_top():
        env.pop(dest.vid, None)
    else:
        env[dest.vid] = iv


def _eval_op(
    op: Operation,
    env: Dict[int, Interval],
    const_globals: Optional[Dict[str, int]] = None,
) -> Optional[Interval]:
    code = op.opcode
    if code in (Opcode.MOV, Opcode.ICMOVE):
        return eval_value(op.srcs[0], env)
    if code is Opcode.LOAD:
        addr = op.srcs[0]
        if (
            const_globals
            and isinstance(addr, GlobalAddress)
            and addr.symbol in const_globals
        ):
            return Interval.const(const_globals[addr.symbol])
        return _TOP
    if code in (Opcode.MALLOC, Opcode.CALL, Opcode.PTRADD):
        return _TOP
    if code is Opcode.SELECT:
        cond = eval_value(op.srcs[0], env)
        if cond.is_const():
            return eval_value(op.srcs[1] if cond.lo != 0 else op.srcs[2], env)
        return eval_value(op.srcs[1], env).join(eval_value(op.srcs[2], env))
    if code in _COMPARES:
        a, b = (eval_value(s, env) for s in op.srcs[:2])
        return _compare(code, a, b)
    if code in _UNARY:
        return _UNARY[code](eval_value(op.srcs[0], env))
    if code in _BINARY:
        a, b = (eval_value(s, env) for s in op.srcs[:2])
        return _BINARY[code](a, b)
    # Floats and anything unmodelled: TOP.
    return _TOP


def _compare(code: Opcode, a: Interval, b: Interval) -> Interval:
    # Provably-true / provably-false outcomes collapse to a constant;
    # everything else is the boolean range [0, 1].
    if code is Opcode.CMPEQ:
        if a.is_const() and b.is_const():
            return Interval.const(1 if a.lo == b.lo else 0)
        if a.intersect(b) is None:
            return Interval.const(0)
    elif code is Opcode.CMPNE:
        if a.is_const() and b.is_const():
            return Interval.const(0 if a.lo == b.lo else 1)
        if a.intersect(b) is None:
            return Interval.const(1)
    elif code is Opcode.CMPLT:
        if a.hi < b.lo:
            return Interval.const(1)
        if a.lo >= b.hi:
            return Interval.const(0)
    elif code is Opcode.CMPLE:
        if a.hi <= b.lo:
            return Interval.const(1)
        if a.lo > b.hi:
            return Interval.const(0)
    elif code is Opcode.CMPGT:
        if a.lo > b.hi:
            return Interval.const(1)
        if a.hi <= b.lo:
            return Interval.const(0)
    elif code is Opcode.CMPGE:
        if a.lo >= b.hi:
            return Interval.const(1)
        if a.hi < b.lo:
            return Interval.const(0)
    return Interval(0, 1)


def _div(a: Interval, b: Interval) -> Interval:
    if b.contains(0):
        return _TOP
    return _combos(_div_trunc, a, b)


def _rem(a: Interval, b: Interval) -> Interval:
    if b.contains(0):
        return _TOP
    # C-style remainder: |r| < max|b| and sign(r) follows sign(a);
    # for a wholly non-negative dividend the result also never exceeds it.
    max_b = max(abs(b.lo), abs(b.hi))
    lo = -(max_b - 1) if a.lo < 0 else 0
    hi = (max_b - 1) if a.hi > 0 else 0
    if a.lo >= 0:
        hi = min(hi, a.hi)
    return Interval.from_bounds(lo, hi)


def _bitand(a: Interval, b: Interval) -> Interval:
    if a.is_const() and b.is_const():
        return Interval.const(a.lo & b.lo)
    if a.lo >= 0 and b.lo >= 0:
        return Interval(0, min(a.hi, b.hi))
    if a.lo >= 0:
        return Interval(0, a.hi)
    if b.lo >= 0:
        return Interval(0, b.hi)
    return _TOP


def _bitor_bound(a: Interval, b: Interval) -> Interval:
    if a.lo >= 0 and b.lo >= 0:
        bits = max(a.hi.bit_length(), b.hi.bit_length())
        return Interval.from_bounds(0, (1 << bits) - 1)
    return _TOP


def _bitor(a: Interval, b: Interval) -> Interval:
    if a.is_const() and b.is_const():
        return Interval.const(a.lo | b.lo)
    return _bitor_bound(a, b)


def _bitxor(a: Interval, b: Interval) -> Interval:
    if a.is_const() and b.is_const():
        return Interval.const(a.lo ^ b.lo)
    return _bitor_bound(a, b)


def _shl(a: Interval, b: Interval) -> Interval:
    # The interpreter masks the shift amount with & 31; outside [0, 31]
    # that produces surprising values, so only model in-range shifts.
    if b.lo < 0 or b.hi > 31:
        return _TOP
    return _combos(lambda x, s: x << s, a, b)


def _shr(a: Interval, b: Interval) -> Interval:
    if b.lo < 0 or b.hi > 31:
        return _TOP
    return _combos(lambda x, s: x >> s, a, b)


_COMPARES = {
    Opcode.CMPEQ,
    Opcode.CMPNE,
    Opcode.CMPLT,
    Opcode.CMPLE,
    Opcode.CMPGT,
    Opcode.CMPGE,
}

_UNARY = {
    Opcode.NEG: lambda a: Interval.from_bounds(-a.hi, -a.lo),
    Opcode.NOT: lambda a: Interval.from_bounds(-a.hi - 1, -a.lo - 1),
}

_BINARY = {
    Opcode.ADD: lambda a, b: Interval.from_bounds(a.lo + b.lo, a.hi + b.hi),
    Opcode.SUB: lambda a, b: Interval.from_bounds(a.lo - b.hi, a.hi - b.lo),
    Opcode.MUL: lambda a, b: _combos(lambda x, y: x * y, a, b),
    Opcode.DIV: _div,
    Opcode.REM: _rem,
    Opcode.AND: _bitand,
    Opcode.OR: _bitor,
    Opcode.XOR: _bitxor,
    Opcode.SHL: _shl,
    Opcode.SHR: _shr,
}


#: Comparison opcodes eligible for branch refinement.
_COMPARES = {
    Opcode.CMPEQ,
    Opcode.CMPNE,
    Opcode.CMPLT,
    Opcode.CMPLE,
    Opcode.CMPGT,
    Opcode.CMPGE,
}

#: The comparison that holds on the *false* edge of each comparison.
_NEGATE = {
    Opcode.CMPEQ: Opcode.CMPNE,
    Opcode.CMPNE: Opcode.CMPEQ,
    Opcode.CMPLT: Opcode.CMPGE,
    Opcode.CMPLE: Opcode.CMPGT,
    Opcode.CMPGT: Opcode.CMPLE,
    Opcode.CMPGE: Opcode.CMPLT,
}


def _clip(iv: Interval, lo: Optional[int], hi: Optional[int]) -> Optional[Interval]:
    new_lo = iv.lo if lo is None else max(iv.lo, lo)
    new_hi = iv.hi if hi is None else min(iv.hi, hi)
    if new_lo > new_hi:
        return None
    return Interval(new_lo, new_hi)


def _drop_const(iv: Interval, value: int) -> Optional[Interval]:
    """``iv`` minus one excluded value, when an endpoint can express it."""
    if iv.is_const():
        return None if iv.lo == value else iv
    if iv.lo == value:
        return Interval(iv.lo + 1, iv.hi)
    if iv.hi == value:
        return Interval(iv.lo, iv.hi - 1)
    return iv


def _refine_compare(
    code: Opcode, a: Interval, b: Interval
) -> Optional[Tuple[Interval, Interval]]:
    """Sharpen ``(a, b)`` under the assumption ``a <code> b`` holds;
    ``None`` when the assumption is contradictory (the edge is dead)."""
    if code is Opcode.CMPLT:
        na, nb = _clip(a, None, b.hi - 1), _clip(b, a.lo + 1, None)
    elif code is Opcode.CMPLE:
        na, nb = _clip(a, None, b.hi), _clip(b, a.lo, None)
    elif code is Opcode.CMPGT:
        na, nb = _clip(a, b.lo + 1, None), _clip(b, None, a.hi - 1)
    elif code is Opcode.CMPGE:
        na, nb = _clip(a, b.lo, None), _clip(b, None, a.hi)
    elif code is Opcode.CMPEQ:
        na = nb = a.intersect(b)
    elif code is Opcode.CMPNE:
        na = _drop_const(a, b.lo) if b.is_const() else a
        nb = _drop_const(b, a.lo) if a.is_const() else b
    else:  # pragma: no cover - guarded by _COMPARES
        return a, b
    if na is None or nb is None:
        return None
    return na, nb


def refine_branch_env(
    block: BasicBlock, taken: bool, env: Dict[int, Interval]
) -> Env:
    """The environment on one CBR edge of ``block``: the terminator's
    condition is non-zero on the taken edge and zero on the fallthrough.
    Returns ``None`` (lattice bottom) when the edge is infeasible."""
    term = block.ops[-1]
    cond = term.srcs[0]
    out = dict(env)
    if not isinstance(cond, VirtualRegister):
        return out
    civ = out.get(cond.vid, _TOP)
    if taken:
        refined = _drop_const(civ, 0)
        if refined is None:
            return None
        if not refined.is_top():
            out[cond.vid] = refined
    else:
        if not civ.contains(0):
            return None
        out[cond.vid] = Interval.const(0)

    cmp_op = None
    for op in block.ops:
        if op.dest is not None and op.dest.vid == cond.vid:
            cmp_op = op
    if cmp_op is None or cmp_op.opcode not in _COMPARES:
        return out
    # The refinement equates each operand's end-of-block value with its
    # value at the compare, so bail if anything redefines one in between.
    seen = False
    killed: set = set()
    for op in block.ops:
        if op is cmp_op:
            seen = True
            continue
        if seen and op.dest is not None:
            killed.add(op.dest.vid)
    a_src, b_src = cmp_op.srcs[0], cmp_op.srcs[1]
    for src in (a_src, b_src):
        if isinstance(src, VirtualRegister) and src.vid in killed:
            return out
    code = cmp_op.opcode if taken else _NEGATE[cmp_op.opcode]
    refined_pair = _refine_compare(
        code, eval_value(a_src, out), eval_value(b_src, out)
    )
    if refined_pair is None:
        return None
    for src, iv in zip((a_src, b_src), refined_pair):
        if not isinstance(src, VirtualRegister):
            continue
        if isinstance(a_src, VirtualRegister) and isinstance(
            b_src, VirtualRegister
        ) and a_src.vid == b_src.vid:
            continue  # cmp x, x: the pairwise refinement does not apply
        if iv.is_top():
            out.pop(src.vid, None)
        else:
            out[src.vid] = iv
    return out


class _IntervalProblem(DataflowProblem):
    direction = "forward"

    def __init__(
        self,
        entry_env: Dict[int, Interval],
        const_globals: Optional[Dict[str, int]] = None,
    ):
        super().__init__(EnvLattice())
        self._entry_env = entry_env
        self._const_globals = const_globals

    def boundary(self) -> Env:
        return dict(self._entry_env)

    def transfer(self, block: BasicBlock, state: Env) -> Env:
        if state is None:
            return None
        env = dict(state)
        for op in block.ops:
            transfer_op(op, env, self._const_globals)
        return env

    def edge_transfer(self, src: BasicBlock, dst_name: str, state: Env) -> Env:
        if state is None or not src.ops:
            return state
        term = src.ops[-1]
        if term.opcode is not Opcode.CBR:
            return state
        t_true, t_false = term.targets[0], term.targets[1]
        if t_true == t_false:
            return state
        if dst_name == t_true:
            return refine_branch_env(src, True, state)
        if dst_name == t_false:
            return refine_branch_env(src, False, state)
        return state


class IntervalAnalysis:
    """Whole-module interval analysis with top-down parameter lifting.

    Solves every function once, callers before callees, so that each
    call site's argument intervals can seed the callee's parameter
    environment.  Recursive functions (and functions unreachable from
    ``main``) get TOP parameters, which is always sound.
    """

    def __init__(
        self,
        module: Module,
        callgraph: Optional[CallGraph] = None,
        pointsto=None,
        widen_after: int = 3,
        narrow_passes: int = 2,
    ):
        self.module = module
        self.callgraph = callgraph or CallGraph(module)
        self.const_globals = never_stored_global_values(module, pointsto)
        self._widen_after = widen_after
        self._narrow_passes = narrow_passes
        self.cfgs: Dict[str, CFG] = {}
        self.solutions: Dict[str, DataflowSolution] = {}
        self.entry_envs: Dict[str, Dict[int, Interval]] = {}
        self._solve_module()

    # -- solving -------------------------------------------------------------

    def _solve_module(self) -> None:
        recursive = recursive_functions(self.callgraph)
        order = [
            name
            for name in top_down_order(self.callgraph)
            if name in self.module.functions
        ]
        # Entry envs accumulate as callers get solved; missing/recursive
        # functions fall back to TOP parameters (the empty env).
        arg_envs: Dict[str, Dict[int, Interval]] = {}
        for name in order:
            func = self.module.functions[name]
            if name == "main" or name in recursive:
                entry: Dict[int, Interval] = {}
            else:
                entry = arg_envs.get(name, {})
            self.entry_envs[name] = entry
            cfg = CFG(func)
            self.cfgs[name] = cfg
            self.solutions[name] = solve(
                func,
                cfg,
                _IntervalProblem(entry, self.const_globals),
                widen_after=self._widen_after,
                narrow_passes=self._narrow_passes,
            )
            self._propagate_call_args(func, cfg, arg_envs)

    def _propagate_call_args(
        self,
        func: Function,
        cfg: CFG,
        arg_envs: Dict[str, Dict[int, Interval]],
    ) -> None:
        lattice = EnvLattice()
        solution = self.solutions[func.name]
        for block_name in cfg.reverse_postorder():
            block = func.blocks[block_name]
            state = solution.in_of(block_name)
            if state is None:
                continue
            env = dict(state)
            for op in block.ops:
                if op.is_call():
                    callee = op.attrs.get("callee")
                    target = (
                        self.module.functions.get(callee) if callee else None
                    )
                    if target is not None:
                        call_env = {
                            param.vid: iv
                            for param, src in zip(target.params, op.srcs[1:])
                            if not (iv := eval_value(src, env)).is_top()
                        }
                        if callee in arg_envs:
                            joined = lattice.join(arg_envs[callee], call_env)
                            arg_envs[callee] = joined if joined is not None else {}
                        else:
                            arg_envs[callee] = call_env
                transfer_op(op, env, self.const_globals)

    # -- queries -------------------------------------------------------------

    def env_at_entry(
        self, func_name: str, block_name: str
    ) -> Optional[Dict[int, Interval]]:
        """Register intervals at block entry; ``None`` if unreachable."""
        solution = self.solutions.get(func_name)
        if solution is None:
            return None
        return solution.in_of(block_name)

    def env_at_exit(
        self, func_name: str, block_name: str
    ) -> Optional[Dict[int, Interval]]:
        solution = self.solutions.get(func_name)
        if solution is None:
            return None
        return solution.out_of(block_name)

    def value_at_entry(
        self, func_name: str, block_name: str, value: Value
    ) -> Interval:
        env = self.env_at_entry(func_name, block_name)
        return _TOP if env is None else eval_value(value, env)

    def env_before_op(
        self, func_name: str, block: BasicBlock, target: Operation
    ) -> Optional[Dict[int, Interval]]:
        """Replay the block up to (excluding) ``target``; ``None`` if the
        block is unreachable."""
        state = self.env_at_entry(func_name, block.name)
        if state is None:
            return None
        env = dict(state)
        for op in block.ops:
            if op is target:
                break
            transfer_op(op, env, self.const_globals)
        return env

    def branch_condition(
        self, func_name: str, block: BasicBlock
    ) -> Optional[Tuple[Operation, Interval]]:
        """The terminating CBR and its condition interval, if the block is
        reachable and conditionally branches."""
        if not block.ops:
            return None
        term = block.ops[-1]
        if term.opcode is not Opcode.CBR:
            return None
        env = self.env_before_op(func_name, block, term)
        if env is None:
            return None
        return term, eval_value(term.srcs[0], env)

    def constant_conditions(
        self, func_name: str
    ) -> Iterable[Tuple[BasicBlock, Operation, Interval, str]]:
        """Yield ``(block, cbr, interval, taken_target)`` for every
        reachable CBR whose outcome the analysis proves constant."""
        func = self.module.functions.get(func_name)
        cfg = self.cfgs.get(func_name)
        if func is None or cfg is None:
            return
        for block_name in cfg.reverse_postorder():
            block = func.blocks[block_name]
            found = self.branch_condition(func_name, block)
            if found is None:
                continue
            term, cond = found
            if cond.is_const() and cond.lo == 0:
                yield block, term, cond, term.targets[1]
            elif not cond.contains(0):
                yield block, term, cond, term.targets[0]


__all__ = [
    "INT32_MAX",
    "INT32_MIN",
    "EnvLattice",
    "Interval",
    "IntervalAnalysis",
    "eval_value",
    "never_stored_global_values",
    "transfer_op",
]
