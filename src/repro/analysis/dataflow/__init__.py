"""Abstract-interpretation dataflow framework.

A generic worklist fixpoint engine (:mod:`.framework`) plus the client
analyses built on it:

* :mod:`.clients` — must-defined registers and live registers, the
  engine-based replacements for the ad-hoc lint traversals;
* :mod:`.interval` — interval value-range analysis over MiniC IR with
  interprocedural parameter lifting;
* :mod:`.regions` — loop trip-count bounds, per-block execution bounds,
  and per-memory-op static access-weight bounds / touched byte-regions;
* :mod:`.staticprofile` — synthesizes a profiler-compatible
  :class:`StaticProfile` from the region analysis (imported lazily to
  avoid the analysis <-> profiler import cycle).
"""

from .clients import LivenessFacts, live_registers, must_defined_registers
from .framework import (
    DataflowProblem,
    DataflowSolution,
    Lattice,
    SetLattice,
    recursive_functions,
    solve,
    top_down_order,
)
from .interval import Interval, IntervalAnalysis
from .regions import AccessRegionAnalysis, ExecutionBounds, TripCounts

__all__ = [
    "AccessRegionAnalysis",
    "DataflowProblem",
    "DataflowSolution",
    "ExecutionBounds",
    "Interval",
    "IntervalAnalysis",
    "Lattice",
    "LivenessFacts",
    "SetLattice",
    "TripCounts",
    "live_registers",
    "must_defined_registers",
    "recursive_functions",
    "solve",
    "top_down_order",
]
