"""Reaching definitions and function-level def-use chains.

The Global Data Partitioner builds a *program-level* data-flow graph whose
edges are definition-to-use flows.  Within a function those flows come from
this analysis: a classic bit-vector-style reaching-definitions solve over
operation uids, followed by a per-block scan matching each register use to
the definitions reaching it.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir import Function, Operation
from .cfg import CFG


class DefUse:
    """Def-use chains for one function.

    ``edges``      — set of (def_uid, use_uid) pairs over operations;
    ``uses_of``    — def uid -> list of use uids;
    ``defs_for``   — (use_uid, vid) -> list of def uids reaching that use;
    ``param_uses`` — vid of a parameter -> use uids reached by entry value.
    """

    def __init__(self, func: Function, cfg: CFG = None):
        self.func = func
        self.cfg = cfg or CFG(func)
        self.op_by_uid: Dict[int, Operation] = {
            op.uid: op for op in func.operations()
        }
        self.edges: Set[Tuple[int, int]] = set()
        self.uses_of: Dict[int, List[int]] = {}
        self.defs_for: Dict[Tuple[int, int], List[int]] = {}
        self.param_uses: Dict[int, List[int]] = {p.vid: [] for p in func.params}
        self._solve()

    def _solve(self) -> None:
        # Definition points: uid -> vid; plus a pseudo-def per parameter
        # (negative ids -(vid+1) mark entry definitions).
        defs_of_reg: Dict[int, Set[int]] = {}
        def_reg: Dict[int, int] = {}
        for op in self.func.operations():
            if op.dest is not None:
                defs_of_reg.setdefault(op.dest.vid, set()).add(op.uid)
                def_reg[op.uid] = op.dest.vid
        for p in self.func.params:
            pseudo = -(p.vid + 1)
            defs_of_reg.setdefault(p.vid, set()).add(pseudo)
            def_reg[pseudo] = p.vid

        # GEN/KILL per block.
        gen: Dict[str, Set[int]] = {}
        kill: Dict[str, Set[int]] = {}
        for block in self.func:
            g: Set[int] = set()
            k: Set[int] = set()
            for op in block.ops:
                if op.dest is not None:
                    vid = op.dest.vid
                    others = defs_of_reg[vid] - {op.uid}
                    g -= others
                    g.add(op.uid)
                    k |= others
            gen[block.name] = g
            kill[block.name] = k

        entry_name = self.cfg.entry
        reach_in: Dict[str, Set[int]] = {n: set() for n in self.func.blocks}
        reach_out: Dict[str, Set[int]] = {}
        entry_defs = {-(p.vid + 1) for p in self.func.params}
        for name in self.func.blocks:
            seed = entry_defs if name == entry_name else set()
            reach_out[name] = gen[name] | (seed - kill[name])

        order = self.cfg.reverse_postorder()
        changed = True
        while changed:
            changed = False
            for name in order:
                rin: Set[int] = set()
                if name == entry_name:
                    rin |= entry_defs
                for pred in self.cfg.predecessors(name):
                    rin |= reach_out[pred]
                rout = gen[name] | (rin - kill[name])
                if rin != reach_in[name] or rout != reach_out[name]:
                    reach_in[name] = rin
                    reach_out[name] = rout
                    changed = True

        # Walk each block matching uses to the currently-reaching defs.
        for block in self.func:
            current: Dict[int, Set[int]] = {}
            for d in reach_in[block.name]:
                current.setdefault(def_reg[d], set()).add(d)
            for op in block.ops:
                for src in op.register_srcs():
                    reaching = current.get(src.vid, set())
                    self.defs_for[(op.uid, src.vid)] = sorted(reaching)
                    for d in reaching:
                        if d >= 0:
                            self.edges.add((d, op.uid))
                            self.uses_of.setdefault(d, []).append(op.uid)
                        else:
                            vid = def_reg[d]
                            self.param_uses.setdefault(vid, []).append(op.uid)
                if op.dest is not None:
                    current[op.dest.vid] = {op.uid}

    # -- queries -----------------------------------------------------------------

    def users(self, def_op: Operation) -> List[Operation]:
        return [self.op_by_uid[u] for u in self.uses_of.get(def_op.uid, [])]

    def reaching_defs(self, use_op: Operation, vid: int) -> List[int]:
        return self.defs_for.get((use_op.uid, vid), [])
