"""Natural loop detection from dominator-identified back edges.

Loop nesting depth feeds the static block-frequency estimator used when no
profile is available (10^depth weighting, the classic compiler heuristic).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .cfg import CFG
from .dominators import DominatorTree


class Loop:
    """A natural loop: a header plus the body blocks reaching it."""

    def __init__(self, header: str, body: Set[str]):
        self.header = header
        self.body = body  # includes the header
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    @property
    def depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def contains(self, block: str) -> bool:
        return block in self.body

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<loop header={self.header} blocks={len(self.body)}>"


class LoopInfo:
    """All natural loops of a function with nesting structure."""

    def __init__(self, cfg: CFG, domtree: Optional[DominatorTree] = None):
        self.cfg = cfg
        self.domtree = domtree or DominatorTree(cfg)
        self.loops: List[Loop] = []
        self._depth: Dict[str, int] = {}
        self._find_loops()
        self._nest_loops()
        self._compute_depths()

    def _find_loops(self) -> None:
        by_header: Dict[str, Set[str]] = {}
        for src in self.cfg.reachable():
            for dst in self.cfg.successors(src):
                if self.domtree.dominates(dst, src):
                    by_header.setdefault(dst, set()).update(
                        self._loop_body(dst, src)
                    )
        for header, body in by_header.items():
            self.loops.append(Loop(header, body))

    def _loop_body(self, header: str, latch: str) -> Set[str]:
        body = {header, latch}
        work = [latch]
        while work:
            node = work.pop()
            if node == header:
                continue
            for pred in self.cfg.predecessors(node):
                if pred not in body:
                    body.add(pred)
                    work.append(pred)
        return body

    def _nest_loops(self) -> None:
        # Smaller loops nest inside larger loops containing their header.
        ordered = sorted(self.loops, key=lambda l: len(l.body))
        for i, inner in enumerate(ordered):
            for outer in ordered[i + 1 :]:
                if inner.header in outer.body and inner is not outer:
                    inner.parent = outer
                    outer.children.append(inner)
                    break

    def _compute_depths(self) -> None:
        for name in self.cfg.reachable():
            depth = 0
            for loop in self.loops:
                if loop.contains(name):
                    depth = max(depth, loop.depth)
            self._depth[name] = depth

    # -- queries --------------------------------------------------------------

    def depth_of(self, block: str) -> int:
        """Loop nesting depth of a block (0 = not in any loop)."""
        return self._depth.get(block, 0)

    def innermost_loop_of(self, block: str) -> Optional[Loop]:
        best: Optional[Loop] = None
        for loop in self.loops:
            if loop.contains(block) and (best is None or loop.depth > best.depth):
                best = loop
        return best

    def static_frequency(self, block: str, base: float = 10.0) -> float:
        """Heuristic execution frequency: ``base ** depth``."""
        return base ** self.depth_of(block)
