"""Whole-program analyses: CFG, dominators, loops, liveness, def-use,
call graph, points-to, data objects, the program-level DFG, and the
abstract-interpretation dataflow framework (``analysis.dataflow``)."""

from .callgraph import CallGraph
from .cfg import CFG
from .defuse import DefUse
from .dfg import ProgramGraph, ProgramNode
from .dominators import DominatorTree
from .liveness import Liveness
from .loops import Loop, LoopInfo
from .modref import (
    ModRefAnalysis,
    ModRefSummary,
    effect_contains,
    format_effect,
)
from .objects import DataObject, ObjectTable
from .pointsto import (
    TIERS,
    PointsTo,
    PointsToResult,
    PointsToStats,
    TieredPointsTo,
    annotate_memory_ops,
    global_object_id,
    heap_object_id,
    solve_pointsto,
)
from .dataflow import (
    AccessRegionAnalysis,
    DataflowProblem,
    DataflowSolution,
    ExecutionBounds,
    Interval,
    IntervalAnalysis,
    Lattice,
    SetLattice,
    TripCounts,
    solve,
)

__all__ = [
    "AccessRegionAnalysis",
    "DataflowProblem",
    "DataflowSolution",
    "ExecutionBounds",
    "Interval",
    "IntervalAnalysis",
    "Lattice",
    "SetLattice",
    "TripCounts",
    "solve",
    "CallGraph",
    "CFG",
    "DefUse",
    "ProgramGraph",
    "ProgramNode",
    "DominatorTree",
    "Liveness",
    "Loop",
    "LoopInfo",
    "DataObject",
    "ObjectTable",
    "ModRefAnalysis",
    "ModRefSummary",
    "effect_contains",
    "format_effect",
    "TIERS",
    "PointsTo",
    "PointsToResult",
    "PointsToStats",
    "TieredPointsTo",
    "annotate_memory_ops",
    "global_object_id",
    "heap_object_id",
    "solve_pointsto",
]
