"""Classic backward liveness analysis over virtual registers."""

from __future__ import annotations

from typing import Dict, Set

from ..ir import Function
from .cfg import CFG


class Liveness:
    """Per-block live-in/live-out register id sets."""

    def __init__(self, func: Function, cfg: CFG = None):
        self.func = func
        self.cfg = cfg or CFG(func)
        self.use: Dict[str, Set[int]] = {}
        self.defs: Dict[str, Set[int]] = {}
        self.live_in: Dict[str, Set[int]] = {}
        self.live_out: Dict[str, Set[int]] = {}
        self._compute_local()
        self._solve()

    def _compute_local(self) -> None:
        for block in self.func:
            use: Set[int] = set()
            defs: Set[int] = set()
            for op in block.ops:
                for src in op.register_srcs():
                    if src.vid not in defs:
                        use.add(src.vid)
                if op.dest is not None:
                    defs.add(op.dest.vid)
            self.use[block.name] = use
            self.defs[block.name] = defs

    def _solve(self) -> None:
        names = list(self.func.blocks)
        self.live_in = {n: set() for n in names}
        self.live_out = {n: set() for n in names}
        order = self.cfg.postorder()  # forward order for a backward problem
        changed = True
        while changed:
            changed = False
            for name in order:
                out: Set[int] = set()
                for succ in self.cfg.successors(name):
                    out |= self.live_in[succ]
                new_in = self.use[name] | (out - self.defs[name])
                if out != self.live_out[name] or new_in != self.live_in[name]:
                    self.live_out[name] = out
                    self.live_in[name] = new_in
                    changed = True

    # -- queries --------------------------------------------------------------

    def live_across(self, vid: int) -> bool:
        """True if the register is live across any block boundary."""
        return any(vid in live for live in self.live_out.values())

    def live_out_of(self, block: str) -> Set[int]:
        return self.live_out.get(block, set())

    def live_into(self, block: str) -> Set[int]:
        return self.live_in.get(block, set())
