"""The unified run configuration fronting the execution engine.

A :class:`RunConfig` is one frozen value object holding every knob that
PRs 1–3 accreted as keyword arguments across :class:`~repro.pipeline.Pipeline`,
:class:`~repro.resilience.ResilientPipeline`,
:class:`~repro.pipeline.PreparedProgram` and the CLI: scheme, points-to
tier, machine preset, seed, budget, retries, fallback, fault spec,
validation, parallelism, and cache policy.

Design contract:

* ``to_json``/``from_json`` round-trip exactly; ``from_json`` rejects
  unknown fields and any ``schema_version`` it does not understand, so a
  serialized config is an auditable, forward-safe artifact.
* :meth:`cache_key_material` is the canonical subset of fields that can
  change a result — it is embedded in every artifact-cache key and in
  every sweep report, which is what makes results content-addressable.
* Legacy keyword arguments on the pipelines keep working through a
  deprecation shim (see the mapping table in DESIGN.md section 8); new
  code uses ``Pipeline.from_config(cfg)`` and friends.
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Optional

#: Version of the RunConfig field set.  Bump when fields are added,
#: removed, or change meaning; ``from_dict`` refuses other versions and
#: the artifact cache treats entries written under other versions as
#: stale.
SCHEMA_VERSION = 2

#: The schemes a config may request (Table 1 order).
SCHEMES = ("gdp", "profilemax", "naive", "unified")

#: Profile sources: ``dynamic`` interprets the program (the paper's
#: execution profiling), ``static`` synthesizes a profile from the
#: abstract-interpretation access-region analysis — zero interpreter runs.
PROFILE_MODES = ("dynamic", "static")

#: Points-to precision tiers (mirrors repro.analysis.TIERS without the
#: import cycle; validated against the real registry lazily).
POINTSTO_TIERS = ("andersen", "field", "cs")

#: Cache policies: ``on`` read+write, ``off`` neither, ``readonly`` reads
#: but never writes, ``refresh`` recomputes and overwrites.
CACHE_POLICIES = ("on", "off", "readonly", "refresh")

#: Machine presets a config can name (see repro.machine.presets).
MACHINE_PRESETS = ("two_cluster", "four_cluster", "heterogeneous",
                   "single_cluster")


class RunConfigError(ValueError):
    """A config dict the front door refuses, with the offending fields.

    Subclasses :class:`ValueError` so every existing ``except ValueError``
    site keeps working; ``fields`` names the rejected keys so a service
    boundary can map the failure to a structured 400 instead of a
    traceback (the offending field travels with the error, machine
    readable).
    """

    def __init__(self, message: str, fields: tuple = ()):
        super().__init__(message)
        self.fields = tuple(fields)


@dataclass(frozen=True)
class RunConfig:
    """Frozen description of one scheme/bench execution policy.

    Fields that change the *result* (scheme, tier, machine, latency,
    seed) are separated from fields that change only *how* it is obtained
    (jobs, cache policy, retries…) by :meth:`cache_key_material`.
    """

    scheme: str = "gdp"
    pointsto_tier: str = "andersen"
    profile: str = "dynamic"
    machine: str = "two_cluster"
    latency: int = 5
    seed: int = 0
    max_seconds: Optional[float] = None
    retries: int = 1
    fallback: bool = True
    fault_spec: Optional[str] = None
    validate: bool = False
    jobs: Optional[int] = None
    cache: str = "on"
    cache_dir: Optional[str] = None
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self):
        if self.schema_version != SCHEMA_VERSION:
            raise RunConfigError(
                f"RunConfig schema_version {self.schema_version} is not "
                f"supported (this build understands {SCHEMA_VERSION})",
                fields=("schema_version",),
            )
        if self.scheme not in SCHEMES:
            raise RunConfigError(
                f"unknown scheme {self.scheme!r}; one of {SCHEMES}",
                fields=("scheme",),
            )
        if self.pointsto_tier not in POINTSTO_TIERS:
            raise RunConfigError(
                f"unknown points-to tier {self.pointsto_tier!r}; "
                f"one of {POINTSTO_TIERS}",
                fields=("pointsto_tier",),
            )
        if self.profile not in PROFILE_MODES:
            raise RunConfigError(
                f"unknown profile mode {self.profile!r}; "
                f"one of {PROFILE_MODES}",
                fields=("profile",),
            )
        if self.machine not in MACHINE_PRESETS:
            raise RunConfigError(
                f"unknown machine preset {self.machine!r}; "
                f"one of {MACHINE_PRESETS}",
                fields=("machine",),
            )
        if self.cache not in CACHE_POLICIES:
            raise RunConfigError(
                f"unknown cache policy {self.cache!r}; "
                f"one of {CACHE_POLICIES}",
                fields=("cache",),
            )
        if self.retries < 0:
            raise RunConfigError("retries must be >= 0", fields=("retries",))
        if self.jobs is not None and self.jobs < 1:
            raise RunConfigError("jobs must be >= 1", fields=("jobs",))
        if self.max_seconds is not None and self.max_seconds < 0:
            raise RunConfigError(
                "max_seconds must be >= 0", fields=("max_seconds",)
            )

    # -- derived views ---------------------------------------------------------

    @property
    def effective_jobs(self) -> int:
        """``jobs`` resolved: explicit value, else ``os.cpu_count()``."""
        if self.jobs is not None:
            return self.jobs
        return os.cpu_count() or 1

    @property
    def cache_enabled(self) -> bool:
        return self.cache != "off"

    @property
    def cacheable_results(self) -> bool:
        """Whether this config's *outcomes* may be cached at all.

        Anytime budgets make results wall-clock dependent and fault specs
        deliberately perturb them; neither is a pure function of the
        cache key, so such runs never populate the outcome cache.
        """
        return (
            self.cache_enabled
            and self.max_seconds is None
            and self.fault_spec is None
        )

    def cache_key_material(self) -> Dict[str, Any]:
        """The canonical, result-affecting subset embedded in cache keys
        (machine preset + latency, points-to tier, profile mode, scheme,
        seed)."""
        return {
            "schema_version": self.schema_version,
            "machine": self.machine,
            "latency": self.latency,
            "pointsto_tier": self.pointsto_tier,
            "profile": self.profile,
            "scheme": self.scheme,
            "seed": self.seed,
        }

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with ``changes`` applied (dataclasses.replace)."""
        return dataclasses.replace(self, **changes)

    # -- builders for the objects the pipelines consume ------------------------

    def build_machine(self):
        """Instantiate the named machine preset at this latency."""
        from ..machine import presets

        if self.machine == "single_cluster":
            return presets.single_cluster_machine()
        factory = getattr(presets, f"{self.machine}_machine")
        return factory(move_latency=self.latency)

    def build_budget(self):
        """A fresh :class:`~repro.resilience.Budget`, or None."""
        if self.max_seconds is None:
            return None
        from ..resilience import Budget

        return Budget(max_seconds=self.max_seconds)

    def build_faults(self):
        """The parsed :class:`~repro.resilience.FaultPlan`, or None."""
        if not self.fault_spec:
            return None
        from ..resilience import FaultPlan

        return FaultPlan.parse(self.fault_spec)

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunConfig":
        """Strict parse: unknown fields are rejected (never silently
        dropped) and the schema version must match exactly."""
        if not isinstance(data, dict):
            raise RunConfigError(
                f"RunConfig must be a JSON object, got {data!r}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        version = data.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise RunConfigError(
                f"RunConfig schema_version {version} is not supported "
                f"(this build understands {SCHEMA_VERSION})",
                fields=("schema_version",),
            )
        if unknown:
            raise RunConfigError(
                f"unknown RunConfig field(s) {unknown} for schema_version "
                f"{version}",
                fields=tuple(unknown),
            )
        try:
            return cls(**data)
        except TypeError as exc:
            # A field of the wrong JSON type (e.g. retries="many") trips a
            # comparison inside __post_init__; surface it as the same
            # structured rejection instead of a bare TypeError.
            raise RunConfigError(f"malformed RunConfig: {exc}") from None

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        return cls.from_dict(json.loads(text))

    def canonical_json(self) -> str:
        """Minimal, key-sorted form (the form hashed into cache keys)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def describe(self) -> str:
        """Compact multi-line rendering for ``repro config show``."""
        lines = []
        for field in dataclasses.fields(self):
            lines.append(f"{field.name:15} {getattr(self, field.name)!r}")
        return "\n".join(lines)


def warn_legacy_kwarg(owner: str, kwarg: str, field: str) -> None:
    """Emit the deprecation shim warning for a pre-RunConfig keyword.

    The legacy spelling keeps working for one release; the replacement is
    the named :class:`RunConfig` field via ``{owner}.from_config(cfg)``.
    The full mapping table lives in DESIGN.md section 8.
    """
    warnings.warn(
        f"{owner}({kwarg}=...) is deprecated; set RunConfig.{field} and use "
        f"{owner}.from_config(cfg) (see DESIGN.md section 8)",
        DeprecationWarning,
        stacklevel=3,
    )
