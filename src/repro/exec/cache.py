"""Content-addressed on-disk artifact cache for the execution engine.

Artifacts (serialized profiles, points-to annotations, coarsened-graph
groups, partition assignments, scheme outcomes) are stored as JSON under
``<root>/objects/<kind>/<kk>/<key>.json`` where ``key`` is the SHA-256 of
the canonical JSON of the artifact's *key material* — for outcomes that
is ``(IR module hash, machine fingerprint, points-to tier, scheme,
seed)`` plus the schema version, so a cache entry can never be confused
with a result produced under different inputs.

The root defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; every
CLI entry point accepts ``--cache-dir``.  Writes are atomic
(temp file + ``os.replace``) so concurrent pool workers racing on the
same key simply last-write-win with identical content.  Hit / miss /
stale counters accumulate per cache instance and feed the sweep report's
cache columns and ``repro cache stats``.

Multi-process coordination (a shared multi-tenant cache dir, the job
server's normal deployment) adds two guards on top of the atomic writes:

* an advisory file lock (``<root>/.lock``) — writers hold it *shared*
  around each store, ``gc``/``clear`` hold it *exclusive* — so eviction
  never runs concurrently with an in-flight write;
* a *generation grace window*: ``gc(grace_seconds=...)`` never removes
  an entry younger than the window, closing the race where eviction
  under size pressure deletes an artifact another process just wrote and
  is about to read back.

Reads refresh an entry's mtime, so size-pressure eviction is LRU (least
recently *used*), not oldest-written — a tenant's hot artifacts survive
another tenant's churn.

Integrity: every entry carries a ``digest`` — the SHA-256 of its own
canonical JSON minus that field — written at store time and verified on
*every* load.  A mismatch (bit rot, a torn write that still parses, a
flipped byte) or an undecodable file is **corruption**, handled by
self-healing: the entry is moved to ``<root>/quarantine/`` (preserved
for forensics, never silently deleted), counted, and reported as a miss
so the engine recomputes and re-stores it.  A corrupt cache can slow the
system down; it can never poison a result or crash a cell.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from .runconfig import SCHEMA_VERSION

#: Artifact kinds the engine stores (subdirectories of ``objects/``).
KINDS = ("prepared", "outcome")


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def canonical_key(material: Dict[str, Any]) -> str:
    """SHA-256 over the canonical (sorted, compact) JSON of ``material``."""
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def content_sha(text: str) -> str:
    """SHA-256 of a text blob (source files, serialized IR modules)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def entry_digest(entry: Dict[str, Any]) -> str:
    """The integrity stamp of one cache entry: SHA-256 over its
    canonical JSON with the ``digest`` field itself excluded.  Covering
    the whole entry (not just the payload) means *any* byte flip that
    still parses as JSON is caught, not only payload damage."""
    material = {k: v for k, v in entry.items() if k != "digest"}
    return canonical_key(material)


class ArtifactCache:
    """One process's handle on the on-disk artifact store.

    ``policy`` is a :data:`~repro.exec.runconfig.CACHE_POLICIES` value:
    ``on`` (read+write), ``off`` (inert), ``readonly`` (hits only, never
    writes), ``refresh`` (recompute everything, overwrite entries).
    """

    def __init__(self, root: Optional[str] = None, policy: str = "on"):
        self.root = root or default_cache_dir()
        self.policy = policy
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt = 0
        self.quarantined = 0

    # -- keys & paths ----------------------------------------------------------

    def _objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def _quarantine_dir(self) -> str:
        return os.path.join(self.root, "quarantine")

    def _path(self, kind: str, key: str) -> str:
        return os.path.join(self._objects_dir(), kind, key[:2], key + ".json")

    # -- multi-process write/evict coordination --------------------------------

    @contextmanager
    def _locked(self, exclusive: bool) -> Iterator[None]:
        """Advisory flock on ``<root>/.lock``: shared around stores,
        exclusive around gc/clear.  A no-op where ``fcntl`` is missing —
        the atomic-write guarantees still hold there, only the
        eviction-vs-writer exclusion is lost."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        os.makedirs(self.root, exist_ok=True)
        fd = os.open(os.path.join(self.root, ".lock"),
                     os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    # -- load / store ----------------------------------------------------------

    def load(self, kind: str, material: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """The payload stored for ``material``, or None on miss.

        An entry written under a different schema version (or predating
        the digest stamp) counts as *stale*: it is deleted and reported
        as a miss, so a schema bump invalidates the whole store lazily.
        An entry that fails to decode or whose digest does not verify is
        *corrupt*: it is quarantined (see :meth:`_quarantine`) and
        reported as a miss — the caller recomputes, which is the
        self-heal.
        """
        if self.policy in ("off", "refresh"):
            self.misses += 1
            return None
        key = canonical_key(material)
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                entry = json.loads(handle.read().decode("utf-8"))
            if not isinstance(entry, dict):
                raise ValueError("entry is not an object")
        except FileNotFoundError:
            self.misses += 1
            return None
        except ValueError:
            # Damaged bytes (bit rot / torn write): quarantine + recompute.
            self.corrupt += 1
            self._quarantine(path)
            return None
        except OSError:
            self.stale += 1
            self._remove_quietly(path)
            return None
        if (
            entry.get("schema") != SCHEMA_VERSION
            or entry.get("kind") != kind
            or "digest" not in entry
        ):
            self.stale += 1
            self._remove_quietly(path)
            return None
        if entry["digest"] != entry_digest(entry):
            # Valid JSON, wrong content: a flipped byte the parser
            # cannot see.  Same treatment — never serve it.
            self.corrupt += 1
            self._quarantine(path)
            return None
        self.hits += 1
        if self.policy == "on":
            # Refresh recency so size-pressure eviction is LRU: an entry
            # read often stays, however long ago it was written.
            try:
                os.utime(path, None)
            except OSError:
                pass
        return entry["payload"]

    def store(
        self, kind: str, material: Dict[str, Any], payload: Dict[str, Any]
    ) -> bool:
        """Write ``payload`` under ``material``'s key; atomic, race-safe."""
        if self.policy in ("off", "readonly"):
            return False
        key = canonical_key(material)
        path = self._path(kind, key)
        entry = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "key": key,
            "key_material": material,
            "created": time.time(),
            "payload": payload,
        }
        entry["digest"] = entry_digest(entry)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with self._locked(exclusive=False):
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(entry, handle, sort_keys=True)
                os.replace(tmp, path)
            except OSError:
                self._remove_quietly(tmp)
                return False
        self.stores += 1
        return True

    @staticmethod
    def _remove_quietly(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry to ``<root>/quarantine/`` (flat, named
        by its original basename).  Quarantined files are evidence — an
        operator can diff them against the recomputed entry — and their
        on-disk count is the *persistent* corruption counter
        ``repro cache stats`` reports across processes."""
        try:
            qdir = self._quarantine_dir()
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, os.path.join(qdir, os.path.basename(path)))
            self.quarantined += 1
        except OSError:
            # Can't preserve it (cross-device, permissions): removal
            # still self-heals, we just lose the evidence.
            self._remove_quietly(path)

    # -- maintenance -----------------------------------------------------------

    def _entries(self) -> Iterator[Tuple[str, str]]:
        """Yield (kind, path) for every stored entry."""
        objects = self._objects_dir()
        if not os.path.isdir(objects):
            return
        for kind in sorted(os.listdir(objects)):
            kind_dir = os.path.join(objects, kind)
            if not os.path.isdir(kind_dir):
                continue
            for shard in sorted(os.listdir(kind_dir)):
                shard_dir = os.path.join(kind_dir, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in sorted(os.listdir(shard_dir)):
                    if name.endswith(".json"):
                        yield kind, os.path.join(shard_dir, name)

    def stats(self) -> Dict[str, Any]:
        """Session counters plus a disk inventory per artifact kind.

        Machine-readable by design (``repro cache stats --format json``
        and the job server's ``/v1/stats`` embed it verbatim): counters
        the load-test harness asserts on live here, never in rendered
        text."""
        disk: Dict[str, Dict[str, Any]] = {}
        shards: Dict[str, set] = {}
        for kind, path in self._entries():
            slot = disk.setdefault(kind, {"entries": 0, "bytes": 0})
            slot["entries"] += 1
            shards.setdefault(kind, set()).add(
                os.path.basename(os.path.dirname(path))
            )
            try:
                slot["bytes"] += os.path.getsize(path)
            except OSError:
                pass
        for kind, slot in disk.items():
            slot["shards"] = len(shards.get(kind, ()))
        session = {
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
        }
        quarantine = {"entries": 0, "bytes": 0}
        qdir = self._quarantine_dir()
        if os.path.isdir(qdir):
            for name in sorted(os.listdir(qdir)):
                qpath = os.path.join(qdir, name)
                if not os.path.isfile(qpath):
                    continue
                quarantine["entries"] += 1
                try:
                    quarantine["bytes"] += os.path.getsize(qpath)
                except OSError:
                    pass
        consulted = self.hits + self.misses
        return {
            "root": self.root,
            "policy": self.policy,
            "session": session,
            "hit_ratio": (self.hits / consulted) if consulted else 0.0,
            "disk": disk,
            "quarantine": quarantine,
            "entries": sum(s["entries"] for s in disk.values()),
            "bytes": sum(s["bytes"] for s in disk.values()),
        }

    def gc(
        self,
        max_age_days: Optional[float] = None,
        max_bytes: Optional[int] = None,
        grace_seconds: float = 0.0,
    ) -> Dict[str, int]:
        """Collect garbage: stale-schema entries always, then entries
        older than ``max_age_days``, then least-recently-*used* first
        (reads refresh recency) until the store fits in ``max_bytes``.
        Returns removal/keep counts.

        Runs under the exclusive store lock, so no writer is mid-replace
        while entries are deleted.  Entries written within the last
        ``grace_seconds`` are immune to age and size pressure (never to a
        schema mismatch): a concurrent process that just stored an
        artifact is guaranteed to read it back, however aggressive the
        eviction policy.  Pass 0 (the default) for the one-shot CLI
        behaviour; long-running multi-tenant services should keep a
        window at least as long as one job.
        """
        now = time.time()
        survivors = []  # (last_used, size, path)
        removed = 0
        graced = 0
        with self._locked(exclusive=True):
            for _kind, path in self._entries():
                try:
                    with open(path) as handle:
                        entry = json.load(handle)
                    created = float(entry.get("created", 0.0))
                    schema = entry.get("schema")
                except (OSError, json.JSONDecodeError, ValueError):
                    self._remove_quietly(path)
                    removed += 1
                    continue
                if schema != SCHEMA_VERSION:
                    self._remove_quietly(path)
                    removed += 1
                    continue
                try:
                    stat = os.stat(path)
                    size, last_used = stat.st_size, stat.st_mtime
                except OSError:
                    size, last_used = 0, created
                if grace_seconds > 0 and now - created < grace_seconds:
                    # Generation guard: too young to evict, but also
                    # exempt from the size budget below — a just-written
                    # entry never counts against older survivors.
                    graced += 1
                    continue
                if (
                    max_age_days is not None
                    and now - created > max_age_days * 86400.0
                ):
                    self._remove_quietly(path)
                    removed += 1
                    continue
                survivors.append((last_used, size, path))
            if max_bytes is not None:
                survivors.sort()  # least recently used first
                total = sum(size for _u, size, _p in survivors)
                while survivors and total > max_bytes:
                    _last_used, size, path = survivors.pop(0)
                    self._remove_quietly(path)
                    total -= size
                    removed += 1
        self.evictions += removed
        return {"removed": removed, "kept": len(survivors) + graced}

    def clear(self) -> int:
        """Delete every stored artifact (and the quarantine — clearing
        the store is the operator saying "start over"); returns the
        number of live entries removed."""
        with self._locked(exclusive=True):
            count = sum(1 for _ in self._entries())
            objects = self._objects_dir()
            if os.path.isdir(objects):
                shutil.rmtree(objects, ignore_errors=True)
            qdir = self._quarantine_dir()
            if os.path.isdir(qdir):
                shutil.rmtree(qdir, ignore_errors=True)
        self.evictions += count
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<artifact cache {self.root} [{self.policy}]: "
            f"{self.hits} hit(s), {self.misses} miss(es), {self.stale} stale>"
        )
